// Loan-approval policy change — the paper's motivating scenario (§1, Fig 1).
//
// The Adult-style dataset plays the role of historical loan decisions. A
// policy update lowers the age threshold for approvals: rather than writing
// rules from scratch, the user takes a rule-set explanation of the current
// model (BRCG stand-in), modifies the age condition, and feeds the modified
// rule back. FROTE edits the model; we verify agreement on held-out data and
// that performance away from the rule is untouched.
//
// Build & run:  ./build/examples/example_loan_policy_change
#include <iostream>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  // Historical decisions (generated Adult-schema data, see docs/DESIGN.md §2).
  Dataset data = make_dataset(UciDataset::kAdult, 2500);
  const Schema& schema = data.schema();
  Rng rng(11);
  auto split = random_split(data, 0.8, rng);

  LogisticRegressionConfig lr;
  lr.max_iter = 200;
  LogisticRegressionLearner learner(lr);
  auto model = learner.train(split.train);

  // 1. Explain the current model with rules (the BRCG stand-in).
  std::cout << "Rule-set explanation of the current approval model:\n";
  const auto explanation = induce_rules(split.train, *model);
  for (std::size_t i = 0; i < std::min<std::size_t>(explanation.size(), 5);
       ++i) {
    std::cout << "  " << explanation[i].to_string(schema) << "\n";
  }

  // 2. The policy team lowers the age boundary: everyone over 35 with
  //    education_num > 10 should now be in the favourable class.
  const std::size_t age = schema.feature_index("age");
  const std::size_t edu = schema.feature_index("education_num");
  FeedbackRule policy = FeedbackRule::deterministic(
      Clause({Predicate{age, Op::kGt, 35.0}, Predicate{edu, Op::kGt, 10.0}}),
      /*target=*/1, schema.num_classes());
  policy.provenance = policy.clause;  // user edited an explanation rule
  FeedbackRuleSet frs({policy});
  std::cout << "\nNew policy rule: " << policy.to_string(schema) << "\n";

  // 3. Before editing: agreement and outside-coverage performance.
  const auto before = evaluate_objective(*model, frs, split.test);
  std::cout << "\nBefore editing: MRA=" << before.mra
            << "  outside-coverage F1=" << before.outside_f1 << "\n";

  // 4. FROTE edit (relabel + oversample, the paper's default protocol),
  //    described declaratively: the run exists as a JSON document the
  //    policy team can store, diff and re-execute (core/spec.hpp), and the
  //    engine is built from it. The rule rides along as text — the rule
  //    grammar round-trips bit-exactly.
  EngineSpec spec;
  spec.tau = 25;
  spec.q = 0.5;
  spec.eta = 40;
  spec.rules = {policy.to_string(schema)};
  spec.learner = "lr";
  std::cout << "\nDeclarative run spec (storable / diffable):\n"
            << spec.to_json_text() << "\n";
  auto engine =
      Engine::Builder::from_spec(spec, schema).value().build().value();

  auto session = engine.open(split.train, learner).value();
  std::cout << "\nStepping the edit (iteration: accepted? N, J-hat-bar):\n";
  std::size_t steps = 0;
  while (!session.finished() && steps < 8) {
    ++steps;
    const StepReport report = session.step();
    if (report.accepted()) {
      std::cout << "  iter " << report.iteration << ": accepted, N = "
                << report.instances_added << ", J-hat-bar = "
                << report.best_j_bar << "\n";
    }
  }

  // 5. Pause and hand off: snapshot the live session to JSON, restore it
  //    (in another process, on another machine, after a restart...) and
  //    finish there. Resume is bit-identical to never having stopped.
  const std::string checkpoint_text = session.snapshot().to_json_text();
  std::cout << "\nCheckpointed mid-edit after " << steps << " iterations ("
            << checkpoint_text.size() << " bytes of JSON).\n";
  auto restored = Session::restore(
      engine, learner, SessionCheckpoint::parse(checkpoint_text).value());
  auto resumed = std::move(restored).value();
  while (!resumed.finished()) {
    const StepReport report = resumed.step();
    if (report.accepted()) {
      std::cout << "  iter " << report.iteration << " (resumed): accepted, "
                << "N = " << report.instances_added << ", J-hat-bar = "
                << report.best_j_bar << "\n";
    }
    if (report.terminal()) break;
  }
  auto result = std::move(resumed).result();

  const auto after = evaluate_objective(*result.model, frs, split.test);
  std::cout << "After editing:  MRA=" << after.mra
            << "  outside-coverage F1=" << after.outside_f1 << "\n"
            << "Synthetic instances added: " << result.instances_added
            << "\n";

  std::cout << "\nHeld-out J-bar: " << test_j_bar(*model, frs, split.test)
            << " -> " << test_j_bar(*result.model, frs, split.test) << "\n";
  std::cout << "\nThe edit is encoded in the dataset itself; retraining any "
               "classifier on the augmented data reproduces it:\n";
  RandomForestLearner other_learner;
  auto other = other_learner.train(result.augmented);
  const auto cross = evaluate_objective(*other, frs, split.test);
  std::cout << "  RF retrained on augmented data: MRA=" << cross.mra
            << "  F1=" << cross.outside_f1 << "\n";
  return 0;
}
