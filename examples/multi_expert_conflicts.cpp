// Multiple experts, conflicting feedback, and probabilistic rules (§3.1).
//
// Two experts review a claims-management model (Contraceptive-schema data
// standing in for claims):
//   expert A: young claimants (wife_age <= 28) -> class "no_use"
//   expert B: claimants with media exposure "good" -> class "short_term"
// The rules overlap, so they conflict. We demonstrate all three resolution
// options from the paper, then run FROTE with the resolved, partially
// probabilistic rule set.
//
// Build & run:  ./build/examples/example_multi_expert_conflicts
#include <iostream>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  Dataset data = make_dataset(UciDataset::kContraceptive, 1473);
  const Schema& schema = data.schema();
  const std::size_t age = schema.feature_index("wife_age");
  const std::size_t media = schema.feature_index("media_exposure");

  FeedbackRule expert_a = FeedbackRule::deterministic(
      Clause({Predicate{age, Op::kLe, 28.0}}), 0, schema.num_classes());
  FeedbackRule expert_b = FeedbackRule::deterministic(
      Clause({Predicate{media, Op::kEq, 0.0}}), 2, schema.num_classes());

  std::cout << "Expert A: " << expert_a.to_string(schema) << "\n"
            << "Expert B: " << expert_b.to_string(schema) << "\n\n";

  std::cout << "Conflict detected: "
            << (rules_conflict(expert_a, expert_b, schema) ? "YES" : "no")
            << " (coverages overlap, labels differ)\n\n";

  // Option 1 — carve the intersection out of both rules.
  {
    auto a = expert_a, b = expert_b;
    resolve_by_exclusion(a, b);
    std::cout << "Option 1 (exclusion):\n  " << a.to_string(schema) << "\n  "
              << b.to_string(schema) << "\n";
    std::cout << "  still conflicting? "
              << (rules_conflict(a, b, schema) ? "YES" : "no") << "\n\n";
  }

  // Option 2 — a new probabilistic rule covers the intersection with the
  // mixture (π_A + π_B)/2, expressing the experts' disagreement.
  auto a = expert_a, b = expert_b;
  FeedbackRule mid = resolve_by_mixture(a, b);
  std::cout << "Option 2 (mixture rule for the intersection):\n  "
            << mid.to_string(schema) << "\n\n";

  // (Option 3 — human consensus — is a process, not code.)

  // Run FROTE with the resolved set {A', B', mixture}.
  FeedbackRuleSet frs({a, b, mid});
  std::cout << "Resolved FRS conflict-free? "
            << (has_conflicts(frs, schema) ? "NO" : "yes") << "\n\n";

  GbdtConfig gbdt;
  gbdt.num_rounds = 25;
  GbdtLearner learner(gbdt);
  const auto initial = learner.train(data);
  const auto before = evaluate_objective(*initial, frs, data);

  auto engine =
      Engine::Builder().rules(frs).tau(20).q(0.5).eta(25).build().value();
  auto session = engine.open(data, learner).value();
  session.run();
  auto result = std::move(session).result();
  const auto after = evaluate_objective(*result.model, frs, data);

  std::cout << "Model-rule agreement (training data): " << before.mra
            << " -> " << after.mra << "\n"
            << "Outside-coverage F1:                  " << before.outside_f1
            << " -> " << after.outside_f1 << "\n"
            << "Instances added: " << result.instances_added << "\n\n";

  // The mixture rule is honoured in expectation: predictions inside the
  // intersection split between the two experts' classes.
  std::size_t class0 = 0, class2 = 0, covered = 0;
  for (std::size_t i = 0; i < result.augmented.size(); ++i) {
    const auto row = result.augmented.row(i);
    if (!mid.covers(row)) continue;
    ++covered;
    const int label = result.augmented.label(i);
    class0 += label == 0 ? 1 : 0;
    class2 += label == 2 ? 1 : 0;
  }
  if (covered > 0) {
    std::cout << "Inside the experts' disputed region (" << covered
              << " rows of the augmented dataset): " << class0
              << " labelled for expert A, " << class2
              << " for expert B — the mixture in action.\n";
  }
  return 0;
}
