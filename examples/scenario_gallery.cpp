// Scenario gallery: run every registered scenario through a RunPlan grid.
//
// A scenario (core/scenario.hpp) packages a whole workload — generator
// config, engine knobs, feedback rules, an optional drift schedule and an
// expected-outcome bundle — as one JSON document behind the registry. This
// example builds a RunPlan whose grid axis is "every registered scenario
// name", executes it, and prints each run's summary plus the per-scenario
// expected-outcome verdict. It then registers a scratch scenario from a
// JSON string and runs it the same way — a new workload is JSON plus one
// registry entry, no engine code.
//
// Build & run:  ./build/examples/example_scenario_gallery
#include <iostream>
#include <string>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  // 1. A grid over every registered scenario, two seeds each. No base
  //    EngineSpec: scenario documents carry their own engine config.
  RunPlan plan;
  plan.scenarios = registered_scenario_names();
  plan.seeds = {42, 7};
  std::cout << "Plan over " << plan.scenarios.size()
            << " registered scenarios:\n"
            << plan.to_json_text() << "\n\n";

  const auto show = [](const std::vector<RunResult>& results) {
    for (const auto& result : results) {
      std::cout << "  " << result.name << ": added="
                << result.instances_added << " accepted="
                << result.iterations_accepted << "/" << result.iterations_run
                << " j_bar=" << result.final_j_bar << " rows="
                << result.dataset_rows << "\n";
    }
  };

  // 2. Execute in memory (an --out directory would add spec.json /
  //    result.json artifacts per run, as frote_run does).
  auto results = execute_plan(plan, {});
  if (!results) {
    std::cerr << "plan failed: " << results.error().message << "\n";
    return 1;
  }
  show(*results);

  // 3. Each scenario also runs standalone, with the full report: rule
  //    agreement per rule, drift phases, per-group deltas, and the
  //    expected-outcome verdict.
  std::cout << "\nExpected-outcome verdicts at seed 42:\n";
  for (const auto& name : plan.scenarios) {
    auto spec = make_named_scenario(name).value();
    ScenarioRunOptions options;
    options.seed = 42;
    auto report = run_scenario(spec, options);
    if (!report) {
      std::cerr << name << " failed: " << report.error().message << "\n";
      return 1;
    }
    std::cout << "  " << name << ": expected_ok=" << report->expected_ok;
    for (const auto& failure : report->expected_failures) {
      std::cout << " [" << failure << "]";
    }
    std::cout << "\n";
  }

  // 4. Extending the gallery: a scratch scenario is a JSON document plus
  //    one register_scenario call — it immediately participates in grids.
  register_scenario("scratch_adult", R"json({
    "format": "frote.scenario_spec", "version": 1,
    "name": "scratch_adult",
    "kind": "static",
    "description": "Gallery demo: one relabel rule on a small Adult draw.",
    "generator": {"name": "adult", "size": 150, "seed": 42},
    "engine": {
      "format": "frote.engine_spec", "version": 1,
      "learner": {"name": "nb"}, "selector": "random",
      "tau": 4, "q": 0.4, "k": 3,
      "rules": ["IF hours_per_week > 50 THEN class = >50K"]
    },
    "expected": {"min_instances_added": 1}
  })json");

  RunPlan scratch;
  scratch.scenarios = {"scratch_adult"};
  scratch.seeds = {42};
  auto scratch_results = execute_plan(scratch, {});
  if (!scratch_results) {
    std::cerr << "scratch plan failed: " << scratch_results.error().message
              << "\n";
    return 1;
  }
  std::cout << "\nScratch scenario through the same grid path:\n";
  show(*scratch_results);
  return 0;
}
