// Overlay patches vs FROTE edits (§2, §5.2).
//
// Overlay (Daly et al. 2021) patches predictions at inference time; FROTE
// bakes the feedback into the model by editing its training data. This
// example reproduces the qualitative Table 2 comparison on one Mushroom-like
// run and shows the failure mode of hard-constraint patching when the rule
// diverges from the model.
//
// Build & run:  ./build/examples/example_overlay_vs_frote
#include <iostream>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  // Build the paper's protocol by hand: dataset -> initial model ->
  // explanation rules -> perturbed feedback rules that DIVERGE from the
  // model (the user disagrees with what the model learned).
  Dataset data = make_dataset(UciDataset::kMushroom, 1500);
  Rng rng(5);

  RandomForestLearner learner;
  auto explainer_model = learner.train(data);
  const auto seeds = induce_rules(data, *explainer_model);
  PerturbConfig perturb;
  perturb.pool_size = 30;
  const auto pool = generate_feedback_pool(data, seeds, perturb, rng);
  FeedbackRuleSet frs =
      sample_conflict_free_frs(pool, 3, data.schema(), rng);
  if (frs.empty()) {
    std::cout << "No conflict-free FRS found; rerun with another seed.\n";
    return 1;
  }
  std::cout << "Feedback rules (perturbed explanations):\n";
  for (const auto& rule : frs.rules()) {
    std::cout << "  " << rule.to_string(data.schema()) << "\n";
  }

  const auto cov = frs.coverage_union(data);
  auto split = coverage_split(data, cov, 0.5, 0.5, rng);
  auto model = learner.train(split.train);

  // Overlay patches.
  const OverlayModel soft(*model, frs, OverlayMode::kSoft, data.schema());
  const OverlayModel hard(*model, frs, OverlayMode::kHard, data.schema());

  // FROTE edit.
  auto engine =
      Engine::Builder().rules(frs).tau(20).q(0.5).eta(30).build().value();
  auto session = engine.open(split.train, learner).value();
  session.run();
  auto edited = std::move(session).result();

  auto report = [&](const char* name, const Model& m) {
    const auto e = evaluate_model(m, frs, split.test);
    std::cout << "  " << name << ": J-bar=" << TextTable::fmt(e.j_bar)
              << "  MRA=" << TextTable::fmt(e.mra)
              << "  outside-F1=" << TextTable::fmt(e.f1)
              << "  true-label agreement in coverage="
              << TextTable::fmt(e.mra_true) << "\n";
  };
  std::cout << "\nHeld-out comparison:\n";
  report("initial      ", *model);
  report("Overlay-Soft ", soft);
  report("Overlay-Hard ", hard);
  report("FROTE        ", *edited.model);

  std::cout << "\nNote the Overlay-Hard row: MRA is 1 by construction, but "
               "agreement with the true labels inside coverage collapses — "
               "the paper's observed failure mode when feedback diverges "
               "from the model. FROTE raises MRA while keeping the rest of "
               "the model intact, and the edit persists after retraining.\n";
  return 0;
}
