// Million rows: the FROTE loop at dataset scale on the columnar data plane.
//
// Everything the other examples do on hundreds of rows, at 1,000,000: a
// synthetic adult-style dataset is generated, moved onto chunked columnar
// storage (docs/DESIGN.md §8) with mmap-backed sealed chunks, and edited
// end-to-end through Engine/Session. At this size make_knn_index crosses
// the sharding threshold, so base-instance selection runs on the sharded
// kNN index — bit-identical to a single index, but built and queried
// across cores.
//
// The program reports the chunk geometry (sealed/mapped chunk counts) and
// the process peak RSS so the storage claim is observable: sealed chunks
// are written once and mmap-backed, so the dataset's resident footprint is
// reclaimable page cache instead of anonymous heap, and peak RSS stays
// bounded as D̂ grows.
//
// Build & run:  ./build/examples/example_million_rows
//               ./build/examples/example_million_rows --rows 100000   # quicker
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "frote/frote_api.hpp"

using namespace frote;

namespace {

/// Peak resident set size in MiB (0 when the platform has no getrusage).
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--rows" && i + 1 < argc) {
      rows = static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // 1. A million-row synthetic dataset on chunked, mmap-backed storage.
  //    8192 rows per sealed chunk ≈ 0.9 MiB of values per chunk for this
  //    schema; the staged-append tail stays a plain vector, so the FROTE
  //    loop's stage/rollback hot path is untouched by the geometry.
  Dataset train = make_dataset(UciDataset::kAdult, rows, /*seed=*/11);
  train.set_storage({/*chunk_rows=*/8192, /*mmap=*/true});
  std::cout << "dataset: " << train.size() << " rows x "
            << train.num_features() << " features, "
            << train.chunk_count() << " chunks (" << train.mapped_chunk_count()
            << " mmap-backed), generated in " << seconds_since(t0)
            << "s, peak RSS " << peak_rss_mib() << " MiB\n";

  // 2. One feedback rule over the age/education slice, as in the paper's
  //    adult experiments.
  const auto age = train.numeric_column_stats(0);
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, age.mean}, Predicate{1, Op::kGt, 11.0}}),
      /*target=*/1, train.num_classes());
  FeedbackRuleSet frs({rule});

  // 3. A scale-friendly engine: random base-instance selection and the fast
  //    logistic-regression learner keep each retrain linear in |D̂|; τ = 3
  //    bounds the run to three retrains.
  const auto learner = make_learner(LearnerKind::kLR, 42, /*fast=*/true);
  auto engine = Engine::Builder()
                    .rules(frs)
                    .tau(3)
                    .eta(256)
                    .q(0.01)
                    .build()
                    .value();

  const auto t1 = std::chrono::steady_clock::now();
  auto session = engine.open(train, *learner).value();
  std::cout << "session opened (initial train) in " << seconds_since(t1)
            << "s\n";

  // 4. Step the loop to completion, watching D̂ grow across chunk
  //    boundaries: staged rows live in the tail, accepted commits seal full
  //    chunks, rejected iterations roll the tail back.
  while (!session.finished()) {
    const auto ts = std::chrono::steady_clock::now();
    const StepReport report = session.step();
    const Dataset& d_hat = session.augmented();
    std::cout << "step " << session.progress().iterations_run << ": "
              << (report.accepted() ? "accepted" : "rejected") << ", rows "
              << d_hat.size() << ", chunks " << d_hat.chunk_count() << " ("
              << d_hat.mapped_chunk_count() << " mapped), "
              << seconds_since(ts) << "s, peak RSS " << peak_rss_mib()
              << " MiB\n";
  }

  auto result = std::move(session).result();
  std::cout << "done: " << result.instances_added
            << " synthetic instances over " << result.iterations_accepted
            << " accepted iterations; final dataset "
            << result.augmented.size() << " rows in "
            << result.augmented.chunk_count() << " chunks; total "
            << seconds_since(t0) << "s, peak RSS " << peak_rss_mib()
            << " MiB\n";
  return 0;
}
