// Rule authoring and governance: textual rules in, audited edit out (§6).
//
// A compliance officer writes policy rules as text, the system parses and
// validates them against the dataset schema, checks for conflicts between
// authors, runs the FROTE edit, and emits the audit report that the paper's
// governance discussion calls for (original data → rules → new dataset
// lineage).
//
// Build & run:  ./build/examples/example_rule_authoring
#include <iostream>
#include <memory>
#include <string>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  Dataset data = make_dataset(UciDataset::kAdult, 2000);
  const Schema& schema = data.schema();

  // 1. Policy rules arrive as text (e.g. from a review UI or a config file).
  const std::string policy_text = R"(
# Policy update 2026-06: broaden the favourable decision band.
IF age > 40 AND hours_per_week > 45 THEN class = >50K
IF education = 'advanced' THEN Y ~ [<=50K: 0.2, >50K: 0.8]
)";
  std::cout << "Parsing policy rules...\n";
  auto rules = parse_rules(policy_text, schema);
  for (const auto& rule : rules) {
    std::cout << "  parsed: " << rule.to_string(schema) << "\n";
  }

  // 2. Validate: schema errors are caught at parse time; conflicts between
  //    rules are detected and resolved before any edit happens (§3.1).
  try {
    parse_rule("IF salary > 100 THEN class = >50K", schema);
  } catch (const Error& e) {
    std::cout << "\nRejected malformed rule as expected:\n  " << e.what()
              << "\n";
  }
  FeedbackRuleSet frs(std::move(rules));
  const auto resolved = resolve_all_conflicts(frs, schema);
  std::cout << "\nConflict pairs resolved: " << resolved << "\n";

  // 3. Edit the model. The learner comes from the shared registry (the same
  //    names the CLI accepts); a progress observer logs each acceptance for
  //    the governance log alongside the structured audit record.
  const auto learner = make_named_learner("rf").value();
  auto progress = std::make_shared<CallbackObserver>();
  progress->accept = [](const Model&, std::size_t instances_added) {
    std::cout << "  accepted batch, cumulative synthetic rows: "
              << instances_added << "\n";
  };
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .tau(15)
                          .eta(40)
                          .seed(2026)
                          .observer(progress)
                          .build()
                          .value();
  std::cout << "\nRunning the edit...\n";
  auto session = engine.open(data, *learner).value();
  session.run();
  const auto result = std::move(session).result();

  // 4. Emit the audit report: the full lineage of the edit.
  const auto record = build_audit_record(data, frs, engine.config(), result);
  std::cout << "\n" << audit_report_string(record);

  // 5. The rules in the report are re-parsable — audits can be replayed.
  std::cout << "\nReplaying rules from the audit record...\n";
  for (const auto& text : record.rules) {
    const auto replayed = parse_rule(text, schema);
    std::cout << "  ok: " << replayed.to_string(schema) << "\n";
  }
  return 0;
}
