// Quickstart: edit a model with a single feedback rule.
//
// A tiny loan-style dataset where the historical policy approves applicants
// with score > 5. A new policy says applicants with score > 7 must now be
// DECLINED. We express that as one feedback rule and let FROTE edit the
// model by pre-processing the training data.
//
// Build & run:  ./build/examples/example_quickstart
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "frote/frote_api.hpp"

using namespace frote;

int main() {
  // 1. A dataset: one numeric score, one categorical segment, two classes.
  auto schema = std::make_shared<Schema>(
      std::vector<FeatureSpec>{
          FeatureSpec::numeric("score"),
          FeatureSpec::categorical("segment", {"retail", "business"}),
      },
      std::vector<std::string>{"decline", "approve"});
  Dataset train(schema);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double score = rng.uniform(0.0, 10.0);
    const double segment = rng.bernoulli(0.3) ? 1.0 : 0.0;
    train.add_row({score, segment}, score > 5.0 ? 1 : 0);
  }

  // 2. The feedback rule: IF score > 7 THEN class = decline.
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{schema->feature_index("score"), Op::kGt, 7.0}}),
      /*target=*/0, schema->num_classes());
  FeedbackRuleSet frs({rule});
  std::cout << "Feedback rule: " << rule.to_string(*schema) << "\n\n";

  // 3. Train the initial model and measure rule agreement.
  RandomForestLearner learner;
  const auto initial = learner.train(train);
  const auto before = rule_agreement(*initial, rule, train);
  std::cout << "Initial model agrees with the rule on "
            << 100.0 * before.mra << "% of " << before.covered
            << " covered training instances.\n";

  // 4. Edit the model: build an Engine (immutable, validated configuration),
  //    open a Session on the training data, and run the editing loop. FROTE
  //    relabels covered instances (the default mod strategy) and oversamples
  //    until retraining aligns with the rule.
  auto engine = Engine::Builder()
                    .rules(frs)
                    .tau(30)  // at most 30 retrains
                    .q(0.5)   // at most 50% more data
                    .build()
                    .value();
  auto session = engine.open(train, learner).value();
  session.run();  // or: while (!session.finished()) session.step();
  auto result = std::move(session).result();

  const auto after = rule_agreement(*result.model, rule, train);
  std::cout << "Edited model agrees with the rule on "
            << 100.0 * after.mra << "% of covered instances.\n";
  std::cout << "FROTE added " << result.instances_added
            << " synthetic instances over " << result.iterations_accepted
            << " accepted iterations (dataset: " << train.size() << " -> "
            << result.augmented.size() << " rows).\n";

  // 5. The edited model still behaves normally outside the rule.
  const std::vector<double> uncovered = {3.0, 0.0};
  std::cout << "\nPrediction at score=3 (outside rule): "
            << schema->class_names()[static_cast<std::size_t>(
                   result.model->predict(uncovered))]
            << "\nPrediction at score=8 (inside rule):  "
            << schema->class_names()[static_cast<std::size_t>(
                   result.model->predict(std::vector<double>{8.0, 0.0}))]
            << "\n";
  return 0;
}
