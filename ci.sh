#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (tests + benches + examples +
# tools) with -Werror on the library target, and run the full CTest suite.
# Must pass with no network access — the vendored minigtest/minibenchmark
# fallbacks cover machines without GoogleTest/google-benchmark installed.
#
# Usage:
#   ./ci.sh                 # full tier-1 verify (all labels)
#   ./ci.sh -L unit         # extra args are forwarded to ctest
#   FROTE_CI_VENDORED=1 ./ci.sh   # force the vendored runners (offline mode)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${FROTE_CI_BUILD_DIR:-build-ci}
CMAKE_ARGS=(-DFROTE_WERROR=ON)
if [[ "${FROTE_CI_VENDORED:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DFROTE_USE_SYSTEM_GTEST=OFF -DFROTE_USE_SYSTEM_BENCHMARK=OFF)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
