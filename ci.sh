#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (tests + benches + examples +
# tools) with -Werror on the library target, run the full CTest suite, smoke
# the installable CMake package from an external consumer, and record the
# bench_micro JSON baseline for perf trending.
# Must pass with no network access — the vendored minigtest/minibenchmark
# fallbacks cover machines without GoogleTest/google-benchmark installed.
#
# Usage:
#   ./ci.sh                 # full tier-1 verify (all labels)
#   ./ci.sh -L unit         # extra args are forwarded to ctest
#   FROTE_CI_VENDORED=1 ./ci.sh   # force the vendored runners (offline mode)
#   FROTE_CI_SKIP_PACKAGE=1 / FROTE_CI_SKIP_BENCH=1 /
#   FROTE_CI_SKIP_SANITIZE=1 skip the extra stages
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${FROTE_CI_BUILD_DIR:-build-ci}
CMAKE_ARGS=(-DFROTE_WERROR=ON)
if [[ "${FROTE_CI_VENDORED:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DFROTE_USE_SYSTEM_GTEST=OFF -DFROTE_USE_SYSTEM_BENCHMARK=OFF)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Determinism under parallelism: rerun the reproducibility suites with the
# thread pool engaged. Output must be bit-identical to the serial default —
# util/parallel.hpp's fixed chunk boundaries and ordered reductions are the
# guarantee, these suites are the lock.
echo "=== determinism leg: FROTE_NUM_THREADS=4 ==="
# test_workspace includes a full IP-selection session, so the leg covers the
# selector/generator thread plumbing as well as the retrain/eval paths;
# test_checkpoint/test_spec add snapshot-resume and the plan driver;
# test_incremental_learners locks update() ≡ train() and the certified
# neighborhood cache under the pool;
# test_serve drives the daemon end-to-end (its own suites re-check 1 vs 4).
FROTE_NUM_THREADS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'test_parallel|test_determinism|test_engine_api|test_workspace|test_checkpoint|test_spec|test_scenario|test_serve|test_chunks|test_sharded_knn|test_incremental_learners'

# Spec-driven leg: run a small declarative plan to completion (golden),
# then the same plan interrupted mid-run (--max-steps leaves per-run
# checkpoints behind) and resumed — the artifacts must be byte-identical.
# This is the end-to-end lock on EngineSpec resolution, the concurrent
# frote_run driver, and checkpoint/restore bit-identity.
echo "=== spec leg: frote_run plan -> interrupt -> resume -> diff ==="
SPEC_DIR="$BUILD_DIR/spec-leg"
rm -rf "$SPEC_DIR"
mkdir -p "$SPEC_DIR"
cat > "$SPEC_DIR/plan.json" <<'EOF'
{
  "format": "frote.run_plan",
  "base": {
    "format": "frote.engine_spec",
    "tau": 6, "q": 0.4, "k": 5, "seed": 7,
    "mod_strategy": "none",
    "learner": {"name": "rf", "fast": true},
    "rules": ["IF age > 45 AND education_num > 11 THEN class = >50K"],
    "dataset": {"kind": "synthetic", "name": "adult", "size": 300, "seed": 11}
  },
  "grid": {"learners": ["rf", "lr"], "seeds": [1, 2]},
  "threads": 4
}
EOF
"$BUILD_DIR/tools/frote_run" --plan "$SPEC_DIR/plan.json" --dry-run > /dev/null
"$BUILD_DIR/tools/frote_run" --plan "$SPEC_DIR/plan.json" \
  --out "$SPEC_DIR/golden" > /dev/null
"$BUILD_DIR/tools/frote_run" --plan "$SPEC_DIR/plan.json" \
  --out "$SPEC_DIR/resumed" --checkpoint-every 1 --max-steps 3 > /dev/null
"$BUILD_DIR/tools/frote_run" --plan "$SPEC_DIR/plan.json" \
  --out "$SPEC_DIR/resumed" --resume > /dev/null
diff -r "$SPEC_DIR/golden" "$SPEC_DIR/resumed"
echo "spec leg: interrupted+resumed plan is byte-identical to golden"

# Scenario leg: the committed scenario grid (all three families × 2 seeds,
# tests/goldens/scenario/plan.json) replayed through frote_run with the
# thread pool engaged, each run's result.json diffed against the committed
# golden. This locks the whole scenario path — registry resolution, the
# generator, drift snapshot/restore, per-group deltas and the
# expected-outcome bundle — to the byte, across machines and thread counts.
# Regenerate the goldens (see that directory's README) only when a PR
# changes scenario semantics on purpose.
echo "=== scenario leg: frote_run scenario grid -> diff vs committed goldens ==="
SCEN_DIR="$BUILD_DIR/scenario-leg"
rm -rf "$SCEN_DIR"
FROTE_NUM_THREADS=4 "$BUILD_DIR/tools/frote_run" \
  --plan tests/goldens/scenario/plan.json --out "$SCEN_DIR" > /dev/null
for golden in tests/goldens/scenario/*.result.json; do
  run=$(basename "$golden" .result.json)
  diff "$golden" "$SCEN_DIR/$run/result.json"
done
echo "scenario leg: all scenario results byte-identical to committed goldens"

# Serve leg: the same contract script through both frote_serve frontends.
# A stdio daemon produces the golden responses; an HTTP daemon on an
# ephemeral port (--port-file handshake) is driven with the built-in
# client and must answer byte-identically. SIGTERM then stops the HTTP
# daemon with a session still open — the clean-shutdown path must exit 0
# and leave that session checkpointed in the spool.
echo "=== serve leg: stdio golden vs HTTP drive -> diff; SIGTERM spools ==="
SERVE_DIR="$BUILD_DIR/serve-leg"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
cat > "$SERVE_DIR/script.jsonl" <<'EOF'
{"jsonrpc":"2.0","id":"create","method":"session.create","params":{"spec":{"format":"frote.engine_spec","tau":4,"q":0.4,"eta":40,"seed":7,"mod_strategy":"none","learner":{"name":"rf","fast":true},"rules":["IF age > 45 AND education_num > 11 THEN class = >50K"],"dataset":{"kind":"synthetic","name":"adult","size":300,"seed":11}}}}
{"jsonrpc":"2.0","id":"step","method":"session.step","params":{"session":"s-000001","steps":3}}
{"jsonrpc":"2.0","id":"snap","method":"session.snapshot","params":{"session":"s-000001"}}
{"jsonrpc":"2.0","id":"result","method":"session.result","params":{"session":"s-000001"}}
{"jsonrpc":"2.0","id":"bad","method":"session.result","params":{"session":"s-999999"}}
EOF
"$BUILD_DIR/tools/frote_serve" < "$SERVE_DIR/script.jsonl" \
  > "$SERVE_DIR/golden.jsonl"
"$BUILD_DIR/tools/frote_serve" --http --port-file "$SERVE_DIR/port.txt" \
  --spool "$SERVE_DIR/spool" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SERVE_DIR/port.txt" ]] && break
  sleep 0.1
done
[[ -s "$SERVE_DIR/port.txt" ]] || { echo "serve leg: daemon never published its port" >&2; exit 1; }
"$BUILD_DIR/tools/frote_serve" --drive "$(cat "$SERVE_DIR/port.txt")" \
  --script "$SERVE_DIR/script.jsonl" > "$SERVE_DIR/http.jsonl"
diff "$SERVE_DIR/golden.jsonl" "$SERVE_DIR/http.jsonl"
# The script leaves s-000001 open on purpose: SIGTERM must spool it.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
test -s "$SERVE_DIR/spool/s-000001.checkpoint.json"
echo "serve leg: HTTP responses byte-identical to stdio; SIGTERM checkpointed the open session"

# Chaos leg: the kill-recover sweep (label "chaos" — test_chaos_serve
# SIGKILLs daemons at every registered fsio/pool fault point and asserts
# recovery lands on an adjacent checkpoint, never a torn third state).
# Also part of the full ctest run above; re-run explicitly so a chaos
# failure is unmissable in the log. The FROTE_FAULTS smoke then exercises
# the env-var injection path: a daemon with a failing spool fsync must
# absorb the failure (spool_failures, not a crash) and answer the contract
# script byte-identically to the fault-free golden.
echo "=== chaos leg: ctest -L chaos + FROTE_FAULTS smoke ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L chaos
FROTE_FAULTS="fsio.fsync:nth=3" "$BUILD_DIR/tools/frote_serve" \
  --spool "$SERVE_DIR/faults-spool" --evict-every-request \
  < "$SERVE_DIR/script.jsonl" > "$SERVE_DIR/faults.jsonl"
diff "$SERVE_DIR/golden.jsonl" "$SERVE_DIR/faults.jsonl"
echo "chaos leg: injected spool failure absorbed; responses byte-identical"

# Sanitizer leg: rebuild with AddressSanitizer + UBSan (-DFROTE_SANITIZE=ON,
# separate build dir) and rerun the unit + chaos labels. The chunked data
# plane and the sharded index move row storage behind raw pointers and
# shared mmap'd chunks — exactly the kind of code ASan catches regressions
# in that functional tests cannot — and the chaos sweep's SIGKILL/recover
# cycles run the spool validation and quarantine paths under the sanitizer
# too. Benches and examples are skipped in this build; tools stay on
# because test_serve / test_chaos_serve drive the real daemon. The
# FROTE_FAULTS smoke at the end runs the ASan daemon through an injected
# spool failure: the error-unwinding path (throw through evict, TmpGuard
# cleanup) is where leaks and use-after-frees hide.
if [[ "${FROTE_CI_SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "=== sanitizer leg: ASan+UBSan ctest -L unit|chaos ==="
  SAN_DIR="$BUILD_DIR-asan"
  cmake -B "$SAN_DIR" -S . "${CMAKE_ARGS[@]}" -DFROTE_SANITIZE=ON \
    -DFROTE_BUILD_BENCHES=OFF -DFROTE_BUILD_EXAMPLES=OFF > /dev/null
  cmake --build "$SAN_DIR" -j "$(nproc)"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)" -L 'unit|chaos'
  echo "=== sanitizer leg: FROTE_FAULTS smoke ==="
  FROTE_FAULTS="fsio.fsync:nth=3" "$SAN_DIR/tools/frote_serve" \
    --spool "$SAN_DIR/faults-spool" --evict-every-request \
    < "$SERVE_DIR/script.jsonl" > /dev/null
fi

# Package smoke: install to a scratch prefix, then build and run a 10-line
# external consumer that only does find_package(frote) + frote_api.hpp.
if [[ "${FROTE_CI_SKIP_PACKAGE:-0}" != "1" ]]; then
  echo "=== package smoke: find_package(frote) from an external consumer ==="
  case "$BUILD_DIR" in
    /*) PACKAGE_PREFIX="$BUILD_DIR/package-prefix" ;;
    *) PACKAGE_PREFIX="$PWD/$BUILD_DIR/package-prefix" ;;
  esac
  cmake --install "$BUILD_DIR" --prefix "$PACKAGE_PREFIX" > /dev/null
  cmake -B "$BUILD_DIR/package-smoke" -S cmake/package_smoke \
    -DCMAKE_PREFIX_PATH="$PACKAGE_PREFIX" > /dev/null
  cmake --build "$BUILD_DIR/package-smoke" -j "$(nproc)"
  "$BUILD_DIR/package-smoke/frote_smoke"
fi

# Perf trajectory: refresh the bench_micro JSON baseline (build-local copy;
# commit it to BENCH_micro.json when a perf PR moves the numbers on purpose)
# and diff it against the committed baseline. The compare is non-strict —
# shared runners are noisy, so >25% regressions warn loudly instead of
# failing; investigate any "<< REGRESSION" line before merging.
if [[ "${FROTE_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "=== bench baseline: bench_micro -> $BUILD_DIR/BENCH_micro.json ==="
  # The threads sweep re-times the thread-sensitive hot paths at 1/2/4
  # workers as <name>/threads:n rows, so the baseline diff also covers the
  # multicore scaling table the committed BENCH_micro.json records.
  FROTE_BENCH_THREADS="${FROTE_BENCH_THREADS:-1 2 4}" \
    bench/dump_bench_json.sh "$BUILD_DIR" "$BUILD_DIR/BENCH_micro.json"
  if command -v python3 > /dev/null; then
    echo "=== bench compare: committed BENCH_micro.json vs fresh run ==="
    python3 tools/bench_compare.py BENCH_micro.json "$BUILD_DIR/BENCH_micro.json"
    if [[ "${FROTE_BENCH_STRICT:-0}" == "1" ]]; then
      # Opt-in hard gate over the load-bearing loop benchmarks. The default
      # leg above stays warn-only: shared runners are too noisy to gate the
      # whole table, but a >25% regression on the FROTE iteration, IP
      # selection, the objective evaluation, the accept path (session step,
      # incremental model update, snapshot restore), or the serving loop is
      # a perf bug, not noise.
      echo "=== bench compare (strict): curated hot-path subset ==="
      python3 tools/bench_compare.py --strict \
        --only BM_FroteIteration,BM_IpSelection,BM_ObjectiveEval,BM_SessionStepAccept,BM_SnapshotRestore,BM_ModelUpdate,BM_ServeRequest,BM_ServeEvictRestore \
        BENCH_micro.json "$BUILD_DIR/BENCH_micro.json"
    fi
  fi
fi
