#!/usr/bin/env bash
# Tier-1 verify: configure, build everything (tests + benches + examples +
# tools) with -Werror on the library target, run the full CTest suite, smoke
# the installable CMake package from an external consumer, and record the
# bench_micro JSON baseline for perf trending.
# Must pass with no network access — the vendored minigtest/minibenchmark
# fallbacks cover machines without GoogleTest/google-benchmark installed.
#
# Usage:
#   ./ci.sh                 # full tier-1 verify (all labels)
#   ./ci.sh -L unit         # extra args are forwarded to ctest
#   FROTE_CI_VENDORED=1 ./ci.sh   # force the vendored runners (offline mode)
#   FROTE_CI_SKIP_PACKAGE=1 / FROTE_CI_SKIP_BENCH=1 skip the extra stages
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${FROTE_CI_BUILD_DIR:-build-ci}
CMAKE_ARGS=(-DFROTE_WERROR=ON)
if [[ "${FROTE_CI_VENDORED:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DFROTE_USE_SYSTEM_GTEST=OFF -DFROTE_USE_SYSTEM_BENCHMARK=OFF)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Package smoke: install to a scratch prefix, then build and run a 10-line
# external consumer that only does find_package(frote) + frote_api.hpp.
if [[ "${FROTE_CI_SKIP_PACKAGE:-0}" != "1" ]]; then
  echo "=== package smoke: find_package(frote) from an external consumer ==="
  case "$BUILD_DIR" in
    /*) PACKAGE_PREFIX="$BUILD_DIR/package-prefix" ;;
    *) PACKAGE_PREFIX="$PWD/$BUILD_DIR/package-prefix" ;;
  esac
  cmake --install "$BUILD_DIR" --prefix "$PACKAGE_PREFIX" > /dev/null
  cmake -B "$BUILD_DIR/package-smoke" -S cmake/package_smoke \
    -DCMAKE_PREFIX_PATH="$PACKAGE_PREFIX" > /dev/null
  cmake --build "$BUILD_DIR/package-smoke" -j "$(nproc)"
  "$BUILD_DIR/package-smoke/frote_smoke"
fi

# Perf trajectory: refresh the bench_micro JSON baseline (build-local copy;
# commit it to BENCH_micro.json when a perf PR moves the numbers on purpose).
if [[ "${FROTE_CI_SKIP_BENCH:-0}" != "1" ]]; then
  echo "=== bench baseline: bench_micro -> $BUILD_DIR/BENCH_micro.json ==="
  bench/dump_bench_json.sh "$BUILD_DIR" "$BUILD_DIR/BENCH_micro.json"
fi
