// Test harness for the frote_serve daemon: spawn the real binary, pipe
// line-delimited JSON-RPC through its stdio frontend, and read the
// response lines back. Deliberately gtest-free (failures throw
// std::runtime_error) so bench/bench_micro.cpp can reuse it for the serve
// round-trip benchmarks.
//
// The binary path arrives via the FROTE_SERVE_BINARY compile definition
// (tests/CMakeLists.txt / bench/CMakeLists.txt point it at the built
// target), so the harness always drives the binary from the same build
// tree as the test.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <csignal>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "frote/core/spec.hpp"
#include "frote/data/csv.hpp"
#include "frote/util/json.hpp"
#include "test_util.hpp"

namespace frote::testing {

/// A running frote_serve child. Lockstep use: send_line() then
/// read_line(), or request() for both. Destruction reaps the child
/// (SIGKILL if it has not exited).
class ServeProcess {
 public:
  struct Options {
    std::vector<std::string> args;  // flags after argv[0]
    /// Environment overrides applied in the child before exec
    /// (e.g. {"FROTE_NUM_THREADS", "4"}).
    std::vector<std::pair<std::string, std::string>> env;
  };

  explicit ServeProcess(const Options& options = {}) {
    // Chaos tests write to daemons that may be SIGKILLed mid-request; a
    // broken pipe must surface as EPIPE on the write, not kill the test.
    signal(SIGPIPE, SIG_IGN);
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) {
      throw std::runtime_error("serve_harness: pipe failed");
    }
    pid_ = fork();
    if (pid_ < 0) throw std::runtime_error("serve_harness: fork failed");
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      for (const auto& [key, value] : options.env) {
        setenv(key.c_str(), value.c_str(), 1);
      }
      std::vector<char*> argv;
      std::string binary = FROTE_SERVE_BINARY;
      argv.push_back(binary.data());
      std::vector<std::string> args = options.args;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed; the parent sees it as a dead child
    }
    close(to_child[0]);
    close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ServeProcess(const ServeProcess&) = delete;
  ServeProcess& operator=(const ServeProcess&) = delete;

  ~ServeProcess() {
    close_stdin();
    if (stdout_fd_ >= 0) close(stdout_fd_);
    if (pid_ > 0 && !reaped_) {
      kill(pid_, SIGKILL);
      int status = 0;
      waitpid(pid_, &status, 0);
    }
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t written = 0;
    while (written < framed.size()) {
      const ssize_t n =
          write(stdin_fd_, framed.data() + written, framed.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("serve_harness: write to daemon failed (" +
                                 std::string(std::strerror(errno)) + ")");
      }
      written += static_cast<std::size_t>(n);
    }
  }

  /// Next response line (without the newline). Blocks; throws if the
  /// daemon closes stdout first (i.e. the daemon died).
  std::string read_line() {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = read(stdout_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("serve_harness: read from daemon failed");
      }
      if (n == 0) {
        throw std::runtime_error(
            "serve_harness: daemon closed stdout (exited?) with no response");
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Lockstep round-trip.
  std::string request(const std::string& line) {
    send_line(line);
    return read_line();
  }

  /// Crash-tolerant round-trip for the kill-recover chaos suite: nullopt
  /// when the daemon died mid-request (broken pipe on send, or EOF before
  /// a complete response line) instead of throwing. A daemon SIGKILLed at
  /// a fault point is an *expected* outcome there, not a harness error.
  std::optional<std::string> request_if_alive(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t written = 0;
    while (written < framed.size()) {
      const ssize_t n =
          write(stdin_fd_, framed.data() + written, framed.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      written += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string out = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return out;
      }
      char chunk[4096];
      const ssize_t n = read(stdout_fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (n == 0) return std::nullopt;  // daemon died before responding
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Close the daemon's stdin: EOF is the clean-shutdown signal for the
  /// stdio frontend (live sessions get spooled before exit).
  void close_stdin() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  void terminate() { kill(pid_, SIGTERM); }

  /// Reap the child; returns its exit code (or -signal when killed).
  int wait() {
    int status = 0;
    waitpid(pid_, &status, 0);
    reaped_ = true;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
  }

  /// EOF + reap: the clean-shutdown path, asserting exit 0.
  int close_and_wait() {
    close_stdin();
    return wait();
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  std::string buffer_;
};

/// Write the threshold_dataset scenario to `path` so served specs can
/// reference it (the daemon only accepts dataset *references*).
inline void write_threshold_csv(const std::string& path) {
  save_csv(threshold_dataset(150, 5.0, 11), path);
}

/// The tests' serve spec: the test_checkpoint scenario (accept and reject
/// steps both occur) pointed at a CSV on disk.
inline EngineSpec serve_spec(const std::string& csv_path,
                             const std::string& selector = "random") {
  EngineSpec spec;
  spec.tau = 6;
  spec.q = 1.5;
  spec.eta = 60;
  spec.k = 5;
  spec.seed = 99;
  spec.mod_strategy = "none";
  spec.selector = selector;
  spec.learner = "rf";
  spec.learner_fast = true;
  spec.rules = {"IF x > 7 THEN class = neg"};
  DatasetSpec dataset;
  dataset.kind = "csv";
  dataset.path = csv_path;
  spec.dataset = dataset;
  return spec;
}

/// One compact JSON-RPC 2.0 request line.
inline std::string rpc_line(JsonValue id, const std::string& method,
                            JsonValue params = JsonValue()) {
  JsonValue request = JsonValue::object();
  request.set("jsonrpc", "2.0");
  request.set("id", std::move(id));
  request.set("method", method);
  if (!params.is_null()) request.set("params", std::move(params));
  return json_dump(request, 0);
}

inline std::string create_line(JsonValue id, const EngineSpec& spec) {
  JsonValue params = JsonValue::object();
  params.set("spec", spec.to_json());
  return rpc_line(std::move(id), "session.create", std::move(params));
}

inline std::string step_line(JsonValue id, const std::string& session,
                             std::size_t steps = 1) {
  JsonValue params = JsonValue::object();
  params.set("session", session);
  params.set("steps", steps);
  return rpc_line(std::move(id), "session.step", std::move(params));
}

inline std::string session_line(JsonValue id, const std::string& method,
                                const std::string& session) {
  JsonValue params = JsonValue::object();
  params.set("session", session);
  return rpc_line(std::move(id), method, std::move(params));
}

/// Parse a response line and return the envelope (throws on non-JSON —
/// the daemon must never emit an unparsable response).
inline JsonValue parse_response(const std::string& line) {
  auto parsed = json_parse(line);
  if (!parsed) {
    throw std::runtime_error("serve_harness: unparsable response: " + line);
  }
  return *parsed;
}

}  // namespace frote::testing
