#include "frote/data/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "frote/ml/random_forest.hpp"

namespace frote {
namespace {

/// Every generated dataset must match its Table 1 row exactly.
class GeneratorSchema : public ::testing::TestWithParam<UciDataset> {};

TEST_P(GeneratorSchema, MatchesTable1) {
  const auto& info = dataset_info(GetParam());
  const auto data = make_dataset(GetParam(), 400);
  EXPECT_EQ(data.size(), 400u);
  EXPECT_EQ(data.schema().num_numeric(), info.num_numeric);
  EXPECT_EQ(data.schema().num_categorical(), info.num_categorical);
  EXPECT_EQ(data.num_classes(), info.num_classes);
  EXPECT_EQ(data.num_features(), info.num_numeric + info.num_categorical);
}

TEST_P(GeneratorSchema, DeterministicForSeed) {
  const auto a = make_dataset(GetParam(), 150, 42);
  const auto b = make_dataset(GetParam(), 150, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (std::size_t f = 0; f < a.num_features(); ++f) {
      EXPECT_DOUBLE_EQ(a.row(i)[f], b.row(i)[f]);
    }
  }
}

TEST_P(GeneratorSchema, SeedChangesData) {
  const auto a = make_dataset(GetParam(), 150, 1);
  const auto b = make_dataset(GetParam(), 150, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    if (a.label(i) != b.label(i)) any_diff = true;
    for (std::size_t f = 0; f < a.num_features(); ++f) {
      if (a.row(i)[f] != b.row(i)[f]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(GeneratorSchema, AllClassesPresent) {
  const auto data = make_dataset(GetParam(), 2000);
  const auto counts = data.class_counts();
  std::size_t present = 0;
  for (auto c : counts) present += c > 0 ? 1 : 0;
  // Wine's extreme quality classes (paper proportions < 0.5%) may legally be
  // empty at n = 2000; all others must appear.
  if (GetParam() == UciDataset::kWineQuality) {
    EXPECT_GE(present, 4u);
  } else {
    EXPECT_EQ(present, counts.size());
  }
}

TEST_P(GeneratorSchema, StructureIsLearnable) {
  // A forest must beat the majority-class baseline by a clear margin,
  // otherwise the dataset carries no learnable signal for FROTE to edit.
  const auto data = make_dataset(GetParam(), 1500);
  RandomForestConfig config;
  config.num_trees = 20;
  config.max_depth = 6;
  const auto model = RandomForestLearner(config).train(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += model->predict(data.row(i)) == data.label(i) ? 1 : 0;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(data.size());
  const auto counts = data.class_counts();
  const double majority =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(data.size());
  EXPECT_GT(accuracy, std::min(majority + 0.05, 0.98))
      << dataset_info(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorSchema,
    ::testing::Values(UciDataset::kAdult, UciDataset::kBreastCancer,
                      UciDataset::kNursery, UciDataset::kWineQuality,
                      UciDataset::kMushroom, UciDataset::kContraceptive,
                      UciDataset::kCar, UciDataset::kSplice),
    [](const auto& info) {
      std::string name = dataset_info(info.param).name;
      std::string out;
      for (char ch : name) {
        if (std::isalnum(static_cast<unsigned char>(ch))) out.push_back(ch);
      }
      return out;
    });

TEST(Generators, DefaultSizeIsPaperSize) {
  const auto data = make_dataset(UciDataset::kBreastCancer);
  EXPECT_EQ(data.size(), dataset_info(UciDataset::kBreastCancer).paper_size);
}

TEST(Generators, AdultClassImbalanceRoughlyMatches) {
  const auto data = make_dataset(UciDataset::kAdult, 4000);
  const auto counts = data.class_counts();
  const double frac_low = static_cast<double>(counts[0]) / 4000.0;
  EXPECT_NEAR(frac_low, 0.75, 0.08);  // Adult is ~75/25
}

TEST(Generators, LookupByName) {
  EXPECT_EQ(dataset_by_name("Adult"), UciDataset::kAdult);
  EXPECT_EQ(dataset_by_name("Wine Quality (white)"),
            UciDataset::kWineQuality);
  EXPECT_THROW(dataset_by_name("nope"), Error);
}

TEST(Generators, BinaryListMatchesPaper) {
  const auto binaries = binary_datasets();
  ASSERT_EQ(binaries.size(), 3u);
  for (auto id : binaries) {
    EXPECT_EQ(dataset_info(id).num_classes, 2u);
  }
}

TEST(Generators, AllDatasetsTableHasEightRows) {
  EXPECT_EQ(all_datasets().size(), 8u);
}

}  // namespace
}  // namespace frote
