// Incremental learner contract (docs/DESIGN.md §10): the accept path
// retrains through Learner::update(previous, D′, trained_rows), and for the
// exact learners the result must be BIT-identical to train(D′) — across all
// three mod strategies, thread counts 1 and 4, accept→rollback→accept
// sequences, and snapshot-mid-sequence restores (cold and warm). The
// workspace's certified neighborhood cache rides the same contract: its
// lists must equal fresh index queries bitwise while issuing strictly fewer
// real queries after an accepted append. ci.sh reruns this suite under
// FROTE_NUM_THREADS=4.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/registry.hpp"
#include "frote/core/workspace.hpp"
#include "frote/knn/knn.hpp"
#include "frote/ml/gbdt.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/random_forest.hpp"
#include "frote/util/parallel.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

/// Wraps an exact learner but hides its update() override, so a session
/// retrains from scratch on every candidate: the inherited default update
/// IS train(D′), which is exactly the reference the incremental path must
/// reproduce bit-for-bit.
class FromScratchLearner : public Learner {
 public:
  explicit FromScratchLearner(const Learner& inner) : inner_(inner) {}
  std::unique_ptr<Model> train(const Dataset& data) const override {
    return inner_.train(data);
  }
  std::string name() const override { return inner_.name(); }

 private:
  const Learner& inner_;
};

Engine make_engine(ModStrategy mod, std::uint64_t seed = 99) {
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  return Engine::Builder()
      .rules(frs)
      .tau(6)
      .q(0.4)
      .k(5)
      .eta(10)
      .seed(seed)
      .selection(SelectionStrategy::kIp)
      .mod_strategy(mod)
      .build()
      .value();
}

RandomForestLearner small_forest() {
  RandomForestConfig config;
  config.num_trees = 12;
  config.max_depth = 3;
  config.seed = 5;
  return RandomForestLearner(config);
}

// ---------------------------------------------------------------------------
// Learner-level exactness: update() ≡ train() on a grown dataset.

TEST(LearnerUpdate, RandomForestUpdateBitIdenticalToTrain) {
  auto data = testing::threshold_dataset(140, 5.0, 11);
  const RandomForestLearner rf = small_forest();
  const std::size_t trained_rows = data.size();
  const auto previous = rf.train(data);

  Dataset batch(data.schema_ptr());
  Rng rng(23);
  for (std::size_t i = 0; i < 17; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    batch.add_row({x, rng.uniform(0.0, 10.0), static_cast<double>(i % 3)},
                  x > 5.0 ? 1 : 0);
  }
  data.append(batch);

  const auto incremental = rf.update(*previous, data, trained_rows);
  const auto scratch = rf.train(data);
  const auto p_inc = incremental->predict_proba_all(data);
  const auto p_scr = scratch->predict_proba_all(data);
  ASSERT_EQ(p_inc.size(), p_scr.size());
  for (std::size_t i = 0; i < p_inc.size(); ++i) {
    EXPECT_EQ(p_inc[i], p_scr[i]) << "probability " << i;
  }
}

TEST(LearnerUpdate, WarmVariantsAreOptInRegistryNames) {
  // The approximate warm starts never hide behind the exact names: they are
  // separate registry entries that resolve, train, and update usably.
  for (const char* name : {"lr_warm", "gbdt_additive"}) {
    auto data = testing::threshold_dataset(120, 5.0, 7);
    LearnerSpec spec;
    spec.fast = true;
    auto learner = make_named_learner(name, spec);
    ASSERT_TRUE(learner.has_value()) << name;
    const auto cold = (*learner)->train(data);
    ASSERT_EQ(cold->num_classes(), data.num_classes()) << name;
    const std::size_t trained_rows = data.size();
    Dataset batch(data.schema_ptr());
    batch.add_row({6.0, 4.0, 0.0}, 1);
    batch.add_row({3.0, 2.0, 1.0}, 0);
    data.append(batch);
    const auto warm = (*learner)->update(*cold, data, trained_rows);
    ASSERT_EQ(warm->num_classes(), data.num_classes()) << name;
    const auto predicted = warm->predict_all(data);
    EXPECT_EQ(predicted.size(), data.size()) << name;
  }
}

// ---------------------------------------------------------------------------
// Session-level exactness: the update()-routed accept path must be
// bit-identical to the from-scratch reference for every mod strategy at
// thread counts 1 and 4.

TEST(IncrementalSessions, BitIdenticalToFromScratchAcrossStrategiesAndThreads) {
  const RandomForestLearner rf = small_forest();
  const FromScratchLearner reference(rf);
  const ModStrategy strategies[] = {ModStrategy::kNone, ModStrategy::kRelabel,
                                    ModStrategy::kDrop};
  bool any_accepted = false;
  for (ModStrategy mod : strategies) {
    for (int threads : {1, 4}) {
      set_default_threads(threads);
      const auto data = testing::threshold_dataset(150, 5.0, 11);
      const Engine engine = make_engine(mod);
      auto fast = engine.open(data, rf).value();
      auto slow = engine.open(data, reference).value();
      fast.run();
      slow.run();
      const SessionProgress pf = fast.progress();
      const SessionProgress ps = slow.progress();
      EXPECT_EQ(pf.iterations_run, ps.iterations_run);
      EXPECT_EQ(pf.iterations_accepted, ps.iterations_accepted);
      EXPECT_EQ(pf.instances_added, ps.instances_added);
      EXPECT_EQ(fast.best_j_hat_bar(), slow.best_j_hat_bar());
      // Every candidate retrain went through update() on the fast session.
      EXPECT_EQ(fast.model_updates(), pf.iterations_run);
      any_accepted = any_accepted || pf.iterations_accepted > 0;
      expect_bit_identical(fast.augmented(), slow.augmented());
    }
  }
  set_default_threads(0);
  // The comparison must exercise the accept path, or it proves nothing.
  EXPECT_TRUE(any_accepted);
}

TEST(IncrementalSessions, AcceptRollbackAcceptStepSequencesMatch) {
  // Step-by-step lockstep comparison: after an accepted batch the next
  // candidate trains on a grown prefix, after a rejection the staged rows
  // rolled back — the update() path must track both transitions exactly.
  const RandomForestLearner rf = small_forest();
  const FromScratchLearner reference(rf);
  const auto data = testing::threshold_dataset(150, 5.0, 11);
  const Engine engine = make_engine(ModStrategy::kNone);
  auto fast = engine.open(data, rf).value();
  auto slow = engine.open(data, reference).value();
  bool saw_accept = false;
  bool saw_reject = false;
  for (std::size_t i = 0; i < 8 && !fast.finished(); ++i) {
    const StepReport a = fast.step();
    const StepReport b = slow.step();
    ASSERT_EQ(static_cast<int>(a.status), static_cast<int>(b.status))
        << "step " << i;
    EXPECT_EQ(a.batch_size, b.batch_size) << "step " << i;
    EXPECT_EQ(a.candidate_j_bar, b.candidate_j_bar) << "step " << i;
    EXPECT_EQ(a.best_j_bar, b.best_j_bar) << "step " << i;
    saw_accept = saw_accept || a.status == StepStatus::kAccepted;
    saw_reject = saw_reject || a.status == StepStatus::kRejected;
    expect_bit_identical(fast.augmented(), slow.augmented());
  }
  // The scenario must cover both gate outcomes, or the lockstep comparison
  // never sees a rollback between two accepts.
  EXPECT_TRUE(saw_accept);
  EXPECT_TRUE(saw_reject);
}

TEST(IncrementalSessions, SnapshotMidSequenceRestoresBitIdentical) {
  const RandomForestLearner rf = small_forest();
  const auto data = testing::threshold_dataset(150, 5.0, 11);
  const Engine engine = make_engine(ModStrategy::kNone);

  auto uninterrupted = engine.open(data, rf).value();
  uninterrupted.run();

  // Interrupt mid-sequence (after some accepts/rejects), then restore twice
  // from the same checkpoint: cold (model retrained from D̂) and warm (the
  // interrupted session's own model handed back via SessionRestoreOptions).
  auto interrupted = engine.open(data, rf).value();
  for (int i = 0; i < 3 && !interrupted.finished(); ++i) interrupted.step();
  const SessionCheckpoint ckpt = interrupted.snapshot();

  auto cold = Session::restore(engine, rf, ckpt).value();
  cold.run();
  expect_bit_identical(uninterrupted.augmented(), cold.augmented());
  EXPECT_EQ(uninterrupted.best_j_hat_bar(), cold.best_j_hat_bar());

  SessionRestoreOptions options;
  options.warm_model_version = interrupted.model_version();
  options.warm_model = std::move(interrupted).release_model();
  auto warm = Session::restore(engine, rf, ckpt, std::move(options)).value();
  warm.run();
  expect_bit_identical(uninterrupted.augmented(), warm.augmented());
  EXPECT_EQ(uninterrupted.best_j_hat_bar(), warm.best_j_hat_bar());

  // A v1-style checkpoint (no digest) still restores through the full
  // verification path and stays bit-identical.
  SessionCheckpoint undigested = ckpt;
  undigested.dataset_digest = 0;
  auto verified = Session::restore(engine, rf, undigested).value();
  verified.run();
  expect_bit_identical(uninterrupted.augmented(), verified.augmented());
}

TEST(IncrementalSessions, TamperedCheckpointDigestFallsBackToVerification) {
  // A digest that doesn't match the payload must not be trusted: restore
  // falls back to the recompute-and-cross-check path, which rejects a
  // checkpoint whose recorded best Ĵ̄ disagrees with its own dataset.
  const RandomForestLearner rf = small_forest();
  const auto data = testing::threshold_dataset(150, 5.0, 11);
  const Engine engine = make_engine(ModStrategy::kNone);
  auto session = engine.open(data, rf).value();
  for (int i = 0; i < 2 && !session.finished(); ++i) session.step();
  SessionCheckpoint ckpt = session.snapshot();
  ckpt.best_j_bar += 0.25;  // tamper: digest no longer matches the fields
  const auto restored = Session::restore(engine, rf, ckpt);
  EXPECT_FALSE(restored.has_value());
}

// ---------------------------------------------------------------------------
// The certified incremental neighborhood cache.

TEST(WorkspaceNeighborhoods, RefreshMatchesFreshIndexQueriesBitwise) {
  auto data = testing::threshold_dataset(160, 5.0, 9);
  SessionWorkspace ws(/*threads=*/1);
  ws.bind(data);
  const std::size_t k = 5;
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < data.size(); i += 3) rows.push_back(i);

  const auto verify = [&](const std::vector<const RowNeighborhood*>& hoods) {
    // From-scratch reference: a fresh fit + fresh index over today's D̂.
    // The contract covers the first min(k+1, n) entries; the list may hold
    // extra candidate entries past that (certification headroom).
    const MixedDistance distance = MixedDistance::fit(data);
    const auto knn = make_knn_index(data, distance, {}, {});
    const std::size_t cap = std::min(k + 1, data.size());
    std::vector<Neighbor> expected;
    for (std::size_t s = 0; s < rows.size(); ++s) {
      knn->query_squared(data.row(rows[s]), cap, expected);
      const auto& list = hoods[s]->list;
      ASSERT_GE(list.size(), expected.size()) << "row " << rows[s];
      for (std::size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(list[e].index, knn->dataset_index(expected[e].index))
            << "row " << rows[s] << " rank " << e;
        EXPECT_EQ(list[e].distance, expected[e].distance)
            << "row " << rows[s] << " rank " << e;
      }
    }
  };

  const std::uint64_t cold_queries = ws.neighborhood_queries();
  verify(ws.neighborhoods(rows, k));
  EXPECT_EQ(ws.neighborhood_queries() - cold_queries, rows.size());

  // Re-request under the same snapshot: pure cache hits, no new queries.
  const std::uint64_t repeat_queries = ws.neighborhood_queries();
  verify(ws.neighborhoods(rows, k));
  EXPECT_EQ(ws.neighborhood_queries(), repeat_queries);

  // Commit a small append (an accepted batch): the certified refresh must
  // answer most rows from (kept list ∪ appended rows) — strictly fewer real
  // queries than a cold pass — and still match the fresh index bitwise.
  Dataset batch(data.schema_ptr());
  Rng rng(31);
  for (std::size_t i = 0; i < 8; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    batch.add_row({x, rng.uniform(0.0, 10.0), static_cast<double>(i % 3)},
                  x > 5.0 ? 1 : 0);
  }
  data.stage_rows(batch);
  data.commit();
  ws.bind(data);

  const std::uint64_t warm_queries = ws.neighborhood_queries();
  verify(ws.neighborhoods(rows, k));
  EXPECT_LT(ws.neighborhood_queries() - warm_queries, rows.size());
}

}  // namespace
}  // namespace frote
