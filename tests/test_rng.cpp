#include "frote/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace frote {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(7);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsAllZeroWeights) {
  Rng rng(14);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(16);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(17);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(18);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, DeriveSeedProducesDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) {
    seeds.insert(derive_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

}  // namespace
}  // namespace frote
