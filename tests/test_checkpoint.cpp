// core/checkpoint: a session snapshotted at ANY iteration k and restored
// (through the JSON text round-trip) must finish bit-identically to the
// uninterrupted run — augmented dataset, trace, and counters — for every
// selector and thread count. This extends tests/test_determinism.cpp's
// seed → bit-identical contract across a process boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/runplan.hpp"
#include "frote/core/spec.hpp"
#include "frote/util/fsio.hpp"
#include "frote/util/parallel.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

void expect_same_trace(const std::vector<ProgressPoint>& a,
                       const std::vector<ProgressPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iteration, b[i].iteration) << "trace point " << i;
    EXPECT_EQ(a[i].instances_added, b[i].instances_added) << "point " << i;
    EXPECT_EQ(a[i].train_j_hat_bar, b[i].train_j_hat_bar) << "point " << i;
    EXPECT_EQ(a[i].accepted, b[i].accepted) << "point " << i;
  }
}

EngineSpec checkpoint_spec(const std::string& selector) {
  EngineSpec spec;
  // η = 60 lets a batch outvote the ~45 conflicting rows inside the rule
  // region, so the depth-3 RF actually flips: the trace mixes accepted and
  // rejected steps — both paths must survive the checkpoint.
  spec.tau = 6;
  spec.q = 1.5;
  spec.eta = 60;
  spec.k = 5;
  spec.seed = 99;
  spec.mod_strategy = "none";  // rule-conflicting labels stay: RNG path runs
  spec.selector = selector;
  spec.learner = "rf";
  spec.learner_fast = true;
  spec.rules = {"IF x > 7 THEN class = neg"};
  return spec;
}

struct GoldenRun {
  Dataset augmented;
  std::vector<ProgressPoint> trace;
  std::size_t instances_added = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
};

/// Snapshot-at-every-k: for each k, step a session k times, checkpoint it
/// through the JSON text round-trip, restore, finish, and compare against
/// the uninterrupted golden run.
void check_resume_equals_uninterrupted(const std::string& selector) {
  const auto schema = testing::mixed_schema();
  const auto data = testing::threshold_dataset(150, 5.0, 11);
  const EngineSpec spec = checkpoint_spec(selector);
  const auto engine =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  const auto learner = make_spec_learner(spec).value();

  GoldenRun golden = [&] {
    auto session = engine.open(data, *learner).value();
    session.run();
    GoldenRun run;
    run.trace = session.trace();
    auto result = std::move(session).result();
    run.augmented = std::move(result.augmented);
    run.instances_added = result.instances_added;
    run.iterations_run = result.iterations_run;
    run.iterations_accepted = result.iterations_accepted;
    return run;
  }();
  ASSERT_GT(golden.instances_added, 0u) << "scenario must actually augment";

  for (std::size_t k = 0; k <= golden.iterations_run; ++k) {
    auto session = engine.open(data, *learner).value();
    for (std::size_t step = 0; step < k; ++step) session.step();

    const std::string text = session.snapshot().to_json_text();
    auto ckpt = SessionCheckpoint::parse(text);
    ASSERT_TRUE(ckpt.has_value()) << "k=" << k << ": "
                                  << ckpt.error().message;
    // The checkpoint itself round-trips bit-exactly through JSON.
    EXPECT_EQ(ckpt->to_json_text(), text) << "k=" << k;

    auto restored = Session::restore(engine, *learner, *ckpt);
    ASSERT_TRUE(restored.has_value()) << "k=" << k << ": "
                                      << restored.error().message;
    restored->run();
    EXPECT_EQ(restored->trace().size(), golden.trace.size()) << "k=" << k;
    expect_same_trace(restored->trace(), golden.trace);
    auto result = std::move(*restored).result();
    EXPECT_EQ(result.instances_added, golden.instances_added) << "k=" << k;
    EXPECT_EQ(result.iterations_run, golden.iterations_run) << "k=" << k;
    EXPECT_EQ(result.iterations_accepted, golden.iterations_accepted)
        << "k=" << k;
    expect_bit_identical(result.augmented, golden.augmented);
  }
}

TEST(Checkpoint, ResumeEqualsUninterruptedRandomSelector) {
  check_resume_equals_uninterrupted("random");
}

TEST(Checkpoint, ResumeEqualsUninterruptedIpSelector) {
  // IP selection leans hardest on the workspace caches (borderline weights,
  // prediction cache, kNN index) — all rebuilt, none serialised.
  check_resume_equals_uninterrupted("ip");
}

TEST(Checkpoint, ResumeEqualsUninterruptedAtFourThreads) {
  // Same contract with the deterministic thread pool engaged (the ci.sh
  // FROTE_NUM_THREADS=4 leg re-runs this whole suite as well).
  set_default_threads(4);
  check_resume_equals_uninterrupted("ip");
  set_default_threads(0);
}

TEST(Checkpoint, RestoredSessionCrossesThreadCounts) {
  // A checkpoint written by a serial session restores bit-identically into
  // a 4-thread process and vice versa: thread count is not session state.
  const auto schema = testing::mixed_schema();
  const auto data = testing::threshold_dataset(150, 5.0, 11);
  const EngineSpec spec = checkpoint_spec("ip");
  const auto engine =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  const auto learner = make_spec_learner(spec).value();

  auto serial_session = engine.open(data, *learner).value();
  serial_session.run();
  const auto golden = std::move(serial_session).result();

  auto session = engine.open(data, *learner).value();
  session.step();
  session.step();
  const auto ckpt = session.snapshot();

  set_default_threads(4);
  auto restored = Session::restore(engine, *learner, ckpt);
  ASSERT_TRUE(restored.has_value()) << restored.error().message;
  restored->run();
  const auto threaded = std::move(*restored).result();
  set_default_threads(0);
  EXPECT_EQ(threaded.instances_added, golden.instances_added);
  expect_bit_identical(threaded.augmented, golden.augmented);
}

TEST(Checkpoint, FinishedSessionsRestoreAsFinished) {
  const auto schema = testing::mixed_schema();
  const auto data = testing::threshold_dataset(100, 5.0, 3);
  const EngineSpec spec = checkpoint_spec("random");
  const auto engine =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  const auto learner = make_spec_learner(spec).value();
  auto session = engine.open(data, *learner).value();
  session.run();
  const auto ckpt = session.snapshot();
  auto restored = Session::restore(engine, *learner, ckpt);
  ASSERT_TRUE(restored.has_value()) << restored.error().message;
  EXPECT_TRUE(restored->finished());
  EXPECT_EQ(restored->run(), 0u);
  const auto a = std::move(session).result();
  const auto b = std::move(*restored).result();
  expect_bit_identical(a.augmented, b.augmented);
}

TEST(Checkpoint, CorruptCheckpointsAreTypedErrors) {
  const auto schema = testing::mixed_schema();
  const auto data = testing::threshold_dataset(100, 5.0, 3);
  const EngineSpec spec = checkpoint_spec("random");
  const auto engine =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  const auto learner = make_spec_learner(spec).value();
  auto session = engine.open(data, *learner).value();
  session.step();
  SessionCheckpoint ckpt = session.snapshot();

  // Structurally broken: payload sizes disagree.
  SessionCheckpoint truncated = ckpt;
  truncated.labels.pop_back();
  auto bad = Session::restore(engine, *learner, truncated);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, FroteErrorCode::kInvalidArgument);

  // Semantically broken: a tampered row no longer reproduces the recorded
  // Ĵ̄ when the model is retrained (the consistency cross-check).
  SessionCheckpoint tampered = ckpt;
  for (std::size_t i = 0; i < tampered.labels.size(); ++i) {
    tampered.labels[i] = 1 - tampered.labels[i];
  }
  auto inconsistent = Session::restore(engine, *learner, tampered);
  ASSERT_FALSE(inconsistent.has_value());
  EXPECT_EQ(inconsistent.error().code, FroteErrorCode::kInvalidArgument);

  // Missing keys in the serialised form are parse errors.
  auto json = ckpt.to_json();
  json.members().erase(json.members().begin() + 3);  // drop "dataset"
  auto missing = SessionCheckpoint::from_json(json);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, FroteErrorCode::kParseError);

  auto not_a_checkpoint = SessionCheckpoint::parse("{\"format\": \"nope\"}");
  ASSERT_FALSE(not_a_checkpoint.has_value());
  EXPECT_EQ(not_a_checkpoint.error().code, FroteErrorCode::kParseError);
}

TEST(Checkpoint, PreservesDatasetChangeTracking) {
  const auto schema = testing::mixed_schema();
  const auto data = testing::threshold_dataset(100, 5.0, 3);
  const EngineSpec spec = checkpoint_spec("random");
  const auto engine =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  const auto learner = make_spec_learner(spec).value();
  auto session = engine.open(data, *learner).value();
  session.step();
  session.step();
  const auto ckpt = session.snapshot();
  auto restored = Session::restore(engine, *learner, ckpt).value();
  const Dataset& original = session.augmented();
  const Dataset& back = restored.augmented();
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.row_id(i), original.row_id(i)) << "row " << i;
  }
  EXPECT_EQ(back.next_row_id(), original.next_row_id());
  EXPECT_EQ(back.version(), original.version());
  EXPECT_EQ(back.append_epoch(), original.append_epoch());
  // The uid is intentionally fresh: process-unique identity never revives.
  EXPECT_NE(back.uid(), original.uid());
}

/// The durable on-disk tier under the run-plan driver: an interrupted
/// run's checkpoint.json carries a validating integrity footer, and every
/// flavour of on-disk corruption (truncation, bit flip, zero length) is
/// detected on --resume, quarantined to checkpoint.json.corrupt, and the
/// run restarts from scratch — finishing bit-identically to an
/// uninterrupted execution rather than resuming from garbage.
TEST(Checkpoint, CorruptOnDiskCheckpointIsQuarantinedAndRunRestartsFresh) {
  namespace fs = std::filesystem;
  RunPlan plan;
  plan.base.tau = 4;
  plan.base.q = 0.3;
  plan.base.eta = 10;
  plan.base.k = 5;
  plan.base.seed = 17;
  plan.base.mod_strategy = "none";
  plan.base.learner_fast = true;
  plan.base.rules = {
      "IF age > 45 AND education_num > 11 THEN class = >50K"};
  plan.base.dataset = DatasetSpec{"synthetic", "", "adult", 150, 11};
  plan.learners = {"rf"};
  plan.seeds = {1};

  // Golden: the full run, in memory.
  const auto golden = execute_plan(plan, {});
  ASSERT_TRUE(golden.has_value()) << golden.error().message;
  ASSERT_EQ(golden->size(), 1u);
  ASSERT_TRUE((*golden)[0].completed);
  ASSERT_GT((*golden)[0].iterations_run, 2u)
      << "scenario too short to interrupt";

  const auto expect_matches_golden = [&](const RunResult& result) {
    const RunResult& want = (*golden)[0];
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.instances_added, want.instances_added);
    EXPECT_EQ(result.iterations_run, want.iterations_run);
    EXPECT_EQ(result.iterations_accepted, want.iterations_accepted);
    EXPECT_EQ(result.final_j_bar, want.final_j_bar);
    EXPECT_EQ(result.dataset_rows, want.dataset_rows);
  };

  const auto interrupt = [&](const fs::path& out) -> fs::path {
    RunPlanOptions options;
    options.output_dir = out.string();
    options.max_steps = 2;
    const auto partial = execute_plan(plan, options);
    EXPECT_TRUE(partial.has_value());
    EXPECT_FALSE((*partial)[0].completed);
    return out / (*partial)[0].name / "checkpoint.json";
  };
  const auto resume = [&](const fs::path& out) {
    RunPlanOptions options;
    options.output_dir = out.string();
    options.resume = true;
    const auto resumed = execute_plan(plan, options);
    ASSERT_TRUE(resumed.has_value()) << resumed.error().message;
    expect_matches_golden((*resumed)[0]);
  };

  // Clean path: the written checkpoint validates, and resuming from it
  // reaches the golden result.
  const fs::path clean = fs::path("checkpoint_scratch") / "clean";
  fs::remove_all(clean);
  const fs::path clean_ckpt = interrupt(clean);
  ASSERT_TRUE(fs::exists(clean_ckpt));
  std::string text;
  EXPECT_EQ(read_file_validated(clean_ckpt, text), ValidatedRead::kOk);
  EXPECT_TRUE(SessionCheckpoint::parse(text).has_value());
  resume(clean);
  EXPECT_FALSE(fs::exists(clean / "run-000-rf-random-s1-r0" /
                          "checkpoint.json.corrupt"));

  // Corruption corpus: each flavour quarantines and restarts fresh.
  const auto corrupt_truncate = [](std::string bytes) {
    return bytes.substr(0, bytes.size() - 20);
  };
  const auto corrupt_flip = [](std::string bytes) {
    bytes[bytes.size() / 2] ^= 0x10;
    return bytes;
  };
  const auto corrupt_empty = [](std::string) { return std::string(); };
  const std::vector<std::pair<const char*, std::string (*)(std::string)>>
      corpus = {{"truncated", corrupt_truncate},
                {"bit-flipped", corrupt_flip},
                {"zero-length", corrupt_empty}};
  for (const auto& [label, corrupt] : corpus) {
    const fs::path out = fs::path("checkpoint_scratch") / label;
    fs::remove_all(out);
    const fs::path ckpt = interrupt(out);
    std::ifstream in(ckpt, std::ios::binary);
    const std::string bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    in.close();
    std::ofstream rewrite(ckpt, std::ios::binary | std::ios::trunc);
    const std::string bad = corrupt(bytes);
    rewrite.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    rewrite.close();

    resume(out);
    EXPECT_TRUE(fs::exists(ckpt.string() + ".corrupt"))
        << label << ": corrupt checkpoint was not quarantined";
  }
}

TEST(Rng, StateRoundTripResumesStreamExactly) {
  Rng rng(4242);
  rng.normal();  // park a cached Box–Muller spare in the state
  const RngState state = rng.state();
  std::vector<std::uint64_t> expected;
  std::vector<double> expected_normals;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.next_u64());
  for (int i = 0; i < 8; ++i) expected_normals.push_back(rng.normal());
  Rng resumed(0);
  resumed.set_state(state);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(resumed.next_u64(), expected[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(resumed.normal(), expected_normals[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace frote
