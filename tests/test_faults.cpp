// Unit tests for the deterministic fault-injection registry
// (util/faultsim.hpp) and the durable file tier it exercises
// (util/fsio.hpp: write_file_durable / read_file_validated / quarantine).
//
// The locks, in order:
//   * Spec parsing — unknown points, malformed modes/actions, and
//     duplicates are rejected loudly; a typo'd spec must never silently
//     inject nothing.
//   * Schedule purity — nth=K fires on exactly the Kth hit; prob=P is a
//     pure function of (seed, point, hit index), so the same config
//     replays the same trigger pattern and different seeds give a
//     different one.
//   * Durability protocol — injected failures at every fsio fault point
//     surface as errors, never as a torn or half-renamed destination, and
//     never leak a .tmp file.
//   * Validated reads — a corruption corpus (truncation, bit flips, no
//     footer, wrong hash, zero length) all classify as kCorrupt; the
//     quarantine leaves the artifact inspectable under <name>.corrupt.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "frote/util/error.hpp"
#include "frote/util/faultsim.hpp"
#include "frote/util/fsio.hpp"

namespace {

namespace fs = std::filesystem;
namespace faultsim = frote::faultsim;
using frote::Error;
using frote::ValidatedRead;

/// Every test leaves the process disarmed — the suite shares one process
/// with whatever test runs next.
struct Disarm {
  Disarm() { faultsim::disarm(); }
  ~Disarm() { faultsim::disarm(); }
};

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("faults_scratch") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FaultSim, RejectsBadSpecsLoudly) {
  const Disarm guard;
  EXPECT_THROW(faultsim::configure("no.such.point:nth=1"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write"), Error);          // no mode
  EXPECT_THROW(faultsim::configure("fsio.write:sometimes"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write:nth=0"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write:nth=two"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write:prob=1.5"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write:prob=-0.1"), Error);
  EXPECT_THROW(faultsim::configure("fsio.write:nth=1:explode"), Error);
  EXPECT_THROW(
      faultsim::configure("fsio.write:nth=1,fsio.write:nth=2"), Error);
  // Nothing half-configured survives a rejected spec.
  EXPECT_FALSE(faultsim::should_fail("fsio.write"));
}

TEST(FaultSim, CatalogNamesAreRegistered) {
  const Disarm guard;
  for (const std::string& point : faultsim::fault_points()) {
    EXPECT_TRUE(faultsim::is_fault_point(point)) << point;
    // Every catalog name round-trips through configure.
    EXPECT_NO_THROW(faultsim::configure(point + ":nth=1")) << point;
  }
  EXPECT_FALSE(faultsim::is_fault_point("fsio.writ"));
}

TEST(FaultSim, NthFiresOnExactlyTheKthHit) {
  const Disarm guard;
  faultsim::configure("fsio.write:nth=3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(faultsim::should_fail("fsio.write"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(faultsim::hits("fsio.write"), 6u);
  EXPECT_EQ(faultsim::triggers("fsio.write"), 1u);
  // Other points are untouched.
  EXPECT_FALSE(faultsim::should_fail("fsio.rename"));
  EXPECT_EQ(faultsim::hits("fsio.rename"), 0u);
}

TEST(FaultSim, HitThrowsTypedErrorOnTrigger) {
  const Disarm guard;
  faultsim::configure("fsio.rename:nth=2");
  EXPECT_NO_THROW(faultsim::hit("fsio.rename"));
  try {
    faultsim::hit("fsio.rename");
    FAIL() << "second hit should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "injected fault: fsio.rename");
  }
}

TEST(FaultSim, ProbScheduleIsPureInSeedAndPoint) {
  const Disarm guard;
  const auto pattern = [](std::uint64_t seed) {
    faultsim::configure("fsio.read:prob=0.5", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(faultsim::should_fail("fsio.read"));
    }
    return fired;
  };
  const std::vector<bool> first = pattern(7);
  const std::vector<bool> replay = pattern(7);
  EXPECT_EQ(first, replay);  // same seed ⇒ same schedule, exactly
  EXPECT_NE(first, pattern(8));
  // Per-point streams: two points under one seed draw independently.
  faultsim::configure("fsio.read:prob=0.5,fsio.write:prob=0.5", 7);
  std::vector<bool> read_fired;
  std::vector<bool> write_fired;
  for (int i = 0; i < 64; ++i) {
    read_fired.push_back(faultsim::should_fail("fsio.read"));
    write_fired.push_back(faultsim::should_fail("fsio.write"));
  }
  EXPECT_EQ(read_fired, first);  // unaffected by the other point's draws
  EXPECT_NE(write_fired, read_fired);
}

TEST(FaultSim, DisarmedIsInert) {
  const Disarm guard;
  faultsim::configure("fsio.write:nth=1");
  faultsim::disarm();
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(faultsim::should_fail("fsio.write"));
  EXPECT_EQ(faultsim::hits("fsio.write"), 0u);  // counters were reset
}

TEST(FaultSim, ConfiguresFromEnvironment) {
  const Disarm guard;
  setenv("FROTE_FAULTS", "fsio.fsync:nth=1", 1);
  faultsim::configure_from_env();
  unsetenv("FROTE_FAULTS");
  EXPECT_TRUE(faultsim::should_fail("fsio.fsync"));
  faultsim::disarm();
  // Unset env is a no-op, not a disarm-and-rearm.
  faultsim::configure_from_env();
  EXPECT_FALSE(faultsim::should_fail("fsio.fsync"));
}

TEST(FsioDurable, FooterRoundTrips) {
  const Disarm guard;
  const fs::path dir = scratch_dir("roundtrip");
  const std::string content = "{\"hello\": [1, 2, 3]}\n";
  frote::write_file_durable(dir / "doc.json", content);

  std::string out;
  EXPECT_EQ(frote::read_file_validated(dir / "doc.json", out),
            ValidatedRead::kOk);
  EXPECT_EQ(out, content);
  // The stored bytes are content + one footer line, nothing else.
  EXPECT_EQ(slurp(dir / "doc.json"),
            content + frote::integrity_footer(content));
  // And no write-protocol leftovers.
  EXPECT_FALSE(fs::exists(dir / "doc.json.tmp"));
}

TEST(FsioDurable, MissingFileIsMissingNotCorrupt) {
  const Disarm guard;
  const fs::path dir = scratch_dir("missing");
  std::string out;
  EXPECT_EQ(frote::read_file_validated(dir / "absent.json", out),
            ValidatedRead::kMissing);
}

TEST(FsioDurable, CorruptionCorpusAllClassifyAsCorrupt) {
  const Disarm guard;
  const fs::path dir = scratch_dir("corpus");
  const std::string content = "payload line one\npayload line two\n";
  frote::write_file_durable(dir / "good.json", content);
  const std::string stored = slurp(dir / "good.json");

  std::string truncated = stored.substr(0, stored.size() - 10);
  std::string flipped = stored;
  flipped[3] ^= 0x20;  // bit-flip inside the content
  std::string footer_flipped = stored;
  footer_flipped[stored.size() - 3] ^= 0x01;  // bit-flip inside the hash
  const std::vector<std::pair<const char*, std::string>> corpus = {
      {"truncated", truncated},
      {"bit-flipped content", flipped},
      {"bit-flipped footer", footer_flipped},
      {"zero length", ""},
      {"no footer at all", content},
      {"footer not at line boundary",
       "abc" + frote::integrity_footer(content)},
  };
  for (const auto& [label, bytes] : corpus) {
    spit(dir / "bad.json", bytes);
    std::string out;
    EXPECT_EQ(frote::read_file_validated(dir / "bad.json", out),
              ValidatedRead::kCorrupt)
        << label;
  }
}

TEST(FsioDurable, QuarantineMovesTheFileAside) {
  const Disarm guard;
  const fs::path dir = scratch_dir("quarantine");
  spit(dir / "bad.json", "torn garbage");
  const fs::path moved = frote::quarantine_file(dir / "bad.json");
  EXPECT_EQ(moved, dir / "bad.json.corrupt");
  EXPECT_FALSE(fs::exists(dir / "bad.json"));
  EXPECT_EQ(slurp(moved), "torn garbage");
}

TEST(FsioDurable, InjectedFaultsNeverTearTheDestination) {
  const Disarm guard;
  const fs::path dir = scratch_dir("inject");
  const std::string original = "original durable content\n";
  frote::write_file_durable(dir / "doc.json", original);

  // Kill the write protocol at each point before the rename commits: the
  // destination must still hold the previous version, and no .tmp file
  // may survive the unwind.
  for (const char* point :
       {"fsio.write", "fsio.fsync", "fsio.close", "fsio.rename"}) {
    faultsim::configure(std::string(point) + ":nth=1");
    EXPECT_THROW(
        frote::write_file_durable(dir / "doc.json", "replacement\n"), Error)
        << point;
    faultsim::disarm();
    std::string out;
    EXPECT_EQ(frote::read_file_validated(dir / "doc.json", out),
              ValidatedRead::kOk)
        << point;
    EXPECT_EQ(out, original) << point;
    EXPECT_FALSE(fs::exists(dir / "doc.json.tmp")) << point;
  }

  // fsync_dir fires *after* the rename: the new content is in place even
  // though the writer reports the failure.
  faultsim::configure("fsio.fsync_dir:nth=1");
  EXPECT_THROW(
      frote::write_file_durable(dir / "doc.json", "replacement\n"), Error);
  faultsim::disarm();
  std::string out;
  EXPECT_EQ(frote::read_file_validated(dir / "doc.json", out),
            ValidatedRead::kOk);
  EXPECT_EQ(out, "replacement\n");
}

TEST(FsioDurable, InjectedReadFailureIsOneShot) {
  const Disarm guard;
  const fs::path dir = scratch_dir("readfault");
  frote::write_file_durable(dir / "doc.json", "content\n");
  faultsim::configure("fsio.read:nth=1");
  std::string out;
  EXPECT_FALSE(frote::read_file(dir / "doc.json", out));
  EXPECT_TRUE(frote::read_file(dir / "doc.json", out));  // nth is one-shot
}

}  // namespace
