#include "frote/rules/parser.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_util.hpp"

namespace frote {
namespace {

using testing::mixed_schema;

TEST(Parser, SimpleNumericRule) {
  auto schema = mixed_schema();
  const auto rule = parse_rule("IF x > 5 THEN class = pos", *schema);
  EXPECT_EQ(rule.clause.size(), 1u);
  EXPECT_EQ(rule.clause.predicates()[0].feature, 0u);
  EXPECT_EQ(rule.clause.predicates()[0].op, Op::kGt);
  EXPECT_DOUBLE_EQ(rule.clause.predicates()[0].value, 5.0);
  EXPECT_EQ(rule.target_class(), 1);
  EXPECT_TRUE(rule.pi.is_deterministic());
}

TEST(Parser, ConjunctionWithCategorical) {
  auto schema = mixed_schema();
  const auto rule = parse_rule(
      "IF x < 29 AND color = 'green' AND y >= 1.5 THEN class = neg",
      *schema);
  EXPECT_EQ(rule.clause.size(), 3u);
  EXPECT_EQ(rule.clause.predicates()[1].feature, 2u);
  EXPECT_DOUBLE_EQ(rule.clause.predicates()[1].value, 1.0);  // green
  EXPECT_EQ(rule.target_class(), 0);
}

TEST(Parser, ProbabilisticOutcome) {
  auto schema = mixed_schema();
  const auto rule =
      parse_rule("IF x > 7 THEN Y ~ [neg: 0.8, pos: 0.2]", *schema);
  EXPECT_FALSE(rule.pi.is_deterministic());
  EXPECT_DOUBLE_EQ(rule.pi.prob(0), 0.8);
  EXPECT_DOUBLE_EQ(rule.pi.prob(1), 0.2);
}

TEST(Parser, ExclusionClauses) {
  auto schema = mixed_schema();
  const auto rule = parse_rule(
      "IF x > 5 AND NOT (y > 9) AND NOT (color = 'red') THEN class = pos",
      *schema);
  EXPECT_EQ(rule.clause.size(), 1u);
  ASSERT_EQ(rule.exclusions.size(), 2u);
  EXPECT_TRUE(rule.covers(std::vector<double>{6.0, 1.0, 1.0}));
  EXPECT_FALSE(rule.covers(std::vector<double>{6.0, 9.5, 1.0}));  // excl 1
  EXPECT_FALSE(rule.covers(std::vector<double>{6.0, 1.0, 0.0}));  // excl 2
}

TEST(Parser, NegativeAndDecimalNumbers) {
  auto schema = mixed_schema();
  const auto rule =
      parse_rule("IF x <= -3.25 THEN class = neg", *schema);
  EXPECT_DOUBLE_EQ(rule.clause.predicates()[0].value, -3.25);
  EXPECT_EQ(rule.clause.predicates()[0].op, Op::kLe);
}

TEST(Parser, RoundTripsToString) {
  auto schema = mixed_schema();
  const std::vector<std::string> inputs = {
      "IF x > 5 THEN class = pos",
      "IF x < 29 AND color != 'red' THEN class = neg",
      "IF x > 5 AND NOT (y > 9) THEN class = pos",
  };
  for (const auto& text : inputs) {
    const auto rule = parse_rule(text, *schema);
    const auto printed = rule.to_string(*schema);
    const auto reparsed = parse_rule(printed, *schema);
    EXPECT_TRUE(reparsed.clause == rule.clause) << text;
    EXPECT_TRUE(reparsed.pi == rule.pi) << text;
    EXPECT_EQ(reparsed.exclusions.size(), rule.exclusions.size()) << text;
  }
}

TEST(Parser, RejectsUnknownFeature) {
  auto schema = mixed_schema();
  EXPECT_THROW(parse_rule("IF banana > 5 THEN class = pos", *schema), Error);
}

TEST(Parser, RejectsUnknownClass) {
  auto schema = mixed_schema();
  EXPECT_THROW(parse_rule("IF x > 5 THEN class = maybe", *schema), Error);
}

TEST(Parser, RejectsUnknownCategory) {
  auto schema = mixed_schema();
  EXPECT_THROW(parse_rule("IF color = 'purple' THEN class = pos", *schema),
               Error);
}

TEST(Parser, RejectsInvalidOperatorForType) {
  auto schema = mixed_schema();
  // '>' on a categorical feature.
  EXPECT_THROW(parse_rule("IF color > 'red' THEN class = pos", *schema),
               Error);
  // '!=' on a numeric feature (§3.1 allows only {=, >, >=, <, <=}).
  EXPECT_THROW(parse_rule("IF x != 5 THEN class = pos", *schema), Error);
}

TEST(Parser, RejectsTrailingGarbage) {
  auto schema = mixed_schema();
  EXPECT_THROW(parse_rule("IF x > 5 THEN class = pos banana", *schema),
               Error);
}

TEST(Parser, RejectsMalformedProbabilities) {
  auto schema = mixed_schema();
  EXPECT_THROW(
      parse_rule("IF x > 5 THEN Y ~ [neg: 0.8, pos: 0.8]", *schema), Error);
}

TEST(Parser, MultiRuleTextSkipsCommentsAndBlanks) {
  auto schema = mixed_schema();
  const auto rules = parse_rules(
      "# policy update 2026-06\n"
      "IF x > 7 THEN class = neg\n"
      "\n"
      "  # another comment\n"
      "IF color = 'blue' THEN class = pos\n",
      *schema);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].target_class(), 0);
  EXPECT_EQ(rules[1].target_class(), 1);
}

TEST(Parser, ErrorMessagesCarryColumn) {
  auto schema = mixed_schema();
  try {
    parse_rule("IF x >> 5 THEN class = pos", *schema);
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("column"), std::string::npos);
  }
}

}  // namespace
}  // namespace frote
