#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frote/ml/decision_tree.hpp"
#include "frote/ml/gbdt.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/online_logreg.hpp"
#include "frote/ml/random_forest.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

double train_accuracy(const Model& model, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void expect_valid_proba(const Model& model, const Dataset& data) {
  for (std::size_t i = 0; i < std::min<std::size_t>(data.size(), 20); ++i) {
    const auto p = model.predict_proba(data.row(i));
    ASSERT_EQ(p.size(), data.num_classes());
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

/// Parameterized across all four learners: separable blobs must be learned
/// almost perfectly and probabilities must be valid distributions.
enum class Kind { kDT, kRF, kLR, kGBDT };

class LearnerSuite : public ::testing::TestWithParam<Kind> {
 protected:
  std::unique_ptr<Learner> make() const {
    switch (GetParam()) {
      case Kind::kDT: return std::make_unique<DecisionTreeLearner>();
      case Kind::kRF: return std::make_unique<RandomForestLearner>();
      case Kind::kLR: return std::make_unique<LogisticRegressionLearner>();
      case Kind::kGBDT: return std::make_unique<GbdtLearner>();
    }
    return nullptr;
  }
};

TEST_P(LearnerSuite, LearnsSeparableBlobs) {
  auto data = testing::blobs_dataset(80);
  const auto model = make()->train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.97);
}

TEST_P(LearnerSuite, ProbabilitiesAreDistributions) {
  auto data = testing::blobs_dataset(50);
  const auto model = make()->train(data);
  expect_valid_proba(*model, data);
}

TEST_P(LearnerSuite, LearnsMixedThresholdData) {
  auto data = testing::threshold_dataset(400);
  const auto model = make()->train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.9);
}

TEST_P(LearnerSuite, DeterministicAcrossCalls) {
  auto data = testing::threshold_dataset(150);
  const auto m1 = make()->train(data);
  const auto m2 = make()->train(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(m1->predict(data.row(i)), m2->predict(data.row(i)));
  }
}

TEST_P(LearnerSuite, EmptyDatasetRejected) {
  Dataset empty(testing::numeric2d_schema());
  EXPECT_THROW(make()->train(empty), Error);
}

INSTANTIATE_TEST_SUITE_P(AllModels, LearnerSuite,
                         ::testing::Values(Kind::kDT, Kind::kRF, Kind::kLR,
                                           Kind::kGBDT),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kDT: return "DecisionTree";
                             case Kind::kRF: return "RandomForest";
                             case Kind::kLR: return "LogisticRegression";
                             case Kind::kGBDT: return "Gbdt";
                           }
                           return "Unknown";
                         });

TEST(DecisionTree, DepthRespectsLimit) {
  DecisionTreeConfig config;
  config.max_depth = 2;
  auto data = testing::threshold_dataset(300);
  const auto model = DecisionTreeLearner(config).train(data);
  const auto* tree = dynamic_cast<const DecisionTreeModel*>(model.get());
  ASSERT_NE(tree, nullptr);
  EXPECT_LE(tree->depth(), 2u);
}

TEST(DecisionTree, SplitsOnCategoricalWhenInformative) {
  // Label depends only on the categorical feature.
  Dataset data(testing::mixed_schema());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double color = static_cast<double>(i % 3);
    data.add_row({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), color},
                 color == 2.0 ? 1 : 0);
  }
  const auto model = DecisionTreeLearner().train(data);
  EXPECT_DOUBLE_EQ(train_accuracy(*model, data), 1.0);
}

TEST(RandomForest, MoreTreesNoWorse) {
  auto data = testing::threshold_dataset(300, 5.0, 77);
  RandomForestConfig small, big;
  small.num_trees = 2;
  big.num_trees = 40;
  const auto m_small = RandomForestLearner(small).train(data);
  const auto m_big = RandomForestLearner(big).train(data);
  EXPECT_GE(train_accuracy(*m_big, data) + 0.02,
            train_accuracy(*m_small, data));
}

TEST(LogisticRegression, RecoverLinearBoundaryDirection) {
  auto data = testing::blobs_dataset(100);
  const auto model = LogisticRegressionLearner().train(data);
  // Points on the class-1 side must get higher class-1 probability.
  const std::vector<double> far1 = {6.0, 6.0};
  const std::vector<double> far0 = {0.0, 0.0};
  EXPECT_GT(model->predict_proba(far1)[1], 0.9);
  EXPECT_LT(model->predict_proba(far0)[1], 0.1);
}

TEST(Gbdt, MulticlassSoftmax) {
  // 3-class 1-d problem: class by interval.
  auto schema = std::make_shared<Schema>(
      std::vector<FeatureSpec>{FeatureSpec::numeric("x")},
      std::vector<std::string>{"lo", "mid", "hi"});
  Dataset data(schema);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    data.add_row({x}, x < 1.0 ? 0 : (x < 2.0 ? 1 : 2));
  }
  const auto model = GbdtLearner().train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.95);
  expect_valid_proba(*model, data);
}

TEST(OnlineLogReg, DistillsTeacher) {
  auto data = testing::blobs_dataset(100);
  const auto teacher = LogisticRegressionLearner().train(data);
  const OnlineLogReg student(data, *teacher);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (student.predict(data.row(i)) == teacher->predict(data.row(i))) {
      ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(data.size()),
            0.95);
}

TEST(OnlineLogReg, UpdateMovesDecision) {
  auto data = testing::blobs_dataset(50);
  OnlineLogReg model(data);
  const std::vector<double> point = {3.0, 3.0};  // near the midpoint
  // Hammer updates labelling the midpoint as class 0.
  for (int i = 0; i < 300; ++i) model.update(point, 0);
  EXPECT_EQ(model.predict(point), 0);
  // Now hammer the other way.
  for (int i = 0; i < 600; ++i) model.update(point, 1);
  EXPECT_EQ(model.predict(point), 1);
}

}  // namespace
}  // namespace frote
