// core/spec: declarative EngineSpec round-trips — JSON → Engine → to_spec()
// must be lossless for every registry learner/selector combination — plus
// RunPlan expansion and the concurrent driver's determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/core/registry.hpp"
#include "frote/core/runplan.hpp"
#include "frote/core/spec.hpp"
#include "frote/util/rng.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

EngineSpec small_spec() {
  EngineSpec spec;
  spec.tau = 4;
  spec.q = 0.3;
  spec.k = 5;
  spec.eta = 10;
  spec.seed = 17;
  spec.mod_strategy = "none";
  spec.learner_fast = true;
  spec.rules = {"IF x > 7 THEN class = neg"};
  return spec;
}

TEST(EngineSpec, JsonRoundTripPreservesEveryField) {
  EngineSpec spec = small_spec();
  spec.threads = 2;
  spec.rule_confidence = 0.8;
  spec.accept_always = true;
  spec.selector = "ip";
  spec.stopping.kind = "plateau";
  spec.stopping.patience = 3;
  spec.learner = "gbdt";
  spec.learner_seed = 12345678901234567890ULL;  // needs full uint64 width
  spec.dataset = DatasetSpec{"synthetic", "", "adult", 200, 9};
  const std::string text = spec.to_json_text();
  auto parsed = EngineSpec::parse(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->to_json_text(), text);
  EXPECT_EQ(parsed->learner_seed, spec.learner_seed);
  EXPECT_EQ(parsed->dataset->name, "adult");
}

TEST(EngineSpec, RoundTripsThroughEngineForEveryRegistryCombination) {
  // The acceptance contract: spec JSON -> from_spec -> build -> to_spec
  // reproduces the document byte-for-byte, whichever registry learner and
  // selector the spec names.
  const auto schema = testing::mixed_schema();
  for (const auto& learner : registered_learner_names()) {
    for (const auto& selector : registered_selector_names()) {
      EngineSpec spec = small_spec();
      spec.learner = learner;
      spec.selector = selector;
      const std::string text = spec.to_json_text();

      auto parsed = EngineSpec::parse(text);
      ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
      auto builder = Engine::Builder::from_spec(*parsed, *schema);
      ASSERT_TRUE(builder.has_value())
          << learner << "/" << selector << ": " << builder.error().message;
      auto engine = builder->build();
      ASSERT_TRUE(engine.has_value())
          << learner << "/" << selector << ": " << engine.error().message;
      auto learner_instance = make_spec_learner(*parsed);
      ASSERT_TRUE(learner_instance.has_value())
          << learner << ": " << learner_instance.error().message;

      auto back = engine->to_spec();
      ASSERT_TRUE(back.has_value())
          << learner << "/" << selector << ": " << back.error().message;
      EXPECT_EQ(back->to_json_text(), text) << learner << "/" << selector;
      // The schema overload re-serialises the live rules and must agree
      // with the provenance text (parse/print is a round-trip).
      auto reserialised = engine->to_spec(*schema);
      ASSERT_TRUE(reserialised.has_value());
      EXPECT_EQ(reserialised->to_json_text(), text)
          << learner << "/" << selector;
    }
  }
}

TEST(EngineSpec, SpecDrivenEngineMatchesImperativeEngine) {
  // One spec-built and one builder-built engine with the same settings must
  // produce bit-identical sessions.
  const auto schema = testing::mixed_schema();
  auto data = testing::threshold_dataset(120, 5.0, 11);
  EngineSpec spec = small_spec();
  auto engine_from_spec =
      Engine::Builder::from_spec(spec, *schema).value().build().value();
  auto learner = make_spec_learner(spec).value();

  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  auto imperative = Engine::Builder()
                        .rules(frs)
                        .tau(spec.tau)
                        .q(spec.q)
                        .k(spec.k)
                        .eta(spec.eta)
                        .seed(spec.seed)
                        .mod_strategy(ModStrategy::kNone)
                        .build()
                        .value();

  auto session_a = engine_from_spec.open(data, *learner).value();
  auto session_b = imperative.open(data, *learner).value();
  session_a.run();
  session_b.run();
  const auto result_a = std::move(session_a).result();
  const auto result_b = std::move(session_b).result();
  ASSERT_EQ(result_a.augmented.size(), result_b.augmented.size());
  for (std::size_t i = 0; i < result_a.augmented.size(); ++i) {
    const auto row_a = result_a.augmented.row(i);
    const auto row_b = result_b.augmented.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      ASSERT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

TEST(EngineSpec, LastSelectorChoiceWins) {
  // The three selector setters (registry name, enum, component instance)
  // override each other in call order; to_spec() reflects the final one.
  const auto schema = testing::mixed_schema();
  auto engine = Engine::Builder::from_spec(small_spec(), *schema)  // random
                    .value()
                    .selection(SelectionStrategy::kIp)
                    .build()
                    .value();
  EXPECT_EQ(engine.to_spec()->selector, "ip");
  auto back_to_name = Engine::Builder::from_spec(small_spec(), *schema)
                          .value()
                          .selection(SelectionStrategy::kIp)
                          .selector("online-proxy")
                          .build()
                          .value();
  EXPECT_EQ(back_to_name.to_spec()->selector, "online-proxy");
}

TEST(EngineSpec, UnknownComponentNamesAreTypedErrors) {
  const auto schema = testing::mixed_schema();
  EngineSpec spec = small_spec();
  spec.selector = "resnet";
  auto engine = Engine::Builder::from_spec(spec, *schema).value().build();
  ASSERT_FALSE(engine.has_value());
  EXPECT_EQ(engine.error().code, FroteErrorCode::kUnknownComponent);

  spec = small_spec();
  spec.learner = "transformer";
  auto learner = make_spec_learner(spec);
  ASSERT_FALSE(learner.has_value());
  EXPECT_EQ(learner.error().code, FroteErrorCode::kUnknownComponent);

  spec = small_spec();
  spec.mod_strategy = "erase";
  auto builder = Engine::Builder::from_spec(spec, *schema);
  ASSERT_FALSE(builder.has_value());
  EXPECT_EQ(builder.error().code, FroteErrorCode::kUnknownComponent);
}

TEST(EngineSpec, MalformedRuleTextIsAParseError) {
  const auto schema = testing::mixed_schema();
  EngineSpec spec = small_spec();
  spec.rules = {"IF wingspan > 7 THEN class = pos"};  // unknown feature
  auto builder = Engine::Builder::from_spec(spec, *schema);
  ASSERT_FALSE(builder.has_value());
  EXPECT_EQ(builder.error().code, FroteErrorCode::kParseError);
}

TEST(EngineSpec, ForwardCompatPolicy) {
  // Unknown keys are ignored; a version from the future is refused.
  auto tolerant = EngineSpec::parse(
      "{\"format\": \"frote.engine_spec\", \"tau\": 9, "
      "\"a_future_knob\": {\"nested\": true}}");
  ASSERT_TRUE(tolerant.has_value()) << tolerant.error().message;
  EXPECT_EQ(tolerant->tau, 9u);

  auto future = EngineSpec::parse(
      "{\"format\": \"frote.engine_spec\", \"version\": 999}");
  ASSERT_FALSE(future.has_value());
  EXPECT_EQ(future.error().code, FroteErrorCode::kParseError);

  // A missing format must not parse as an all-defaults spec — feeding the
  // wrong document type here would otherwise silently run a different
  // experiment.
  auto no_format = EngineSpec::parse("{\"tau\": 9}");
  ASSERT_FALSE(no_format.has_value());
  EXPECT_EQ(no_format.error().code, FroteErrorCode::kParseError);

  // An any_of stopping rule with no children never fires; rejected.
  auto empty_any_of = EngineSpec::parse(
      "{\"format\": \"frote.engine_spec\", "
      "\"stopping\": {\"kind\": \"any_of\"}}");
  ASSERT_FALSE(empty_any_of.has_value());
  EXPECT_EQ(empty_any_of.error().code, FroteErrorCode::kParseError);

  auto wrong_type = EngineSpec::parse(
      "{\"format\": \"frote.engine_spec\", \"tau\": \"many\"}");
  ASSERT_FALSE(wrong_type.has_value());
  EXPECT_EQ(wrong_type.error().code, FroteErrorCode::kParseError);
}

TEST(EngineSpec, ImperativeEnginesSynthesizeSpecsWhenRepresentable) {
  FeedbackRuleSet frs({testing::x_gt_rule(6.0, 1)});
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .tau(7)
                          .selection(SelectionStrategy::kIp)
                          .build()
                          .value();
  // Rule text needs a schema on this path.
  auto without_schema = engine.to_spec();
  ASSERT_FALSE(without_schema.has_value());
  auto spec = engine.to_spec(*testing::mixed_schema());
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  EXPECT_EQ(spec->tau, 7u);
  EXPECT_EQ(spec->selector, "ip");
  ASSERT_EQ(spec->rules.size(), 1u);
  EXPECT_EQ(spec->rules[0], "IF x > 6 THEN class = pos");

  // A custom component instance has no declarative name: typed refusal.
  struct NullSelector final : BaseInstanceSelector {
    std::vector<SelectedInstance> select(const Dataset&,
                                         const BasePopulation&, const Model&,
                                         std::size_t, Rng&) const override {
      return {};
    }
  };
  const auto custom = Engine::Builder()
                          .rules(frs)
                          .selector(std::make_shared<NullSelector>())
                          .build()
                          .value();
  auto unrepresentable = custom.to_spec(*testing::mixed_schema());
  ASSERT_FALSE(unrepresentable.has_value());
  EXPECT_EQ(unrepresentable.error().code, FroteErrorCode::kInvalidArgument);
}

TEST(StoppingSpec, RoundTripAndBehaviour) {
  StoppingSpec spec;
  spec.kind = "any_of";
  spec.children = {StoppingSpec{"budget", 25, {}},
                   StoppingSpec{"plateau", 2, {}}};
  auto parsed = StoppingSpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(json_dump(parsed->to_json()), json_dump(spec.to_json()));

  auto criterion = make_spec_stopping(*parsed).value();
  SessionProgress progress;
  progress.tau = 100;
  progress.quota = 1000;
  EXPECT_FALSE(criterion->should_stop(progress));
  progress.consecutive_rejections = 2;  // the plateau child fires
  EXPECT_TRUE(criterion->should_stop(progress));

  StoppingSpec unknown;
  unknown.kind = "never";
  auto bad = StoppingSpec::from_json(unknown.to_json());
  ASSERT_FALSE(bad.has_value());
}

TEST(DatasetSpec, LoadsSyntheticAndRejectsUnknown) {
  DatasetSpec spec;
  spec.kind = "synthetic";
  spec.name = "adult";  // case-insensitive against the Table 1 names
  spec.size = 60;
  auto data = load_spec_dataset(spec);
  ASSERT_TRUE(data.has_value()) << data.error().message;
  EXPECT_EQ(data->size(), 60u);

  spec.name = "imagenet";
  auto missing = load_spec_dataset(spec);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, FroteErrorCode::kUnknownComponent);

  DatasetSpec csv;
  csv.kind = "csv";
  csv.path = "/nonexistent/frote.csv";
  auto unreadable = load_spec_dataset(csv);
  ASSERT_FALSE(unreadable.has_value());
  EXPECT_EQ(unreadable.error().code, FroteErrorCode::kIoError);
}

RunPlan small_plan() {
  RunPlan plan;
  plan.base = small_spec();
  plan.base.learner = "rf";
  plan.base.rules = {"IF age > 45 AND education_num > 11 THEN class = >50K"};
  plan.base.dataset = DatasetSpec{"synthetic", "", "adult", 150, 11};
  plan.learners = {"rf", "lr"};
  plan.seeds = {1, 2};
  return plan;
}

TEST(RunPlan, JsonRoundTripAndDeterministicExpansion) {
  RunPlan plan = small_plan();
  plan.replicates = 2;
  plan.threads = 3;
  const std::string text = plan.to_json_text();
  auto parsed = RunPlan::parse(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->to_json_text(), text);

  const auto runs = parsed->expand();
  ASSERT_EQ(runs.size(), 8u);  // 2 learners x 2 seeds x 2 replicates
  EXPECT_EQ(runs[0].name, "run-000-rf-random-s1-r0");
  EXPECT_EQ(runs[7].name, "run-007-lr-random-s2-r1");
  // Replicates draw independent per-run streams via derive_seed.
  EXPECT_EQ(runs[0].spec.seed, derive_seed(1, 0));
  EXPECT_EQ(runs[1].spec.seed, derive_seed(1, 1));
  // Without replicates the listed seeds are used verbatim.
  const auto plain = small_plan().expand();
  ASSERT_EQ(plain.size(), 4u);
  EXPECT_EQ(plain[0].spec.seed, 1u);
  EXPECT_EQ(plain[0].spec.learner, "rf");
  EXPECT_EQ(plain[3].spec.learner, "lr");
}

TEST(RunPlan, DriverIsDeterministicAcrossThreadCounts) {
  RunPlan plan = small_plan();
  RunPlanOptions options;  // in-memory: no artifacts
  plan.threads = 1;
  auto serial = execute_plan(plan, options);
  ASSERT_TRUE(serial.has_value()) << serial.error().message;
  plan.threads = 4;
  auto threaded = execute_plan(plan, options);
  ASSERT_TRUE(threaded.has_value()) << threaded.error().message;
  ASSERT_EQ(serial->size(), threaded->size());
  ASSERT_EQ(serial->size(), 4u);
  for (std::size_t i = 0; i < serial->size(); ++i) {
    const RunResult& a = (*serial)[i];
    const RunResult& b = (*threaded)[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_TRUE(a.completed);
    EXPECT_EQ(a.instances_added, b.instances_added);
    EXPECT_EQ(a.iterations_run, b.iterations_run);
    EXPECT_EQ(a.iterations_accepted, b.iterations_accepted);
    EXPECT_EQ(a.final_j_bar, b.final_j_bar);
    EXPECT_EQ(a.dataset_rows, b.dataset_rows);
  }
  // The grid actually edited something, or the comparison is vacuous.
  EXPECT_GT((*serial)[0].instances_added, 0u);
}

TEST(RunPlan, DriverRequiresADatasetReference) {
  RunPlan plan = small_plan();
  plan.base.dataset.reset();
  auto results = execute_plan(plan, {});
  ASSERT_FALSE(results.has_value());
  EXPECT_EQ(results.error().code, FroteErrorCode::kInvalidConfig);
}

TEST(ModStrategyNames, RoundTrip) {
  for (const auto strategy :
       {ModStrategy::kNone, ModStrategy::kRelabel, ModStrategy::kDrop}) {
    auto parsed = parse_mod_strategy(mod_strategy_name(strategy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, strategy);
  }
  EXPECT_FALSE(parse_mod_strategy("erase").has_value());
}

}  // namespace
}  // namespace frote
