// Tests for the governance audit trail (§6) and the inflection-point
// analysis utilities, plus the online-learning proxy selector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frote/core/audit.hpp"
#include "frote/core/generate.hpp"
#include "frote/core/inflection.hpp"
#include "frote/core/online_proxy.hpp"
#include "frote/ml/decision_tree.hpp"
#include "frote/rules/parser.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

struct EditFixture {
  Dataset train;
  FeedbackRuleSet frs;
  FroteConfig config;
  DecisionTreeLearner learner;

  EditFixture() {
    train = testing::threshold_dataset(300, 5.0, 50);
    frs = FeedbackRuleSet({testing::x_gt_rule(7.0, 0)});
    config.tau = 10;
    config.eta = 15;
  }
};

TEST(Audit, RecordCapturesEditLineage) {
  EditFixture fx;
  const auto result = frote_edit(fx.train, fx.learner, fx.frs, fx.config);
  const auto record =
      build_audit_record(fx.train, fx.frs, fx.config, result);
  EXPECT_EQ(record.original_rows, fx.train.size());
  EXPECT_EQ(record.final_rows, result.augmented.size());
  EXPECT_EQ(record.synthetic_rows, result.instances_added);
  EXPECT_EQ(record.iterations_run, result.iterations_run);
  ASSERT_EQ(record.rules.size(), 1u);
  // Relabel strategy: the covered-and-disagreeing rows are recorded.
  EXPECT_GT(record.relabelled_rows, 0u);
  EXPECT_EQ(record.dropped_rows, 0u);
}

TEST(Audit, RulesInReportAreReparsable) {
  EditFixture fx;
  const auto result = frote_edit(fx.train, fx.learner, fx.frs, fx.config);
  const auto record =
      build_audit_record(fx.train, fx.frs, fx.config, result);
  for (const auto& text : record.rules) {
    const auto reparsed = parse_rule(text, fx.train.schema());
    EXPECT_TRUE(reparsed.clause == fx.frs.rule(0).clause);
  }
}

TEST(Audit, ReportContainsAllSections) {
  EditFixture fx;
  const auto result = frote_edit(fx.train, fx.learner, fx.frs, fx.config);
  const auto report = audit_report_string(
      build_audit_record(fx.train, fx.frs, fx.config, result));
  for (const char* section :
       {"[CONFIG]", "[RULES]", "[MODIFICATION]", "[ITERATIONS]", "[RESULT]"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
  EXPECT_NE(report.find("IF x > 7"), std::string::npos);
}

TEST(Audit, TraceRowsMatchIterations) {
  EditFixture fx;
  const auto result = frote_edit(fx.train, fx.learner, fx.frs, fx.config);
  const auto record =
      build_audit_record(fx.train, fx.frs, fx.config, result);
  // Trace has the initial point plus one row per loop iteration that
  // produced candidates.
  EXPECT_GE(record.trace.size(), 1u);
  EXPECT_LE(record.trace.size(), record.iterations_run + 1);
}

TEST(Inflection, SweepIsDeterministicAndOrdered) {
  EditFixture fx;
  auto test = testing::threshold_dataset(150, 5.0, 51);
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.row(i)[0] > 7.0) test.set_label(i, 0);
  }
  const std::vector<double> budgets = {0.3, 0.1, 0.0};  // unsorted on purpose
  const auto analysis =
      sweep_budget(fx.train, test, fx.learner, fx.frs, fx.config, budgets);
  ASSERT_EQ(analysis.points.size(), 3u);
  EXPECT_DOUBLE_EQ(analysis.points[0].q, 0.0);
  EXPECT_DOUBLE_EQ(analysis.points[2].q, 0.3);
  // q = 0 adds nothing.
  EXPECT_EQ(analysis.points[0].instances_added, 0u);
  EXPECT_LT(analysis.best_index, analysis.points.size());
}

TEST(Inflection, LargerBudgetsAllowMoreInstances) {
  EditFixture fx;
  auto test = testing::threshold_dataset(150, 5.0, 52);
  const auto analysis = sweep_budget(fx.train, test, fx.learner, fx.frs,
                                     fx.config, {0.05, 0.8});
  ASSERT_EQ(analysis.points.size(), 2u);
  EXPECT_LE(analysis.points[0].instances_added,
            analysis.points[1].instances_added);
}

TEST(OnlineProxy, SelectsWithinBudgetAndBounds) {
  EditFixture fx;
  const auto bp = preselect_base_population(fx.train, fx.frs, 5);
  const auto model = fx.learner.train(fx.train);
  OnlineProxySelector selector(fx.frs);
  Rng rng(9);
  const auto picks = selector.select(fx.train, bp, *model, 12, rng);
  EXPECT_LE(picks.size(), 12u);
  EXPECT_FALSE(picks.empty());
  for (const auto& pick : picks) {
    EXPECT_EQ(pick.rule_index, 0u);
    EXPECT_LT(pick.bp_slot, bp.per_rule[0].indices.size());
  }
}

TEST(OnlineProxy, WorksInsideFroteLoopViaCustomSelection) {
  // The proxy selector plugs into the same interface; run one selection and
  // generate from it to confirm compatibility end to end.
  EditFixture fx;
  const auto bp = preselect_base_population(fx.train, fx.frs, 5);
  const auto model = fx.learner.train(fx.train);
  OnlineProxySelector selector(fx.frs);
  Rng rng(10);
  const auto picks = selector.select(fx.train, bp, *model, 8, rng);
  const auto distance = MixedDistance::fit(fx.train);
  RuleConstrainedGenerator gen(fx.train, fx.frs.rule(0), bp.per_rule[0],
                               distance, {});
  std::vector<double> row;
  int label = 0;
  std::size_t generated = 0;
  for (const auto& pick : picks) {
    if (gen.generate(pick.bp_slot, rng, row, label)) {
      ++generated;
      EXPECT_TRUE(fx.frs.rule(0).covers(row));
    }
  }
  EXPECT_GT(generated, 0u);
}

}  // namespace
}  // namespace frote
