// Tests for FROTE's core machinery: PreSelectBP, base instance selection,
// rule-constrained generation, and the mod strategies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/core/generate.hpp"
#include "frote/ml/decision_tree.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

TEST(PreSelectBP, CoverageBecomesBasePopulation) {
  auto data = testing::threshold_dataset(200);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  ASSERT_EQ(bp.per_rule.size(), 1u);
  EXPECT_FALSE(bp.per_rule[0].relaxed);
  for (std::size_t i = 0; i < bp.per_rule[0].indices.size(); ++i) {
    EXPECT_GT(data.row(bp.per_rule[0].indices[i])[0], 5.0);
    EXPECT_TRUE(bp.per_rule[0].strongly_covered[i]);
  }
}

TEST(PreSelectBP, RelaxesZeroSupportRule) {
  auto data = testing::threshold_dataset(200);
  // x > 5 AND y > 100: no support; relaxation keeps x > 5.
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 5.0}, Predicate{1, Op::kGt, 100.0}}), 1,
      2);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  ASSERT_EQ(bp.per_rule.size(), 1u);
  EXPECT_TRUE(bp.per_rule[0].relaxed);
  EXPECT_GE(bp.per_rule[0].indices.size(), 6u);
  // Weakly covered: none of these match the unrelaxed rule.
  for (bool strong : bp.per_rule[0].strongly_covered) {
    EXPECT_FALSE(strong);
  }
}

TEST(PreSelectBP, AllIndicesDeduplicates) {
  auto data = testing::threshold_dataset(200);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0), testing::x_gt_rule(6.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto all = bp.all_indices();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1], all[i]);
  }
  EXPECT_LE(all.size(), bp.total_slots());
}

TEST(RandomSelector, HonorsEtaAndSpreadsOverRules) {
  auto data = testing::threshold_dataset(400);
  FeedbackRuleSet frs({testing::x_gt_rule(4.0), testing::x_gt_rule(6.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto model = DecisionTreeLearner().train(data);
  Rng rng(3);
  RandomSelector selector;
  const auto picks = selector.select(data, bp, *model, 20, rng);
  EXPECT_EQ(picks.size(), 20u);
  std::size_t rule0 = 0, rule1 = 0;
  for (const auto& pick : picks) {
    EXPECT_LT(pick.bp_slot, bp.per_rule[pick.rule_index].indices.size());
    (pick.rule_index == 0 ? rule0 : rule1) += 1;
  }
  EXPECT_EQ(rule0, 10u);
  EXPECT_EQ(rule1, 10u);
}

TEST(IpSelector, RespectsPerRuleBounds) {
  auto data = testing::threshold_dataset(400);
  FeedbackRuleSet frs({testing::x_gt_rule(4.0), testing::x_gt_rule(6.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto model = DecisionTreeLearner().train(data);
  Rng rng(4);
  IpSelector selector;
  const std::size_t eta = 30;
  const auto picks = selector.select(data, bp, *model, eta, rng);
  ASSERT_FALSE(picks.empty());
  EXPECT_LE(picks.size(), eta);
  std::vector<std::size_t> per_rule(2, 0);
  for (const auto& pick : picks) {
    per_rule[pick.rule_index]++;
    EXPECT_LT(pick.bp_slot, bp.per_rule[pick.rule_index].indices.size());
  }
  // Upper bound η/m = 15 per rule.
  EXPECT_LE(per_rule[0], 15u);
  EXPECT_LE(per_rule[1], 15u);
}

TEST(IpSelector, SelectsDistinctInstances) {
  auto data = testing::threshold_dataset(300);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto model = DecisionTreeLearner().train(data);
  Rng rng(5);
  IpSelector selector;
  const auto picks = selector.select(data, bp, *model, 24, rng);
  std::set<std::size_t> rows;
  for (const auto& pick : picks) {
    rows.insert(bp.per_rule[pick.rule_index].indices[pick.bp_slot]);
  }
  EXPECT_EQ(rows.size(), picks.size());  // binary IP: no repeats
}

TEST(Generate, InstanceSatisfiesUnrelaxedRule) {
  auto data = testing::threshold_dataset(300);
  const auto rule = testing::x_gt_rule(5.0);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  Rng rng(6);
  std::vector<double> row;
  int label = 0;
  std::size_t generated = 0;
  for (std::size_t slot = 0; slot < bp.per_rule[0].indices.size(); ++slot) {
    if (!gen.generate(slot, rng, row, label)) continue;
    ++generated;
    EXPECT_TRUE(rule.covers(row));
    EXPECT_EQ(label, 1);  // deterministic rule label
    data.schema().validate_row(row);
  }
  EXPECT_GT(generated, 0u);
}

TEST(Generate, RelaxedRuleStillYieldsConformingInstances) {
  auto data = testing::threshold_dataset(300);
  // Rule needs x in a narrow band with little support: relaxation widens the
  // BP, but generated instances must still satisfy the original band.
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 9.7}, Predicate{1, Op::kLe, 0.5}}), 1, 2);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  ASSERT_GE(bp.per_rule[0].indices.size(), 6u);
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  Rng rng(7);
  std::vector<double> row;
  int label = 0;
  std::size_t generated = 0;
  for (std::size_t slot = 0; slot < bp.per_rule[0].indices.size(); ++slot) {
    if (!gen.generate(slot, rng, row, label)) continue;
    ++generated;
    EXPECT_GT(row[0], 9.7);
    EXPECT_LE(row[1], 0.5);
  }
  EXPECT_GT(generated, 0u);
}

TEST(Generate, EqualityConditionPinsValue) {
  auto data = testing::threshold_dataset(300);
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 3.0}, Predicate{2, Op::kEq, 1.0}}), 1, 2);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  Rng rng(8);
  std::vector<double> row;
  int label = 0;
  for (std::size_t slot = 0;
       slot < std::min<std::size_t>(bp.per_rule[0].indices.size(), 20);
       ++slot) {
    if (gen.generate(slot, rng, row, label)) {
      EXPECT_DOUBLE_EQ(row[2], 1.0);
    }
  }
}

TEST(Generate, NotEqualConditionAvoidsValue) {
  auto data = testing::threshold_dataset(300);
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 3.0}, Predicate{2, Op::kNe, 0.0}}), 1, 2);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  Rng rng(9);
  std::vector<double> row;
  int label = 0;
  for (std::size_t slot = 0;
       slot < std::min<std::size_t>(bp.per_rule[0].indices.size(), 20);
       ++slot) {
    if (gen.generate(slot, rng, row, label)) {
      EXPECT_NE(row[2], 0.0);
    }
  }
}

TEST(Generate, ProbabilisticConfidenceMixesLabels) {
  auto data = testing::threshold_dataset(400);
  const auto rule = testing::x_gt_rule(5.0, 1);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto distance = MixedDistance::fit(data);
  GenerateConfig config;
  config.rule_confidence = 0.5;
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, config);
  Rng rng(10);
  std::vector<double> row;
  int label = 0;
  std::size_t zeros = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t slot = rng.index(bp.per_rule[0].indices.size());
    if (!gen.generate(slot, rng, row, label)) continue;
    ++total;
    zeros += label == 0 ? 1 : 0;
  }
  ASSERT_GT(total, 100u);
  // Base instances in x>5 are mostly class 1 originally, so with p = 0.5
  // roughly half the "keep base label" draws flip to class 0 (uniform other).
  EXPECT_GT(zeros, total / 5);
  EXPECT_LT(zeros, 4 * total / 5);
}

TEST(ModStrategy, RelabelAlignsCoveredLabels) {
  auto data = testing::threshold_dataset(200);
  // Rule asserts the OPPOSITE of the ground truth in x > 5.
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 0)});
  Dataset modded = data;
  const auto affected = apply_mod_strategy(modded, frs, ModStrategy::kRelabel);
  EXPECT_GT(affected, 0u);
  EXPECT_EQ(modded.size(), data.size());
  for (std::size_t i = 0; i < modded.size(); ++i) {
    if (modded.row(i)[0] > 5.0) {
      EXPECT_EQ(modded.label(i), 0);
    } else {
      EXPECT_EQ(modded.label(i), data.label(i));
    }
  }
}

TEST(ModStrategy, DropRemovesDisagreeingRows) {
  auto data = testing::threshold_dataset(200);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 0)});
  Dataset modded = data;
  const auto affected = apply_mod_strategy(modded, frs, ModStrategy::kDrop);
  EXPECT_GT(affected, 0u);
  EXPECT_EQ(modded.size(), data.size() - affected);
  for (std::size_t i = 0; i < modded.size(); ++i) {
    if (modded.row(i)[0] > 5.0) {
      EXPECT_EQ(modded.label(i), 0);  // only agreeing rows survive
    }
  }
}

TEST(ModStrategy, NoneIsIdentity) {
  auto data = testing::threshold_dataset(100);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 0)});
  Dataset modded = data;
  EXPECT_EQ(apply_mod_strategy(modded, frs, ModStrategy::kNone), 0u);
  EXPECT_EQ(modded.size(), data.size());
}

}  // namespace
}  // namespace frote
