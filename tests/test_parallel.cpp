// Determinism-under-parallelism lock for util/parallel.hpp and everything
// built on it: chunk boundaries depend only on (n, grain), partial results
// combine in ascending chunk order, so threads = 1 and threads = N are
// bit-identical by construction. The end-to-end half of the suite runs full
// FROTE edits at threads ∈ {1, 2, 8} across all three mod strategies and
// demands bit-identical augmented datasets and model outputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/exp/learners.hpp"
#include "frote/util/parallel.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

// ---------------------------------------------------------------------------
// Primitive-level contracts

double noisy_term(std::size_t i) {
  // Deliberately non-associative-friendly magnitudes: any reordering of the
  // accumulation shows up in the low bits.
  return 1.0 / (1.0 + static_cast<double>(i) * 1e-3) +
         (i % 7 == 0 ? 1e10 : 1e-10);
}

double reduce_sum(std::size_t n, std::size_t grain, int threads) {
  return parallel_reduce(
      n, grain, threads, 0.0,
      [](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) acc += noisy_term(i);
        return acc;
      },
      [](double& acc, double&& part) { acc += part; });
}

TEST(ParallelReduce, ThreadCountNeverChangesTheBits) {
  const std::size_t n = 10007;
  const std::size_t grain = 64;
  const double serial = reduce_sum(n, grain, 1);
  for (int threads : {2, 3, 4, 8}) {
    EXPECT_EQ(serial, reduce_sum(n, grain, threads))
        << "threads=" << threads;
  }
}

TEST(ParallelReduce, ChunkBoundariesDependOnlyOnNAndGrain) {
  // Different grains are allowed to produce different (deterministic)
  // accumulations; the same grain must reproduce exactly, run after run.
  const std::size_t n = 4096;
  for (std::size_t grain : {1u, 17u, 256u, 5000u}) {
    const double first = reduce_sum(n, grain, 4);
    const double second = reduce_sum(n, grain, 4);
    EXPECT_EQ(first, second) << "grain=" << grain;
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1777;
  for (int threads : {1, 2, 8}) {
    std::vector<int> hits(n, 0);
    parallel_for(n, 32, threads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i]++;
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, PropagatesChunkExceptions) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        parallel_for(1000, 10, threads,
                     [](std::size_t begin, std::size_t) {
                       if (begin >= 500) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  std::atomic<std::size_t> total{0};
  parallel_for(8, 1, 4, [&](std::size_t, std::size_t) {
    // A component that parallelises internally must compose with an outer
    // parallel caller: the inner region runs inline on this worker.
    parallel_for(16, 4, 4, [&](std::size_t begin, std::size_t end) {
      total += end - begin;
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ParallelConfig, ResolutionOrderIsRequestThenDefault) {
  set_default_threads(0);
  EXPECT_EQ(resolve_threads(5), 5);
  EXPECT_GE(resolve_threads(0), 1);  // env default (1 unless overridden)
  set_default_threads(3);
  EXPECT_EQ(resolve_threads(0), 3);
  EXPECT_EQ(resolve_threads(2), 2);  // explicit request still wins
  set_default_threads(0);
}

// ---------------------------------------------------------------------------
// End-to-end: full FROTE edits must be bit-identical across thread counts,
// for every mod strategy, through every converted hot path (learner
// training, the Ĵ evaluation sweep, IP selection scoring, kNN scans).

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

FroteResult run_threaded_edit(ModStrategy mod, int threads,
                              LearnerKind learner_kind) {
  auto data = testing::threshold_dataset(150, 5.0, /*seed=*/11);
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  const auto learner =
      make_learner(learner_kind, /*seed=*/7, /*fast=*/true, threads);
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .tau(4)
                          .q(0.4)
                          .k(5)
                          .seed(99)
                          .mod_strategy(mod)
                          .selection(SelectionStrategy::kIp)
                          .threads(threads)
                          .build()
                          .value();
  auto session = engine.open(data, *learner).value();
  session.run();
  return std::move(session).result();
}

class ThreadedEquivalence : public ::testing::TestWithParam<ModStrategy> {};

TEST_P(ThreadedEquivalence, AugmentationBitIdenticalAcrossThreadCounts) {
  const ModStrategy mod = GetParam();
  const auto serial = run_threaded_edit(mod, 1, LearnerKind::kRF);
  for (int threads : {2, 8}) {
    const auto parallel = run_threaded_edit(mod, threads, LearnerKind::kRF);
    EXPECT_EQ(serial.instances_added, parallel.instances_added)
        << "threads=" << threads;
    EXPECT_EQ(serial.iterations_run, parallel.iterations_run);
    EXPECT_EQ(serial.iterations_accepted, parallel.iterations_accepted);
    ASSERT_EQ(serial.trace.size(), parallel.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(serial.trace[i].train_j_hat_bar,
                parallel.trace[i].train_j_hat_bar)
          << "trace point " << i << " threads " << threads;
    }
    expect_bit_identical(serial.augmented, parallel.augmented);
    // The retrained models must agree to the last bit too.
    const auto pa = serial.model->predict_proba_all(serial.augmented);
    const auto pb = parallel.model->predict_proba_all(parallel.augmented);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i], pb[i]) << "proba entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModStrategies, ThreadedEquivalence,
                         ::testing::Values(ModStrategy::kNone,
                                           ModStrategy::kRelabel,
                                           ModStrategy::kDrop));

TEST(ThreadedEquivalence, LrTrainingBitIdenticalAcrossThreadCounts) {
  auto data = testing::threshold_dataset(200, 5.0, /*seed=*/3);
  const auto serial = make_learner(LearnerKind::kLR, 7, true, 1)->train(data);
  const auto threaded =
      make_learner(LearnerKind::kLR, 7, true, 8)->train(data);
  const auto pa = serial->predict_proba_all(data);
  const auto pb = threaded->predict_proba_all(data);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "proba entry " << i;
  }
}

TEST(ThreadedEquivalence, GbdtTrainingBitIdenticalAcrossThreadCounts) {
  auto data = testing::threshold_dataset(200, 5.0, /*seed=*/5);
  const auto serial =
      make_learner(LearnerKind::kLGBM, 7, true, 1)->train(data);
  const auto threaded =
      make_learner(LearnerKind::kLGBM, 7, true, 8)->train(data);
  const auto pa = serial->predict_proba_all(data);
  const auto pb = threaded->predict_proba_all(data);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "proba entry " << i;
  }
}

}  // namespace
}  // namespace frote
