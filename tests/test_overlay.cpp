#include "frote/baselines/overlay.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "frote/metrics/metrics.hpp"
#include "frote/ml/decision_tree.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

TEST(OverlayHard, CoveredInstancesGetRuleClass) {
  auto data = testing::threshold_dataset(300, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  // Rule contradicts the model in its whole coverage.
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  const OverlayModel hard(*model, frs, OverlayMode::kHard, data.schema());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.row(i)[0] > 7.0) {
      EXPECT_EQ(hard.predict(data.row(i)), 0);
    } else {
      EXPECT_EQ(hard.predict(data.row(i)), model->predict(data.row(i)));
    }
  }
}

TEST(OverlayHard, ProbaIsRuleDistribution) {
  auto data = testing::threshold_dataset(100, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  FeedbackRule rule(Clause({Predicate{0, Op::kGt, 7.0}}),
                    LabelDistribution::from_probs({0.6, 0.4}));
  FeedbackRuleSet frs({rule});
  const OverlayModel hard(*model, frs, OverlayMode::kHard, data.schema());
  const std::vector<double> covered_row = {8.0, 1.0, 0.0};
  const auto p = hard.predict_proba(covered_row);
  EXPECT_DOUBLE_EQ(p[0], 0.6);
  EXPECT_DOUBLE_EQ(p[1], 0.4);
}

TEST(OverlaySoft, TransformsIntoProvenanceRegion) {
  auto data = testing::threshold_dataset(400, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  // Provenance: the model's own rule "x > 5 ⇒ 1". Feedback: "x > 3 ⇒ 1"
  // (the user lowered the boundary). Soft overlay maps covered instances
  // into x ≥ 5 territory, where the model already predicts 1.
  FeedbackRule feedback = testing::x_gt_rule(3.0, 1);
  feedback.provenance = Clause({Predicate{0, Op::kGt, 5.0}});
  FeedbackRuleSet frs({feedback});
  const OverlayModel soft(*model, frs, OverlayMode::kSoft, data.schema());
  const std::vector<double> in_gap = {4.0, 5.0, 0.0};  // covered, model says 0
  EXPECT_EQ(model->predict(in_gap), 0);
  EXPECT_EQ(soft.predict(in_gap), 1);  // transformed to x ≈ 5+ -> class 1
}

TEST(OverlaySoft, WithoutProvenanceFallsBackToModel) {
  auto data = testing::threshold_dataset(200, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});  // no provenance set
  const OverlayModel soft(*model, frs, OverlayMode::kSoft, data.schema());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(soft.predict(data.row(i)), model->predict(data.row(i)));
  }
}

TEST(OverlaySoft, UncoveredInstancesUntouched) {
  auto data = testing::threshold_dataset(200, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  FeedbackRule feedback = testing::x_gt_rule(7.0, 0);
  feedback.provenance = Clause({Predicate{0, Op::kLe, 5.0}});
  FeedbackRuleSet frs({feedback});
  const OverlayModel soft(*model, frs, OverlayMode::kSoft, data.schema());
  const std::vector<double> uncovered = {2.0, 2.0, 1.0};
  EXPECT_EQ(soft.predict(uncovered), model->predict(uncovered));
}

TEST(OverlaySoft, CategoricalTransformRespectsConstraints) {
  auto data = testing::threshold_dataset(200, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  FeedbackRule feedback = testing::x_gt_rule(7.0, 0);
  // Provenance pins color = green and denies red in a second clause slot.
  feedback.provenance =
      Clause({Predicate{2, Op::kEq, 1.0}, Predicate{0, Op::kGt, 5.0}});
  FeedbackRuleSet frs({feedback});
  const OverlayModel soft(*model, frs, OverlayMode::kSoft, data.schema());
  // Just verify the covered prediction is computed without error and maps
  // through the transform (model on transformed point).
  const std::vector<double> covered = {8.0, 0.0, 0.0};
  const std::vector<double> transformed = {8.0, 0.0, 1.0};
  EXPECT_EQ(soft.predict(covered), model->predict(transformed));
}

TEST(OverlayHard, DivergentRuleWrecksCoveredAccuracyButFrsIsObeyed) {
  // The paper's Table 8 effect: hard constraints obey the rules perfectly
  // (MRA = 1) at the cost of accuracy on covered data whose true labels
  // disagree.
  auto data = testing::threshold_dataset(300, 5.0);
  const auto model = DecisionTreeLearner().train(data);
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  const OverlayModel hard(*model, frs, OverlayMode::kHard, data.schema());
  const auto agreement = rule_agreement(hard, frs.rule(0), data);
  EXPECT_DOUBLE_EQ(agreement.mra, 1.0);
  // True-label accuracy inside coverage collapses (labels there are 1).
  std::size_t covered = 0, correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.row(i)[0] <= 7.0) continue;
    ++covered;
    correct += hard.predict(data.row(i)) == data.label(i) ? 1 : 0;
  }
  ASSERT_GT(covered, 0u);
  EXPECT_LT(static_cast<double>(correct) / static_cast<double>(covered), 0.1);
}

}  // namespace
}  // namespace frote
