// Reproducibility lock: identical seeds must yield bit-identical FROTE
// output. Future parallelism/sharding PRs must keep these invariants — a
// parallel implementation that reorders RNG draws or accumulates floats in
// a different order will fail here, not in production.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/exp/learners.hpp"
#include "frote/ml/decision_tree.hpp"
#include "frote/util/parallel.hpp"
#include "frote/util/rng.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

/// True iff the two datasets are bit-identical: same schema width, same row
/// count, and every feature value / label compares exactly equal (no
/// tolerance — determinism means the doubles match to the last bit).
void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

FroteResult run_frote(std::uint64_t seed) {
  auto data = testing::threshold_dataset(150, 5.0, /*seed=*/11);
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  DecisionTreeLearner learner;
  FroteConfig config;
  config.tau = 6;
  config.q = 0.4;
  config.k = 5;
  config.seed = seed;
  // kNone keeps the conflicting labels in place, so alignment must come from
  // synthetic instances — guaranteeing the RNG-driven path actually runs.
  config.mod_strategy = ModStrategy::kNone;
  return frote_edit(data, learner, frs, config);
}

TEST(Determinism, SameSeedSameAugmentation) {
  const auto first = run_frote(99);
  const auto second = run_frote(99);
  // The scenario must exercise augmentation, or the comparison is vacuous.
  EXPECT_GT(first.instances_added, 0u);
  EXPECT_EQ(first.instances_added, second.instances_added);
  EXPECT_EQ(first.iterations_run, second.iterations_run);
  EXPECT_EQ(first.iterations_accepted, second.iterations_accepted);
  expect_bit_identical(first.augmented, second.augmented);
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the test above isn't vacuous: different seeds should
  // produce observably different augmented datasets (row count or content).
  const auto first = run_frote(1);
  const auto second = run_frote(2);
  bool identical = first.augmented.size() == second.augmented.size();
  if (identical) {
    for (std::size_t i = 0; identical && i < first.augmented.size(); ++i) {
      const auto row_a = first.augmented.row(i);
      const auto row_b = second.augmented.row(i);
      for (std::size_t f = 0; f < row_a.size(); ++f) {
        if (row_a[f] != row_b[f]) {
          identical = false;
          break;
        }
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Determinism, RngStreamIsStableAcrossInstances) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "draw " << i;
  }
  // Reseeding restores the stream from the start.
  Rng c(555);
  std::vector<std::uint64_t> first_draws;
  for (int i = 0; i < 16; ++i) first_draws.push_back(c.next_u64());
  c.reseed(555);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c.next_u64(), first_draws[static_cast<std::size_t>(i)]);
  }
}

TEST(Determinism, DerivedSeedsAreStable) {
  // derive_seed is pure: same (base, stream) -> same child seed, and
  // nearby streams decorrelate.
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(Determinism, ThreadDefaultOverrideKeepsBitIdenticalOutput) {
  // The deterministic parallel subsystem (util/parallel.hpp) must make a
  // process-wide thread override invisible in the output: same seed, same
  // bits, whatever FROTE_NUM_THREADS / set_default_threads says.
  // (tests/test_parallel.cpp covers the per-component threads knobs.)
  const auto serial = run_frote(99);
  set_default_threads(8);
  const auto threaded = run_frote(99);
  set_default_threads(0);
  EXPECT_GT(serial.instances_added, 0u);
  EXPECT_EQ(serial.instances_added, threaded.instances_added);
  EXPECT_EQ(serial.iterations_run, threaded.iterations_run);
  expect_bit_identical(serial.augmented, threaded.augmented);
}

TEST(Determinism, LearnerTrainingIsDeterministic) {
  auto data = testing::blobs_dataset(60, 6.0, 9);
  auto learner_a = make_learner(LearnerKind::kLR, /*seed=*/7, /*fast=*/true);
  auto learner_b = make_learner(LearnerKind::kLR, /*seed=*/7, /*fast=*/true);
  auto model_a = learner_a->train(data);
  auto model_b = learner_b->train(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto pa = model_a->predict_proba(data.row(i));
    const auto pb = model_b->predict_proba(data.row(i));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_EQ(pa[c], pb[c]) << "row " << i << " class " << c;
    }
  }
}

}  // namespace
}  // namespace frote
