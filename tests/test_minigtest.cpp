// Self-test for the vendored minigtest runner (third_party/minigtest).
// Exercises the macro semantics the rest of the suite depends on: fixture
// setup, parameterized expansion (Values/Range/Combine), fatal-vs-nonfatal
// flow, floating-point comparison contracts, and failure counting. When the
// build selects a real GoogleTest these assertions all hold there too — the
// suite doubles as a compatibility contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace {

TEST(MiniGtest, BasicComparisons) {
  EXPECT_EQ(2 + 2, 4);
  EXPECT_NE(std::string("a"), std::string("b"));
  EXPECT_GT(3, 2);
  EXPECT_GE(3, 3);
  EXPECT_LT(-1, 0);
  EXPECT_LE(7, 7);
  EXPECT_TRUE(1 == 1);
  EXPECT_FALSE(1 == 2);
}

TEST(MiniGtest, FloatingPointContracts) {
  // EXPECT_DOUBLE_EQ tolerates rounding in the last few ULPs...
  EXPECT_DOUBLE_EQ(0.1 + 0.2, 0.3);
  // ...but is strict beyond that, unlike EXPECT_NEAR with a loose tolerance.
  EXPECT_NEAR(1.0, 1.05, 0.1);
  EXPECT_DOUBLE_EQ(1.0, 1.0);
  EXPECT_FLOAT_EQ(1.0f, 1.0f + 1e-8f);
}

TEST(MiniGtest, ThrowAssertions) {
  EXPECT_THROW(throw std::runtime_error("boom"), std::runtime_error);
  // A derived exception satisfies a base-class expectation.
  EXPECT_THROW(throw std::out_of_range("oor"), std::logic_error);
  EXPECT_NO_THROW((void)(1 + 1));
}

TEST(MiniGtest, AssertionsAcceptStreamedContext) {
  const int seed = 7;
  EXPECT_EQ(seed, 7) << "seed " << seed;
  ASSERT_TRUE(seed > 0) << "must be positive, got " << seed;
}

// --- Fixture semantics: SetUp runs before each test body. -----------------

class FixtureState : public ::testing::Test {
 protected:
  void SetUp() override { value_ = 41; }
  int value_ = 0;
};

TEST_F(FixtureState, SetUpRanBeforeBody) {
  EXPECT_EQ(value_, 41);
  ++value_;  // must not leak into the next test: each test gets a new fixture
  EXPECT_EQ(value_, 42);
}

TEST_F(FixtureState, EachTestGetsFreshFixture) { EXPECT_EQ(value_, 41); }

// --- Parameterized expansion. ---------------------------------------------

class ValuesParam : public ::testing::TestWithParam<int> {};

TEST_P(ValuesParam, ReceivesEachValue) {
  const int p = GetParam();
  EXPECT_TRUE(p == 2 || p == 3 || p == 5) << "unexpected param " << p;
}

INSTANTIATE_TEST_SUITE_P(Primes, ValuesParam, ::testing::Values(2, 3, 5));

class RangeParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeParam, ReceivesHalfOpenRange) {
  // Range(1, 5) must expand to exactly {1, 2, 3, 4}.
  EXPECT_GE(GetParam(), 1u);
  EXPECT_LT(GetParam(), 5u);
}

INSTANTIATE_TEST_SUITE_P(HalfOpen, RangeParam,
                         ::testing::Range<std::uint64_t>(1, 5));

class CombineParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CombineParam, ReceivesCrossProduct) {
  const auto [a, b] = GetParam();
  EXPECT_TRUE(a == 1 || a == 2);
  EXPECT_TRUE(b == 10 || b == 20 || b == 30);
}

INSTANTIATE_TEST_SUITE_P(
    Cross, CombineParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2),
                       ::testing::Values<std::size_t>(10, 20, 30)));

// Expansion-count check: every (prefix × value × pattern) combination must
// run exactly once. Each CountingParam test contributes to a global tally;
// the audit is itself a parameterized suite declared LAST in this file, so
// it registers — and therefore runs — after every tally has been recorded
// (parameterized suites expand in declaration order in both runners).
class CountingParam : public ::testing::TestWithParam<int> {
 public:
  static std::multiset<int>& seen() {
    static std::multiset<int> s;
    return s;
  }
};

TEST_P(CountingParam, Tally) { seen().insert(GetParam()); }

INSTANTIATE_TEST_SUITE_P(First, CountingParam, ::testing::Values(1, 2));
INSTANTIATE_TEST_SUITE_P(Second, CountingParam, ::testing::Values(2));

class TallyAudit : public ::testing::TestWithParam<int> {};

TEST_P(TallyAudit, ParamExpansionRanOncePerInstantiationValue) {
  const auto& seen = CountingParam::seen();
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.count(1), 1u);
  EXPECT_EQ(seen.count(2), 2u);
}

INSTANTIATE_TEST_SUITE_P(Final, TallyAudit, ::testing::Values(0));

}  // namespace
