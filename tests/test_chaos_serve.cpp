// Kill-recover chaos suite for frote_serve (label: chaos).
//
// The claim under test is the durability contract of the spool
// (core/session_pool.hpp + util/fsio.hpp): a daemon SIGKILLed at *any*
// point inside the spool write protocol — no unwinding, no flushes, the
// moral equivalent of power loss — leaves the session recoverable to
// exactly the pre-checkpoint or post-checkpoint state. Never a torn file,
// never a third state, and never a quarantine on this clean-crash path
// (quarantines are for bit rot and foreign writers, not for crashes the
// rename protocol is supposed to absorb).
//
// Mechanics: deterministic fault injection (util/faultsim.hpp) with
// action "kill" turns every fault point into a crash site, and the nth=K
// schedule turns "crash somewhere" into a *sweep* — for each registered
// write-side fault point we run the same request script with nth=1, 2, 3,
// ... until the daemon survives the whole script, so every individual
// syscall-level crash window is visited exactly once. Golden runs
// (fault-free, same script prefixes) provide the byte-exact expected
// states; the recovered daemon's session.result must equal one of the two
// adjacent goldens byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "serve_harness.hpp"

namespace {

namespace fs = std::filesystem;
using frote::JsonValue;
using frote::testing::create_line;
using frote::testing::parse_response;
using frote::testing::serve_spec;
using frote::testing::ServeProcess;
using frote::testing::session_line;
using frote::testing::step_line;
using frote::testing::write_threshold_csv;

// One step keeps the sweep fast while still distinguishing three states:
// fresh (0 steps), post-step (1 step), and "never created".
constexpr std::size_t kSteps = 1;
// The canonical envelope id of the session.result probe — identical in
// golden and recovery runs so the full response lines byte-compare.
constexpr int kResultId = 9;
// Safety bound on the nth sweep; every point hits far fewer times.
constexpr int kMaxNth = 12;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("chaos_scratch") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The shared CSV: one dataset file for every run, so specs (and thus
/// responses) are byte-identical across golden, chaos, and recovery runs.
std::string shared_csv() {
  static const std::string path = [] {
    const fs::path dir = scratch_dir("data");
    const fs::path csv = dir / "train.csv";
    write_threshold_csv(csv.string());
    return csv.string();
  }();
  return path;
}

/// The request script: create, kSteps steps, result. Request ids are
/// fixed so every run's response lines are comparable byte-for-byte.
std::vector<std::string> script_lines(std::size_t steps = kSteps) {
  std::vector<std::string> lines;
  lines.push_back(create_line(1, serve_spec(shared_csv())));
  for (std::size_t i = 0; i < steps; ++i) {
    lines.push_back(step_line(static_cast<std::int64_t>(2 + i), "s-000001"));
  }
  lines.push_back(session_line(kResultId, "session.result", "s-000001"));
  return lines;
}

ServeProcess::Options spool_options(const fs::path& spool,
                                    const std::string& faults = "") {
  ServeProcess::Options options;
  options.args = {"--spool", spool.string(), "--evict-every-request"};
  if (!faults.empty()) {
    options.args.push_back("--faults");
    options.args.push_back(faults);
  }
  return options;
}

/// Golden state c: the full fault-free response transcript of
/// create + c steps + result on a fresh spool. goldens[c].back() is the
/// result line — the byte-exact witness of the c-step session state.
std::vector<std::vector<std::string>> build_goldens(const fs::path& base) {
  std::vector<std::vector<std::string>> goldens;
  for (std::size_t c = 0; c <= kSteps; ++c) {
    const fs::path spool = base / ("golden-" + std::to_string(c));
    fs::create_directories(spool);
    ServeProcess daemon(spool_options(spool));
    std::vector<std::string> responses;
    responses.push_back(daemon.request(script_lines(c)[0]));
    for (std::size_t i = 0; i < c; ++i) {
      responses.push_back(daemon.request(script_lines(c)[1 + i]));
    }
    responses.push_back(
        daemon.request(session_line(kResultId, "session.result", "s-000001")));
    EXPECT_EQ(daemon.close_and_wait(), 0);
    goldens.push_back(std::move(responses));
  }
  return goldens;
}

int error_code(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  if (error == nullptr) return 0;
  const JsonValue* code = error->find("code");
  return code == nullptr ? 0 : static_cast<int>(code->as_int64());
}

/// Restart fault-free on the crashed spool and probe s-000001. Returns the
/// raw response line; also asserts the clean-crash invariant that recovery
/// quarantined nothing (and swept any stale .tmp files).
std::string recover_and_probe(const fs::path& spool) {
  ServeProcess daemon(spool_options(spool));
  const std::string line =
      daemon.request(session_line(kResultId, "session.result", "s-000001"));
  for (const auto& item : fs::directory_iterator(spool)) {
    const std::string name = item.path().filename().string();
    EXPECT_TRUE(name.find(".corrupt") == std::string::npos)
        << "clean crash produced a quarantine: " << name;
    EXPECT_TRUE(name.find(".tmp") == std::string::npos)
        << "stale tmp file survived recovery: " << name;
  }
  EXPECT_EQ(daemon.close_and_wait(), 0);
  return line;
}

/// Sweep one fault point: kill the daemon at its 1st, 2nd, ... hit until a
/// run survives the whole script. After every crash, recovery must land on
/// one of the two goldens adjacent to the crash position.
void sweep_kill_point(const std::string& point,
                      const std::vector<std::vector<std::string>>& goldens,
                      const fs::path& base) {
  const std::vector<std::string> script = script_lines();
  const std::vector<std::string>& full_run = goldens[kSteps];
  bool survived = false;
  for (int nth = 1; nth <= kMaxNth && !survived; ++nth) {
    const fs::path spool =
        base / (point + "-nth" + std::to_string(nth));
    fs::create_directories(spool);
    std::vector<std::string> got;
    {
      ServeProcess daemon(spool_options(
          spool, point + ":nth=" + std::to_string(nth) + ":kill"));
      for (const std::string& line : script) {
        auto response = daemon.request_if_alive(line);
        if (!response.has_value()) break;
        got.push_back(*response);
      }
      survived = got.size() == script.size();
      if (survived) {
        EXPECT_EQ(daemon.close_and_wait(), 0) << point << " nth=" << nth;
      } else {
        daemon.close_stdin();
        EXPECT_EQ(daemon.wait(), -SIGKILL) << point << " nth=" << nth;
      }
    }
    // Determinism up to the crash: every response that did arrive is
    // byte-identical to the fault-free run's.
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], full_run[i]) << point << " nth=" << nth;
    }
    if (survived) break;

    // Recovery: with r responses completed the session had r-1 completed
    // steps, and the crash happened inside request r+1 — so the spool
    // holds either the pre-request or post-request checkpoint. With no
    // create response, the session either never reached the spool
    // (-32001) or committed its fresh checkpoint just before dying.
    const std::string probe = recover_and_probe(spool);
    std::vector<std::string> allowed;
    if (got.empty()) {
      allowed.push_back(goldens[0].back());
    } else {
      const std::size_t steps_done = std::min(got.size() - 1, kSteps);
      allowed.push_back(goldens[steps_done].back());
      allowed.push_back(goldens[std::min(steps_done + 1, kSteps)].back());
    }
    const JsonValue parsed = parse_response(probe);
    const bool vanished =
        got.empty() && error_code(parsed) == -32001;  // never spooled
    const bool matches_golden =
        std::find(allowed.begin(), allowed.end(), probe) != allowed.end();
    EXPECT_TRUE(vanished || matches_golden)
        << point << " nth=" << nth << ": recovered to a third state:\n  "
        << probe << "\nallowed:\n  " << allowed[0]
        << (allowed.size() > 1 ? "\n  " + allowed[1] : "");
  }
  EXPECT_TRUE(survived) << point
                        << ": sweep never reached a surviving run (nth > "
                        << kMaxNth << "?)";
}

TEST(ChaosServe, KillAtEveryWritePathFaultPointRecoversAdjacent) {
  const fs::path base = scratch_dir("kill-sweep");
  const auto goldens = build_goldens(base);
  ASSERT_EQ(goldens.size(), kSteps + 1);
  for (const char* point :
       {"fsio.write", "fsio.fsync", "fsio.close", "fsio.rename",
        "fsio.fsync_dir", "fsio.read", "pool.evict", "pool.restore"}) {
    sweep_kill_point(point, goldens, base);
  }
}

TEST(ChaosServe, KillDuringShutdownSpoolRecoversAllOrNothing) {
  const fs::path base = scratch_dir("shutdown-sweep");
  const auto goldens = build_goldens(base);

  // No per-request eviction here: the only checkpoint write is the
  // EOF-triggered checkpoint_all sweep, so the spool transitions from
  // "no checkpoint" to "final checkpoint" in one atomic rename. A kill
  // anywhere inside that write must recover to exactly nothing (-32001)
  // or exactly the final state — all or nothing.
  const std::vector<std::string> script = script_lines();
  for (const char* point : {"fsio.write", "fsio.rename", "fsio.fsync_dir",
                            "pool.evict"}) {
    bool survived = false;
    for (int nth = 1; nth <= kMaxNth && !survived; ++nth) {
      const fs::path spool =
          base / (std::string(point) + "-nth" + std::to_string(nth));
      fs::create_directories(spool);
      ServeProcess::Options options;
      options.args = {"--spool", spool.string(), "--faults",
                      std::string(point) + ":nth=" + std::to_string(nth) +
                          ":kill"};
      std::vector<std::string> got;
      int exit_code = 0;
      {
        ServeProcess daemon(options);
        for (const std::string& line : script) {
          auto response = daemon.request_if_alive(line);
          if (!response.has_value()) break;
          got.push_back(*response);
        }
        exit_code = daemon.close_and_wait();  // EOF → checkpoint_all
      }
      survived = exit_code == 0 && got.size() == script.size();
      if (survived) break;

      const std::string probe = recover_and_probe(spool);
      const JsonValue parsed = parse_response(probe);
      const bool nothing = error_code(parsed) == -32001;
      const bool everything =
          got.size() == script.size() && probe == goldens[kSteps].back();
      EXPECT_TRUE(nothing || everything)
          << point << " nth=" << nth
          << ": shutdown spool recovered a third state:\n  " << probe;
    }
    EXPECT_TRUE(survived) << point << ": shutdown sweep never survived";
  }
}

}  // namespace
