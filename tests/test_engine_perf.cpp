// Perf contract for the API redesign (slow label): driving the loop through
// Engine/Session directly must not cost more than 5% over the frote_edit()
// shim path — i.e. the steppable API's bookkeeping (reports, observers,
// progress snapshots) stays out of the hot loop. bench_micro's
// BM_FroteIteration / BM_EngineSessionRun pair tracks the same quantity as
// a trend in BENCH_micro.json.
#include <gtest/gtest.h>

#include <chrono>

#include "frote/core/engine.hpp"
#include "frote/ml/decision_tree.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

struct Workload {
  // Large enough that one edit takes tens of milliseconds — the 5% relative
  // bound has to dominate scheduler noise. The test is registered with
  // RUN_SERIAL so parallel ctest runs don't oversubscribe it.
  Dataset train = testing::threshold_dataset(600, 5.0, /*seed=*/11);
  FeedbackRuleSet frs{std::vector<FeedbackRule>{testing::x_gt_rule(7.0, 0)}};
  DecisionTreeLearner learner;
  FroteConfig config;

  Workload() {
    config.tau = 10;
    config.q = 0.5;
    config.eta = 30;
    config.seed = 99;
    config.mod_strategy = ModStrategy::kNone;
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(EnginePerf, SteppingNeverCopiesTheDataset) {
  // The incremental session workspace contract: after open() (which clones
  // the input once into D̂), the select → generate → stage → retrain →
  // commit/rollback loop runs with zero Dataset copy constructions on both
  // the accept and the reject path — candidate batches are staged in place.
  Workload w;
  w.config.tau = 6;
  const auto engine =
      Engine::Builder().from_config(w.config).rules(w.frs).build().value();
  auto session = engine.open(w.train, w.learner).value();
  const std::uint64_t copies_after_open = Dataset::copy_count();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  while (!session.finished()) {
    const StepReport report = session.step();
    if (report.terminal()) break;
    accepted += report.status == StepStatus::kAccepted ? 1 : 0;
    rejected += report.status == StepStatus::kRejected ? 1 : 0;
  }
  EXPECT_GT(accepted + rejected, 0u);  // the loop must actually run
  EXPECT_EQ(Dataset::copy_count(), copies_after_open)
      << "Session::step() copied the dataset (" << accepted << " accepted, "
      << rejected << " rejected steps)";
}

TEST(EnginePerf, SessionOverheadVsShimUnderFivePercent) {
  Workload w;
  const auto engine =
      Engine::Builder().from_config(w.config).rules(w.frs).build().value();

  // One warm-up of each path (page-in, allocator warm-up), then min-of-N:
  // the minimum is the least-noise estimate of the true cost, and both
  // paths execute the identical algorithm, so any stable gap is API
  // overhead.
  std::size_t sink = 0;
  sink += frote_edit(w.train, w.learner, w.frs, w.config).instances_added;
  {
    auto session = engine.open(w.train, w.learner).value();
    session.run();
    sink += std::move(session).result().instances_added;
  }

  // 5% relative budget plus 2ms absolute slack for scheduler noise on very
  // fast runs. Measurements are interleaved (A/B-paired per repeat) and the
  // whole round is retried once before failing, so a transient neighbor
  // workload on a shared CI box can't fail the suite on its own.
  constexpr int kRepeats = 7;
  constexpr int kRounds = 2;
  double shim_min = 1e100;
  double session_min = 1e100;
  bool within_budget = false;
  for (int round = 0; round < kRounds && !within_budget; ++round) {
    shim_min = 1e100;
    session_min = 1e100;
    for (int r = 0; r < kRepeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      sink += frote_edit(w.train, w.learner, w.frs, w.config).instances_added;
      shim_min = std::min(shim_min, seconds_since(start));

      start = std::chrono::steady_clock::now();
      auto session = engine.open(w.train, w.learner).value();
      session.run();
      sink += std::move(session).result().instances_added;
      session_min = std::min(session_min, seconds_since(start));
    }
    within_budget = session_min <= shim_min * 1.05 + 2e-3;
  }
  EXPECT_GT(sink, 0u);  // keep the work observable

  EXPECT_TRUE(within_budget)
      << "Engine/Session path took " << session_min << "s vs shim "
      << shim_min << "s (bound: 5% + 2ms, " << kRounds << " rounds)";
}

}  // namespace
}  // namespace frote
