// Property-based tests: randomized invariants checked across seeds via
// parameterized suites.
//  - the branch & bound IP matches brute-force enumeration on random
//    instances;
//  - clause implication is sound (implies ⇒ pointwise subset on samples);
//  - the coverage-aware split partitions exactly and honours tcf;
//  - rule-constrained generation always satisfies the rule across random
//    rule shapes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frote/core/generate.hpp"
#include "frote/data/split.hpp"
#include "frote/opt/ip.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

class IpVsEnumeration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpVsEnumeration, BranchAndBoundIsOptimal) {
  Rng rng(GetParam());
  // Random instance: n binaries, m range rows with random 0/1 coverage.
  const std::size_t n = 4 + rng.index(6);   // 4..9 binaries
  const std::size_t m = 1 + rng.index(3);   // 1..3 rows
  LpProblem lp;
  lp.num_vars = n + m;  // binaries + slacks
  lp.num_rows = m;
  lp.c.assign(lp.num_vars, 0.0);
  lp.lo.assign(lp.num_vars, 0.0);
  lp.hi.assign(lp.num_vars, 1.0);
  lp.a.assign(lp.num_rows * lp.num_vars, 0.0);
  lp.b.assign(m, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    lp.c[j] = 1.0 + static_cast<double>(rng.index(5));
  }
  std::vector<std::vector<bool>> member(m, std::vector<bool>(n));
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < n; ++j) {
      member[i][j] = rng.bernoulli(0.6);
      if (member[i][j]) {
        lp.set_coeff(i, j, 1.0);
        ++count;
      }
    }
    // Bounds l..u with l ≤ count so feasibility is possible.
    const double l = count == 0 ? 0.0 : static_cast<double>(rng.index(count));
    const double u =
        l + static_cast<double>(rng.index(static_cast<std::size_t>(
                static_cast<double>(count) - l + 1.0)));
    lp.set_coeff(i, n + i, 1.0);
    lp.hi[n + i] = u - l;
    lp.b[i] = u;
  }
  std::vector<std::size_t> binaries(n);
  for (std::size_t j = 0; j < n; ++j) binaries[j] = j;
  const auto ip = solve_binary_ip(lp, binaries);

  // Brute force over all 2^n assignments.
  double best = -1.0;
  bool any_feasible = false;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    bool feasible = true;
    for (std::size_t i = 0; i < m && feasible; ++i) {
      std::size_t total = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (member[i][j] && ((mask >> j) & 1u)) ++total;
      }
      const double lo = lp.b[i] - lp.hi[n + i];
      if (static_cast<double>(total) < lo - 1e-9 ||
          static_cast<double>(total) > lp.b[i] + 1e-9) {
        feasible = false;
      }
    }
    if (!feasible) continue;
    any_feasible = true;
    double value = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if ((mask >> j) & 1u) value += lp.c[j];
    }
    best = std::max(best, value);
  }

  ASSERT_EQ(ip.feasible, any_feasible) << "seed " << GetParam();
  if (any_feasible) {
    EXPECT_NEAR(ip.objective, best, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, IpVsEnumeration,
                         ::testing::Range<std::uint64_t>(1, 21));

class ImplicationSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImplicationSoundness, ImpliesMeansPointwiseSubset) {
  Rng rng(GetParam() * 131);
  auto schema = testing::mixed_schema();
  auto random_clause = [&]() {
    Clause clause;
    const std::size_t preds = 1 + rng.index(3);
    for (std::size_t i = 0; i < preds; ++i) {
      const std::size_t f = rng.index(3);
      if (f == 2) {
        clause.add({f, rng.bernoulli(0.5) ? Op::kEq : Op::kNe,
                    static_cast<double>(rng.index(3))});
      } else {
        static const Op kOps[] = {Op::kGt, Op::kGe, Op::kLt, Op::kLe};
        clause.add({f, kOps[rng.index(4)], rng.uniform(0.0, 10.0)});
      }
    }
    return clause;
  };
  const Clause a = random_clause();
  const Clause b = random_clause();
  if (!a.implies(b, *schema)) return;  // property only constrains "true"
  // Sample points satisfying a; each must satisfy b.
  for (int trial = 0; trial < 300; ++trial) {
    const std::vector<double> point = {rng.uniform(-2.0, 12.0),
                                       rng.uniform(-2.0, 12.0),
                                       static_cast<double>(rng.index(3))};
    if (!a.satisfies(point)) continue;
    EXPECT_TRUE(b.satisfies(point))
        << "a=" << a.to_string(*schema) << " b=" << b.to_string(*schema);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomClauses, ImplicationSoundness,
                         ::testing::Range<std::uint64_t>(1, 41));

class SplitProperties : public ::testing::TestWithParam<double> {};

TEST_P(SplitProperties, CoverageSplitPartitionsExactly) {
  const double tcf = GetParam();
  auto data = testing::threshold_dataset(300, 5.0, 77);
  FeedbackRuleSet frs({testing::x_gt_rule(6.0, 0)});
  const auto cov = frs.coverage_union(data);
  Rng rng(78);
  const auto split = coverage_split(data, cov, tcf, 0.8, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.size());

  // Covered rows in train ≈ tcf · |cov| (exact by construction).
  std::size_t covered_in_train = 0;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    if (frs.rule(0).covers(split.train.row(i))) ++covered_in_train;
  }
  EXPECT_EQ(covered_in_train,
            static_cast<std::size_t>(tcf * static_cast<double>(cov.size())));
}

INSTANTIATE_TEST_SUITE_P(TcfSweep, SplitProperties,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.4, 1.0));

class GenerationInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GenerationInvariant, SynthesisAlwaysSatisfiesRandomRules) {
  Rng rng(GetParam() * 977);
  auto data = testing::threshold_dataset(400, 5.0, GetParam());
  // Random 1-2 predicate rule with moderate coverage.
  Clause clause;
  clause.add({0, rng.bernoulli(0.5) ? Op::kGt : Op::kLe,
              rng.uniform(2.0, 8.0)});
  if (rng.bernoulli(0.5)) {
    clause.add({2, rng.bernoulli(0.5) ? Op::kEq : Op::kNe,
                static_cast<double>(rng.index(3))});
  }
  FeedbackRule rule =
      FeedbackRule::deterministic(clause, static_cast<int>(rng.index(2)), 2);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  if (bp.per_rule[0].indices.size() < 2) return;
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  std::vector<double> row;
  int label = 0;
  for (std::size_t slot = 0;
       slot < std::min<std::size_t>(bp.per_rule[0].indices.size(), 40);
       ++slot) {
    if (!gen.generate(slot, rng, row, label)) continue;
    EXPECT_TRUE(rule.covers(row)) << rule.to_string(data.schema());
    EXPECT_EQ(label, rule.target_class());
    data.schema().validate_row(row);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRules, GenerationInvariant,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace frote
