#include "frote/knn/knn.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace frote {
namespace {

TEST(MixedDistance, ZeroForIdenticalRows) {
  auto data = testing::threshold_dataset(50);
  const auto d = MixedDistance::fit(data);
  EXPECT_DOUBLE_EQ(d(data.row(3), data.row(3)), 0.0);
}

TEST(MixedDistance, SymmetricAndNonNegative) {
  auto data = testing::threshold_dataset(50);
  const auto d = MixedDistance::fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double dij = d(data.row(i), data.row(j));
      EXPECT_GE(dij, 0.0);
      EXPECT_DOUBLE_EQ(dij, d(data.row(j), data.row(i)));
    }
  }
}

TEST(MixedDistance, TriangleInequalityHolds) {
  auto data = testing::threshold_dataset(30);
  const auto d = MixedDistance::fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      for (std::size_t k = 0; k < 10; ++k) {
        EXPECT_LE(d(data.row(i), data.row(k)),
                  d(data.row(i), data.row(j)) + d(data.row(j), data.row(k)) +
                      1e-9);
      }
    }
  }
}

TEST(MixedDistance, CategoricalMismatchAddsPenalty) {
  auto data = testing::threshold_dataset(50);
  const auto d = MixedDistance::fit(data);
  std::vector<double> a = {5.0, 5.0, 0.0};
  std::vector<double> b = {5.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(d(a, b), d.categorical_penalty());
}

TEST(BruteKnn, FindsSelfFirst) {
  auto data = testing::threshold_dataset(60);
  const BruteKnn knn(data, MixedDistance::fit(data));
  const auto nb = knn.query(data.row(17), 1);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(knn.dataset_index(nb[0].index), 17u);
  EXPECT_DOUBLE_EQ(nb[0].distance, 0.0);
}

TEST(BruteKnn, ResultsSortedByDistance) {
  auto data = testing::threshold_dataset(60);
  const BruteKnn knn(data, MixedDistance::fit(data));
  const auto nb = knn.query(data.row(0), 10);
  for (std::size_t i = 1; i < nb.size(); ++i) {
    EXPECT_LE(nb[i - 1].distance, nb[i].distance);
  }
}

TEST(BruteKnn, SubsetIndexingMapsBack) {
  auto data = testing::threshold_dataset(60);
  std::vector<std::size_t> subset = {5, 10, 15, 20, 25};
  const BruteKnn knn(data, MixedDistance::fit(data), subset);
  EXPECT_EQ(knn.size(), 5u);
  const auto nb = knn.query(data.row(10), 1);
  EXPECT_EQ(knn.dataset_index(nb[0].index), 10u);
}

TEST(BruteKnn, KLargerThanSetReturnsAll) {
  auto data = testing::threshold_dataset(5);
  const BruteKnn knn(data, MixedDistance::fit(data));
  EXPECT_EQ(knn.query(data.row(0), 50).size(), 5u);
}

/// Property: ball tree and brute force agree exactly on every query, for a
/// sweep of dataset sizes and k values.
class BallTreeAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BallTreeAgreement, MatchesBruteForce) {
  const auto [n, k] = GetParam();
  auto data = testing::threshold_dataset(n, 5.0, /*seed=*/n * 31 + k);
  const auto distance = MixedDistance::fit(data);
  const BruteKnn brute(data, distance);
  const BallTreeKnn tree(data, distance, {}, /*leaf_size=*/4);
  for (std::size_t q = 0; q < std::min<std::size_t>(n, 25); ++q) {
    const auto expected = brute.query(data.row(q), k);
    const auto actual = tree.query(data.row(q), k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(tree.dataset_index(actual[i].index),
                brute.dataset_index(expected[i].index))
          << "n=" << n << " k=" << k << " query=" << q << " rank=" << i;
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BallTreeAgreement,
    ::testing::Combine(::testing::Values<std::size_t>(3, 10, 50, 200, 500),
                       ::testing::Values<std::size_t>(1, 3, 5, 11)));

TEST(BallTreeKnn, EmptyQueryOnZeroK) {
  auto data = testing::threshold_dataset(20);
  const BallTreeKnn tree(data, MixedDistance::fit(data));
  EXPECT_TRUE(tree.query(data.row(0), 0).empty());
}

TEST(BallTreeKnn, SubsetIndexing) {
  auto data = testing::threshold_dataset(60);
  std::vector<std::size_t> subset = {2, 4, 6, 8, 10, 12, 14};
  const BallTreeKnn tree(data, MixedDistance::fit(data), subset);
  EXPECT_EQ(tree.size(), 7u);
  const auto nb = tree.query(data.row(8), 1);
  EXPECT_EQ(tree.dataset_index(nb[0].index), 8u);
}

}  // namespace
}  // namespace frote
