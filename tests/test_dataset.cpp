#include "frote/data/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "frote/data/csv.hpp"
#include "frote/data/encoder.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

using testing::mixed_schema;

TEST(Schema, BasicProperties) {
  auto schema = mixed_schema();
  EXPECT_EQ(schema->num_features(), 3u);
  EXPECT_EQ(schema->num_numeric(), 2u);
  EXPECT_EQ(schema->num_categorical(), 1u);
  EXPECT_EQ(schema->num_classes(), 2u);
  EXPECT_EQ(schema->feature_index("color"), 2u);
  EXPECT_EQ(schema->category_code(2, "green"), 1u);
}

TEST(Schema, UnknownFeatureThrows) {
  auto schema = mixed_schema();
  EXPECT_THROW(schema->feature_index("nope"), Error);
  EXPECT_THROW(schema->category_code(2, "purple"), Error);
}

TEST(Schema, ValidateRowCatchesBadCategoryCode) {
  auto schema = mixed_schema();
  EXPECT_NO_THROW(schema->validate_row({1.0, 2.0, 2.0}));
  EXPECT_THROW(schema->validate_row({1.0, 2.0, 3.0}), Error);   // code 3
  EXPECT_THROW(schema->validate_row({1.0, 2.0, 0.5}), Error);   // non-integer
  EXPECT_THROW(schema->validate_row({1.0, 2.0}), Error);        // width
}

TEST(Schema, ValidateRowCatchesNonFinite) {
  auto schema = mixed_schema();
  EXPECT_THROW(
      schema->validate_row({std::numeric_limits<double>::infinity(), 0.0, 0.0}),
      Error);
}

TEST(Dataset, AddAndAccess) {
  Dataset data(mixed_schema());
  data.add_row({1.0, 2.0, 0.0}, 0);
  data.add_row({3.0, 4.0, 1.0}, 1);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data.row(1)[0], 3.0);
  EXPECT_EQ(data.label(0), 0);
  EXPECT_EQ(data.label(1), 1);
}

TEST(Dataset, BadLabelRejected) {
  Dataset data(mixed_schema());
  EXPECT_THROW(data.add_row({1.0, 2.0, 0.0}, 2), Error);
  EXPECT_THROW(data.add_row({1.0, 2.0, 0.0}, -1), Error);
}

TEST(Dataset, SubsetPreservesOrder) {
  auto data = testing::threshold_dataset(20);
  auto sub = data.subset({5, 1, 9});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.row(0)[0], data.row(5)[0]);
  EXPECT_DOUBLE_EQ(sub.row(1)[0], data.row(1)[0]);
  EXPECT_EQ(sub.label(2), data.label(9));
}

TEST(Dataset, RemoveRows) {
  auto data = testing::threshold_dataset(10);
  const double kept_x = data.row(3)[0];
  data.remove_rows({0, 1, 2});
  EXPECT_EQ(data.size(), 7u);
  EXPECT_DOUBLE_EQ(data.row(0)[0], kept_x);
}

TEST(Dataset, RemoveRowsHandlesDuplicatesAndUnsorted) {
  auto data = testing::threshold_dataset(10);
  const double kept3 = data.row(3)[0];
  const double kept9 = data.row(9)[0];
  data.remove_rows({5, 2, 5, 2});
  EXPECT_EQ(data.size(), 8u);
  // Survivors keep their relative order around the removed positions.
  EXPECT_DOUBLE_EQ(data.row(2)[0], kept3);
  EXPECT_DOUBLE_EQ(data.row(7)[0], kept9);
}

TEST(Dataset, RemoveRowsPreservesRowIds) {
  auto data = testing::threshold_dataset(6);
  const auto id4 = data.row_id(4);
  data.remove_rows({0, 2});
  EXPECT_EQ(data.row_id(2), id4);  // row 4 slid to position 2, same identity
}

TEST(Dataset, EmptyAppendIsANoOpOnRows) {
  auto data = testing::threshold_dataset(7);
  Dataset empty(data.schema_ptr());
  data.append(empty);
  EXPECT_EQ(data.size(), 7u);
}

TEST(Dataset, StageCommitKeepsRowsAndBumpsNothingDestructive) {
  auto data = testing::threshold_dataset(10);
  auto batch = testing::threshold_dataset(4, 5.0, 99);
  const auto epoch = data.append_epoch();
  EXPECT_FALSE(data.has_staged());
  const std::size_t first = data.stage_rows(batch);
  EXPECT_EQ(first, 10u);
  EXPECT_TRUE(data.has_staged());
  EXPECT_EQ(data.staged_begin(), 10u);
  EXPECT_EQ(data.size(), 14u);  // staged rows are immediately visible
  EXPECT_DOUBLE_EQ(data.row(11)[0], batch.row(1)[0]);
  data.commit();
  EXPECT_FALSE(data.has_staged());
  EXPECT_EQ(data.size(), 14u);
  EXPECT_EQ(data.append_epoch(), epoch);  // pure append: prefix untouched
}

TEST(Dataset, StageRollbackRestoresExactPriorState) {
  auto data = testing::threshold_dataset(10);
  auto batch = testing::threshold_dataset(3, 5.0, 99);
  const auto version_before = data.version();
  const auto last_id = data.row_id(9);
  std::vector<double> row9(data.row(9).begin(), data.row(9).end());
  data.stage_rows(batch);
  EXPECT_GT(data.version(), version_before);  // staging is observable
  data.rollback();
  EXPECT_EQ(data.size(), 10u);
  EXPECT_FALSE(data.has_staged());
  EXPECT_EQ(data.row_id(9), last_id);
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    EXPECT_EQ(data.row(9)[f], row9[f]);
  }
  // Round-trip again: stage → rollback must be repeatable.
  data.stage_rows(batch);
  data.rollback();
  EXPECT_EQ(data.size(), 10u);
}

TEST(Dataset, StagedEmptyBatchCommitsAndRollsBack) {
  auto data = testing::threshold_dataset(5);
  Dataset empty(data.schema_ptr());
  data.stage_rows(empty);
  EXPECT_EQ(data.size(), 5u);
  data.commit();
  data.stage_rows(empty);
  data.rollback();
  EXPECT_EQ(data.size(), 5u);
}

TEST(Dataset, NestedStagingAndBareCommitAreErrors) {
  auto data = testing::threshold_dataset(5);
  auto batch = testing::threshold_dataset(2, 5.0, 1);
  EXPECT_THROW(data.commit(), Error);
  EXPECT_THROW(data.rollback(), Error);
  data.stage_rows(batch);
  EXPECT_THROW(data.stage_rows(batch), Error);
  data.rollback();
}

TEST(Dataset, ChangeTrackingCountersBehave) {
  auto data = testing::threshold_dataset(5);
  auto other = testing::threshold_dataset(5);
  EXPECT_NE(data.uid(), other.uid());

  const auto epoch = data.append_epoch();
  data.add_row({1.0, 2.0, 0.0}, 0);
  EXPECT_EQ(data.append_epoch(), epoch);  // append keeps the prefix stable
  data.set_label(0, 1);
  EXPECT_GT(data.append_epoch(), epoch);  // in-place edit does not

  const Dataset copy = data;  // copies are a new logical dataset
  EXPECT_NE(copy.uid(), data.uid());
  EXPECT_EQ(copy.size(), data.size());
}

TEST(Dataset, CopyCountObservesCopiesButNotMoves) {
  auto data = testing::threshold_dataset(5);
  const auto before = Dataset::copy_count();
  Dataset copy = data;             // counted
  const Dataset moved = std::move(copy);  // not counted
  EXPECT_EQ(Dataset::copy_count(), before + 1);
  EXPECT_EQ(moved.size(), 5u);
}

TEST(Dataset, AppendRequiresSameSchema) {
  auto a = testing::threshold_dataset(5);
  auto b = testing::blobs_dataset(3);
  EXPECT_THROW(a.append(b), Error);
}

TEST(Dataset, AppendConcatenates) {
  auto a = testing::threshold_dataset(5);
  auto b = testing::threshold_dataset(7, 5.0, 99);
  a.append(b);
  EXPECT_EQ(a.size(), 12u);
}

TEST(Dataset, ClassCounts) {
  Dataset data(mixed_schema());
  data.add_row({1.0, 0.0, 0.0}, 0);
  data.add_row({2.0, 0.0, 0.0}, 1);
  data.add_row({3.0, 0.0, 0.0}, 1);
  const auto counts = data.class_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(Dataset, NumericColumnStats) {
  Dataset data(mixed_schema());
  data.add_row({1.0, 10.0, 0.0}, 0);
  data.add_row({3.0, 20.0, 0.0}, 1);
  const auto stats = data.numeric_column_stats(0);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_THROW(data.numeric_column_stats(2), Error);  // categorical column
}

TEST(Dataset, CategoryCounts) {
  Dataset data(mixed_schema());
  data.add_row({0.0, 0.0, 1.0}, 0);
  data.add_row({0.0, 0.0, 1.0}, 0);
  data.add_row({0.0, 0.0, 2.0}, 0);
  const auto counts = data.category_counts(2);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_THROW(data.category_counts(0), Error);  // numeric column
}

TEST(Csv, RoundTrip) {
  auto data = testing::threshold_dataset(25);
  std::stringstream ss;
  save_csv(data, ss);
  const Dataset loaded = load_csv(ss);
  ASSERT_EQ(loaded.size(), data.size());
  EXPECT_TRUE(loaded.schema() == data.schema());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded.label(i), data.label(i));
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      EXPECT_DOUBLE_EQ(loaded.row(i)[f], data.row(i)[f]);
    }
  }
}

TEST(Csv, RejectsGarbage) {
  std::stringstream ss("not a csv");
  EXPECT_THROW(load_csv(ss), Error);
}

TEST(Encoder, WidthCountsOneHotSlots) {
  auto data = testing::threshold_dataset(10);
  const auto enc = Encoder::fit(data);
  // 2 numeric + 3 one-hot slots for color.
  EXPECT_EQ(enc.encoded_width(), 5u);
}

TEST(Encoder, OneHotSetsExactlyOneSlot) {
  auto data = testing::threshold_dataset(10);
  const auto enc = Encoder::fit(data);
  const auto x = enc.transform(data.row(0));
  double onehot_sum = x[2] + x[3] + x[4];
  EXPECT_DOUBLE_EQ(onehot_sum, 1.0);
}

TEST(Encoder, StandardizesNumerics) {
  auto data = testing::threshold_dataset(500);
  const auto enc = Encoder::fit(data);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = enc.transform(data.row(i));
    sum += x[0];
    sum2 += x[0] * x[0];
  }
  const double n = static_cast<double>(data.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-9);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);  // sample-vs-population std slack
}

}  // namespace
}  // namespace frote
