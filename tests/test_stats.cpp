#include "frote/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "frote/util/error.hpp"

namespace frote {
namespace {

TEST(RunningStats, MeanAndStd) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample std (n-1)
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, SingleValueHasZeroStd) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyMeanThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), Error);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  // Values 10,20,30,40: 25th percentile at pos 0.75 -> 17.5.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0}, 25.0), 17.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(BoxStats, QuartilesAndWhiskers) {
  std::vector<double> v;
  for (int i = 1; i <= 9; ++i) v.push_back(static_cast<double>(i));
  const auto b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  // No outliers: whiskers at the extremes.
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 9.0);
}

TEST(BoxStats, OutlierExcludedFromWhisker) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0, 100.0};
  const auto b = box_stats(v);
  EXPECT_LT(b.whisker_hi, 100.0);
}

TEST(BoxStats, EmptyThrows) { EXPECT_THROW(box_stats({}), Error); }

TEST(MeanStd, HelpersMatchRunningStats) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), 1.29099, 1e-4);
}

}  // namespace
}  // namespace frote
