#include "frote/metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace frote {
namespace {

/// Trivial model that always predicts a fixed class.
class ConstantModel : public Model {
 public:
  ConstantModel(int cls, std::size_t num_classes)
      : Model(num_classes), cls_(cls) {}
  std::vector<double> predict_proba(std::span<const double>) const override {
    std::vector<double> p(num_classes(), 0.0);
    p[static_cast<std::size_t>(cls_)] = 1.0;
    return p;
  }

 private:
  int cls_;
};

/// Model that reproduces the threshold ground truth: x > t ⇒ class 1.
class ThresholdModel : public Model {
 public:
  explicit ThresholdModel(double threshold)
      : Model(2), threshold_(threshold) {}
  std::vector<double> predict_proba(
      std::span<const double> row) const override {
    return row[0] > threshold_ ? std::vector<double>{0.0, 1.0}
                               : std::vector<double>{1.0, 0.0};
  }

 private:
  double threshold_;
};

TEST(ConfusionMatrix, AccuracyAndCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PerClassF1) {
  ConfusionMatrix cm(2);
  // class 1: tp=2, fp=1, fn=1 -> f1 = 2*2/(4+1+1) = 2/3.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  cm.add(0, 1);
  cm.add(0, 0);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, PerfectPredictionsGiveF1One) {
  ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    cm.add(c, c);
    cm.add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.weighted_f1(), 1.0);
}

TEST(ConfusionMatrix, MacroIgnoresAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  // Class 2 never appears as a true label: macro averages over 2 classes.
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, WeightedF1WeighsBySupport) {
  ConfusionMatrix cm(2);
  // Class 0: 9 correct. Class 1: 1 wrong (predicted 0).
  for (int i = 0; i < 9; ++i) cm.add(0, 0);
  cm.add(1, 0);
  const double f1_class0 = 2.0 * 9 / (18 + 1 + 0);
  EXPECT_NEAR(cm.weighted_f1(), 0.9 * f1_class0 + 0.1 * 0.0, 1e-12);
}

TEST(RuleAgreement, PerfectWhenModelMatchesRule) {
  auto data = testing::threshold_dataset(200, 5.0);
  const auto rule = testing::x_gt_rule(5.0, 1);
  const ThresholdModel model(5.0);
  const auto agreement = rule_agreement(model, rule, data);
  EXPECT_GT(agreement.covered, 0u);
  EXPECT_DOUBLE_EQ(agreement.mra, 1.0);
}

TEST(RuleAgreement, ZeroWhenModelContradictsRule) {
  auto data = testing::threshold_dataset(200, 5.0);
  const auto rule = testing::x_gt_rule(5.0, 1);
  const ConstantModel model(0, 2);
  const auto agreement = rule_agreement(model, rule, data);
  EXPECT_DOUBLE_EQ(agreement.mra, 0.0);
}

TEST(RuleAgreement, ProbabilisticRuleExpectation) {
  auto data = testing::threshold_dataset(200, 5.0);
  FeedbackRule rule(Clause({Predicate{0, Op::kGt, 5.0}}),
                    LabelDistribution::from_probs({0.3, 0.7}));
  const ConstantModel model(1, 2);
  const auto agreement = rule_agreement(model, rule, data);
  EXPECT_NEAR(agreement.mra, 0.7, 1e-12);
}

TEST(Objective, VacuousFrsGivesMraOne) {
  auto data = testing::threshold_dataset(100);
  const ThresholdModel model(5.0);
  const auto breakdown = evaluate_objective(model, FeedbackRuleSet{}, data);
  EXPECT_DOUBLE_EQ(breakdown.mra, 1.0);
  EXPECT_EQ(breakdown.covered, 0u);
  EXPECT_EQ(breakdown.outside, data.size());
}

TEST(Objective, PerfectModelScoresNearOne) {
  auto data = testing::threshold_dataset(300, 5.0);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 1)});
  const ThresholdModel model(5.0);
  EXPECT_NEAR(test_j_bar(model, frs, data), 1.0, 1e-9);
  EXPECT_NEAR(train_j_hat_bar(model, frs, data), 1.0, 1e-9);
}

TEST(Objective, CoverageProbWeightsMraTerm) {
  auto data = testing::threshold_dataset(400, 5.0);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 1)});
  // Model that matches the rule inside coverage but is wrong outside.
  const ConstantModel model(1, 2);
  const auto b = evaluate_objective(model, frs, data);
  EXPECT_DOUBLE_EQ(b.mra, 1.0);
  EXPECT_LT(b.outside_f1, 0.5);
  const double expected =
      b.coverage_prob * 1.0 + (1.0 - b.coverage_prob) * b.outside_f1;
  EXPECT_DOUBLE_EQ(test_j_bar(model, frs, data), expected);
}

TEST(Objective, TrainVariantUsesHalfHalfWeights) {
  auto data = testing::threshold_dataset(400, 5.0);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 1)});
  const ConstantModel model(1, 2);
  const auto b = evaluate_objective(model, frs, data);
  EXPECT_DOUBLE_EQ(train_j_hat_bar(model, frs, data),
                   0.5 * b.mra + 0.5 * b.outside_f1);
}

TEST(Objective, EmptyDatasetIsZero) {
  Dataset empty(testing::mixed_schema());
  const ThresholdModel model(5.0);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 1)});
  const auto b = evaluate_objective(model, frs, empty);
  EXPECT_EQ(b.covered, 0u);
  EXPECT_EQ(b.outside, 0u);
}

}  // namespace
}  // namespace frote
