// Integration tests of the experiment harness: the full paper protocol on a
// scaled-down dataset must produce valid, sensible outcomes.
#include "frote/exp/harness.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace frote {
namespace {

const ExperimentContext& small_context() {
  static const ExperimentContext ctx =
      make_context(UciDataset::kBreastCancer, /*scale=*/1.0, /*seed=*/42,
                   /*pool_size=*/40);
  return ctx;
}

RunConfig quick_run_config() {
  RunConfig config;
  config.tau = 8;
  config.fast_learner = true;
  return config;
}

TEST(Harness, ContextHasPoolInCoverageBand) {
  const auto& ctx = small_context();
  ASSERT_FALSE(ctx.pool.empty());
  for (const auto& rule : ctx.pool) {
    const double frac =
        static_cast<double>(coverage(rule.clause, ctx.data).size()) /
        static_cast<double>(ctx.data.size());
    EXPECT_GE(frac, 0.05);
    EXPECT_LT(frac, 0.25);
    EXPECT_TRUE(rule.provenance.has_value());
  }
}

TEST(Harness, FroteRunProducesValidOutcome) {
  const auto& ctx = small_context();
  const auto outcome =
      run_frote_once(ctx, LearnerKind::kRF, quick_run_config(), 7);
  ASSERT_TRUE(outcome.valid);
  EXPECT_EQ(outcome.frs_size, 3u);
  // All metrics are probabilities.
  for (const auto* point :
       {&outcome.initial, &outcome.mod, &outcome.final}) {
    EXPECT_GE(point->j_bar, 0.0);
    EXPECT_LE(point->j_bar, 1.0);
    EXPECT_GE(point->mra, 0.0);
    EXPECT_LE(point->mra, 1.0);
    EXPECT_GE(point->f1, 0.0);
    EXPECT_LE(point->f1, 1.0);
  }
  EXPECT_GE(outcome.added_frac, 0.0);
}

TEST(Harness, FinalAtLeastRoughlyInitial) {
  // The paper's headline: final ≥ relabel ≥ initial in expectation. A single
  // run can deviate, so allow slack but catch gross regressions.
  const auto& ctx = small_context();
  double init = 0.0, fin = 0.0;
  int valid = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto outcome =
        run_frote_once(ctx, LearnerKind::kRF, quick_run_config(), seed);
    if (!outcome.valid) continue;
    ++valid;
    init += outcome.initial.j_bar;
    fin += outcome.final.j_bar;
  }
  ASSERT_GT(valid, 0);
  EXPECT_GE(fin, init - 0.05 * valid);
}

TEST(Harness, DeterministicRuns) {
  const auto& ctx = small_context();
  const auto a = run_frote_once(ctx, LearnerKind::kRF, quick_run_config(), 3);
  const auto b = run_frote_once(ctx, LearnerKind::kRF, quick_run_config(), 3);
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.initial.j_bar, b.initial.j_bar);
  EXPECT_DOUBLE_EQ(a.final.j_bar, b.final.j_bar);
  EXPECT_DOUBLE_EQ(a.added_frac, b.added_frac);
}

TEST(Harness, TraceCapturedWhenRequested) {
  const auto& ctx = small_context();
  auto config = quick_run_config();
  config.capture_trace = true;
  config.tcf = 0.0;  // tcf 0 drives augmentation, ensuring acceptances
  const auto outcome = run_frote_once(ctx, LearnerKind::kRF, config, 11);
  ASSERT_TRUE(outcome.valid);
  for (std::size_t i = 1; i < outcome.test_trace.size(); ++i) {
    EXPECT_GT(outcome.test_trace[i].first, outcome.test_trace[i - 1].first);
  }
}

TEST(Harness, ModNoneReusesInitialEvaluation) {
  const auto& ctx = small_context();
  auto config = quick_run_config();
  config.mod = ModStrategy::kNone;
  const auto outcome = run_frote_once(ctx, LearnerKind::kLR, config, 5);
  ASSERT_TRUE(outcome.valid);
  EXPECT_DOUBLE_EQ(outcome.initial.j_bar, outcome.mod.j_bar);
}

TEST(Harness, OverlayRunComparesThreeMethods) {
  const auto& ctx = small_context();
  const auto outcome =
      run_overlay_once(ctx, LearnerKind::kRF, quick_run_config(), 13);
  ASSERT_TRUE(outcome.valid);
  // Hard constraints always reach MRA = 1 by construction.
  EXPECT_NEAR(outcome.overlay_hard.mra, 1.0, 1e-9);
  // FROTE should not degrade J̄ much relative to initial (paper: it gains).
  EXPECT_GE(outcome.frote.j_bar, outcome.initial.j_bar - 0.1);
}

TEST(Harness, ImpossibleFrsSizeReportsInvalid) {
  const auto& ctx = small_context();
  auto config = quick_run_config();
  config.frs_size = ctx.pool.size() + 10;
  const auto outcome = run_frote_once(ctx, LearnerKind::kRF, config, 1);
  EXPECT_FALSE(outcome.valid);
}

}  // namespace
}  // namespace frote
