// Tests for the rule pipeline: relaxation (Algorithm 2), induction (BRCG
// stand-in), perturbation (§5.1) and conflict-free FRS sampling.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "frote/ml/decision_tree.hpp"
#include "frote/rules/induction.hpp"
#include "frote/rules/perturb.hpp"
#include "frote/rules/relax.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

TEST(Relax, NoRelaxationWhenSupportSufficient) {
  auto data = testing::threshold_dataset(200);
  Clause clause({Predicate{0, Op::kGt, 5.0}});
  const auto result = relax_rule(clause, data, 6);
  EXPECT_EQ(result.removed_conditions, 0u);
  EXPECT_EQ(result.relaxed.size(), 1u);
  EXPECT_GE(result.support, 6u);
}

TEST(Relax, RemovesBlockingCondition) {
  auto data = testing::threshold_dataset(200);
  // x > 5 has wide support; x > 100 has none. Relaxation must drop x > 100.
  Clause clause({Predicate{0, Op::kGt, 5.0}, Predicate{1, Op::kGt, 100.0}});
  const auto result = relax_rule(clause, data, 6);
  EXPECT_EQ(result.removed_conditions, 1u);
  ASSERT_EQ(result.relaxed.size(), 1u);
  EXPECT_EQ(result.relaxed.predicates()[0].feature, 0u);
  EXPECT_GE(result.support, 6u);
}

TEST(Relax, FullyRelaxesHopelessClause) {
  auto data = testing::threshold_dataset(50);
  Clause clause({Predicate{0, Op::kGt, 100.0}});
  const auto result = relax_rule(clause, data, 6);
  EXPECT_TRUE(result.fully_relaxed);
  EXPECT_TRUE(result.relaxed.empty());
}

TEST(Relax, GreedyPicksMaxCoverageRemoval) {
  auto data = testing::threshold_dataset(200);
  // y > 9 leaves ~10% support; x > 100 leaves none. Removing x > 100 first
  // is the max-coverage choice.
  Clause clause({Predicate{1, Op::kGt, 9.0}, Predicate{0, Op::kGt, 100.0}});
  const auto result = relax_rule(clause, data, 6);
  ASSERT_EQ(result.relaxed.size(), 1u);
  EXPECT_EQ(result.relaxed.predicates()[0].feature, 1u);
}

TEST(Induction, RulesDescribeModelPredictions) {
  auto data = testing::threshold_dataset(400);
  const auto model = DecisionTreeLearner().train(data);
  const auto rules = induce_rules(data, *model);
  ASSERT_FALSE(rules.empty());
  // Every induced rule must have decent precision w.r.t. the model's
  // predictions on its own coverage.
  const auto pred = model->predict_all(data);
  for (const auto& rule : rules) {
    std::size_t covered = 0, agree = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (!rule.covers(data.row(i))) continue;
      ++covered;
      if (pred[i] == rule.target_class()) ++agree;
    }
    ASSERT_GT(covered, 0u);
    EXPECT_GE(static_cast<double>(agree) / static_cast<double>(covered), 0.7)
        << rule.to_string(data.schema());
  }
}

TEST(Induction, RespectsMaxConditions) {
  auto data = testing::threshold_dataset(300);
  const auto model = DecisionTreeLearner().train(data);
  InductionConfig config;
  config.max_conditions = 2;
  const auto rules = induce_rules(data, *model, config);
  for (const auto& rule : rules) {
    EXPECT_LE(rule.clause.size(), 2u);
  }
}

TEST(Induction, CoversBothClasses) {
  auto data = testing::threshold_dataset(400);
  const auto model = DecisionTreeLearner().train(data);
  const auto rules = induce_rules(data, *model);
  std::set<int> classes;
  for (const auto& rule : rules) classes.insert(rule.target_class());
  EXPECT_EQ(classes.size(), 2u);
}

TEST(Perturb, ProducesSatisfiableDifferentClause) {
  auto data = testing::threshold_dataset(300);
  const auto seed_rule = testing::x_gt_rule(5.0);
  std::vector<FeedbackRule> seeds = {seed_rule, testing::x_gt_rule(2.0)};
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto perturbed = perturb_rule(seeds[0], seeds, data, rng);
    EXPECT_FALSE(perturbed.clause == seed_rule.clause);
    EXPECT_TRUE(perturbed.provenance.has_value());
    EXPECT_TRUE(*perturbed.provenance == seed_rule.clause);
  }
}

TEST(Perturb, PoolRespectsCoverageBand) {
  auto data = testing::threshold_dataset(500);
  std::vector<FeedbackRule> seeds = {testing::x_gt_rule(3.0),
                                     testing::x_gt_rule(6.0, 0)};
  PerturbConfig config;
  config.pool_size = 30;
  Rng rng(6);
  const auto pool = generate_feedback_pool(data, seeds, config, rng);
  ASSERT_FALSE(pool.empty());
  for (const auto& rule : pool) {
    const auto cov = coverage(rule.clause, data).size();
    const double frac =
        static_cast<double>(cov) / static_cast<double>(data.size());
    EXPECT_GE(frac, config.min_coverage_frac);
    EXPECT_LT(frac, config.max_coverage_frac);
  }
}

TEST(Perturb, PoolHasNoDuplicateClauses) {
  auto data = testing::threshold_dataset(500);
  std::vector<FeedbackRule> seeds = {testing::x_gt_rule(3.0),
                                     testing::x_gt_rule(6.0, 0)};
  PerturbConfig config;
  config.pool_size = 25;
  Rng rng(7);
  const auto pool = generate_feedback_pool(data, seeds, config, rng);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      EXPECT_FALSE(pool[i].clause == pool[j].clause &&
                   pool[i].pi == pool[j].pi);
    }
  }
}

TEST(FrsSampling, SampledSetIsConflictFree) {
  auto data = testing::threshold_dataset(500);
  std::vector<FeedbackRule> seeds = {testing::x_gt_rule(3.0, 1),
                                     testing::x_gt_rule(6.0, 0)};
  PerturbConfig config;
  config.pool_size = 40;
  Rng rng(8);
  const auto pool = generate_feedback_pool(data, seeds, config, rng);
  ASSERT_GE(pool.size(), 3u);
  const auto frs =
      sample_conflict_free_frs(pool, 3, data.schema(), rng);
  if (!frs.empty()) {
    EXPECT_EQ(frs.size(), 3u);
    EXPECT_FALSE(has_conflicts(frs, data.schema()));
  }
}

TEST(FrsSampling, ImpossibleSizeReturnsEmpty) {
  auto data = testing::threshold_dataset(100);
  std::vector<FeedbackRule> pool = {testing::x_gt_rule(5.0)};
  Rng rng(9);
  const auto frs = sample_conflict_free_frs(pool, 5, data.schema(), rng);
  EXPECT_TRUE(frs.empty());
}

TEST(FrsSampling, ConflictingPoolOfTwoCannotYieldPair) {
  auto data = testing::threshold_dataset(100);
  // Same region, different classes: always conflicting.
  std::vector<FeedbackRule> pool = {testing::x_gt_rule(5.0, 1),
                                    testing::x_gt_rule(5.0, 0)};
  Rng rng(10);
  const auto frs =
      sample_conflict_free_frs(pool, 2, data.schema(), rng, /*attempts=*/20);
  EXPECT_TRUE(frs.empty());
}

}  // namespace
}  // namespace frote
