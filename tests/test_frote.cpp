// End-to-end tests of Algorithm 1: FROTE must teach a model a new decision
// boundary asserted by feedback rules, respect its budget constraints, and
// keep outside-coverage performance intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/ml/decision_tree.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

/// Scenario: ground truth is "x > 5 ⇒ pos", the feedback rule asserts that
/// the region x > 7 should now be NEGATIVE (a policy change). Mirroring the
/// paper's low-tcf regime, the training split contains only a small fraction
/// of the rule's coverage — the initial model therefore extrapolates the old
/// policy into x > 7 and disagrees with the rule.
struct Scenario {
  Dataset train;
  Dataset test;
  FeedbackRuleSet frs;
};

Scenario policy_change_scenario(std::uint64_t seed = 21, double tcf = 0.08) {
  Scenario s;
  auto full = testing::threshold_dataset(500, 5.0, seed);
  s.frs = FeedbackRuleSet({testing::x_gt_rule(7.0, 0)});
  // Keep only ~tcf of the covered rows in training (coverage-aware split).
  Rng rng(seed + 5);
  Dataset train(full.schema_ptr());
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full.row(i)[0] > 7.0 && !rng.bernoulli(tcf)) continue;
    train.add_row(full.row(i), full.label(i));
  }
  s.train = std::move(train);
  s.test = testing::threshold_dataset(250, 5.0, seed + 1);
  // The *test* labels follow the new policy: relabel covered test rows.
  for (std::size_t i = 0; i < s.test.size(); ++i) {
    if (s.test.row(i)[0] > 7.0) s.test.set_label(i, 0);
  }
  return s;
}

FroteConfig quick_config() {
  FroteConfig config;
  config.tau = 25;
  config.q = 0.5;
  config.eta = 20;
  return config;
}

TEST(Frote, ImprovesTestJBarOverInitialModel) {
  // tcf = 0: the rule's region is entirely absent from training, the paper's
  // hardest case. The first accepted batch must bootstrap coverage.
  auto s = policy_change_scenario(21, /*tcf=*/0.0);
  DecisionTreeLearner learner;
  const auto initial = learner.train(s.train);
  const double j_initial = test_j_bar(*initial, s.frs, s.test);

  auto result = frote_edit(s.train, learner, s.frs, quick_config());
  const double j_final = test_j_bar(*result.model, s.frs, s.test);
  EXPECT_GT(j_final, j_initial);
  EXPECT_GT(result.instances_added, 0u);
}

TEST(Frote, RelabelAloneHandledThenAugmentationRefines) {
  auto s = policy_change_scenario(33);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.mod_strategy = ModStrategy::kRelabel;
  auto result = frote_edit(s.train, learner, s.frs, config);
  // Relabel + augmentation must reach near-perfect rule agreement.
  const auto breakdown = evaluate_objective(*result.model, s.frs, s.test);
  EXPECT_GT(breakdown.mra, 0.9);
  EXPECT_GT(breakdown.outside_f1, 0.85);
}

TEST(Frote, QuotaBoundsInstancesAdded) {
  auto s = policy_change_scenario(44);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.q = 0.1;
  config.eta = 10;
  auto result = frote_edit(s.train, learner, s.frs, config);
  // N may exceed q|D| by at most one batch (the loop checks before adding).
  EXPECT_LE(result.instances_added,
            static_cast<std::size_t>(0.1 * 400) + config.eta);
}

TEST(Frote, IterationLimitRespected) {
  auto s = policy_change_scenario(55);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.tau = 7;
  auto result = frote_edit(s.train, learner, s.frs, config);
  EXPECT_LE(result.iterations_run, 7u);
}

TEST(Frote, EmptyFrsIsNoOp) {
  auto s = policy_change_scenario(66);
  DecisionTreeLearner learner;
  auto result = frote_edit(s.train, learner, FeedbackRuleSet{}, quick_config());
  EXPECT_EQ(result.instances_added, 0u);
  EXPECT_EQ(result.augmented.size(), s.train.size());
}

TEST(Frote, AugmentedDatasetContainsOriginalRows) {
  auto s = policy_change_scenario(77);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.mod_strategy = ModStrategy::kNone;
  auto result = frote_edit(s.train, learner, s.frs, config);
  ASSERT_GE(result.augmented.size(), s.train.size());
  for (std::size_t i = 0; i < s.train.size(); ++i) {
    EXPECT_EQ(result.augmented.label(i), s.train.label(i));
    for (std::size_t f = 0; f < s.train.num_features(); ++f) {
      EXPECT_DOUBLE_EQ(result.augmented.row(i)[f], s.train.row(i)[f]);
    }
  }
}

TEST(Frote, SyntheticRowsSatisfyTheRule) {
  auto s = policy_change_scenario(88);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.mod_strategy = ModStrategy::kNone;  // keep row count bookkeeping easy
  auto result = frote_edit(s.train, learner, s.frs, config);
  for (std::size_t i = s.train.size(); i < result.augmented.size(); ++i) {
    EXPECT_TRUE(s.frs.rule(0).covers(result.augmented.row(i)));
    EXPECT_EQ(result.augmented.label(i), 0);
  }
}

TEST(Frote, DeterministicGivenSeed) {
  auto s = policy_change_scenario(99);
  DecisionTreeLearner learner;
  auto r1 = frote_edit(s.train, learner, s.frs, quick_config());
  auto r2 = frote_edit(s.train, learner, s.frs, quick_config());
  EXPECT_EQ(r1.instances_added, r2.instances_added);
  ASSERT_EQ(r1.augmented.size(), r2.augmented.size());
  for (std::size_t i = 0; i < r1.augmented.size(); ++i) {
    EXPECT_EQ(r1.augmented.label(i), r2.augmented.label(i));
  }
}

TEST(Frote, TraceIsMonotoneInInstancesAndStartsAtZero) {
  auto s = policy_change_scenario(111);
  DecisionTreeLearner learner;
  auto result = frote_edit(s.train, learner, s.frs, quick_config());
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().instances_added, 0u);
  std::size_t last_accepted = 0;
  for (const auto& point : result.trace) {
    if (point.accepted) {
      EXPECT_GE(point.instances_added, last_accepted);
      last_accepted = point.instances_added;
    }
  }
  EXPECT_EQ(last_accepted, result.instances_added);
}

TEST(Frote, AcceptedJHatNeverDecreases) {
  auto s = policy_change_scenario(122);
  DecisionTreeLearner learner;
  auto result = frote_edit(s.train, learner, s.frs, quick_config());
  double last = -1.0;
  for (const auto& point : result.trace) {
    if (!point.accepted) continue;
    EXPECT_GE(point.train_j_hat_bar, last);
    last = point.train_j_hat_bar;
  }
}

TEST(Frote, AcceptAlwaysAblationAddsMore) {
  auto s = policy_change_scenario(133);
  DecisionTreeLearner learner;
  auto strict = quick_config();
  auto always = quick_config();
  always.accept_always = true;
  auto r_strict = frote_edit(s.train, learner, s.frs, strict);
  auto r_always = frote_edit(s.train, learner, s.frs, always);
  EXPECT_GE(r_always.instances_added, r_strict.instances_added);
}

TEST(Frote, OnAcceptCallbackFires) {
  auto s = policy_change_scenario(144);
  DecisionTreeLearner learner;
  std::size_t calls = 0;
  auto result = frote_edit(s.train, learner, s.frs, quick_config(),
                           [&](const Model&, std::size_t) { ++calls; });
  EXPECT_EQ(calls, result.iterations_accepted);
}

TEST(Frote, WorksWithIpSelection) {
  auto s = policy_change_scenario(155);
  DecisionTreeLearner learner;
  auto config = quick_config();
  config.selection = SelectionStrategy::kIp;
  config.tau = 10;
  const auto initial = learner.train(s.train);
  const double j_initial = test_j_bar(*initial, s.frs, s.test);
  auto result = frote_edit(s.train, learner, s.frs, config);
  EXPECT_GE(test_j_bar(*result.model, s.frs, s.test), j_initial);
}

TEST(Frote, LinearModelNeedsAndGetsBoundaryShift) {
  // Figure 1's loan-approval story: the policy LOWERS the approval boundary
  // from x > 5 to x > 3. The linear model must shift its boundary, which
  // takes many synthetic instances when contradicting data stays in place
  // (mod strategy `none`) — the paper's "LR needs more data" observation.
  auto train = testing::threshold_dataset(400, 5.0, 31);
  auto test = testing::threshold_dataset(250, 5.0, 32);
  FeedbackRuleSet frs({testing::x_gt_rule(3.0, 1)});
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.row(i)[0] > 3.0) test.set_label(i, 1);
  }
  LogisticRegressionConfig lr_config;
  lr_config.max_iter = 200;
  LogisticRegressionLearner learner(lr_config);
  FroteConfig config;
  config.tau = 20;
  config.q = 2.0;
  config.eta = 50;
  config.mod_strategy = ModStrategy::kNone;
  const auto initial = learner.train(train);
  const auto before = evaluate_objective(*initial, frs, test);
  auto result = frote_edit(train, learner, frs, config);
  const auto after = evaluate_objective(*result.model, frs, test);
  EXPECT_GT(after.mra, before.mra);
  // Outside-coverage F1 must not collapse (the paper's key claim).
  EXPECT_GT(after.outside_f1, 0.9);
}


TEST(Frote, ZeroCoverageRuleHandledThroughRelaxation) {
  // Rule region has no training support at all (x > 7 AND y > 100 relaxed).
  auto train = testing::threshold_dataset(300, 5.0, 7);
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 9.0}, Predicate{1, Op::kGt, 9.0}}), 0, 2);
  // Remove every instance in the rule region from training (tcf = 0 case).
  std::vector<std::size_t> covered;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (rule.covers(train.row(i))) covered.push_back(i);
  }
  train.remove_rows(covered);
  FeedbackRuleSet frs({rule});
  DecisionTreeLearner learner;
  auto config = quick_config();
  auto result = frote_edit(train, learner, frs, config);
  // Synthetic instances must exist in the empty region and satisfy the rule.
  bool any_synthetic_in_region = false;
  for (std::size_t i = train.size(); i < result.augmented.size(); ++i) {
    if (rule.covers(result.augmented.row(i))) any_synthetic_in_region = true;
  }
  EXPECT_TRUE(any_synthetic_in_region);
}

}  // namespace
}  // namespace frote
