// Columnar chunk storage (docs/DESIGN.md §8): ChunkStore geometry units,
// the Dataset-level storage contract (stage/commit/rollback across chunk
// boundaries, copy/subset/remove under every geometry), and the headline
// equivalence lock — the same rows produce bit-identical FROTE augmentation
// under flat, chunked, and mmap-chunked storage, and a checkpoint taken on
// chunked storage restores the same geometry bit-identically.
#include "frote/data/chunks.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/spec.hpp"
#include "frote/exp/learners.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

std::vector<double> row_of(double base, std::size_t width) {
  std::vector<double> row(width);
  for (std::size_t f = 0; f < width; ++f) row[f] = base + 0.25 * f;
  return row;
}

/// Bitwise equality of every observable column: values, labels, row ids.
void expect_same_rows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label " << i;
    EXPECT_EQ(a.row_id(i), b.row_id(i)) << "row_id " << i;
    EXPECT_EQ(std::memcmp(a.row_ptr(i), b.row_ptr(i),
                          a.num_features() * sizeof(double)),
              0)
        << "row " << i << " differs bitwise";
  }
}

TEST(ChunkStore, FlatModeStaysContiguous) {
  ChunkStore store;
  store.configure(3, {});
  for (int i = 0; i < 10; ++i) store.push_row(row_of(i, 3).data());
  store.seal();
  EXPECT_TRUE(store.contiguous());
  EXPECT_EQ(store.sealed_chunk_count(), 0u);
  EXPECT_EQ(store.chunk_count(), 1u);
  EXPECT_EQ(store.contiguous_values().size(), 30u);
  EXPECT_DOUBLE_EQ(store.row(7)[2], 7.5);
}

TEST(ChunkStore, SealsFullChunksAndKeepsTail) {
  ChunkStore store;
  store.configure(3, {/*chunk_rows=*/4, /*mmap=*/false});
  for (int i = 0; i < 10; ++i) store.push_row(row_of(i, 3).data());
  store.seal();
  EXPECT_EQ(store.sealed_chunk_count(), 2u);  // rows 0..7 sealed
  EXPECT_EQ(store.sealed_rows(), 8u);
  EXPECT_EQ(store.chunk_count(), 3u);  // + the 2-row tail
  EXPECT_FALSE(store.contiguous());
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(store.row(static_cast<std::size_t>(i))[0], i);
    EXPECT_DOUBLE_EQ(store.row(static_cast<std::size_t>(i))[2], i + 0.5);
  }
}

TEST(ChunkStore, TruncateIsTailOnly) {
  ChunkStore store;
  store.configure(2, {/*chunk_rows=*/4, /*mmap=*/false});
  for (int i = 0; i < 11; ++i) store.push_row(row_of(i, 2).data());
  store.seal();  // 8 sealed, 3 tail
  store.truncate(9);
  EXPECT_EQ(store.sealed_rows(), 8u);
  EXPECT_DOUBLE_EQ(store.row(8)[0], 8.0);
  // Unsealed rows re-appended after a truncate read back correctly.
  store.push_row(row_of(42, 2).data());
  EXPECT_DOUBLE_EQ(store.row(9)[0], 42.0);
}

TEST(ChunkStore, MmapChunksReadBackIdentically) {
  ChunkStore mapped, heap;
  mapped.configure(3, {/*chunk_rows=*/4, /*mmap=*/true});
  heap.configure(3, {/*chunk_rows=*/4, /*mmap=*/false});
  for (int i = 0; i < 13; ++i) {
    const auto row = row_of(i, 3);
    mapped.push_row(row.data());
    heap.push_row(row.data());
  }
  mapped.seal();
  heap.seal();
  ASSERT_EQ(mapped.sealed_chunk_count(), 3u);
  // This build host supports mmap; Chunk::make only falls back on syscall
  // failure, which would make the count diverge loudly here.
  EXPECT_EQ(mapped.mapped_chunk_count(), 3u);
  for (std::size_t i = 0; i < 13; ++i) {
    EXPECT_EQ(std::memcmp(mapped.row(i), heap.row(i), 3 * sizeof(double)), 0);
  }
}

TEST(Dataset, SetStorageRechunksAndBumpsEpoch) {
  auto flat = testing::threshold_dataset(50);
  Dataset chunked = flat;
  const std::uint64_t epoch = chunked.append_epoch();
  chunked.set_storage({/*chunk_rows=*/8, /*mmap=*/false});
  EXPECT_GT(chunked.append_epoch(), epoch);  // rows moved addresses
  EXPECT_EQ(chunked.chunk_count(), 7u);      // 6 sealed + 2-row tail
  EXPECT_FALSE(chunked.values_contiguous());
  expect_same_rows(flat, chunked);
  // Re-chunking to the same geometry is a no-op (no epoch churn).
  const std::uint64_t epoch2 = chunked.append_epoch();
  chunked.set_storage({8, false});
  EXPECT_EQ(chunked.append_epoch(), epoch2);
}

TEST(Dataset, StageCommitRollbackAcrossChunkBoundaries) {
  auto flat = testing::threshold_dataset(10);
  Dataset chunked = flat;
  chunked.set_storage({/*chunk_rows=*/4, /*mmap=*/false});
  auto batch = testing::threshold_dataset(9, 5.0, /*seed=*/99);

  // Staged rows cross two chunk boundaries but must NOT seal: rollback has
  // to stay a pure tail truncation.
  const std::size_t sealed_before = chunked.chunk_count();
  chunked.stage_rows(batch);
  EXPECT_EQ(chunked.size(), 19u);
  EXPECT_EQ(chunked.chunk_count(), sealed_before);
  chunked.rollback();
  EXPECT_EQ(chunked.size(), 10u);
  // Row ids are monotonic — a rolled-back stage still consumes them — so
  // the flat twin replays the identical operation sequence throughout.
  flat.stage_rows(batch);
  flat.rollback();
  expect_same_rows(flat, chunked);

  // Same batch staged then committed: seals catch up, and the rows must be
  // bitwise what a flat dataset holds after the same operations.
  flat.stage_rows(batch);
  flat.commit();
  chunked.stage_rows(batch);
  chunked.commit();
  EXPECT_EQ(chunked.chunk_count(), 5u);  // 16 sealed rows + 3-row tail
  expect_same_rows(flat, chunked);
}

TEST(Dataset, CopySubsetRemoveUnderChunkedStorage) {
  auto flat = testing::threshold_dataset(30);
  Dataset chunked = flat;
  chunked.set_storage({/*chunk_rows=*/7, /*mmap=*/false});

  // Copies share sealed chunks but stay independent datasets.
  Dataset copy = chunked;
  EXPECT_EQ(copy.storage().chunk_rows, 7u);
  expect_same_rows(chunked, copy);
  copy.add_row(std::vector<double>{1.0, 2.0, 0.0}, 1);
  EXPECT_EQ(chunked.size(), 30u);

  // Subsets inherit the geometry; values/labels/ids track the source rows.
  const std::vector<std::size_t> picks = {0, 6, 7, 13, 29};
  Dataset flat_sub = flat.subset(picks);
  Dataset chunked_sub = chunked.subset(picks);
  EXPECT_EQ(chunked_sub.storage().chunk_rows, 7u);
  expect_same_rows(flat_sub, chunked_sub);

  // remove_rows rebuilds the chunk layout around the survivors.
  flat.remove_rows({2, 7, 8});
  chunked.remove_rows({2, 7, 8});
  expect_same_rows(flat, chunked);
}

TEST(DatasetSpecStorage, RoundTripsAndApplies) {
  DatasetSpec spec;
  spec.kind = "synthetic";
  spec.name = "adult";
  spec.size = 200;
  spec.chunk_rows = 32;
  spec.mmap = true;
  const auto parsed = DatasetSpec::from_json(spec.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->chunk_rows, 32u);
  EXPECT_TRUE(parsed->mmap);

  auto data = load_spec_dataset(spec);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->storage().chunk_rows, 32u);
  EXPECT_TRUE(data->storage().mmap);
  EXPECT_GT(data->chunk_count(), 1u);

  // Default geometry stays absent from the JSON (old specs byte-stable).
  DatasetSpec flat_spec;
  EXPECT_EQ(flat_spec.to_json().find("chunk_rows"), nullptr);
}

/// Run one full FROTE session over `data` and return the augmented D̂.
Dataset run_session(const Dataset& data) {
  // The rule contradicts the training labels (x > 7 rows carry class 1),
  // so the loop really generates and accepts synthetic instances; the
  // engine knobs mirror test_engine_api's fixture, which asserts growth.
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  const auto learner = make_learner(LearnerKind::kRF, 42, /*fast=*/true);
  auto engine = Engine::Builder()
                    .rules(frs)
                    .tau(6)
                    .q(0.4)
                    .k(5)
                    .seed(1)
                    .build()
                    .value();
  auto session = engine.open(data, *learner).value();
  session.run();
  return std::move(session).result().augmented;
}

TEST(ChunkedEquivalence, AugmentationIsBitIdenticalAcrossGeometries) {
  const auto flat = testing::threshold_dataset(150, 5.0, /*seed=*/11);
  Dataset chunked = flat;
  chunked.set_storage({/*chunk_rows=*/16, /*mmap=*/false});
  Dataset mapped = flat;
  mapped.set_storage({/*chunk_rows=*/16, /*mmap=*/true});

  const Dataset out_flat = run_session(flat);
  const Dataset out_chunked = run_session(chunked);
  const Dataset out_mapped = run_session(mapped);
  EXPECT_GT(out_flat.size(), flat.size());  // the loop actually augmented
  expect_same_rows(out_flat, out_chunked);
  expect_same_rows(out_flat, out_mapped);
  // The augmented copies keep their respective geometries.
  EXPECT_EQ(out_chunked.storage().chunk_rows, 16u);
  EXPECT_TRUE(out_mapped.storage().mmap);
}

TEST(ChunkedEquivalence, CheckpointRestoresChunkGeometry) {
  auto data = testing::threshold_dataset(100, 5.0, /*seed=*/3);
  data.set_storage({/*chunk_rows=*/16, /*mmap=*/false});
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  const auto learner = make_learner(LearnerKind::kRF, 42, /*fast=*/true);
  auto engine = Engine::Builder()
                    .rules(frs)
                    .tau(6)
                    .q(0.4)
                    .k(5)
                    .seed(1)
                    .build()
                    .value();

  auto golden = engine.open(data, *learner).value();
  golden.run();

  auto session = engine.open(data, *learner).value();
  session.step();
  session.step();
  // Round-trip through JSON text, as the spool does.
  const std::string text = session.snapshot().to_json_text();
  auto checkpoint = SessionCheckpoint::parse(text);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->chunk_rows, 16u);
  auto restored = Session::restore(engine, *learner, *checkpoint);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->augmented().storage().chunk_rows, 16u);
  restored->run();
  expect_same_rows(golden.augmented(), restored->augmented());
}

}  // namespace
}  // namespace frote
