// Tests for the extra black-box learners (naive Bayes, kNN classifier) and
// the model-agnosticism claim: FROTE must edit them too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/ml/knn_classifier.hpp"
#include "frote/ml/naive_bayes.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

double train_accuracy(const Model& model, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (model.predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(NaiveBayes, LearnsSeparableBlobs) {
  auto data = testing::blobs_dataset(80);
  const auto model = NaiveBayesLearner().train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.97);
}

TEST(NaiveBayes, HandlesMixedFeatures) {
  auto data = testing::threshold_dataset(400);
  const auto model = NaiveBayesLearner().train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.8);
}

TEST(NaiveBayes, ProbabilitiesSumToOne) {
  auto data = testing::threshold_dataset(100);
  const auto model = NaiveBayesLearner().train(data);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto p = model->predict_proba(data.row(i));
    double total = 0.0;
    for (double v : p) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(NaiveBayes, SurvivesSingleInstanceClass) {
  Dataset data(testing::numeric2d_schema());
  data.add_row({0.0, 0.0}, 0);
  data.add_row({0.1, 0.1}, 0);
  data.add_row({5.0, 5.0}, 1);  // single instance: variance floor kicks in
  const auto model = NaiveBayesLearner().train(data);
  EXPECT_EQ(model->predict(std::vector<double>{5.0, 5.0}), 1);
}

TEST(NaiveBayes, CategoricalOnlyDataset) {
  auto schema = std::make_shared<Schema>(
      std::vector<FeatureSpec>{
          FeatureSpec::categorical("a", {"x", "y"}),
          FeatureSpec::categorical("b", {"u", "v", "w"})},
      std::vector<std::string>{"n", "p"});
  Dataset data(schema);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double b = static_cast<double>(rng.index(3));
    data.add_row({a, b}, a == 1.0 ? 1 : 0);  // label = feature a
  }
  const auto model = NaiveBayesLearner().train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.99);
}

TEST(KnnClassifier, PerfectOnTrainingData) {
  auto data = testing::blobs_dataset(50);
  KnnClassifierConfig config;
  config.k = 1;
  const auto model = KnnClassifierLearner(config).train(data);
  EXPECT_DOUBLE_EQ(train_accuracy(*model, data), 1.0);  // 1-NN memorises
}

TEST(KnnClassifier, MajorityVoteSmoothsNoise) {
  auto data = testing::threshold_dataset(300);
  KnnClassifierConfig config;
  config.k = 7;
  const auto model = KnnClassifierLearner(config).train(data);
  EXPECT_GE(train_accuracy(*model, data), 0.9);
}

TEST(KnnClassifier, DistanceWeightingChangesVotes) {
  auto data = testing::blobs_dataset(30);
  KnnClassifierConfig uniform, weighted;
  uniform.k = weighted.k = 5;
  weighted.distance_weighted = true;
  const auto m1 = KnnClassifierLearner(uniform).train(data);
  const auto m2 = KnnClassifierLearner(weighted).train(data);
  // Probabilities differ at points between the blobs.
  const std::vector<double> mid = {3.0, 3.0};
  const auto p1 = m1->predict_proba(mid);
  const auto p2 = m2->predict_proba(mid);
  EXPECT_NE(p1[0], p2[0]);
}

/// FROTE is model-agnostic: it must edit a generative model (NB) and a
/// memorising model (kNN) just like the paper's three classifiers.
class ModelAgnosticism : public ::testing::TestWithParam<int> {};

TEST_P(ModelAgnosticism, FroteEditsAnyLearner) {
  auto train = testing::threshold_dataset(400, 5.0, 70);
  // Keep only 5% of the rule's coverage in training (low-tcf regime).
  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  Rng rng(71);
  Dataset sparse(train.schema_ptr());
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (train.row(i)[0] > 7.0 && !rng.bernoulli(0.05)) continue;
    sparse.add_row(train.row(i), train.label(i));
  }
  std::unique_ptr<Learner> learner;
  if (GetParam() == 0) {
    learner = std::make_unique<NaiveBayesLearner>();
  } else {
    learner = std::make_unique<KnnClassifierLearner>();
  }
  const auto initial = learner->train(sparse);
  FroteConfig config;
  config.tau = 15;
  config.eta = 25;
  auto result = frote_edit(sparse, *learner, frs, config);
  const auto before = rule_agreement(*initial, frs.rule(0), result.augmented);
  const auto after =
      rule_agreement(*result.model, frs.rule(0), result.augmented);
  EXPECT_GE(after.mra, before.mra);
  EXPECT_GE(after.mra, 0.8);
}

INSTANTIATE_TEST_SUITE_P(NbAndKnn, ModelAgnosticism, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "NaiveBayes"
                                                  : "KnnClassifier";
                         });

}  // namespace
}  // namespace frote
