// util/json: strict parsing, typed errors, and the bit-exact round-trip the
// spec/checkpoint layer depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "frote/util/json.hpp"
#include "frote/util/rng.hpp"

namespace frote {
namespace {

Expected<JsonValue, FroteError> reparse(const JsonValue& value, int indent) {
  return json_parse(json_dump(value, indent));
}

TEST(Json, ScalarRoundTrip) {
  for (const int indent : {0, 2}) {
    for (const char* text :
         {"null", "true", "false", "0", "-1", "42", "\"hi\"", "[]", "{}"}) {
      auto parsed = json_parse(text);
      ASSERT_TRUE(parsed.has_value()) << text;
      auto again = reparse(*parsed, indent);
      ASSERT_TRUE(again.has_value()) << text;
      EXPECT_TRUE(*parsed == *again) << text;
    }
  }
}

TEST(Json, IntegerKindsAndWidth) {
  // Full-width integers survive: a double would round these.
  auto parsed = json_parse("[18446744073709551615, -9223372036854775808, "
                           "9223372036854775807]");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->items()[0].as_uint64(), 18446744073709551615ULL);
  EXPECT_EQ(parsed->items()[1].as_int64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parsed->items()[2].as_int64(),
            std::numeric_limits<std::int64_t>::max());
  auto again = reparse(*parsed, 0);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(*parsed == *again);
  // Integer literals beyond uint64 degrade to double rather than failing.
  auto huge = json_parse("18446744073709551616");
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(huge->type(), JsonType::kDouble);
}

TEST(Json, DoubleRoundTripIsBitExact) {
  // The checkpoint contract: double -> text -> double must be the identity
  // on bits, for ordinary values and for every awkward corner of IEEE-754.
  std::vector<double> values = {0.0,
                                -0.0,
                                0.1,
                                1.0 / 3.0,
                                -1e-300,
                                5e-324,                 // min denormal
                                2.2250738585072014e-308,  // min normal
                                1.7976931348623157e308,   // max double
                                3.141592653589793,
                                -2.718281828459045};
  Rng rng(20260726);
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.normal(0.0, 1e3));
    values.push_back(rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.int_range(-300, 300)));
  }
  for (const double v : values) {
    JsonValue array = JsonValue::array();
    array.push_back(v);
    auto parsed = reparse(array, 0);
    ASSERT_TRUE(parsed.has_value());
    const double back = parsed->items()[0].as_double();
    std::uint64_t v_bits = 0, back_bits = 0;
    std::memcpy(&v_bits, &v, sizeof v);
    std::memcpy(&back_bits, &back, sizeof back);
    EXPECT_EQ(v_bits, back_bits) << v;
  }
}

TEST(Json, NonFiniteDoublesAreUnwritable) {
  JsonValue array = JsonValue::array();
  array.push_back(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(json_dump(array), Error);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string awkward =
      std::string("quote\" backslash\\ slash/ \b\f\n\r\t nul(") +
      '\0' + ") control\x01 end";
  JsonValue value(awkward);
  auto parsed = reparse(value, 2);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), awkward);
}

TEST(Json, Utf8RoundTrip) {
  // 2-, 3- and 4-byte sequences pass through dump/parse verbatim.
  const std::string text = "caf\u00e9 \u65e5\u672c\u8a9e \U0001F600";
  JsonValue value(text);
  auto parsed = reparse(value, 0);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), text);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  auto parsed = json_parse("\"\\u00e9 \\u65e5 \\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "\u00e9 \u65e5 \U0001F600");
}

TEST(Json, StructuredRoundTripProperty) {
  // Randomized nested documents survive dump -> parse exactly, compact and
  // pretty-printed.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    JsonValue root = JsonValue::object();
    root.set("seed", rng.next_u64());
    root.set("flag", rng.bernoulli(0.5));
    root.set("weight", rng.normal(0.0, 10.0));
    JsonValue rows = JsonValue::array();
    const std::size_t n = 1 + rng.index(8);
    for (std::size_t i = 0; i < n; ++i) {
      JsonValue row = JsonValue::array();
      for (std::size_t j = 0; j < 4; ++j) row.push_back(rng.uniform());
      rows.push_back(std::move(row));
    }
    root.set("rows", std::move(rows));
    JsonValue child = JsonValue::object();
    child.set("name", std::string("trial-") + std::to_string(trial));
    child.set("count", static_cast<std::int64_t>(rng.index(1000)) - 500);
    root.set("child", std::move(child));
    for (const int indent : {0, 2, 4}) {
      auto parsed = reparse(root, indent);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_TRUE(root == *parsed);
    }
  }
}

TEST(Json, ObjectSetReplacesAndFindLooksUp) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 3);
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.find("a")->as_int64(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, MalformedInputsAreTypedErrors) {
  const char* cases[] = {
      "",                        // empty
      "  ",                      // whitespace only
      "{",                       // unterminated object
      "[1,]",                    // trailing comma
      "{\"a\":1,}",              // trailing comma in object
      "[1 2]",                   // missing comma
      "{\"a\" 1}",               // missing colon
      "{a: 1}",                  // unquoted key
      "{\"a\":1, \"a\":2}",      // duplicate key
      "nul",                     // bad literal
      "TRUE",                    // wrong case
      "NaN",                     // non-finite literal
      "Infinity",                // non-finite literal
      "01",                      // leading zero
      "-",                       // lone minus
      ".5",                      // missing integer part
      "5.",                      // missing fraction digits
      "1e",                      // missing exponent digits
      "1e999",                   // double overflow
      "\"unterminated",          // unterminated string
      "\"bad \\x escape\"",      // invalid escape
      "\"\\u12g4\"",             // bad hex digit
      "\"\\ud800\"",             // unpaired high surrogate
      "\"\\udc00\"",             // unpaired low surrogate
      "\"\x01\"",                // raw control character
      "\"\xff\"",                // invalid UTF-8 lead byte
      "\"\xc3(\"",               // invalid UTF-8 continuation
      "\"\xc0\xaf\"",            // overlong UTF-8 encoding
      "\"\xed\xa0\x80\"",        // UTF-8 encoded surrogate
      "1 2",                     // trailing content
      "[1] []",                  // trailing content after value
  };
  for (const char* text : cases) {
    auto parsed = json_parse(text);
    EXPECT_FALSE(parsed.has_value()) << "accepted: " << text;
    if (!parsed.has_value()) {
      EXPECT_EQ(parsed.error().code, FroteErrorCode::kParseError) << text;
      EXPECT_NE(parsed.error().message.find("JSON parse error"),
                std::string::npos)
          << text;
    }
  }
}

TEST(Json, DepthLimitRejectsBombs) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  auto parsed = json_parse(deep);
  EXPECT_FALSE(parsed.has_value());
}

TEST(Json, ParseErrorsCarryPosition) {
  auto parsed = json_parse("{\n  \"a\": nope\n}");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("2:"), std::string::npos)
      << parsed.error().message;
}

TEST(Json, WrongTypeAccessThrows) {
  auto parsed = json_parse("{\"s\": \"text\", \"neg\": -1}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_THROW(parsed->find("s")->as_double(), Error);
  EXPECT_THROW(parsed->find("s")->as_bool(), Error);
  EXPECT_THROW(parsed->find("neg")->as_uint64(), Error);
  EXPECT_THROW(parsed->items(), Error);
}

}  // namespace
}  // namespace frote
