// Tests for the small utility modules: table rendering, CSV writer, env
// parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "frote/util/env.hpp"
#include "frote/util/error.hpp"
#include "frote/util/table.hpp"

namespace frote {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "long_header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide_cell", "x", "y"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Header row, underline, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // The underline matches the padded header width.
  std::istringstream lines(out);
  std::string header, underline;
  std::getline(lines, header);
  std::getline(lines, underline);
  EXPECT_EQ(header.size(), underline.size());
  EXPECT_NE(out.find("wide_cell"), std::string::npos);
}

TEST(TextTable, RejectsAridityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::fmt_pm(0.1, 0.02, 2), "0.10 ± 0.02");
}

TEST(CsvWriter, QuotesSpecialFields) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, EmptyFieldsPreserved) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"", "b", ""});
  EXPECT_EQ(os.str(), ",b,\n");
}

TEST(Env, IntParsesAndFallsBack) {
  ::setenv("FROTE_TEST_INT", "17", 1);
  EXPECT_EQ(env_int("FROTE_TEST_INT", 3), 17);
  ::setenv("FROTE_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("FROTE_TEST_INT", 3), 3);
  ::unsetenv("FROTE_TEST_INT");
  EXPECT_EQ(env_int("FROTE_TEST_INT", 3), 3);
}

TEST(Env, DoubleParsesAndFallsBack) {
  ::setenv("FROTE_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("FROTE_TEST_DBL", 1.0), 0.25);
  ::unsetenv("FROTE_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("FROTE_TEST_DBL", 1.0), 1.0);
}

TEST(Env, FlagSemantics) {
  ::setenv("FROTE_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("FROTE_TEST_FLAG"));
  ::setenv("FROTE_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("FROTE_TEST_FLAG"));
  ::setenv("FROTE_TEST_FLAG", "false", 1);
  EXPECT_FALSE(env_flag("FROTE_TEST_FLAG"));
  ::setenv("FROTE_TEST_FLAG", "yes", 1);
  EXPECT_TRUE(env_flag("FROTE_TEST_FLAG"));
  ::unsetenv("FROTE_TEST_FLAG");
  EXPECT_FALSE(env_flag("FROTE_TEST_FLAG"));
}

TEST(Env, StringFallback) {
  ::unsetenv("FROTE_TEST_STR");
  EXPECT_EQ(env_string("FROTE_TEST_STR", "dflt"), "dflt");
  ::setenv("FROTE_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("FROTE_TEST_STR", "dflt"), "value");
  ::unsetenv("FROTE_TEST_STR");
}

}  // namespace
}  // namespace frote
