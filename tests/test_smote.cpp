#include "frote/smote/smote.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "frote/ml/decision_tree.hpp"
#include "frote/smote/borderline.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

Dataset imbalanced_blobs(std::size_t majority = 150, std::size_t minority = 30,
                         std::uint64_t seed = 9) {
  Dataset data(testing::numeric2d_schema());
  Rng rng(seed);
  for (std::size_t i = 0; i < majority; ++i) {
    data.add_row({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0);
  }
  for (std::size_t i = 0; i < minority; ++i) {
    data.add_row({rng.normal(5.0, 1.0), rng.normal(5.0, 1.0)}, 1);
  }
  return data;
}

TEST(Smote, GeneratesRequestedAmount) {
  auto data = imbalanced_blobs();
  SmoteConfig config;
  config.amount_percent = 200;
  const auto synthetic = smote_oversample(data, 1, config);
  EXPECT_EQ(synthetic.size(), 60u);  // 2 per minority instance
}

TEST(Smote, SyntheticLabelsAreMinority) {
  auto data = imbalanced_blobs();
  const auto synthetic = smote_oversample(data, 1, {});
  for (std::size_t i = 0; i < synthetic.size(); ++i) {
    EXPECT_EQ(synthetic.label(i), 1);
  }
}

TEST(Smote, SyntheticPointsStayInMinorityRegion) {
  auto data = imbalanced_blobs();
  const auto synthetic = smote_oversample(data, 1, {});
  // Convex combinations of minority points: must lie inside the minority
  // bounding box.
  double min_x = 1e9, max_x = -1e9;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) != 1) continue;
    min_x = std::min(min_x, data.row(i)[0]);
    max_x = std::max(max_x, data.row(i)[0]);
  }
  for (std::size_t i = 0; i < synthetic.size(); ++i) {
    EXPECT_GE(synthetic.row(i)[0], min_x - 1e-9);
    EXPECT_LE(synthetic.row(i)[0], max_x + 1e-9);
  }
}

TEST(Smote, FractionalAmountApproximate) {
  auto data = imbalanced_blobs(200, 60);
  SmoteConfig config;
  config.amount_percent = 50;  // ~0.5 per instance
  const auto synthetic = smote_oversample(data, 1, config);
  EXPECT_GT(synthetic.size(), 15u);
  EXPECT_LT(synthetic.size(), 45u);
}

TEST(Smote, RequiresEnoughMinorityInstances) {
  auto data = imbalanced_blobs(50, 4);  // fewer than k+1 = 6
  EXPECT_THROW(smote_oversample(data, 1, {}), Error);
}

TEST(SmoteNc, CategoricalTakesNeighborMajority) {
  auto data = testing::threshold_dataset(30);
  Rng rng(4);
  const auto base = data.row(0);
  const auto n1 = data.row(1);
  std::vector<std::span<const double>> neighbors = {data.row(1), data.row(4),
                                                    data.row(7)};
  // Neighbours at indices 1,4,7 all have color = i%3 -> 1,1,1.
  const auto synthetic =
      smote_nc_interpolate(base, n1, neighbors, data.schema(), rng);
  EXPECT_DOUBLE_EQ(synthetic[2], 1.0);
}

TEST(SmoteNc, NumericBetweenBaseAndNeighbor) {
  auto data = testing::blobs_dataset(20);
  Rng rng(5);
  const auto base = data.row(0);
  const auto neighbor = data.row(2);
  std::vector<std::span<const double>> neighbors = {neighbor};
  for (int trial = 0; trial < 50; ++trial) {
    const auto synthetic =
        smote_nc_interpolate(base, neighbor, neighbors, data.schema(), rng);
    for (std::size_t f = 0; f < 2; ++f) {
      EXPECT_GE(synthetic[f], std::min(base[f], neighbor[f]) - 1e-12);
      EXPECT_LE(synthetic[f], std::max(base[f], neighbor[f]) + 1e-12);
    }
  }
}

TEST(Borderline, BlobCoresAreSafe) {
  auto data = testing::blobs_dataset(60, 8.0);
  const auto model = DecisionTreeLearner().train(data);
  const auto kinds = categorize_instances(data, *model);
  // With well-separated blobs almost everything is safe.
  std::size_t safe = 0;
  for (auto kind : kinds) safe += kind == InstanceKind::kSafe ? 1 : 0;
  EXPECT_GT(static_cast<double>(safe) / static_cast<double>(kinds.size()),
            0.9);
}

TEST(Borderline, MixedRegionsProduceBorderlineInstances) {
  // Two interleaved strips: plenty of boundary.
  Dataset data(testing::numeric2d_schema());
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 1.0);
    data.add_row({x, y}, static_cast<int>(x) % 2);
  }
  const auto model = DecisionTreeLearner().train(data);
  const auto kinds = categorize_instances(data, *model);
  std::size_t borderline = 0;
  for (auto kind : kinds) {
    borderline += kind == InstanceKind::kBorderline ? 1 : 0;
  }
  EXPECT_GT(borderline, 0u);
}

TEST(Borderline, WeightsMatchCategories) {
  auto data = testing::blobs_dataset(40);
  const auto model = DecisionTreeLearner().train(data);
  BorderlineConfig config;
  config.borderline_weight = 7.0;
  config.other_weight = 2.0;
  const auto kinds = categorize_instances(data, *model, config);
  const auto weights = borderline_weights(data, *model, config);
  ASSERT_EQ(kinds.size(), weights.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i], kinds[i] == InstanceKind::kBorderline
                                     ? 7.0
                                     : 2.0);
  }
}

}  // namespace
}  // namespace frote
