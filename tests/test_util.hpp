// Shared helpers for the test suite: tiny hand-built datasets with known
// geometry so rule/FROTE behaviour can be asserted exactly.
#pragma once

#include <memory>

#include "frote/data/dataset.hpp"
#include "frote/rules/rule.hpp"
#include "frote/util/rng.hpp"

namespace frote::testing {

/// Schema: x (numeric), y (numeric), color ∈ {red, green, blue}; 2 classes.
inline std::shared_ptr<const Schema> mixed_schema() {
  return std::make_shared<Schema>(
      std::vector<FeatureSpec>{
          FeatureSpec::numeric("x"),
          FeatureSpec::numeric("y"),
          FeatureSpec::categorical("color", {"red", "green", "blue"}),
      },
      std::vector<std::string>{"neg", "pos"});
}

/// Grid dataset over the mixed schema: label = 1 iff x > threshold.
/// `n` points with x in [0, 10), y in [0, 10), color cycling.
inline Dataset threshold_dataset(std::size_t n = 200, double threshold = 5.0,
                                 std::uint64_t seed = 7) {
  Dataset data(mixed_schema());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 10.0);
    const double color = static_cast<double>(i % 3);
    data.add_row({x, y, color}, x > threshold ? 1 : 0);
  }
  return data;
}

/// Purely numeric 2-d schema with 2 classes.
inline std::shared_ptr<const Schema> numeric2d_schema() {
  return std::make_shared<Schema>(
      std::vector<FeatureSpec>{FeatureSpec::numeric("x"),
                               FeatureSpec::numeric("y")},
      std::vector<std::string>{"a", "b"});
}

/// Two well-separated Gaussian blobs.
inline Dataset blobs_dataset(std::size_t n_per_class = 100,
                             double separation = 6.0, std::uint64_t seed = 3) {
  Dataset data(numeric2d_schema());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    data.add_row({rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)}, 0);
    data.add_row({rng.normal(separation, 1.0), rng.normal(separation, 1.0)},
                 1);
  }
  return data;
}

/// Rule "IF x > lo THEN pos" over the mixed schema.
inline FeedbackRule x_gt_rule(double lo, int target = 1) {
  Clause clause({Predicate{0, Op::kGt, lo}});
  return FeedbackRule::deterministic(clause, target, 2);
}

}  // namespace frote::testing
