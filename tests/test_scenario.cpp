// core/scenario: ScenarioSpec validation (malformed-document corpus with
// typed line:column parse errors), spec → scenario → to_json byte-equality,
// multi-class rule/metric/IP-selection contracts, deterministic scenario
// replay (drift snapshot/restore and thread-count invariance), and the
// registry + RunPlan extension surface — a scratch scenario registered from
// JSON runs through the grid driver with zero engine-code changes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frote/core/base_population.hpp"
#include "frote/core/registry.hpp"
#include "frote/core/runplan.hpp"
#include "frote/core/scenario.hpp"
#include "frote/core/selection.hpp"
#include "frote/core/spec.hpp"
#include "frote/data/generators.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/rules/parser.hpp"
#include "frote/rules/ruleset.hpp"
#include "frote/util/rng.hpp"

namespace frote {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Malformed-spec corpus

/// A minimal valid static scenario over the Adult generator; corpus entries
/// are single-substring mutations of this document.
const char kBaseDoc[] = R"json({
  "format": "frote.scenario_spec", "version": 1,
  "name": "corpus",
  "kind": "static",
  "generator": {"name": "adult", "size": 80, "seed": 4},
  "engine": {
    "format": "frote.engine_spec", "version": 1,
    "tau": 2, "q": 0.3, "k": 3,
    "learner": {"name": "nb"}, "selector": "random",
    "rules": ["IF hours_per_week > 50 THEN class = >50K"]
  },
  "expected": {"min_instances_added": 1}
})json";

/// kBaseDoc with the first occurrence of `from` replaced by `to`.
std::string mutate(const std::string& from, const std::string& to) {
  std::string doc = kBaseDoc;
  const std::size_t pos = doc.find(from);
  EXPECT_NE(pos, std::string::npos) << "corpus mutation target not found: "
                                    << from;
  if (pos != std::string::npos) doc.replace(pos, from.size(), to);
  return doc;
}

TEST(ScenarioSpecCorpus, BaseDocumentIsValid) {
  auto spec = ScenarioSpec::parse(kBaseDoc);
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  EXPECT_EQ(spec->name, "corpus");
  EXPECT_EQ(spec->kind, "static");
}

TEST(ScenarioSpecCorpus, MalformedDocumentsAreTypedParseErrors) {
  const std::string drift_phases =
      "\"kind\": \"drift\", \"phases\": [" \
      "{\"arrive_rows\": 10, \"rules\": [], \"steps\": 1}, " \
      "{\"arrive_rows\": 10, \"rules\": [\"IF bogus > 1 THEN class = >50K\"],"
      " \"steps\": 1}],";
  struct Case {
    const char* label;
    std::string document;
    const char* expect;  // required substring of the error message
  };
  const Case corpus[] = {
      // JSON-grammar failures surface the parser's exact line:column.
      {"truncated document", "{\"format\": \"frote.scenario_spec\",",
       "JSON parse error at 1:34"},
      {"bare word value",
       "{\n  \"format\": \"frote.scenario_spec\",\n  \"name\": oops\n}",
       "JSON parse error at 3:11: invalid value"},
      {"missing comma",
       "{\n  \"format\": \"frote.scenario_spec\"\n  \"name\": \"x\"\n}",
       "JSON parse error at 3:3"},
      {"trailing comma",
       "{\"format\": \"frote.scenario_spec\", \"name\": \"x\",}",
       "JSON parse error at 1:47"},
      // Document-shape failures are typed kParseError with the field named.
      {"missing format", mutate("\"format\": \"frote.scenario_spec\", ", ""),
       "not a scenario spec"},
      {"foreign format",
       mutate("\"frote.scenario_spec\"", "\"frote.run_result\""),
       "not a scenario spec"},
      {"newer version", mutate("\"version\": 1,", "\"version\": 99,"),
       "newer than this reader (1)"},
      {"non-numeric version", mutate("\"version\": 1,", "\"version\": \"x\","),
       "invalid version"},
      {"empty name", mutate("\"name\": \"corpus\"", "\"name\": \"\""),
       "name is required"},
      {"unknown kind", mutate("\"kind\": \"static\"", "\"kind\": \"stream\""),
       "kind must be \"static\" or \"drift\""},
      {"static with phases",
       mutate("\"kind\": \"static\",",
              "\"kind\": \"static\", \"phases\": "
              "[{\"arrive_rows\": 10, \"rules\": [], \"steps\": 1}],"),
       "kind \"static\" must not have phases"},
      {"drift without phases", mutate("\"kind\": \"static\"",
                                      "\"kind\": \"drift\""),
       "kind \"drift\" requires a non-empty phases list"},
      {"phases not an array",
       mutate("\"kind\": \"static\",", "\"kind\": \"drift\", \"phases\": 3,"),
       "phases must be an array"},
      {"phase rules not an array",
       mutate("\"kind\": \"static\",",
              "\"kind\": \"drift\", \"phases\": "
              "[{\"arrive_rows\": 10, \"rules\": 5, \"steps\": 1}],"),
       "rules must be an array of rule strings"},
      {"phase rule does not parse", mutate("\"kind\": \"static\",",
                                           drift_phases),
       "phase 1 rule 0: unknown feature: bogus"},
      {"engine dataset set",
       mutate("\"rules\": [\"IF hours_per_week > 50 THEN class = >50K\"]",
              "\"rules\": [\"IF hours_per_week > 50 THEN class = >50K\"], "
              "\"dataset\": {\"kind\": \"synthetic\", \"name\": \"adult\"}"),
       "engine.dataset must be unset"},
      {"engine rule entries not strings",
       mutate("[\"IF hours_per_week > 50 THEN class = >50K\"]", "[42]"),
       "rules entries must be strings"},
      {"engine rule unknown feature",
       mutate("IF hours_per_week > 50", "IF bogus > 50"),
       "engine rule 0: unknown feature: bogus"},
      {"engine rule unknown class",
       mutate("THEN class = >50K", "THEN class = maybe"),
       "engine rule 0: rule parse error at column"},
      {"unknown generator", mutate("\"name\": \"adult\"", "\"name\": \"nope\""),
       "cannot resolve synthetic dataset 'nope'"},
      {"label_noise too large",
       mutate("\"seed\": 4}", "\"seed\": 4, \"label_noise\": 1.5}"),
       "label_noise must be in [0, 1)"},
      {"label_noise negative",
       mutate("\"seed\": 4}", "\"seed\": 4, \"label_noise\": -0.1}"),
       "label_noise must be in [0, 1)"},
      {"class_weights not an array",
       mutate("\"seed\": 4}", "\"seed\": 4, \"class_weights\": \"heavy\"}"),
       "class_weights must be an array of numbers"},
      {"class_weights non-numeric entry",
       mutate("\"seed\": 4}", "\"seed\": 4, \"class_weights\": [\"a\"]}"),
       "class_weights entries must be numbers"},
      {"class_weights negative entry",
       mutate("\"seed\": 4}", "\"seed\": 4, \"class_weights\": [0.5, -0.5]}"),
       "class_weights entries must be non-negative"},
      {"class_weights wrong arity",
       mutate("\"seed\": 4}", "\"seed\": 4, \"class_weights\": "
                              "[0.2, 0.3, 0.5]}"),
       "class_weights must have one entry per class (2), got 3"},
      {"group_report without feature",
       mutate("\"expected\"", "\"group_report\": {\"favorable\": \">50K\"}, "
                              "\"expected\""),
       "feature is required"},
      {"group_report unknown feature",
       mutate("\"expected\"",
              "\"group_report\": {\"feature\": \"zodiac\", "
              "\"favorable\": \">50K\"}, \"expected\""),
       "group_report.feature \"zodiac\" is not a feature of adult"},
      {"group_report numeric feature",
       mutate("\"expected\"",
              "\"group_report\": {\"feature\": \"age\", "
              "\"favorable\": \">50K\"}, \"expected\""),
       "group_report.feature \"age\" must be categorical"},
      {"group_report unknown favorable",
       mutate("\"expected\"",
              "\"group_report\": {\"feature\": \"sex\", "
              "\"favorable\": \"maybe\"}, \"expected\""),
       "group_report.favorable \"maybe\" is not a class of adult"},
      {"max_group_gap without group_report",
       mutate("{\"min_instances_added\": 1}", "{\"max_group_gap\": 0.5}"),
       "expected.max_group_gap requires a group_report"},
  };
  for (const Case& entry : corpus) {
    auto spec = ScenarioSpec::parse(entry.document);
    ASSERT_FALSE(spec.has_value()) << entry.label;
    EXPECT_TRUE(spec.error().code == FroteErrorCode::kParseError)
        << entry.label << ": " << spec.error().message;
    EXPECT_NE(spec.error().message.find(entry.expect), std::string::npos)
        << entry.label << ": expected \"" << entry.expect << "\" in \""
        << spec.error().message << "\"";
  }
}

// ---------------------------------------------------------------------------
// Round-trip byte-equality

TEST(ScenarioSpecRoundTrip, BuiltinDocumentsAreByteStable) {
  // Every built-in document parses, and print ∘ parse is a fixed point:
  // spec → to_json_text → parse → to_json_text is byte-identical.
  ASSERT_FALSE(builtin_scenario_documents().empty());
  for (const auto& [name, document] : builtin_scenario_documents()) {
    auto spec = ScenarioSpec::parse(document);
    ASSERT_TRUE(spec.has_value()) << name << ": " << spec.error().message;
    EXPECT_EQ(spec->name, name);
    const std::string text = spec->to_json_text();
    auto reparsed = ScenarioSpec::parse(text);
    ASSERT_TRUE(reparsed.has_value()) << name << ": "
                                      << reparsed.error().message;
    EXPECT_EQ(reparsed->to_json_text(), text) << name;
    // The registry resolves to the same document.
    auto named = make_named_scenario(name);
    ASSERT_TRUE(named.has_value()) << named.error().message;
    EXPECT_EQ(named->to_json_text(), text) << name;
  }
}

TEST(ScenarioSpecRoundTrip, EveryFieldSurvivesIncludingOverrides) {
  ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.kind = "drift";
  spec.description = "all fields populated";
  spec.generator.name = "adult";
  spec.generator.size = 90;
  spec.generator.seed = 11;
  spec.generator.label_noise = 0.25;
  spec.generator.class_weights = {0.75, 0.25};
  spec.engine.tau = 3;
  spec.engine.q = 0.4;
  spec.engine.k = 3;
  spec.engine.learner = "nb";
  spec.engine.selector = "random";
  ScenarioPhase phase;
  phase.arrive_rows = 20;
  phase.rules = {"IF age > 55 THEN class = <=50K"};
  phase.steps = 2;
  spec.phases = {phase};
  spec.restore_at_drift = false;
  spec.group_report = GroupReportSpec{"sex", ">50K"};
  spec.expected.min_final_j_bar = 0.0;
  spec.expected.min_j_bar_gain = -1.0;
  spec.expected.min_instances_added = 0;
  spec.expected.max_group_gap = 1.0;

  const std::string text = spec.to_json_text();
  auto parsed = ScenarioSpec::parse(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->to_json_text(), text);
  EXPECT_TRUE(parsed->generator.label_noise.has_value());
  EXPECT_EQ(parsed->generator.class_weights.size(), 2u);
  EXPECT_FALSE(parsed->restore_at_drift);
  ASSERT_TRUE(parsed->group_report.has_value());
  EXPECT_EQ(parsed->group_report->feature, "sex");
  ASSERT_TRUE(parsed->expected.max_group_gap.has_value());
}

// ---------------------------------------------------------------------------
// Registry surface

TEST(ScenarioRegistry, BuiltinsAreRegisteredAndUnknownNamesAreTyped) {
  const auto names = registered_scenario_names();
  const auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("multiclass_wine"));
  EXPECT_TRUE(has("drift_adult"));
  EXPECT_TRUE(has("fairness_adult"));

  auto missing = make_named_scenario("no_such_scenario");
  ASSERT_FALSE(missing.has_value());
  EXPECT_TRUE(missing.error().code == FroteErrorCode::kUnknownComponent);
  EXPECT_NE(missing.error().message.find("multiclass_wine"),
            std::string::npos);
}

TEST(ScenarioRegistry, StaleDocumentsSurfaceAsTypedErrorsOnLookup) {
  // The registry stores document text; validation happens on lookup, so a
  // broken entry is a typed error at use, never a half-built scenario.
  register_scenario("scratch_stale", "{\"format\": \"nope\"}");
  auto broken = make_named_scenario("scratch_stale");
  ASSERT_FALSE(broken.has_value());
  EXPECT_TRUE(broken.error().code == FroteErrorCode::kParseError);
  // Re-registering replaces the entry.
  register_scenario("scratch_stale", kBaseDoc);
  auto fixed = make_named_scenario("scratch_stale");
  ASSERT_TRUE(fixed.has_value()) << fixed.error().message;
  EXPECT_EQ(fixed->name, "corpus");
}

// ---------------------------------------------------------------------------
// Multi-class contracts (7-class wine generator)

TEST(MultiClassContract, RulesMetricsAndIpSelectionOnSevenClasses) {
  const Dataset data =
      make_dataset(dataset_by_name("wine quality (white)"), 300, 42);
  const Schema& schema = data.schema();
  ASSERT_EQ(schema.num_classes(), 7u);

  const std::vector<FeedbackRule> rules = {
      parse_rule("IF alcohol > 12 THEN class = q7", schema),
      parse_rule("IF volatile_acidity > 0.4 THEN class = q4", schema),
      parse_rule("IF residual_sugar > 8 THEN Y ~ [q5: 0.5, q6: 0.5]",
                 schema),
  };
  const FeedbackRuleSet frs(rules);

  auto learner = make_named_learner("gbdt", {42, /*fast=*/true, 0});
  ASSERT_TRUE(learner.has_value()) << learner.error().message;
  const auto model = (*learner)->train(data);

  // Every class-targeted rule covers real rows, and its agreement is a
  // probability.
  for (const auto& rule : rules) {
    const RuleAgreement agreement = rule_agreement(*model, rule, data, 1);
    EXPECT_GT(agreement.covered, 0u) << rule.to_string(schema);
    EXPECT_GE(agreement.mra, 0.0);
    EXPECT_LE(agreement.mra, 1.0);
    // The per-rule sweep is thread-invariant to the bit.
    const RuleAgreement agreement4 = rule_agreement(*model, rule, data, 4);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(agreement.mra),
              std::bit_cast<std::uint64_t>(agreement4.mra));
    EXPECT_EQ(agreement.covered, agreement4.covered);
  }

  // Objective evaluation over the 7-class rule set: bit-identical at
  // threads 1 vs 4, components in range.
  const ObjectiveBreakdown o1 = evaluate_objective(*model, frs, data, 1);
  const ObjectiveBreakdown o4 = evaluate_objective(*model, frs, data, 4);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(o1.mra),
            std::bit_cast<std::uint64_t>(o4.mra));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(o1.outside_f1),
            std::bit_cast<std::uint64_t>(o4.outside_f1));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(o1.coverage_prob),
            std::bit_cast<std::uint64_t>(o4.coverage_prob));
  EXPECT_EQ(o1.covered, o4.covered);
  EXPECT_EQ(o1.outside, o4.outside);
  EXPECT_GT(o1.covered, 0u);
  EXPECT_GT(o1.outside, 0u);

  // IP selection (borderline-weighted) picks identical (rule, slot) pairs
  // from identical RNG draws at threads 1 vs 4 — the weights behind the
  // choice are bitwise thread-invariant.
  const BasePopulation bp = preselect_base_population(data, frs, 3);
  IpSelectorConfig config1;
  config1.k = 3;
  config1.threads = 1;
  IpSelectorConfig config4 = config1;
  config4.threads = 4;
  const IpSelector selector1(config1);
  const IpSelector selector4(config4);
  Rng rng1(99);
  Rng rng4(99);
  const auto picks1 = selector1.select(data, bp, *model, 12, rng1);
  const auto picks4 = selector4.select(data, bp, *model, 12, rng4);
  ASSERT_EQ(picks1.size(), picks4.size());
  EXPECT_FALSE(picks1.empty());
  for (std::size_t i = 0; i < picks1.size(); ++i) {
    EXPECT_EQ(picks1[i].rule_index, picks4[i].rule_index) << i;
    EXPECT_EQ(picks1[i].bp_slot, picks4[i].bp_slot) << i;
  }
}

// ---------------------------------------------------------------------------
// Scenario replay determinism

TEST(ScenarioRun, BuiltinsMeetExpectedOutcomesThreadInvariantly) {
  for (const auto& name : registered_scenario_names()) {
    if (name.rfind("scratch_", 0) == 0) continue;  // test-local entries
    auto spec = make_named_scenario(name);
    ASSERT_TRUE(spec.has_value()) << name << ": " << spec.error().message;
    ScenarioRunOptions options;
    options.seed = 42;
    options.threads = 1;
    auto report1 = run_scenario(*spec, options);
    ASSERT_TRUE(report1.has_value()) << name << ": "
                                     << report1.error().message;
    options.threads = 4;
    auto report4 = run_scenario(*spec, options);
    ASSERT_TRUE(report4.has_value()) << name << ": "
                                     << report4.error().message;
    // The whole report document — scalars, per-rule agreement, drift
    // phases, group deltas, dataset digest — is byte-identical.
    EXPECT_EQ(report1->to_json_text(), report4->to_json_text()) << name;
    EXPECT_TRUE(report1->expected_ok)
        << name << ": "
        << (report1->expected_failures.empty()
                ? std::string("(no recorded failure)")
                : report1->expected_failures.front());
    EXPECT_GT(report1->rows_final, report1->rows_initial) << name;
    EXPECT_FALSE(report1->dataset_digest.empty());
  }
}

TEST(ScenarioRun, DriftSnapshotRestoreIsBitIdenticalToUninterrupted) {
  auto spec = make_named_scenario("drift_adult");
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  ASSERT_EQ(spec->kind, "drift");
  ASSERT_TRUE(spec->restore_at_drift);

  ScenarioRunOptions options;
  options.seed = 42;
  auto with_restore = run_scenario(*spec, options);
  ASSERT_TRUE(with_restore.has_value()) << with_restore.error().message;

  ScenarioSpec uninterrupted = *spec;
  uninterrupted.restore_at_drift = false;
  auto without_restore = run_scenario(uninterrupted, options);
  ASSERT_TRUE(without_restore.has_value()) << without_restore.error().message;

  // Snapshot → restore at every drift point changes nothing, to the byte.
  EXPECT_EQ(with_restore->to_json_text(), without_restore->to_json_text());
  EXPECT_EQ(with_restore->phases.size(), spec->phases.size());
  std::size_t arrived = 0;
  for (const auto& phase : with_restore->phases) arrived += phase.rows_arrived;
  EXPECT_EQ(with_restore->rows_final,
            with_restore->rows_initial + arrived +
                with_restore->instances_added);
}

TEST(ScenarioRun, SeedOverrideReseedsTheWholeScenario) {
  auto spec = make_named_scenario("fairness_adult");
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  ScenarioRunOptions options;
  options.seed = 42;
  auto a = run_scenario(*spec, options);
  auto a_again = run_scenario(*spec, options);
  options.seed = 7;
  auto b = run_scenario(*spec, options);
  ASSERT_TRUE(a.has_value() && a_again.has_value() && b.has_value());
  EXPECT_EQ(a->to_json_text(), a_again->to_json_text());
  EXPECT_NE(a->dataset_digest, b->dataset_digest);
  EXPECT_EQ(a->seed, 42u);
  EXPECT_EQ(b->seed, 7u);
  // The fairness family reports per-group deltas and their spread.
  EXPECT_GE(a->groups.size(), 2u);
  for (const auto& group : a->groups) EXPECT_GT(group.rows, 0u);
  EXPECT_GE(a->group_gap, 0.0);
}

TEST(ScenarioSessionSpec, ServesTheGeneratorAsADatasetReference) {
  auto spec = make_named_scenario("drift_adult");
  ASSERT_TRUE(spec.has_value()) << spec.error().message;
  auto session_spec = scenario_session_spec(*spec, 9);
  ASSERT_TRUE(session_spec.has_value()) << session_spec.error().message;
  ASSERT_TRUE(session_spec->dataset.has_value());
  EXPECT_EQ(session_spec->dataset->kind, "synthetic");
  EXPECT_EQ(session_spec->dataset->name, spec->generator.name);
  EXPECT_EQ(session_spec->dataset->seed, 9u);
  EXPECT_EQ(session_spec->seed, 9u);

  // Blueprint overrides cannot be expressed as a DatasetSpec; the session
  // path refuses instead of silently serving different data.
  ScenarioSpec with_overrides = *spec;
  with_overrides.generator.label_noise = 0.2;
  auto refused = scenario_session_spec(with_overrides);
  ASSERT_FALSE(refused.has_value());
  EXPECT_TRUE(refused.error().code == FroteErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// The generalized generator path (DatasetSpec synthetic delegation)

TEST(GeneratorPath, DatasetByNameIsCaseInsensitive) {
  EXPECT_TRUE(dataset_by_name("ADULT") == dataset_by_name("adult"));
  EXPECT_TRUE(dataset_by_name("Wine Quality (White)") ==
              dataset_by_name("wine quality (white)"));
  EXPECT_THROW(dataset_by_name("no such dataset"), Error);
}

TEST(GeneratorPath, SpecSyntheticAndGeneratorSpecProduceIdenticalRows) {
  // Satellite of the refactor: load_spec_dataset's "synthetic" kind
  // delegates to the generalized generator, so both paths draw the same
  // bytes.
  DatasetSpec dataset_spec{"synthetic", "", "adult", 120, 9};
  auto via_spec = load_spec_dataset(dataset_spec);
  ASSERT_TRUE(via_spec.has_value()) << via_spec.error().message;

  GeneratorSpec generator;
  generator.name = "adult";
  generator.size = 120;
  generator.seed = 9;
  auto via_generator = generate_dataset(generator);
  ASSERT_TRUE(via_generator.has_value()) << via_generator.error().message;

  ASSERT_EQ(via_spec->size(), via_generator->size());
  ASSERT_EQ(via_spec->num_features(), via_generator->num_features());
  for (std::size_t i = 0; i < via_spec->size(); ++i) {
    EXPECT_EQ(via_spec->label(i), via_generator->label(i)) << i;
    const auto row_a = via_spec->row(i);
    const auto row_b = via_generator->row(i);
    for (std::size_t j = 0; j < row_a.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(row_a[j]),
                std::bit_cast<std::uint64_t>(row_b[j]))
          << i << "," << j;
    }
  }

  auto unknown = load_spec_dataset(DatasetSpec{"synthetic", "", "nope", 10, 1});
  ASSERT_FALSE(unknown.has_value());
  EXPECT_TRUE(unknown.error().code == FroteErrorCode::kUnknownComponent);
}

TEST(GeneratorPath, OverridesReshapeLabelsOnly) {
  GeneratorSpec plain;
  plain.name = "adult";
  plain.size = 200;
  plain.seed = 3;
  GeneratorSpec weighted = plain;
  weighted.class_weights = {0.05, 0.95};
  auto a = generate_dataset(plain);
  auto b = generate_dataset(weighted);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->size(), b->size());
  // Schema and feature matrix are untouched; the label distribution moves
  // toward the favored class.
  std::size_t flips = 0;
  std::size_t positives_plain = 0;
  std::size_t positives_weighted = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    positives_plain += a->label(i) == 1 ? 1 : 0;
    positives_weighted += b->label(i) == 1 ? 1 : 0;
    flips += a->label(i) != b->label(i) ? 1 : 0;
    const auto row_a = a->row(i);
    const auto row_b = b->row(i);
    for (std::size_t j = 0; j < row_a.size(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(row_a[j]),
                std::bit_cast<std::uint64_t>(row_b[j]));
    }
  }
  EXPECT_GT(flips, 0u);
  EXPECT_GT(positives_weighted, positives_plain);
}

// ---------------------------------------------------------------------------
// RunPlan scenario grids

TEST(RunPlanScenarios, GridParsesExpandsDeterministicallyAndRoundTrips) {
  const char plan_text[] = R"json({
  "format": "frote.run_plan", "version": 1,
  "grid": {
    "scenarios": ["fairness_adult", "multiclass_wine"],
    "learners": ["rf"],
    "seeds": [42, 7]
  },
  "threads": 2
})json";
  auto plan = RunPlan::parse(plan_text);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;
  const auto runs = plan->expand();
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].name, "run-000-fairness_adult-rf-s42");
  EXPECT_EQ(runs[1].name, "run-001-fairness_adult-rf-s7");
  EXPECT_EQ(runs[2].name, "run-002-multiclass_wine-rf-s42");
  EXPECT_EQ(runs[3].name, "run-003-multiclass_wine-rf-s7");
  EXPECT_EQ(runs[0].scenario, "fairness_adult");
  EXPECT_EQ(runs[0].learner_override, "rf");
  EXPECT_EQ(runs[0].selector_override, "");
  EXPECT_EQ(runs[1].seed, 7u);

  // Scenario plans omit "base" and round-trip byte-identically.
  const std::string dumped = plan->to_json_text();
  EXPECT_EQ(dumped.find("\"base\""), std::string::npos);
  auto reparsed = RunPlan::parse(dumped);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  EXPECT_EQ(reparsed->to_json_text(), dumped);

  // A plan with neither base nor scenarios is refused.
  auto empty = RunPlan::parse(
      "{\"format\": \"frote.run_plan\", \"version\": 1, \"grid\": {}}");
  ASSERT_FALSE(empty.has_value());
  EXPECT_NE(empty.error().message.find("missing \"base\""),
            std::string::npos);
}

TEST(RunPlanScenarios, UnknownScenarioOrOverrideFailsBeforeAnyRun) {
  RunPlan plan;
  plan.scenarios = {"no_such_scenario"};
  plan.seeds = {1};
  auto unknown = execute_plan(plan, {});
  ASSERT_FALSE(unknown.has_value());
  EXPECT_TRUE(unknown.error().code == FroteErrorCode::kUnknownComponent);

  plan.scenarios = {"fairness_adult"};
  plan.learners = {"no_such_learner"};
  auto bad_learner = execute_plan(plan, {});
  ASSERT_FALSE(bad_learner.has_value());
  EXPECT_TRUE(bad_learner.error().code == FroteErrorCode::kUnknownComponent);

  plan.learners = {};
  plan.selectors = {"no_such_selector"};
  auto bad_selector = execute_plan(plan, {});
  ASSERT_FALSE(bad_selector.has_value());
  EXPECT_TRUE(bad_selector.error().code ==
              FroteErrorCode::kUnknownComponent);
}

/// Read a whole file (test-local; artifacts are small).
std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path.string();
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(RunPlanScenarios, ScratchScenarioRunsThroughTheGridWithNoEngineCode) {
  // The acceptance demonstration: registering a new workload is JSON plus
  // one registry entry, and the grid driver runs it like any built-in.
  register_scenario("scratch_grid", R"json({
  "format": "frote.scenario_spec", "version": 1,
  "name": "scratch_grid",
  "kind": "static",
  "generator": {"name": "adult", "size": 80, "seed": 4},
  "engine": {
    "format": "frote.engine_spec", "version": 1,
    "tau": 2, "q": 0.3, "k": 3,
    "learner": {"name": "nb"}, "selector": "random",
    "rules": ["IF hours_per_week > 50 THEN class = >50K"]
  },
  "expected": {"min_instances_added": 0}
})json");

  RunPlan plan;
  plan.scenarios = {"scratch_grid"};
  plan.seeds = {5};
  plan.threads = 1;

  const fs::path root =
      fs::temp_directory_path() / "frote_test_scenario_grid";
  fs::remove_all(root);
  RunPlanOptions options;
  options.output_dir = (root / "a").string();
  auto first = execute_plan(plan, options);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  ASSERT_EQ(first->size(), 1u);
  EXPECT_TRUE(first->front().completed);
  EXPECT_EQ(first->front().name, "run-000-scratch_grid-s5");

  const fs::path run_dir = root / "a" / "run-000-scratch_grid-s5";
  const std::string result_text = slurp(run_dir / "result.json");
  auto result_json = json_parse(result_text);
  ASSERT_TRUE(result_json.has_value()) << result_json.error().message;
  EXPECT_EQ(result_json->find("format")->as_string(),
            "frote.scenario_result");
  EXPECT_EQ(result_json->find("scenario")->as_string(), "scratch_grid");
  EXPECT_EQ(result_json->find("seed")->as_uint64(), 5u);

  // spec.json is the fully-resolved scenario document and still parses.
  auto resolved = ScenarioSpec::parse(slurp(run_dir / "spec.json"));
  ASSERT_TRUE(resolved.has_value()) << resolved.error().message;
  EXPECT_EQ(resolved->generator.seed, 5u);
  EXPECT_EQ(resolved->engine.seed, 5u);

  // A second execution into a fresh directory produces identical bytes,
  // and a resumed execution over the first directory re-runs nothing yet
  // reports the same summary.
  options.output_dir = (root / "b").string();
  auto second = execute_plan(plan, options);
  ASSERT_TRUE(second.has_value()) << second.error().message;
  EXPECT_EQ(slurp(root / "b" / "run-000-scratch_grid-s5" / "result.json"),
            result_text);

  options.output_dir = (root / "a").string();
  options.resume = true;
  auto resumed = execute_plan(plan, options);
  ASSERT_TRUE(resumed.has_value()) << resumed.error().message;
  EXPECT_TRUE(resumed->front().completed);
  EXPECT_EQ(resumed->front().instances_added,
            first->front().instances_added);
  EXPECT_EQ(slurp(run_dir / "result.json"), result_text);

  fs::remove_all(root);
}

}  // namespace
}  // namespace frote
