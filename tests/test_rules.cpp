#include <gtest/gtest.h>

#include <vector>

#include "frote/rules/ruleset.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

using testing::mixed_schema;

TEST(Predicate, NumericOperators) {
  const std::vector<double> row = {5.0, 0.0, 0.0};
  EXPECT_TRUE((Predicate{0, Op::kEq, 5.0}).evaluate(row));
  EXPECT_TRUE((Predicate{0, Op::kGe, 5.0}).evaluate(row));
  EXPECT_TRUE((Predicate{0, Op::kLe, 5.0}).evaluate(row));
  EXPECT_FALSE((Predicate{0, Op::kGt, 5.0}).evaluate(row));
  EXPECT_FALSE((Predicate{0, Op::kLt, 5.0}).evaluate(row));
  EXPECT_TRUE((Predicate{0, Op::kGt, 4.9}).evaluate(row));
}

TEST(Predicate, CategoricalOperators) {
  const std::vector<double> row = {0.0, 0.0, 2.0};  // color = blue
  EXPECT_TRUE((Predicate{2, Op::kEq, 2.0}).evaluate(row));
  EXPECT_FALSE((Predicate{2, Op::kNe, 2.0}).evaluate(row));
  EXPECT_TRUE((Predicate{2, Op::kNe, 1.0}).evaluate(row));
}

TEST(Predicate, ReverseOpIsInvolution) {
  for (Op op : {Op::kEq, Op::kNe, Op::kGt, Op::kGe, Op::kLt, Op::kLe}) {
    EXPECT_EQ(reverse_op(reverse_op(op)), op);
  }
}

TEST(Predicate, OpValidity) {
  EXPECT_TRUE(op_valid_for(Op::kEq, FeatureType::kCategorical));
  EXPECT_TRUE(op_valid_for(Op::kNe, FeatureType::kCategorical));
  EXPECT_FALSE(op_valid_for(Op::kGt, FeatureType::kCategorical));
  EXPECT_TRUE(op_valid_for(Op::kGt, FeatureType::kNumeric));
  EXPECT_FALSE(op_valid_for(Op::kNe, FeatureType::kNumeric));
}

TEST(Predicate, ToStringReadable) {
  auto schema = mixed_schema();
  EXPECT_EQ((Predicate{0, Op::kLt, 29.0}).to_string(*schema), "x < 29");
  EXPECT_EQ((Predicate{2, Op::kEq, 1.0}).to_string(*schema),
            "color = 'green'");
}

TEST(Clause, EmptyClauseCoversEverything) {
  Clause c;
  EXPECT_TRUE(c.satisfies(std::vector<double>{1.0, 2.0, 0.0}));
}

TEST(Clause, ConjunctionSemantics) {
  Clause c({Predicate{0, Op::kGt, 2.0}, Predicate{2, Op::kEq, 1.0}});
  EXPECT_TRUE(c.satisfies(std::vector<double>{3.0, 0.0, 1.0}));
  EXPECT_FALSE(c.satisfies(std::vector<double>{1.0, 0.0, 1.0}));
  EXPECT_FALSE(c.satisfies(std::vector<double>{3.0, 0.0, 2.0}));
}

TEST(Clause, WithoutRemovesOnePredicate) {
  Clause c({Predicate{0, Op::kGt, 2.0}, Predicate{2, Op::kEq, 1.0}});
  const Clause relaxed = c.without(0);
  EXPECT_EQ(relaxed.size(), 1u);
  EXPECT_TRUE(relaxed.satisfies(std::vector<double>{0.0, 0.0, 1.0}));
}

TEST(Clause, ConstraintForNumericInterval) {
  auto schema = mixed_schema();
  Clause c({Predicate{0, Op::kGt, 2.0}, Predicate{0, Op::kLe, 8.0}});
  const auto fc = c.constraint_for(0, *schema);
  EXPECT_DOUBLE_EQ(fc.lo, 2.0);
  EXPECT_TRUE(fc.lo_open);
  EXPECT_DOUBLE_EQ(fc.hi, 8.0);
  EXPECT_FALSE(fc.hi_open);
  EXPECT_TRUE(fc.numeric_feasible());
}

TEST(Clause, ContradictoryIntervalInfeasible) {
  auto schema = mixed_schema();
  Clause c({Predicate{0, Op::kGt, 8.0}, Predicate{0, Op::kLt, 2.0}});
  EXPECT_FALSE(c.satisfiable(*schema));
}

TEST(Clause, PinnedOutsideIntervalInfeasible) {
  auto schema = mixed_schema();
  Clause c({Predicate{0, Op::kEq, 1.0}, Predicate{0, Op::kGt, 5.0}});
  EXPECT_FALSE(c.satisfiable(*schema));
}

TEST(Clause, CategoricalAllDeniedInfeasible) {
  auto schema = mixed_schema();
  Clause c({Predicate{2, Op::kNe, 0.0}, Predicate{2, Op::kNe, 1.0},
            Predicate{2, Op::kNe, 2.0}});
  EXPECT_FALSE(c.satisfiable(*schema));
}

TEST(Clause, CategoricalEqAndNeSameValueInfeasible) {
  auto schema = mixed_schema();
  Clause c({Predicate{2, Op::kEq, 1.0}, Predicate{2, Op::kNe, 1.0}});
  EXPECT_FALSE(c.satisfiable(*schema));
}

TEST(Clause, IntersectsDetectsOverlap) {
  auto schema = mixed_schema();
  Clause a({Predicate{0, Op::kGt, 2.0}});
  Clause b({Predicate{0, Op::kLt, 5.0}});
  Clause c({Predicate{0, Op::kGt, 7.0}});
  EXPECT_TRUE(a.intersects(b, *schema));
  EXPECT_FALSE(b.intersects(c, *schema));
}

TEST(Clause, ImpliesNumericIntervals) {
  auto schema = mixed_schema();
  Clause narrow({Predicate{0, Op::kGt, 5.0}, Predicate{0, Op::kLe, 6.0}});
  Clause wide({Predicate{0, Op::kGt, 3.0}});
  EXPECT_TRUE(narrow.implies(wide, *schema));
  EXPECT_FALSE(wide.implies(narrow, *schema));
}

TEST(Clause, ImpliesCategoricalPins) {
  auto schema = mixed_schema();
  Clause pinned({Predicate{2, Op::kEq, 1.0}});
  Clause not_red({Predicate{2, Op::kNe, 0.0}});
  EXPECT_TRUE(pinned.implies(not_red, *schema));
  EXPECT_FALSE(not_red.implies(pinned, *schema));
}

TEST(Clause, ImpliesSelfAndEmpty) {
  auto schema = mixed_schema();
  Clause c({Predicate{0, Op::kGt, 2.0}});
  EXPECT_TRUE(c.implies(c, *schema));
  EXPECT_TRUE(c.implies(Clause{}, *schema));  // everything implies TRUE
  EXPECT_FALSE(Clause{}.implies(c, *schema));
}

TEST(Clause, UnsatisfiableImpliesAnything) {
  auto schema = mixed_schema();
  Clause absurd({Predicate{0, Op::kGt, 9.0}, Predicate{0, Op::kLt, 1.0}});
  Clause anything({Predicate{2, Op::kEq, 0.0}});
  EXPECT_TRUE(absurd.implies(anything, *schema));
}

TEST(Conflicts, MixtureRuleDoesNotConflictWithResolvedOriginals) {
  auto schema = mixed_schema();
  auto a = testing::x_gt_rule(5.0, 1);
  auto b = testing::x_gt_rule(6.0, 0);
  const auto mid = resolve_by_mixture(a, b);
  FeedbackRuleSet frs({a, b, mid});
  EXPECT_FALSE(has_conflicts(frs, *schema));
}

TEST(LabelDistribution, DeterministicDelta) {
  const auto d = LabelDistribution::deterministic(1, 3);
  EXPECT_TRUE(d.is_deterministic());
  EXPECT_EQ(d.mode(), 1);
  EXPECT_DOUBLE_EQ(d.prob(1), 1.0);
  EXPECT_DOUBLE_EQ(d.prob(0), 0.0);
}

TEST(LabelDistribution, FromProbsValidates) {
  EXPECT_THROW(LabelDistribution::from_probs({0.5, 0.6}), Error);
  EXPECT_THROW(LabelDistribution::from_probs({-0.1, 1.1}), Error);
  EXPECT_NO_THROW(LabelDistribution::from_probs({0.25, 0.75}));
}

TEST(LabelDistribution, MixtureAverages) {
  const auto a = LabelDistribution::deterministic(0, 2);
  const auto b = LabelDistribution::deterministic(1, 2);
  const auto mix = LabelDistribution::mixture(a, b);
  EXPECT_DOUBLE_EQ(mix.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(mix.prob(1), 0.5);
  EXPECT_FALSE(mix.is_deterministic());
}

TEST(LabelDistribution, SampleFollowsDistribution) {
  const auto d = LabelDistribution::from_probs({0.2, 0.8});
  Rng rng(3);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += d.sample(rng);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.8, 0.02);
}

TEST(FeedbackRule, CoversRespectsExclusions) {
  auto rule = testing::x_gt_rule(5.0);
  rule.exclusions.push_back(Clause({Predicate{1, Op::kGt, 9.0}}));
  EXPECT_TRUE(rule.covers(std::vector<double>{6.0, 1.0, 0.0}));
  EXPECT_FALSE(rule.covers(std::vector<double>{6.0, 9.5, 0.0}));
  EXPECT_FALSE(rule.covers(std::vector<double>{4.0, 1.0, 0.0}));
}

TEST(Coverage, MatchesManualScan) {
  auto data = testing::threshold_dataset(100);
  const auto rule = testing::x_gt_rule(5.0);
  const auto cov = coverage(rule, data);
  for (std::size_t idx : cov) EXPECT_GT(data.row(idx)[0], 5.0);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.row(i)[0] > 5.0) ++manual;
  }
  EXPECT_EQ(cov.size(), manual);
}

TEST(RuleSet, CoverageUnionDeduplicates) {
  auto data = testing::threshold_dataset(100);
  FeedbackRuleSet frs({testing::x_gt_rule(5.0), testing::x_gt_rule(7.0)});
  const auto uni = frs.coverage_union(data);
  const auto first = coverage(frs.rule(0), data);
  EXPECT_EQ(uni.size(), first.size());  // second rule ⊂ first
}

TEST(RuleSet, FirstCoveringRule) {
  FeedbackRuleSet frs({testing::x_gt_rule(7.0), testing::x_gt_rule(3.0)});
  EXPECT_EQ(frs.first_covering_rule(std::vector<double>{8.0, 0.0, 0.0}), 0);
  EXPECT_EQ(frs.first_covering_rule(std::vector<double>{5.0, 0.0, 0.0}), 1);
  EXPECT_EQ(frs.first_covering_rule(std::vector<double>{1.0, 0.0, 0.0}), -1);
}

TEST(Conflicts, SameDistributionNeverConflicts) {
  auto schema = mixed_schema();
  const auto a = testing::x_gt_rule(5.0, 1);
  const auto b = testing::x_gt_rule(6.0, 1);
  EXPECT_FALSE(rules_conflict(a, b, *schema));
}

TEST(Conflicts, OverlappingDifferentLabelsConflict) {
  auto schema = mixed_schema();
  const auto a = testing::x_gt_rule(5.0, 1);
  const auto b = testing::x_gt_rule(6.0, 0);
  EXPECT_TRUE(rules_conflict(a, b, *schema));
}

TEST(Conflicts, DisjointClausesDoNotConflict) {
  auto schema = mixed_schema();
  FeedbackRule a = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 8.0}}), 1, 2);
  FeedbackRule b = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kLt, 2.0}}), 0, 2);
  EXPECT_FALSE(rules_conflict(a, b, *schema));
}

TEST(Conflicts, ResolutionByExclusionRemovesConflict) {
  auto schema = mixed_schema();
  auto a = testing::x_gt_rule(5.0, 1);
  auto b = testing::x_gt_rule(6.0, 0);
  resolve_by_exclusion(a, b);
  EXPECT_FALSE(rules_conflict(a, b, *schema));
  // Point in the overlap is now covered by neither... it is excluded from
  // both (the paper's option 1 carves the intersection out of both rules).
  const std::vector<double> overlap = {7.0, 0.0, 0.0};
  EXPECT_FALSE(a.covers(overlap));
  EXPECT_FALSE(b.covers(overlap));
  // Points exclusive to one rule remain covered.
  EXPECT_TRUE(a.covers(std::vector<double>{5.5, 0.0, 0.0}));
}

TEST(Conflicts, ResolutionByMixtureCreatesMidRule) {
  auto a = testing::x_gt_rule(5.0, 1);
  auto b = testing::x_gt_rule(6.0, 0);
  const auto mid = resolve_by_mixture(a, b);
  EXPECT_TRUE(mid.covers(std::vector<double>{7.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(mid.pi.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(mid.pi.prob(1), 0.5);
}

TEST(Conflicts, ResolveAllLeavesSetConflictFree) {
  auto schema = mixed_schema();
  FeedbackRuleSet frs({testing::x_gt_rule(5.0, 1), testing::x_gt_rule(6.0, 0),
                       testing::x_gt_rule(7.0, 1)});
  EXPECT_TRUE(has_conflicts(frs, *schema));
  resolve_all_conflicts(frs, *schema);
  EXPECT_FALSE(has_conflicts(frs, *schema));
}

TEST(FeedbackRule, ToStringReadable) {
  auto schema = mixed_schema();
  const auto rule = testing::x_gt_rule(5.0);
  EXPECT_EQ(rule.to_string(*schema), "IF x > 5 THEN class = pos");
}

}  // namespace
}  // namespace frote
