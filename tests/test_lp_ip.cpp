#include <gtest/gtest.h>

#include "frote/opt/ip.hpp"
#include "frote/opt/lp.hpp"

namespace frote {
namespace {

/// max x0 + x1 s.t. x0 + x1 + s = 1 (s >= 0): a simplex on the unit simplex.
TEST(Lp, SimpleBudget) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.num_rows = 1;
  lp.c = {1.0, 1.0, 0.0};
  lp.lo = {0.0, 0.0, 0.0};
  lp.hi = {1.0, 1.0, kLpInfinity};
  lp.a = {1.0, 1.0, 1.0};
  lp.b = {1.0};
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-9);
}

/// Weighted selection: prefer the heavier variable under a budget of one.
TEST(Lp, PrefersHeavierWeight) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.num_rows = 1;
  lp.c = {1.0, 3.0, 0.0};
  lp.lo = {0.0, 0.0, 0.0};
  lp.hi = {1.0, 1.0, kLpInfinity};
  lp.a = {1.0, 1.0, 1.0};
  lp.b = {1.0};
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
}

/// Range constraint via bounded slack: 2 ≤ x0+x1+x2 ≤ 3 maximizing -x's
/// forces the lower bound to bind.
TEST(Lp, LowerBoundBinds) {
  LpProblem lp;
  lp.num_vars = 4;  // 3 binaries + slack
  lp.num_rows = 1;
  lp.c = {-1.0, -2.0, -3.0, 0.0};
  lp.lo = {0.0, 0.0, 0.0, 0.0};
  lp.hi = {1.0, 1.0, 1.0, 1.0};  // slack range = u - l = 1
  lp.a = {1.0, 1.0, 1.0, 1.0};
  lp.b = {3.0};  // u = 3
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Cheapest way to reach the lower bound 2: x0 = x1 = 1.
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 0.0, 1e-9);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST(Lp, DetectsInfeasible) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.num_rows = 1;
  lp.c = {1.0};
  lp.lo = {0.0};
  lp.hi = {1.0};
  lp.a = {1.0};
  lp.b = {5.0};  // x = 5 impossible with x ≤ 1 and no slack
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Lp, EqualityWithNegativeRhs) {
  // x0 - x1 = -1, maximize x0: optimal x0 = 0? With x ∈ [0,1]: x0 - x1 = -1
  // forces x1 = x0 + 1, so x0 = 0, x1 = 1.
  LpProblem lp;
  lp.num_vars = 2;
  lp.num_rows = 1;
  lp.c = {1.0, 0.0};
  lp.lo = {0.0, 0.0};
  lp.hi = {1.0, 1.0};
  lp.a = {1.0, -1.0};
  lp.b = {-1.0};
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

/// Fractional LP optimum forces actual branching.
TEST(Ip, BranchesOnFractionalOptimum) {
  // max 2x0 + 3x1 + 2x2, x0+x1+x2 + s = 2 with slack range 0 (equality 2).
  LpProblem lp;
  lp.num_vars = 4;
  lp.num_rows = 1;
  lp.c = {2.0, 3.0, 2.0, 0.0};
  lp.lo = {0.0, 0.0, 0.0, 0.0};
  lp.hi = {1.0, 1.0, 1.0, 0.0};
  lp.a = {1.0, 1.0, 1.0, 1.0};
  lp.b = {2.0};
  const auto r = solve_binary_ip(lp, {0, 1, 2});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);  // x1 plus one of x0/x2
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(Ip, KnapsackWithRanges) {
  // Two groups with bounds 1 ≤ Σ ≤ 2 each; weights prefer group-specific
  // items. Variables: g1 = {0,1,2}, g2 = {2,3,4} (item 2 shared).
  LpProblem lp;
  lp.num_vars = 5 + 2;  // 5 binaries + 2 slacks
  lp.num_rows = 2;
  lp.c = {5.0, 1.0, 4.0, 1.0, 3.0, 0.0, 0.0};
  lp.lo.assign(7, 0.0);
  lp.hi = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};  // slack ranges 2-1 = 1
  lp.a.assign(2 * 7, 0.0);
  lp.b = {2.0, 2.0};
  for (std::size_t i : {0u, 1u, 2u}) lp.set_coeff(0, i, 1.0);
  for (std::size_t i : {2u, 3u, 4u}) lp.set_coeff(1, i, 1.0);
  lp.set_coeff(0, 5, 1.0);
  lp.set_coeff(1, 6, 1.0);
  const auto r = solve_binary_ip(lp, {0, 1, 2, 3, 4});
  ASSERT_TRUE(r.feasible);
  // Best: x0 (5) + x2 (4, shared) + x4 (3) = 12, group counts 2 and 2.
  EXPECT_NEAR(r.objective, 12.0, 1e-9);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
  EXPECT_NEAR(r.x[4], 1.0, 1e-9);
}

TEST(Ip, InfeasibleReported) {
  // Need Σ of one binary = 2: impossible.
  LpProblem lp;
  lp.num_vars = 1;
  lp.num_rows = 1;
  lp.c = {1.0};
  lp.lo = {0.0};
  lp.hi = {1.0};
  lp.a = {1.0};
  lp.b = {2.0};
  EXPECT_FALSE(solve_binary_ip(lp, {0}).feasible);
}

TEST(Ip, IntegralRelaxationFlagged) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.num_rows = 1;
  lp.c = {2.0, 1.0};
  lp.lo = {0.0, 0.0};
  lp.hi = {1.0, 1.0};
  lp.a = {1.0, 1.0};
  lp.b = {1.0};
  const auto r = solve_binary_ip(lp, {0, 1});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.relaxation_was_integral);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

}  // namespace
}  // namespace frote
