// ShardedKnnIndex (docs/DESIGN.md §8): the sharded engine must be
// bit-identical to a single index over the same rows — across thread
// counts, shard counts, distance ties, subset row sets, and any
// append/refit sequence — and the shard-count policy must be a pure
// function of (n, config).
#include "frote/knn/sharded.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "test_util.hpp"

namespace frote {
namespace {

/// Bitwise agreement on every query: same row-set positions, same dataset
/// rows, same distances (EXPECT_EQ on doubles — no tolerance).
void expect_same_neighbors(const KnnIndex& a, const KnnIndex& b,
                           const Dataset& queries, std::size_t k) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto na = a.query(queries.row(q), k);
    const auto nb = b.query(queries.row(q), k);
    ASSERT_EQ(na.size(), nb.size()) << "query " << q;
    for (std::size_t j = 0; j < na.size(); ++j) {
      EXPECT_EQ(na[j].index, nb[j].index) << "query " << q << " rank " << j;
      EXPECT_EQ(a.dataset_index(na[j].index), b.dataset_index(nb[j].index));
      EXPECT_EQ(na[j].distance, nb[j].distance)
          << "query " << q << " rank " << j << " distance differs bitwise";
    }
  }
}

/// `base` with every row appended a second time: every distance is tied at
/// least once, so the (distance, index) tie-break is load-bearing.
Dataset duplicated_rows() {
  const Dataset base = testing::threshold_dataset(40);
  Dataset dup = base;
  for (std::size_t i = 0; i < base.size(); ++i) {
    dup.add_row(base.row(i), base.label(i));
  }
  return dup;
}

TEST(PlanShards, PureFunctionOfRowsAndConfig) {
  const KnnIndexConfig def;
  // Auto: one shard per ~shard_target_rows rows, minimum 2.
  EXPECT_EQ(ShardedKnnIndex::plan_shards(100000, def), 7u);
  EXPECT_EQ(ShardedKnnIndex::plan_shards(40000, def), 3u);
  EXPECT_EQ(ShardedKnnIndex::plan_shards(100, def), 2u);
  // Forced counts are honoured, clamped to the row count.
  KnnIndexConfig forced;
  forced.shards = 5;
  EXPECT_EQ(ShardedKnnIndex::plan_shards(100000, forced), 5u);
  EXPECT_EQ(ShardedKnnIndex::plan_shards(3, forced), 3u);
}

TEST(MakeKnnIndex, ShardingPolicyIsConfigDriven) {
  const auto data = testing::blobs_dataset(100);  // 200 rows
  const auto distance = MixedDistance::fit(data);

  KnnIndexConfig low;
  low.shard_min_rows = 100;
  const auto sharded = make_knn_index(data, distance, {}, low);
  EXPECT_NE(dynamic_cast<const ShardedKnnIndex*>(sharded.get()), nullptr);

  KnnIndexConfig never = low;
  never.shards = 1;
  const auto single = make_knn_index(data, distance, {}, never);
  EXPECT_EQ(dynamic_cast<const ShardedKnnIndex*>(single.get()), nullptr);

  // Below the threshold the single-engine tiers still apply.
  const auto small = make_knn_index(data, distance, {}, KnnIndexConfig{});
  EXPECT_EQ(dynamic_cast<const ShardedKnnIndex*>(small.get()), nullptr);

  expect_same_neighbors(*sharded, *single, data, 5);
}

TEST(ShardedKnn, MatchesSingleIndexOnBlobs) {
  const auto data = testing::blobs_dataset(150);  // 300 rows
  const auto distance = MixedDistance::fit(data);
  KnnIndexConfig config;
  config.shards = 4;
  const ShardedKnnIndex sharded(data, distance, {}, config);
  EXPECT_EQ(sharded.shard_count(), 4u);
  const auto single = make_single_knn_index(data, distance);
  expect_same_neighbors(sharded, *single, data, 7);
}

TEST(ShardedKnn, TieBreakSurvivesShardBoundaries) {
  // Duplicated rows land in different shards; the merged top-k must still
  // order ties by ascending row index exactly as one flat scan does.
  const auto data = duplicated_rows();  // 80 rows, all features duplicated
  const auto distance = MixedDistance::fit(data);
  for (const std::size_t shards : {2u, 3u, 5u}) {
    KnnIndexConfig config;
    config.shards = shards;
    const ShardedKnnIndex sharded(data, distance, {}, config);
    const BruteKnn flat(data, distance);
    expect_same_neighbors(sharded, flat, data, 6);
  }
}

TEST(ShardedKnn, ThreadCountIsInvisible) {
  const auto data = testing::blobs_dataset(200);  // 400 rows
  const auto distance = MixedDistance::fit(data);
  KnnIndexConfig serial;
  serial.shards = 4;
  serial.threads = 1;
  KnnIndexConfig pooled = serial;
  pooled.threads = 4;
  const ShardedKnnIndex one(data, distance, {}, serial);
  const ShardedKnnIndex four(data, distance, {}, pooled);
  expect_same_neighbors(one, four, data, 5);
}

TEST(ShardedKnn, SubsetRowSetsMatchSingleIndex) {
  const auto data = testing::threshold_dataset(120);
  const auto distance = MixedDistance::fit(data);
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < data.size(); i += 2) picks.push_back(i);
  KnnIndexConfig config;
  config.shards = 3;
  const ShardedKnnIndex sharded(data, distance, picks, config);
  const auto single = make_single_knn_index(data, distance, picks);
  EXPECT_EQ(sharded.size(), picks.size());
  EXPECT_EQ(sharded.dataset_index(1), 2u);
  expect_same_neighbors(sharded, *single, data, 5);
}

TEST(ShardedKnn, AppendMatchesFreshBuild) {
  const auto base = testing::blobs_dataset(150);  // 300 rows
  KnnIndexConfig config;
  config.shards = 4;
  ShardedKnnIndex sharded(base, MixedDistance::fit(base), {}, config);

  // Grow the dataset; the refit distance has new scales, as after a real
  // FROTE accept (moments absorb the appended rows).
  Dataset grown = base;
  const auto extra = testing::blobs_dataset(25, 6.0, /*seed=*/11);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    grown.add_row(extra.row(i), extra.label(i));
  }
  const auto refit = MixedDistance::fit(grown);
  ASSERT_TRUE(sharded.try_append(grown, refit));
  EXPECT_EQ(sharded.size(), grown.size());
  EXPECT_EQ(sharded.tail_rows(), extra.size());  // below rebuild threshold

  const BruteKnn fresh(grown, refit);
  expect_same_neighbors(sharded, fresh, grown, 5);

  // A second append on top of the tail must also match a fresh build.
  Dataset grown2 = grown;
  const auto extra2 = testing::blobs_dataset(10, 6.0, /*seed=*/13);
  for (std::size_t i = 0; i < extra2.size(); ++i) {
    grown2.add_row(extra2.row(i), extra2.label(i));
  }
  const auto refit2 = MixedDistance::fit(grown2);
  ASSERT_TRUE(sharded.try_append(grown2, refit2));
  const BruteKnn fresh2(grown2, refit2);
  expect_same_neighbors(sharded, fresh2, grown2, 5);
}

TEST(ShardedKnn, OversizedTailTriggersDeterministicReshard) {
  const auto base = testing::blobs_dataset(100);  // 200 rows
  KnnIndexConfig config;
  config.shards = 2;
  config.shard_target_rows = 128;  // rebuild threshold = max(1024, 128/4)
  ShardedKnnIndex sharded(base, MixedDistance::fit(base), {}, config);

  // Push the tail past the rebuild threshold (max(1024, target/4) rows).
  Dataset grown = base;
  const auto extra = testing::blobs_dataset(520, 6.0, /*seed=*/17);  // 1040
  for (std::size_t i = 0; i < extra.size(); ++i) {
    grown.add_row(extra.row(i), extra.label(i));
  }
  const auto refit = MixedDistance::fit(grown);
  ASSERT_TRUE(sharded.try_append(grown, refit));
  EXPECT_EQ(sharded.tail_rows(), 0u);  // everything re-sharded
  EXPECT_EQ(sharded.size(), grown.size());

  const BruteKnn fresh(grown, refit);
  expect_same_neighbors(sharded, fresh, base, 5);
}

TEST(ShardedKnn, RefitMatchesFreshBuildUnderNewScales) {
  const auto data = testing::blobs_dataset(150);  // 300 rows
  KnnIndexConfig config;
  config.shards = 4;
  ShardedKnnIndex sharded(data, MixedDistance::fit(data), {}, config);

  // A distance fitted elsewhere rescales every numeric column.
  const auto rescaled =
      MixedDistance::fit(testing::blobs_dataset(80, 12.0, /*seed=*/23));
  ASSERT_TRUE(sharded.try_refit(data, rescaled));
  const BruteKnn fresh(data, rescaled);
  expect_same_neighbors(sharded, fresh, data, 5);
}

}  // namespace
}  // namespace frote
