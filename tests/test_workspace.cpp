// SessionWorkspace and the incremental session data plane: every cached or
// incrementally maintained artefact must be bit-identical to its
// from-scratch counterpart — the moments-based distance refit vs
// MixedDistance::fit, update_base_population vs preselect_base_population,
// appendable kNN indexes vs fresh builds, and IpSelector with a workspace
// vs without. Plus the threads knob: an IP-selection session is
// bit-identical at every thread count (ci.sh reruns this suite under
// FROTE_NUM_THREADS=4).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/core/workspace.hpp"
#include "frote/exp/learners.hpp"
#include "frote/ml/decision_tree.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

Dataset appended_batch(const Dataset& base, std::size_t n,
                       std::uint64_t seed) {
  // A batch over the same schema, value range matching threshold_dataset.
  Dataset batch(base.schema_ptr());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    batch.add_row({x, rng.uniform(0.0, 10.0),
                   static_cast<double>(i % 3)},
                  x > 5.0 ? 1 : 0);
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Incremental distance refit

TEST(ColumnMoments, IncrementalAbsorbMatchesFullFit) {
  auto data = testing::threshold_dataset(120, 5.0, 3);
  ColumnMoments moments(data.schema());
  moments.absorb(data);

  data.append(appended_batch(data, 37, 11));
  moments.absorb(data);  // only the appended tail

  const MixedDistance incremental =
      MixedDistance::from_moments(data.schema(), moments);
  const MixedDistance full = MixedDistance::fit(data);
  EXPECT_TRUE(incremental.same_scales(full));
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    EXPECT_EQ(incremental.column_inv_std(f), full.column_inv_std(f))
        << "column " << f;
  }
}

TEST(SessionWorkspace, DistanceTracksCommittedAppends) {
  auto data = testing::threshold_dataset(90, 5.0, 5);
  SessionWorkspace ws(/*threads=*/1);
  ws.bind(data);
  EXPECT_TRUE(ws.distance().same_scales(MixedDistance::fit(data)));

  // Staged rows that roll back leave the binding untouched.
  const Dataset batch = appended_batch(data, 25, 7);
  data.stage_rows(batch);
  data.rollback();
  ws.bind(data);
  EXPECT_TRUE(ws.distance().same_scales(MixedDistance::fit(data)));

  // Committed rows are absorbed incrementally.
  data.stage_rows(batch);
  data.commit();
  ws.bind(data);
  EXPECT_TRUE(ws.distance().same_scales(MixedDistance::fit(data)));
}

// ---------------------------------------------------------------------------
// Appendable kNN indexes

void expect_same_queries(const KnnIndex& actual, const KnnIndex& expected,
                         const Dataset& data, std::size_t k) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t q = 0; q < data.size(); q += 7) {
    const auto a = actual.query(data.row(q), k);
    const auto e = expected.query(data.row(q), k);
    ASSERT_EQ(a.size(), e.size()) << "query " << q;
    for (std::size_t i = 0; i < e.size(); ++i) {
      EXPECT_EQ(actual.dataset_index(a[i].index),
                expected.dataset_index(e[i].index))
          << "query " << q << " rank " << i;
      EXPECT_EQ(a[i].distance, e[i].distance) << "query " << q;
    }
  }
}

TEST(BruteKnnAppend, MatchesFreshBuildAcrossRescaledAppends) {
  auto data = testing::threshold_dataset(80, 5.0, 9);
  BruteKnn knn(data, MixedDistance::fit(data));
  for (int round = 0; round < 3; ++round) {
    data.append(appended_batch(data, 21, 100 + round));
    const MixedDistance refit = MixedDistance::fit(data);
    ASSERT_TRUE(knn.try_append(data, refit));  // rescale forces a repack
    const BruteKnn fresh(data, refit);
    expect_same_queries(knn, fresh, data, 6);
  }
}

TEST(BruteKnnAppend, SameScalesTakesPureAppendPath) {
  auto data = testing::threshold_dataset(80, 5.0, 9);
  const MixedDistance frozen = MixedDistance::fit(data);
  BruteKnn knn(data, frozen);
  data.append(appended_batch(data, 15, 4));
  ASSERT_TRUE(knn.try_append(data, frozen));  // identical scales: no repack
  const BruteKnn fresh(data, frozen);
  expect_same_queries(knn, fresh, data, 5);
}

TEST(BruteKnnAppend, SubsetIndexRefusesAppend) {
  auto data = testing::threshold_dataset(40);
  BruteKnn knn(data, MixedDistance::fit(data), {1, 3, 5});
  data.append(appended_batch(data, 5, 2));
  EXPECT_FALSE(knn.try_append(data, MixedDistance::fit(data)));
}

TEST(BallTreeKnnAppend, TailThenDeterministicRebuildMatchesFresh) {
  auto data = testing::threshold_dataset(150, 5.0, 13);
  BallTreeKnn tree(data, MixedDistance::fit(data), {}, /*leaf_size=*/8);
  const std::size_t initial_tree_rows = tree.tree_rows();
  bool saw_tail = false;
  bool saw_rebuild = false;
  for (int round = 0; round < 6; ++round) {
    data.append(appended_batch(data, 9, 50 + round));
    const MixedDistance refit = MixedDistance::fit(data);
    ASSERT_TRUE(tree.try_append(data, refit));
    saw_tail = saw_tail || tree.tree_rows() < tree.size();
    saw_rebuild = saw_rebuild || tree.tree_rows() > initial_tree_rows;
    const BallTreeKnn fresh(data, refit, {}, /*leaf_size=*/8);
    expect_same_queries(tree, fresh, data, 7);
  }
  // The sweep must exercise both regimes: queries served tree+tail, and at
  // least one threshold-triggered fold of the tail into a new tree.
  EXPECT_TRUE(saw_tail);
  EXPECT_TRUE(saw_rebuild);
}

TEST(SessionWorkspace, IndexAppendsAcrossBinds) {
  auto data = testing::threshold_dataset(100, 5.0, 17);
  SessionWorkspace ws(/*threads=*/1);
  ws.bind(data);
  KnnIndex* first = &ws.index();
  data.append(appended_batch(data, 30, 23));
  ws.bind(data);
  KnnIndex& appended = ws.index();
  EXPECT_EQ(&appended, first);  // absorbed, not rebuilt
  EXPECT_EQ(appended.size(), data.size());
  const auto fresh = make_knn_index(data, MixedDistance::fit(data));
  expect_same_queries(appended, *fresh, data, 6);
}

// ---------------------------------------------------------------------------
// Incremental base population

TEST(BasePopulation, IncrementalUpdateMatchesFullRescan) {
  auto data = testing::threshold_dataset(60, 5.0, 21);
  // One rule with plenty of coverage (stays unrelaxed) and one so tight it
  // must be relaxed (x > 9.9 covers almost nothing).
  FeedbackRuleSet frs(std::vector<FeedbackRule>{
      testing::x_gt_rule(5.0), testing::x_gt_rule(9.9)});
  BasePopulation incremental = preselect_base_population(data, frs, 5);
  ASSERT_FALSE(incremental.per_rule[0].relaxed);
  ASSERT_TRUE(incremental.per_rule[1].relaxed);

  for (int round = 0; round < 3; ++round) {
    const std::size_t first_new = data.size();
    data.append(appended_batch(data, 20, 200 + round));
    update_base_population(incremental, data, frs, 5, first_new);
    const BasePopulation full = preselect_base_population(data, frs, 5);
    ASSERT_EQ(incremental.per_rule.size(), full.per_rule.size());
    for (std::size_t r = 0; r < full.per_rule.size(); ++r) {
      const auto& inc = incremental.per_rule[r];
      const auto& ref = full.per_rule[r];
      EXPECT_EQ(inc.relaxed, ref.relaxed) << "rule " << r;
      EXPECT_EQ(inc.removed_conditions, ref.removed_conditions);
      ASSERT_EQ(inc.indices.size(), ref.indices.size())
          << "rule " << r << " round " << round;
      for (std::size_t i = 0; i < ref.indices.size(); ++i) {
        EXPECT_EQ(inc.indices[i], ref.indices[i]) << "rule " << r;
        EXPECT_EQ(inc.strongly_covered[i], ref.strongly_covered[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace-backed IP selection

TEST(IpSelectorWorkspace, SelectionsMatchStandaloneAndShareRngStream) {
  auto data = testing::threshold_dataset(160, 5.0, 31);
  FeedbackRuleSet frs(std::vector<FeedbackRule>{testing::x_gt_rule(6.0)});
  const auto bp = preselect_base_population(data, frs, 5);
  DecisionTreeLearner learner;
  const auto model = learner.train(data);

  IpSelector selector;
  SessionWorkspace ws(/*threads=*/1);
  ws.bind(data);
  ws.set_model_stamp(1);

  Rng plain_rng(77);
  Rng ws_rng(77);
  for (int round = 0; round < 3; ++round) {
    const auto plain = selector.select(data, bp, *model, 12, plain_rng);
    const auto cached = selector.select(data, bp, *model, 12, ws_rng, &ws);
    ASSERT_EQ(plain.size(), cached.size()) << "round " << round;
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].rule_index, cached[i].rule_index);
      EXPECT_EQ(plain[i].bp_slot, cached[i].bp_slot);
    }
    // The cached path must consume the RNG identically.
    EXPECT_EQ(plain_rng.next_u64(), ws_rng.next_u64()) << "round " << round;
  }
}

TEST(PredictionCache, InvalidatedByRowEditsAndModelStamp) {
  auto data = testing::threshold_dataset(30);
  PredictionCache cache;
  auto& storage = cache.reset(data, /*model_stamp=*/1);
  ASSERT_EQ(storage.size(), data.size());
  EXPECT_FALSE(cache.valid_for(data, 1));  // not until the fill completes
  cache.mark_filled();
  EXPECT_TRUE(cache.valid_for(data, 1));
  EXPECT_FALSE(cache.valid_for(data, 2));  // different model

  data.append(appended_batch(data, 4, 40));
  EXPECT_FALSE(cache.valid_for(data, 1));  // row count moved

  auto same_size = testing::threshold_dataset(30);
  EXPECT_FALSE(cache.valid_for(same_size, 1));  // different dataset uid

  auto edited = testing::threshold_dataset(30);
  PredictionCache cache2;
  cache2.reset(edited, 1);
  cache2.mark_filled();
  EXPECT_TRUE(cache2.valid_for(edited, 1));
  edited.set_label(0, 1 - edited.label(0));
  EXPECT_FALSE(cache2.valid_for(edited, 1));  // append_epoch moved
}

// ---------------------------------------------------------------------------
// Full IP-selection session: thread-count invariance (rerun by the ci.sh
// FROTE_NUM_THREADS=4 determinism leg)

FroteResult run_ip_session(int threads) {
  auto data = testing::threshold_dataset(150, 5.0, 11);
  FeedbackRuleSet frs(std::vector<FeedbackRule>{testing::x_gt_rule(7.0, 0)});
  DecisionTreeLearner learner;
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .tau(6)
                          .q(0.4)
                          .seed(99)
                          .mod_strategy(ModStrategy::kNone)
                          .selection(SelectionStrategy::kIp)
                          .threads(threads)
                          .build()
                          .value();
  auto session = engine.open(data, learner).value();
  session.run();
  return std::move(session).result();
}

TEST(IpSelectorWorkspace, SessionIsBitIdenticalAcrossThreadCounts) {
  const auto serial = run_ip_session(1);
  EXPECT_GT(serial.instances_added, 0u);  // the comparison must not be vacuous
  const auto threaded = run_ip_session(4);
  EXPECT_EQ(serial.instances_added, threaded.instances_added);
  EXPECT_EQ(serial.iterations_run, threaded.iterations_run);
  expect_bit_identical(serial.augmented, threaded.augmented);
}

}  // namespace
}  // namespace frote
