// Contract tests for the frote_serve daemon, driven over its stdio
// frontend through tests/serve_harness.hpp (the real binary, spawned).
//
// The locks, in order:
//   * Lifecycle — create/step/snapshot/result/close round-trip, ids echoed,
//     a closed id is permanently stale.
//   * Eviction transparency — a daemon forced to spool the session to disk
//     after *every* request answers byte-identically to one that never
//     evicts (PR 5's bit-identical restore, observed through the protocol).
//   * Interleaved ≡ serial — two sessions' response streams are pure
//     functions of their own request order, whether the requests interleave
//     or not, at FROTE_NUM_THREADS=1 and 4 (and 1 ≡ 4 byte-for-byte).
//   * Malformed input — a table of bad requests (test_json.cpp style) each
//     yields the documented JSON-RPC error code and never kills the daemon.
//   * Spool recovery — EOF shutdown spools live sessions; a restarted
//     daemon continues them byte-identically to an uninterrupted run.
//   * HTTP ≡ stdio — the vendored HTTP/1.1 listener carries the same bytes,
//     and SIGTERM shuts the listener down cleanly (exit 0).
//   * Robustness (ServeRobustness suite) — corrupt spooled checkpoints are
//     typed -32002 errors with quarantine, admission control answers -32005
//     with a retry hint, injected I/O faults degrade without crashing, and
//     stalled HTTP clients get 408 instead of a wedged listener.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "frote/net/http.hpp"
#include "serve_harness.hpp"

namespace {

namespace fs = std::filesystem;
using frote::JsonValue;
using frote::testing::create_line;
using frote::testing::parse_response;
using frote::testing::rpc_line;
using frote::testing::serve_spec;
using frote::testing::ServeProcess;
using frote::testing::session_line;
using frote::testing::step_line;
using frote::testing::write_threshold_csv;

/// Fresh per-test scratch directory under the test working directory.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("serve_scratch") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The shared scenario: the checkpoint-suite spec pointed at a CSV in
/// `dir`; writes the CSV on first use.
frote::EngineSpec scenario_spec(const fs::path& dir,
                                const std::string& selector = "random") {
  const fs::path csv = dir / "train.csv";
  if (!fs::exists(csv)) write_threshold_csv(csv.string());
  return serve_spec(csv.string(), selector);
}

int error_code(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  if (error == nullptr) return 0;
  const JsonValue* code = error->find("code");
  return code == nullptr ? 0 : static_cast<int>(code->as_int64());
}

const JsonValue& result_of(const JsonValue& response) {
  const JsonValue* result = response.find("result");
  EXPECT_NE(result, nullptr) << frote::json_dump(response, 0);
  static const JsonValue null_value;
  return result == nullptr ? null_value : *result;
}

TEST(ServeContract, Lifecycle) {
  const fs::path dir = scratch_dir("lifecycle");
  ServeProcess daemon;

  const JsonValue create =
      parse_response(daemon.request(create_line(1, scenario_spec(dir))));
  ASSERT_EQ(error_code(create), 0);
  EXPECT_EQ(*create.find("jsonrpc"), JsonValue("2.0"));
  EXPECT_EQ(*create.find("id"), JsonValue(1));
  const std::string id = result_of(create).find("session")->as_string();
  EXPECT_EQ(id, "s-000001");

  // Step to completion; the scenario mixes accepted and rejected steps.
  bool finished = false;
  std::size_t accepted = 0;
  for (int i = 2; i < 60 && !finished; ++i) {
    const JsonValue step = parse_response(daemon.request(step_line(i, id)));
    ASSERT_EQ(error_code(step), 0);
    EXPECT_EQ(*step.find("id"), JsonValue(i));
    finished = result_of(step).find("finished")->as_bool();
    accepted = result_of(step).find("iterations_accepted")->as_uint64();
  }
  EXPECT_TRUE(finished) << "scenario must terminate within the step budget";
  EXPECT_GT(accepted, 0u) << "scenario must actually augment";

  const JsonValue snapshot =
      parse_response(daemon.request(session_line(100, "session.snapshot", id)));
  ASSERT_EQ(error_code(snapshot), 0);
  const JsonValue* checkpoint = result_of(snapshot).find("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_TRUE(checkpoint->is_object());
  EXPECT_NE(checkpoint->find("format"), nullptr)
      << "snapshot must carry the persistable checkpoint document";

  const JsonValue result =
      parse_response(daemon.request(session_line(101, "session.result", id)));
  ASSERT_EQ(error_code(result), 0);
  EXPECT_GT(result_of(result).find("rows")->as_uint64(), 150u);
  EXPECT_EQ(result_of(result).find("dataset_digest")->as_string().size(), 16u);

  const JsonValue close =
      parse_response(daemon.request(session_line(102, "session.close", id)));
  ASSERT_EQ(error_code(close), 0);
  EXPECT_TRUE(result_of(close).find("closed")->as_bool());

  // A closed id is permanently stale.
  const JsonValue stale =
      parse_response(daemon.request(step_line(103, id)));
  EXPECT_EQ(error_code(stale), -32001);

  EXPECT_EQ(daemon.close_and_wait(), 0);
}

TEST(ServeContract, ScenarioRefsCreateSessionsAndReplayDeterministically) {
  ServeProcess daemon;

  // scenario.list names the registered workloads, sorted.
  const JsonValue list =
      parse_response(daemon.request(rpc_line(1, "scenario.list")));
  ASSERT_EQ(error_code(list), 0);
  const JsonValue* names = result_of(list).find("scenarios");
  ASSERT_NE(names, nullptr);
  std::vector<std::string> sorted;
  for (const JsonValue& name : names->items()) {
    sorted.push_back(name.as_string());
  }
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_NE(std::find(sorted.begin(), sorted.end(), "fairness_adult"),
            sorted.end());

  // session.create from a scenario ref: the scenario's generator + engine
  // become a live session, steppable like any spec-created one.
  JsonValue create_params = JsonValue::object();
  create_params.set("scenario", "fairness_adult");
  create_params.set("seed", 42);
  const JsonValue create = parse_response(daemon.request(
      rpc_line(2, "session.create", std::move(create_params))));
  ASSERT_EQ(error_code(create), 0) << frote::json_dump(create, 0);
  const std::string id = result_of(create).find("session")->as_string();
  EXPECT_EQ(result_of(create).find("scenario")->as_string(),
            "fairness_adult");
  const JsonValue step = parse_response(daemon.request(step_line(3, id)));
  ASSERT_EQ(error_code(step), 0);
  EXPECT_NE(result_of(step).find("finished"), nullptr);

  // scenario.run replays the whole workload in-process and returns the
  // report document; the same seed answers byte-identically.
  JsonValue run_params = JsonValue::object();
  run_params.set("scenario", "fairness_adult");
  run_params.set("seed", 42);
  const std::string run_line =
      rpc_line(4, "scenario.run", std::move(run_params));
  const std::string first = daemon.request(run_line);
  const JsonValue run = parse_response(first);
  ASSERT_EQ(error_code(run), 0) << frote::json_dump(run, 0);
  EXPECT_EQ(result_of(run).find("format")->as_string(),
            "frote.scenario_result");
  EXPECT_EQ(result_of(run).find("scenario")->as_string(), "fairness_adult");
  EXPECT_GT(result_of(run).find("instances_added")->as_uint64(), 0u);
  EXPECT_NE(result_of(run).find("groups"), nullptr)
      << "fairness scenarios report per-group deltas";
  EXPECT_EQ(daemon.request(run_line), first)
      << "scenario.run must be deterministic for a fixed seed";

  // Typed -32602 errors: unknown name, spec+scenario together, bad seed.
  JsonValue unknown_params = JsonValue::object();
  unknown_params.set("scenario", "nope");
  const JsonValue unknown = parse_response(daemon.request(
      rpc_line(5, "session.create", std::move(unknown_params))));
  EXPECT_EQ(error_code(unknown), -32602);
  EXPECT_NE(unknown.find("error")->find("message")->as_string().find(
                "unknown scenario 'nope'"),
            std::string::npos);

  JsonValue both_params = JsonValue::object();
  both_params.set("scenario", "fairness_adult");
  both_params.set("spec", JsonValue::object());
  const JsonValue both = parse_response(daemon.request(
      rpc_line(6, "session.create", std::move(both_params))));
  EXPECT_EQ(error_code(both), -32602);

  JsonValue bad_seed = JsonValue::object();
  bad_seed.set("scenario", "fairness_adult");
  bad_seed.set("seed", -1);
  const JsonValue rejected = parse_response(daemon.request(
      rpc_line(7, "scenario.run", std::move(bad_seed))));
  EXPECT_EQ(error_code(rejected), -32602);

  EXPECT_EQ(daemon.close_and_wait(), 0);
}

/// The lifecycle script both transparency runs execute. server.stats is
/// deliberately absent: it reports eviction counters and is documented as
/// the one method outside the transparency contract.
std::vector<std::string> transparency_script(const frote::EngineSpec& spec) {
  std::vector<std::string> script;
  script.push_back(create_line("c", spec));
  for (int i = 0; i < 8; ++i) {
    script.push_back(step_line("step-" + std::to_string(i), "s-000001"));
  }
  script.push_back(session_line("snap", "session.snapshot", "s-000001"));
  script.push_back(session_line("res", "session.result", "s-000001"));
  script.push_back(session_line("close", "session.close", "s-000001"));
  return script;
}

TEST(ServeContract, EvictionIsByteTransparent) {
  const fs::path dir = scratch_dir("evict");
  const auto script = transparency_script(scenario_spec(dir));

  const auto run = [&](const std::vector<std::string>& args) {
    ServeProcess::Options options;
    options.args = args;
    ServeProcess daemon(options);
    std::vector<std::string> responses;
    for (const std::string& line : script) {
      responses.push_back(daemon.request(line));
    }
    EXPECT_EQ(daemon.close_and_wait(), 0);
    return responses;
  };

  const auto baseline = run({"--spool", (dir / "spool_a").string()});
  const auto evicting = run({"--spool", (dir / "spool_b").string(),
                             "--evict-every-request"});

  ASSERT_EQ(baseline.size(), evicting.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i], evicting[i])
        << "response " << i << " diverged under forced eviction\n"
        << "request: " << script[i];
  }

  // Sanity: the evicting run actually evicted (otherwise the comparison
  // proves nothing). The spool keeps no files after close, so check via a
  // stats request on a fresh evicting daemon.
  ServeProcess::Options options;
  options.args = {"--spool", (dir / "spool_c").string(),
                  "--evict-every-request"};
  ServeProcess daemon(options);
  daemon.request(script[0]);
  daemon.request(script[1]);
  const JsonValue stats =
      parse_response(daemon.request(rpc_line(9000, "server.stats")));
  EXPECT_GE(result_of(stats).find("evictions")->as_uint64(), 1u);
  EXPECT_GE(result_of(stats).find("restores")->as_uint64(), 1u);
  // Per-session dataset geometry rides along in the sessions array; the
  // rows/chunks recorded at the last touch survive eviction.
  const JsonValue* sessions = result_of(stats).find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->items().size(), 1u);
  const JsonValue& entry = sessions->items()[0];
  EXPECT_EQ(entry.find("session")->as_string(), "s-000001");
  EXPECT_EQ(entry.find("state")->as_string(), "evicted");
  EXPECT_GE(entry.find("rows")->as_uint64(), 1u);
  EXPECT_GE(entry.find("chunks")->as_uint64(), 1u);
  // Loop counters ride along since PR 9 and survive eviction the same way:
  // one step request ran, so the accept/reject split accounts for every
  // iteration and each candidate retrain was counted as a model update.
  ASSERT_NE(entry.find("accepts"), nullptr);
  ASSERT_NE(entry.find("rejects"), nullptr);
  ASSERT_NE(entry.find("model_updates"), nullptr);
  EXPECT_GE(entry.find("accepts")->as_uint64() +
                entry.find("rejects")->as_uint64(),
            1u);
  EXPECT_GE(entry.find("model_updates")->as_uint64(),
            entry.find("accepts")->as_uint64());
  EXPECT_EQ(daemon.close_and_wait(), 0);
}

/// Responses to one session's requests, keyed by that session's request
/// lines appearing in `script` — order preserved.
std::vector<std::string> run_script_filtered(
    const std::vector<std::string>& script, const std::string& id_prefix,
    const std::string& threads) {
  ServeProcess::Options options;
  options.env = {{"FROTE_NUM_THREADS", threads}};
  ServeProcess daemon(options);
  std::vector<std::string> filtered;
  for (const std::string& line : script) {
    const std::string response = daemon.request(line);
    // Request ids are strings "<prefix><n>"; keep the ones for id_prefix.
    const JsonValue envelope = parse_response(line);
    const std::string& id = envelope.find("id")->as_string();
    if (id.rfind(id_prefix, 0) == 0) filtered.push_back(response);
  }
  EXPECT_EQ(daemon.close_and_wait(), 0);
  return filtered;
}

TEST(ServeContract, InterleavedSessionsMatchSerialRuns) {
  const fs::path dir = scratch_dir("interleave");
  // Two tenants with different selection strategies: their per-session
  // response streams must depend only on their own request order.
  const auto spec_a = scenario_spec(dir, "random");
  const auto spec_b = scenario_spec(dir, "ip");

  const std::string a = "s-000001";  // created first in both scripts
  const std::string b = "s-000002";

  std::vector<std::string> interleaved;
  interleaved.push_back(create_line("a-create", spec_a));
  interleaved.push_back(create_line("b-create", spec_b));
  for (int i = 0; i < 6; ++i) {
    interleaved.push_back(step_line("a-step" + std::to_string(i), a));
    interleaved.push_back(step_line("b-step" + std::to_string(i), b));
  }
  interleaved.push_back(session_line("a-result", "session.result", a));
  interleaved.push_back(session_line("b-result", "session.result", b));
  interleaved.push_back(session_line("a-close", "session.close", a));
  interleaved.push_back(session_line("b-close", "session.close", b));

  std::vector<std::string> serial;
  serial.push_back(create_line("a-create", spec_a));
  for (int i = 0; i < 6; ++i) {
    serial.push_back(step_line("a-step" + std::to_string(i), a));
  }
  serial.push_back(session_line("a-result", "session.result", a));
  serial.push_back(session_line("a-close", "session.close", a));
  serial.push_back(create_line("b-create", spec_b));
  for (int i = 0; i < 6; ++i) {
    serial.push_back(step_line("b-step" + std::to_string(i), b));
  }
  serial.push_back(session_line("b-result", "session.result", b));
  serial.push_back(session_line("b-close", "session.close", b));

  std::vector<std::string> transcripts;
  for (const std::string threads : {"1", "4"}) {
    for (const std::string prefix : {"a-", "b-"}) {
      const auto from_interleaved =
          run_script_filtered(interleaved, prefix, threads);
      const auto from_serial = run_script_filtered(serial, prefix, threads);
      ASSERT_EQ(from_interleaved.size(), from_serial.size());
      for (std::size_t i = 0; i < from_serial.size(); ++i) {
        EXPECT_EQ(from_interleaved[i], from_serial[i])
            << "session stream '" << prefix << "' response " << i
            << " depends on the other tenant (threads=" << threads << ")";
      }
      for (const std::string& line : from_serial) {
        transcripts.push_back(threads + "|" + prefix + "|" + line);
      }
    }
  }
  // threads=1 and threads=4 transcripts must be byte-identical too
  // (util/parallel's chunking contract, observed end-to-end).
  const std::size_t half = transcripts.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(transcripts[i].substr(2), transcripts[half + i].substr(2))
        << "FROTE_NUM_THREADS changed served bytes";
  }
}

TEST(ServeContract, MalformedRequestsGetTypedErrorsAndNeverKillTheDaemon) {
  const fs::path dir = scratch_dir("malformed");
  const std::string spec_json =
      frote::json_dump(scenario_spec(dir).to_json(), 0);

  struct Case {
    const char* label;
    std::string line;
    int expected_code;
  };
  const std::string pad(3000, 'x');
  auto bad_spec = [&](const char* patch_key, const char* patch_value) {
    frote::EngineSpec spec = scenario_spec(dir);
    JsonValue json = spec.to_json();
    json.set(patch_key, frote::json_parse(patch_value).value());
    JsonValue params = JsonValue::object();
    params.set("spec", std::move(json));
    return rpc_line("bad", "session.create", std::move(params));
  };

  const Case cases[] = {
      // ---- transport bytes that are not JSON → -32700 parse error
      {"plain text", "not json", -32700},
      {"lone brace", "{", -32700},
      {"truncated object",
       R"({"jsonrpc":"2.0","id":1,"method":"server.stats")", -32700},
      {"truncated array", "[1,2", -32700},
      {"duplicate key", R"({"a":1,"a":2})", -32700},
      {"duplicate id key",
       R"({"jsonrpc":"2.0","id":1,"id":2,"method":"server.stats"})", -32700},
      {"unterminated string", "\"unterminated", -32700},
      {"trailing garbage number", "123abc", -32700},
      // ---- JSON, but not a JSON-RPC 2.0 request → -32600
      {"bare number", "123", -32600},
      {"bare array", "[]", -32600},
      {"bare bool", "true", -32600},
      {"missing jsonrpc", R"({"id":1,"method":"server.stats"})", -32600},
      {"wrong jsonrpc version",
       R"({"jsonrpc":"1.0","id":1,"method":"server.stats"})", -32600},
      {"numeric jsonrpc version",
       R"({"jsonrpc":2.0,"id":1,"method":"server.stats"})", -32600},
      {"missing id (notification)",
       R"({"jsonrpc":"2.0","method":"server.stats"})", -32600},
      {"null id", R"({"jsonrpc":"2.0","id":null,"method":"server.stats"})",
       -32600},
      {"fractional id",
       R"({"jsonrpc":"2.0","id":1.5,"method":"server.stats"})", -32600},
      {"boolean id", R"({"jsonrpc":"2.0","id":true,"method":"server.stats"})",
       -32600},
      {"array id", R"({"jsonrpc":"2.0","id":[1],"method":"server.stats"})",
       -32600},
      {"missing method", R"({"jsonrpc":"2.0","id":1})", -32600},
      {"numeric method", R"({"jsonrpc":"2.0","id":1,"method":7})", -32600},
      {"array params",
       R"({"jsonrpc":"2.0","id":1,"method":"server.stats","params":[1]})",
       -32600},
      {"string params",
       R"({"jsonrpc":"2.0","id":1,"method":"server.stats","params":"x"})",
       -32600},
      // ---- oversized lines (daemon runs with --max-request-bytes 2048)
      {"oversized junk line", pad, -32600},
      {"oversized valid json",
       R"({"jsonrpc":"2.0","id":1,"method":"server.stats","params":{"pad":")" +
           pad + R"("}})",
       -32600},
      // ---- unknown method → -32601
      {"unknown method",
       R"({"jsonrpc":"2.0","id":1,"method":"session.destroy","params":{"session":"s-000001"}})",
       -32601},
      {"unknown short method", R"({"jsonrpc":"2.0","id":1,"method":"ping"})",
       -32601},
      // ---- method-level parameter failures → -32602
      {"step without params", R"({"jsonrpc":"2.0","id":1,"method":"session.step"})",
       -32602},
      {"step numeric session",
       R"({"jsonrpc":"2.0","id":1,"method":"session.step","params":{"session":42}})",
       -32602},
      {"step string steps",
       R"({"jsonrpc":"2.0","id":1,"method":"session.step","params":{"session":"s-999999","steps":"three"}})",
       -32602},
      {"step zero steps",
       R"({"jsonrpc":"2.0","id":1,"method":"session.step","params":{"session":"s-999999","steps":0}})",
       -32602},
      {"step fractional steps",
       R"({"jsonrpc":"2.0","id":1,"method":"session.step","params":{"session":"s-999999","steps":1.5}})",
       -32602},
      {"create without spec",
       R"({"jsonrpc":"2.0","id":1,"method":"session.create"})", -32602},
      {"create numeric spec",
       R"({"jsonrpc":"2.0","id":1,"method":"session.create","params":{"spec":7}})",
       -32602},
      {"spec with unknown learner", bad_spec("learner", R"("resnet")"),
       -32602},
      {"spec with unparsable rule", bad_spec("rules", R"(["IF THEN huh"])"),
       -32602},
      {"spec from the future", bad_spec("version", "999"), -32602},
      {"spec without dataset",
       R"({"jsonrpc":"2.0","id":1,"method":"session.create","params":{"spec":{"format":"frote.engine_spec","tau":2}}})",
       -32602},
      // ---- stale / never-issued session ids → -32001
      {"step on unknown session",
       R"({"jsonrpc":"2.0","id":1,"method":"session.step","params":{"session":"s-999999"}})",
       -32001},
      {"result on unknown session",
       R"({"jsonrpc":"2.0","id":1,"method":"session.result","params":{"session":"s-999999"}})",
       -32001},
      {"snapshot on unknown session",
       R"({"jsonrpc":"2.0","id":1,"method":"session.snapshot","params":{"session":"s-999999"}})",
       -32001},
      {"close on unknown session",
       R"({"jsonrpc":"2.0","id":1,"method":"session.close","params":{"session":"s-999999"}})",
       -32001},
  };
  static_assert(std::size(cases) >= 25,
                "the malformed-input table must stay comprehensive");

  ServeProcess::Options options;
  options.args = {"--max-request-bytes", "2048"};
  ServeProcess daemon(options);
  for (const Case& c : cases) {
    const JsonValue response = parse_response(daemon.request(c.line));
    EXPECT_EQ(error_code(response), c.expected_code) << c.label;
    EXPECT_EQ(*response.find("jsonrpc"), JsonValue("2.0")) << c.label;
    const JsonValue* error = response.find("error");
    ASSERT_NE(error, nullptr) << c.label;
    EXPECT_NE(error->find("message"), nullptr) << c.label;
  }

  // After the whole gauntlet the daemon still serves real work.
  const JsonValue create =
      parse_response(daemon.request(create_line("alive", scenario_spec(dir))));
  ASSERT_EQ(error_code(create), 0)
      << "daemon must survive every malformed request";
  EXPECT_EQ(result_of(create).find("session")->as_string(), "s-000001");
  EXPECT_EQ(daemon.close_and_wait(), 0);
}

TEST(ServeContract, SpoolRecoveryContinuesByteIdentically) {
  const fs::path dir = scratch_dir("recovery");
  const auto spec = scenario_spec(dir);
  const std::string spool = (dir / "spool").string();

  // Golden: one uninterrupted daemon.
  std::vector<std::string> golden;
  {
    ServeProcess daemon;
    daemon.request(create_line("c", spec));
    daemon.request(step_line("warm", "s-000001", 2));
    golden.push_back(daemon.request(step_line("g1", "s-000001", 3)));
    golden.push_back(
        daemon.request(session_line("g2", "session.result", "s-000001")));
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }

  // Interrupted: same prefix, then EOF shutdown (spools the live session).
  {
    ServeProcess::Options options;
    options.args = {"--spool", spool};
    ServeProcess daemon(options);
    daemon.request(create_line("c", spec));
    daemon.request(step_line("warm", "s-000001", 2));
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }
  EXPECT_TRUE(fs::exists(fs::path(spool) / "s-000001.checkpoint.json"))
      << "clean shutdown must leave the session in the spool";

  // Restarted daemon on the same spool: the session continues, and the
  // remaining responses are byte-identical to the uninterrupted run.
  {
    ServeProcess::Options options;
    options.args = {"--spool", spool};
    ServeProcess daemon(options);
    EXPECT_EQ(daemon.request(step_line("g1", "s-000001", 3)), golden[0]);
    EXPECT_EQ(
        daemon.request(session_line("g2", "session.result", "s-000001")),
        golden[1]);
    // The id counter also survives: new tenants never reuse an id.
    const JsonValue create =
        parse_response(daemon.request(create_line("c2", spec)));
    ASSERT_EQ(error_code(create), 0);
    EXPECT_EQ(result_of(create).find("session")->as_string(), "s-000002");
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }
}

TEST(ServeContract, HttpTransportCarriesIdenticalBytes) {
  const fs::path dir = scratch_dir("http");
  const auto spec = scenario_spec(dir);
  const std::vector<std::string> script = {
      create_line("c", spec),
      step_line("s1", "s-000001", 3),
      session_line("r", "session.result", "s-000001"),
      session_line("x", "session.close", "s-000001"),
  };

  // Reference responses over stdio.
  std::vector<std::string> stdio_responses;
  {
    ServeProcess daemon;
    for (const std::string& line : script) {
      stdio_responses.push_back(daemon.request(line));
    }
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }

  const fs::path port_file = dir / "port.txt";
  ServeProcess::Options options;
  options.args = {"--http", "--port-file", port_file.string()};
  ServeProcess daemon(options);
  std::string port_text;
  for (int i = 0; i < 100 && port_text.empty(); ++i) {
    std::ifstream in(port_file);
    std::getline(in, port_text);
    if (port_text.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_FALSE(port_text.empty()) << "daemon never published its port";
  const auto port = static_cast<std::uint16_t>(std::stoi(port_text));

  for (std::size_t i = 0; i < script.size(); ++i) {
    auto response = frote::net::http_post(port, "/rpc", script[i] + "\n");
    ASSERT_TRUE(response.has_value()) << response.error().message;
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, stdio_responses[i] + "\n")
        << "HTTP and stdio transports diverged on request " << i;
  }

  // SIGTERM stops the listener between requests; clean exit.
  daemon.terminate();
  EXPECT_EQ(daemon.wait(), 0);
}

/// Spool a session, corrupt its checkpoint on disk a few different ways,
/// and restart: every corruption classifies as a typed -32002 "session
/// unrecoverable" error, the bad file is quarantined for inspection, and
/// the daemon itself keeps serving new tenants.
TEST(ServeRobustness, CorruptSpooledCheckpointIsTypedErrorNotACrash) {
  const fs::path dir = scratch_dir("corrupt_spool");
  const auto spec = scenario_spec(dir);

  const auto corrupt_truncate = [](std::string bytes) {
    return bytes.substr(0, bytes.size() / 2);
  };
  const auto corrupt_flip = [](std::string bytes) {
    bytes[bytes.size() / 3] ^= 0x04;
    return bytes;
  };
  const auto corrupt_empty = [](std::string) { return std::string(); };
  const std::vector<
      std::pair<const char*, std::string (*)(std::string)>>
      corpus = {{"truncated", corrupt_truncate},
                {"bit-flipped", corrupt_flip},
                {"zero-length", corrupt_empty}};

  for (const auto& [label, corrupt] : corpus) {
    const fs::path spool = dir / (std::string("spool-") + label);
    fs::create_directories(spool);
    {
      ServeProcess::Options options;
      options.args = {"--spool", spool.string()};
      ServeProcess daemon(options);
      daemon.request(create_line("c", spec));
      daemon.request(step_line("w", "s-000001", 2));
      EXPECT_EQ(daemon.close_and_wait(), 0);  // EOF spools the session
    }
    const fs::path checkpoint = spool / "s-000001.checkpoint.json";
    ASSERT_TRUE(fs::exists(checkpoint)) << label;
    {
      std::ifstream in(checkpoint, std::ios::binary);
      const std::string bytes{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
      std::ofstream out(checkpoint, std::ios::binary | std::ios::trunc);
      const std::string bad = corrupt(bytes);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }

    ServeProcess::Options options;
    options.args = {"--spool", spool.string()};
    ServeProcess daemon(options);
    const JsonValue step =
        parse_response(daemon.request(step_line("s", "s-000001")));
    EXPECT_EQ(error_code(step), -32002) << label;
    const std::string message =
        step.find("error")->find("message")->as_string();
    EXPECT_EQ(message.rfind("session unrecoverable", 0), 0u)
        << label << ": " << message;
    EXPECT_TRUE(fs::exists(spool / "s-000001.checkpoint.json.corrupt"))
        << label << ": corrupt checkpoint was not quarantined";
    // Still -32002 on retry (the checkpoint is gone now, not corrupt).
    EXPECT_EQ(error_code(parse_response(
                  daemon.request(step_line("s2", "s-000001")))),
              -32002)
        << label;
    // The daemon is unharmed: a fresh session works end to end.
    const JsonValue create =
        parse_response(daemon.request(create_line("c2", spec)));
    ASSERT_EQ(error_code(create), 0) << label;
    const std::string fresh =
        result_of(create).find("session")->as_string();
    EXPECT_EQ(error_code(parse_response(
                  daemon.request(step_line("s3", fresh)))),
              0)
        << label;
    EXPECT_EQ(daemon.close_and_wait(), 0) << label;
  }
}

/// Admission control: --max-sessions refuses create with -32005
/// "overloaded" plus a machine-readable retry hint, and closing a session
/// frees the slot.
TEST(ServeRobustness, OverloadedCreateGetsTypedErrorWithRetryHint) {
  const fs::path dir = scratch_dir("overload");
  const auto spec = scenario_spec(dir);
  ServeProcess::Options options;
  options.args = {"--max-sessions", "2"};
  ServeProcess daemon(options);

  EXPECT_EQ(error_code(parse_response(
                daemon.request(create_line("a", spec)))),
            0);
  EXPECT_EQ(error_code(parse_response(
                daemon.request(create_line("b", spec)))),
            0);
  const JsonValue refused =
      parse_response(daemon.request(create_line("c", spec)));
  EXPECT_EQ(error_code(refused), -32005);
  const JsonValue* error = refused.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("message")->as_string().rfind("overloaded", 0), 0u);
  const JsonValue* data = error->find("data");
  ASSERT_NE(data, nullptr) << "overloaded error carries no data";
  EXPECT_EQ(data->find("retry_after_ms")->as_int64(), 50);

  // Existing sessions keep working while the pool is full…
  EXPECT_EQ(error_code(parse_response(
                daemon.request(step_line("s", "s-000001")))),
            0);
  // …and closing one frees an admission slot.
  EXPECT_EQ(error_code(parse_response(daemon.request(
                session_line("x", "session.close", "s-000002")))),
            0);
  EXPECT_EQ(error_code(parse_response(
                daemon.request(create_line("d", spec)))),
            0);
  EXPECT_EQ(daemon.close_and_wait(), 0);
}

/// Injected non-fatal faults degrade, not crash: a failed spool write is
/// absorbed (the request still succeeds, byte-identically; the session
/// stays live), and a failed restore is a typed -32002 that clears once
/// the one-shot fault has fired.
TEST(ServeRobustness, InjectedFaultsDegradeGracefully) {
  const fs::path dir = scratch_dir("inject");
  const auto spec = scenario_spec(dir);

  // Golden responses: no faults, no spool.
  std::vector<std::string> golden;
  {
    ServeProcess daemon;
    golden.push_back(daemon.request(create_line("c", spec)));
    golden.push_back(daemon.request(step_line("s1", "s-000001")));
    golden.push_back(daemon.request(step_line("s2", "s-000001")));
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }

  // fsync fails on the 3rd hit — during the first step's eviction (hits 1
  // and 2 are the create's spec + checkpoint writes). The step response
  // must be byte-identical anyway; the failure lands in spool_failures.
  {
    const fs::path spool = dir / "spool-fsync";
    fs::create_directories(spool);
    ServeProcess::Options options;
    options.args = {"--spool", spool.string(), "--evict-every-request",
                    "--faults", "fsio.fsync:nth=3"};
    ServeProcess daemon(options);
    EXPECT_EQ(daemon.request(create_line("c", spec)), golden[0]);
    EXPECT_EQ(daemon.request(step_line("s1", "s-000001")), golden[1]);
    EXPECT_EQ(daemon.request(step_line("s2", "s-000001")), golden[2]);
    const JsonValue stats = parse_response(
        daemon.request(frote::testing::rpc_line("st", "server.stats")));
    EXPECT_EQ(result_of(stats).find("spool_failures")->as_int64(), 1);
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }

  // A restore fault is typed and transient: -32002 while it fires, then
  // the session hydrates fine (and matches golden bytes).
  {
    const fs::path spool = dir / "spool-restore";
    fs::create_directories(spool);
    ServeProcess::Options options;
    options.args = {"--spool", spool.string(), "--evict-every-request",
                    "--faults", "pool.restore:nth=1"};
    ServeProcess daemon(options);
    EXPECT_EQ(daemon.request(create_line("c", spec)), golden[0]);
    const JsonValue failed =
        parse_response(daemon.request(step_line("s1", "s-000001")));
    EXPECT_EQ(error_code(failed), -32002);
    EXPECT_EQ(daemon.request(step_line("s1", "s-000001")), golden[1]);
    EXPECT_EQ(daemon.request(step_line("s2", "s-000001")), golden[2]);
    EXPECT_EQ(daemon.close_and_wait(), 0);
  }
}

/// The HTTP listener's read deadline: a client that connects and then
/// stalls mid-header is answered with 408 (not held forever, not dropped
/// silently), and the daemon goes on serving fast clients.
TEST(ServeRobustness, SlowClientGetsRequestTimeout) {
  const fs::path dir = scratch_dir("slowloris");
  const auto spec = scenario_spec(dir);
  const fs::path port_file = dir / "port.txt";
  ServeProcess::Options options;
  options.args = {"--http", "--port-file", port_file.string(),
                  "--read-timeout-ms", "200"};
  ServeProcess daemon(options);
  std::string port_text;
  for (int i = 0; i < 100 && port_text.empty(); ++i) {
    std::ifstream in(port_file);
    std::getline(in, port_text);
    if (port_text.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_FALSE(port_text.empty()) << "daemon never published its port";
  const auto port = static_cast<std::uint16_t>(std::stoi(port_text));

  // Raw slow client: half a request line, then silence.
  const int sock = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(sock, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char partial[] = "POST /rpc HT";
  ASSERT_EQ(write(sock, partial, sizeof partial - 1),
            static_cast<ssize_t>(sizeof partial - 1));
  std::string response;
  char chunk[512];
  for (;;) {
    const ssize_t n = read(sock, chunk, sizeof chunk);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  close(sock);
  EXPECT_EQ(response.rfind("HTTP/1.1 408", 0), 0u)
      << "stalled client got: " << response.substr(0, 64);

  // The listener survives: a normal request still round-trips.
  const auto ok =
      frote::net::http_post(port, "/rpc", create_line("c", spec) + "\n");
  ASSERT_TRUE(ok.has_value()) << ok.error().message;
  EXPECT_EQ(ok->status, 200);

  daemon.terminate();
  EXPECT_EQ(daemon.wait(), 0);
}

}  // namespace
