// Engine/Session API contract: builder validation, step()-vs-run()
// equivalence, observer ordering, pluggable stopping/acceptance, and the
// load-bearing shim guarantee — frote_edit() and Engine/Session produce
// bit-identical augmented datasets for the same seed (this extends
// tests/test_determinism.cpp's seed → bit-identical contract across the two
// API surfaces, for all three mod strategies).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/ml/decision_tree.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_features(), b.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i)) << "label of row " << i;
    const auto row_a = a.row(i);
    const auto row_b = b.row(i);
    for (std::size_t f = 0; f < row_a.size(); ++f) {
      EXPECT_EQ(row_a[f], row_b[f]) << "row " << i << " feature " << f;
    }
  }
}

struct Fixture {
  Dataset train = testing::threshold_dataset(150, 5.0, /*seed=*/11);
  FeedbackRuleSet frs{std::vector<FeedbackRule>{testing::x_gt_rule(7.0, 0)}};
  DecisionTreeLearner learner;

  Engine::Builder builder(ModStrategy mod = ModStrategy::kNone,
                          std::uint64_t seed = 99) const {
    Engine::Builder b;
    b.rules(frs).tau(6).q(0.4).k(5).seed(seed).mod_strategy(mod);
    return b;
  }

  FroteConfig config(ModStrategy mod = ModStrategy::kNone,
                     std::uint64_t seed = 99) const {
    FroteConfig c;
    c.tau = 6;
    c.q = 0.4;
    c.k = 5;
    c.seed = seed;
    c.mod_strategy = mod;
    return c;
  }
};

// ---------------------------------------------------------------------------
// Builder validation

TEST(EngineBuilder, RejectsInvalidScalarsWithTypedErrors) {
  const auto zero_tau = Engine::Builder().tau(0).build();
  ASSERT_FALSE(zero_tau.has_value());
  EXPECT_EQ(zero_tau.error().code, FroteErrorCode::kInvalidConfig);
  EXPECT_NE(zero_tau.error().message.find("tau"), std::string::npos);

  const auto negative_q = Engine::Builder().q(-0.5).build();
  ASSERT_FALSE(negative_q.has_value());
  EXPECT_EQ(negative_q.error().code, FroteErrorCode::kInvalidConfig);
  EXPECT_NE(negative_q.error().message.find("q must be"), std::string::npos);

  const auto zero_k = Engine::Builder().k(0).build();
  ASSERT_FALSE(zero_k.has_value());
  EXPECT_NE(zero_k.error().message.find("k must be"), std::string::npos);

  const auto bad_confidence = Engine::Builder().rule_confidence(1.5).build();
  ASSERT_FALSE(bad_confidence.has_value());
  EXPECT_NE(bad_confidence.error().message.find("rule_confidence"),
            std::string::npos);
}

TEST(EngineBuilder, ReportsEveryInvalidFieldInOneError) {
  const auto result = Engine::Builder().tau(0).q(-1.0).k(0).build();
  ASSERT_FALSE(result.has_value());
  const std::string& message = result.error().message;
  EXPECT_NE(message.find("tau"), std::string::npos);
  EXPECT_NE(message.find("q must be"), std::string::npos);
  EXPECT_NE(message.find("k must be"), std::string::npos);
}

TEST(EngineBuilder, ValueThrowsFroteErrorOnInvalidConfig) {
  bool threw = false;
  try {
    Engine::Builder().tau(0).build().value();
  } catch (const Error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(EngineBuilder, ValidConfigBuildsAndExposesConfig) {
  Fixture fx;
  const auto engine = fx.builder().build();
  ASSERT_TRUE(engine.has_value());
  EXPECT_EQ(engine->config().tau, 6u);
  EXPECT_EQ(engine->config().seed, 99u);
  EXPECT_EQ(engine->rules().size(), 1u);
}

TEST(Engine, OpenRejectsEmptyDataset) {
  Fixture fx;
  const auto engine = fx.builder().build().value();
  Dataset empty(fx.train.schema_ptr());
  const auto session = engine.open(empty, fx.learner);
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.error().code, FroteErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Shim equivalence: frote_edit() over Engine/Session must be bit-identical
// to driving the Session directly, for every mod strategy.

void expect_shim_matches_session(ModStrategy mod) {
  Fixture fx;
  const auto shim = frote_edit(fx.train, fx.learner, fx.frs, fx.config(mod));

  const auto engine = fx.builder(mod).build().value();
  auto session = engine.open(fx.train, fx.learner).value();
  session.run();
  const auto direct = std::move(session).result();

  EXPECT_EQ(shim.instances_added, direct.instances_added);
  EXPECT_EQ(shim.iterations_run, direct.iterations_run);
  EXPECT_EQ(shim.iterations_accepted, direct.iterations_accepted);
  ASSERT_EQ(shim.trace.size(), direct.trace.size());
  for (std::size_t i = 0; i < shim.trace.size(); ++i) {
    EXPECT_EQ(shim.trace[i].iteration, direct.trace[i].iteration);
    EXPECT_EQ(shim.trace[i].instances_added, direct.trace[i].instances_added);
    EXPECT_EQ(shim.trace[i].train_j_hat_bar, direct.trace[i].train_j_hat_bar);
    EXPECT_EQ(shim.trace[i].accepted, direct.trace[i].accepted);
  }
  expect_bit_identical(shim.augmented, direct.augmented);
}

TEST(EngineShim, BitIdenticalToSessionModNone) {
  expect_shim_matches_session(ModStrategy::kNone);
}

TEST(EngineShim, BitIdenticalToSessionModRelabel) {
  expect_shim_matches_session(ModStrategy::kRelabel);
}

TEST(EngineShim, BitIdenticalToSessionModDrop) {
  expect_shim_matches_session(ModStrategy::kDrop);
}

TEST(EngineShim, AugmentationIsExercised) {
  // The equivalence above must not be vacuous: the kNone scenario has to add
  // synthetic instances (same guard as test_determinism.cpp).
  Fixture fx;
  const auto result =
      frote_edit(fx.train, fx.learner, fx.frs, fx.config(ModStrategy::kNone));
  EXPECT_GT(result.instances_added, 0u);
}

// ---------------------------------------------------------------------------
// step() vs run()

TEST(Session, ManualSteppingMatchesRun) {
  Fixture fx;
  const auto engine = fx.builder(ModStrategy::kNone).build().value();

  auto run_session = engine.open(fx.train, fx.learner).value();
  run_session.run();
  const auto via_run = std::move(run_session).result();

  auto step_session = engine.open(fx.train, fx.learner).value();
  std::size_t manual_steps = 0;
  while (!step_session.finished()) {
    const StepReport report = step_session.step();
    ++manual_steps;
    if (report.terminal()) break;
  }
  const auto via_step = std::move(step_session).result();

  EXPECT_EQ(via_run.instances_added, via_step.instances_added);
  EXPECT_EQ(via_run.iterations_run, via_step.iterations_run);
  EXPECT_EQ(via_run.iterations_accepted, via_step.iterations_accepted);
  EXPECT_EQ(manual_steps, via_step.iterations_run);
  expect_bit_identical(via_run.augmented, via_step.augmented);
}

TEST(Session, ExposesEvolvingStateMidRun) {
  Fixture fx;
  const auto engine = fx.builder(ModStrategy::kNone).build().value();
  auto session = engine.open(fx.train, fx.learner).value();
  ASSERT_EQ(session.trace().size(), 1u);  // iteration-0 point
  EXPECT_EQ(session.augmented().size(), fx.train.size());

  std::size_t last_size = session.augmented().size();
  while (!session.finished()) {
    const StepReport report = session.step();
    if (report.terminal()) break;
    if (report.accepted()) {
      EXPECT_GT(session.augmented().size(), last_size);
      last_size = session.augmented().size();
      EXPECT_EQ(session.progress().instances_added, report.instances_added);
    }
  }
  const auto progress = session.progress();
  EXPECT_EQ(progress.tau, 6u);
  EXPECT_EQ(progress.quota, static_cast<std::size_t>(0.4 * 150));
}

TEST(Session, StepAfterFinishIsInertNoOp) {
  Fixture fx;
  // Empty rule set ⇒ the session starts finished (nothing to augment).
  Engine::Builder builder;
  builder.tau(6).q(0.4);
  const auto engine = builder.build().value();
  auto session = engine.open(fx.train, fx.learner).value();
  EXPECT_TRUE(session.finished());
  const auto report = session.step();
  EXPECT_EQ(report.status, StepStatus::kFinished);
  const auto result = std::move(session).result();
  EXPECT_EQ(result.instances_added, 0u);
  EXPECT_EQ(result.augmented.size(), fx.train.size());
}

TEST(Engine, IsReusableAcrossSessions) {
  Fixture fx;
  const auto engine = fx.builder(ModStrategy::kNone).build().value();
  auto first = engine.open(fx.train, fx.learner).value();
  first.run();
  auto second = engine.open(fx.train, fx.learner).value();
  second.run();
  const auto a = std::move(first).result();
  const auto b = std::move(second).result();
  expect_bit_identical(a.augmented, b.augmented);
}

// ---------------------------------------------------------------------------
// Observers

struct RecordingObserver : ProgressObserver {
  std::vector<std::string> events;
  void on_session_start(const Model&, double) override {
    events.push_back("start");
  }
  void on_step(const StepReport& report) override {
    events.push_back(report.accepted() ? "step-accepted" : "step-other");
  }
  void on_accept(const Model&, std::size_t) override {
    events.push_back("accept");
  }
};

TEST(Observer, OrderingIsStartThenStepThenAccept) {
  Fixture fx;
  auto observer = std::make_shared<RecordingObserver>();
  const auto engine =
      fx.builder(ModStrategy::kNone).observer(observer).build().value();
  auto session = engine.open(fx.train, fx.learner).value();
  session.run();
  const auto result = std::move(session).result();

  const auto& events = observer->events;
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "start");
  std::size_t accepts = 0;
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i] == "accept") {
      ++accepts;
      // on_accept fires immediately after the accepted step's on_step.
      ASSERT_GT(i, 0u);
      EXPECT_EQ(events[i - 1], "step-accepted");
    } else if (events[i] == "step-accepted") {
      // Every accepted step must be followed by its on_accept.
      ASSERT_LT(i + 1, events.size());
      EXPECT_EQ(events[i + 1], "accept");
    }
  }
  EXPECT_EQ(accepts, result.iterations_accepted);
}

TEST(Observer, SessionLevelObserverSeesSameStepsAsEngineLevel) {
  Fixture fx;
  auto engine_observer = std::make_shared<RecordingObserver>();
  const auto engine =
      fx.builder(ModStrategy::kNone).observer(engine_observer).build().value();
  auto session = engine.open(fx.train, fx.learner).value();
  auto session_observer = std::make_shared<RecordingObserver>();
  session.add_observer(session_observer);
  session.run();

  // The session-level observer was attached after open(), so it misses
  // on_session_start but sees every subsequent step/accept event.
  std::vector<std::string> engine_tail(engine_observer->events.begin() + 1,
                                       engine_observer->events.end());
  EXPECT_EQ(engine_tail, session_observer->events);
}

TEST(Observer, ShimAcceptCallbackStillFires) {
  Fixture fx;
  std::size_t calls = 0;
  const auto result =
      frote_edit(fx.train, fx.learner, fx.frs, fx.config(ModStrategy::kNone),
                 [&](const Model&, std::size_t) { ++calls; });
  EXPECT_EQ(calls, result.iterations_accepted);
}

// ---------------------------------------------------------------------------
// Pluggable policies and stopping criteria

TEST(Policies, AlwaysAcceptPolicyMatchesLegacyFlag) {
  Fixture fx;
  auto legacy_config = fx.config(ModStrategy::kNone);
  legacy_config.accept_always = true;
  const auto legacy = frote_edit(fx.train, fx.learner, fx.frs, legacy_config);

  const auto engine = fx.builder(ModStrategy::kNone)
                          .acceptance(std::make_shared<AlwaysAcceptPolicy>())
                          .build()
                          .value();
  auto session = engine.open(fx.train, fx.learner).value();
  session.run();
  const auto direct = std::move(session).result();

  EXPECT_EQ(legacy.instances_added, direct.instances_added);
  expect_bit_identical(legacy.augmented, direct.augmented);
  // accept-always means every trained batch was kept.
  EXPECT_EQ(direct.iterations_accepted, direct.trace.size() - 1);
}

struct EmptyGenerator : InstanceGenerator {
  Dataset generate(const GenerationContext& ctx,
                   const std::vector<SelectedInstance>&, Rng&) const override {
    return Dataset(ctx.active.schema_ptr());
  }
};

TEST(Policies, FruitlessStepsCountTowardPlateauSoRunTerminates) {
  // A generator that never produces rows must not spin run() forever when
  // the stopping criterion is plateau-only: kNoSynthetic steps count as
  // non-accepting steps.
  Fixture fx;
  const auto engine = fx.builder(ModStrategy::kNone)
                          .generator(std::make_shared<EmptyGenerator>())
                          .stopping(std::make_shared<PlateauStoppingCriterion>(3))
                          .build()
                          .value();
  auto session = engine.open(fx.train, fx.learner).value();
  const std::size_t steps = session.run();
  EXPECT_EQ(steps, 3u);
  EXPECT_EQ(session.progress().consecutive_rejections, 3u);
  EXPECT_EQ(session.progress().instances_added, 0u);
}

TEST(Policies, PlateauStoppingCutsOffConsecutiveRejections) {
  Fixture fx;
  // Budget bounds plus a one-rejection plateau cut-off: the session must
  // stop at the first rejected step (or earlier via the budget).
  std::vector<std::shared_ptr<const StoppingCriterion>> criteria;
  criteria.push_back(std::make_shared<BudgetStoppingCriterion>());
  criteria.push_back(std::make_shared<PlateauStoppingCriterion>(1));
  const auto engine =
      fx.builder(ModStrategy::kNone)
          .stopping(std::make_shared<AnyOfStoppingCriterion>(criteria))
          .build()
          .value();
  auto session = engine.open(fx.train, fx.learner).value();
  session.run();
  EXPECT_LE(session.progress().consecutive_rejections, 1u);
  const auto result = std::move(session).result();
  // With a one-rejection plateau, only the final trace point may be a
  // rejection — a rejected step must never be followed by further steps.
  for (std::size_t i = 0; i + 1 < result.trace.size(); ++i) {
    EXPECT_TRUE(result.trace[i].accepted)
        << "rejected step " << i << " was followed by further steps";
  }
}

}  // namespace
}  // namespace frote
