// Named-component registry (exp/registry.hpp): the single string → component
// mapping shared by the CLI and the experiment harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "frote/exp/learners.hpp"
#include "frote/core/registry.hpp"
#include "test_util.hpp"

namespace frote {
namespace {

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(Registry, BuiltInLearnersResolveAndTrain) {
  const auto data = testing::blobs_dataset(40, 6.0, 5);
  for (const auto& name : {"lr", "rf", "gbdt", "lgbm", "nb", "knn"}) {
    auto learner = make_named_learner(name);
    ASSERT_TRUE(learner.has_value()) << name;
    auto model = learner.value()->train(data);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->num_classes(), 2u) << name;
  }
}

TEST(Registry, UnknownLearnerIsTypedErrorListingKnownNames) {
  const auto result = make_named_learner("resnet");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, FroteErrorCode::kUnknownComponent);
  EXPECT_NE(result.error().message.find("resnet"), std::string::npos);
  EXPECT_NE(result.error().message.find("rf"), std::string::npos);
}

TEST(Registry, LgbmIsAnAliasForGbdt) {
  const auto data = testing::blobs_dataset(40, 6.0, 6);
  LearnerSpec spec;
  spec.seed = 31;
  auto gbdt = make_named_learner("gbdt", spec).value()->train(data);
  auto lgbm = make_named_learner("lgbm", spec).value()->train(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(gbdt->predict(data.row(i)), lgbm->predict(data.row(i)));
  }
}

TEST(Registry, EnumMakeLearnerDelegatesToRegistry) {
  // The typed harness entry point and the string registry must resolve to
  // identically configured learners (same seed ⇒ same predictions).
  const auto data = testing::blobs_dataset(40, 6.0, 7);
  LearnerSpec spec;
  spec.seed = 17;
  spec.fast = true;
  auto via_enum = make_learner(LearnerKind::kRF, 17, /*fast=*/true);
  auto via_name = make_named_learner("rf", spec).value();
  auto model_enum = via_enum->train(data);
  auto model_name = via_name->train(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto pa = model_enum->predict_proba(data.row(i));
    const auto pb = model_name->predict_proba(data.row(i));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_EQ(pa[c], pb[c]) << "row " << i << " class " << c;
    }
  }
}

TEST(Registry, SelectorsResolve) {
  for (const auto& name : {"random", "ip"}) {
    SelectorSpec spec;
    spec.k = 3;
    auto selector = make_named_selector(name, spec);
    ASSERT_TRUE(selector.has_value()) << name;
    EXPECT_NE(selector.value(), nullptr) << name;
  }
}

TEST(Registry, OnlineProxyRequiresRules) {
  const auto missing = make_named_selector("online-proxy");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, FroteErrorCode::kMissingDependency);

  FeedbackRuleSet frs({testing::x_gt_rule(7.0, 0)});
  SelectorSpec spec;
  spec.frs = &frs;
  const auto present = make_named_selector("online-proxy", spec);
  ASSERT_TRUE(present.has_value());
  EXPECT_NE(present.value(), nullptr);
}

TEST(Registry, UnknownSelectorIsTypedError) {
  const auto result = make_named_selector("simulated-annealing");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, FroteErrorCode::kUnknownComponent);
  EXPECT_NE(result.error().message.find("random"), std::string::npos);
}

TEST(Registry, NamesAreSortedAndComplete) {
  const auto learners = registered_learner_names();
  EXPECT_TRUE(contains(learners, "lr"));
  EXPECT_TRUE(contains(learners, "rf"));
  EXPECT_TRUE(contains(learners, "gbdt"));
  EXPECT_TRUE(contains(learners, "lgbm"));
  EXPECT_TRUE(contains(learners, "nb"));
  EXPECT_TRUE(contains(learners, "knn"));
  EXPECT_TRUE(std::is_sorted(learners.begin(), learners.end()));

  const auto selectors = registered_selector_names();
  EXPECT_TRUE(contains(selectors, "random"));
  EXPECT_TRUE(contains(selectors, "ip"));
  EXPECT_TRUE(contains(selectors, "online-proxy"));
  EXPECT_TRUE(std::is_sorted(selectors.begin(), selectors.end()));
}

TEST(Registry, CustomRegistrationExtendsTheNamespace) {
  register_learner("test-only-lr", [](const LearnerSpec& spec) {
    LearnerSpec forwarded = spec;
    return make_named_learner("lr", forwarded).value();
  });
  const auto custom = make_named_learner("test-only-lr");
  ASSERT_TRUE(custom.has_value());
  EXPECT_TRUE(contains(registered_learner_names(), "test-only-lr"));
}

}  // namespace
}  // namespace frote
