// frote_run — execute a declarative FROTE run plan.
//
// Reads a RunPlan JSON document (core/runplan.hpp): a base EngineSpec with
// a dataset reference plus a learner/selector/seed grid, expands it
// deterministically, and executes the runs concurrently, writing per-run
// artifacts (spec.json, checkpoint.json, result.json, augmented.csv) under
// --out. Interrupted plans resume bit-identically with --resume.
//
// A plan whose grid lists "scenarios" (core/scenario.hpp) runs registered
// scenarios instead: each run writes the fully-resolved scenario spec.json
// and the deterministic ScenarioReport result.json.
//
// Usage:
//   frote_run --plan plan.json [--out DIR] [--threads N]
//             [--checkpoint-every N] [--max-steps N] [--resume]
//             [--dry-run] [--help]
//
//   --dry-run           print the expanded plan (one line per run), exit 0
//   --checkpoint-every  snapshot each session every N iterations
//   --max-steps         stop every run after N steps this invocation,
//                       leaving checkpoints behind (deterministic stand-in
//                       for a mid-plan kill; finish with --resume)
//
// Argument parsing is strict, matching frote_edit: unknown flags, flags
// with a missing value, and malformed numbers are usage errors (exit 1).
//
// Exit codes: 0 success, 1 usage error, 2 runtime error (bad plan/data).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli_common.hpp"
#include "frote/frote_api.hpp"

namespace {

using namespace frote;

struct Options {
  std::string plan_path;
  std::string out_dir;
  int threads = -1;  // -1 = use the plan's value
  std::size_t checkpoint_every = 0;
  std::size_t max_steps = 0;
  int retries = 2;
  bool resume = false;
  bool dry_run = false;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: frote_run --plan plan.json [--out DIR] [--threads N]\n"
        "                 [--checkpoint-every N]  snapshot sessions every N "
        "iterations\n"
        "                 [--max-steps N]  stop runs after N steps "
        "(resumable)\n"
        "                 [--resume]       continue incomplete runs from "
        "checkpoints\n"
        "                 [--retries N]    re-attempts per run after I/O "
        "failures (default 2)\n"
        "                 [--dry-run]      print the expanded plan and exit "
        "0\n"
        "                 [--help]         show this message and exit 0\n";
}

bool usage_error(const std::string& message) {
  return cli::StrictArgs{"frote_run", print_usage, 0, nullptr}.usage_error(
      message);
}

/// Strict flag parser — same contract and shared machinery
/// (tools/cli_common.hpp) as frote_edit.
bool parse_args(int argc, char** argv, Options& options) {
  const cli::StrictArgs args{"frote_run", print_usage, argc, argv};
  const auto value_for = [&](int& i, const std::string& name,
                             std::string& out) {
    return args.value_for(i, name, out);
  };
  const auto parse_number = [&](const std::string& name,
                                const std::string& text, auto& out) {
    return args.parse_number(name, text, out);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return usage_error("unexpected positional argument '" + arg + "'");
    }
    const std::string name = arg.substr(2);
    std::string value;
    if (name == "help") {
      options.help = true;
      return true;
    } else if (name == "dry-run") {
      options.dry_run = true;
    } else if (name == "resume") {
      options.resume = true;
    } else if (name == "plan") {
      if (!value_for(i, name, options.plan_path)) return false;
    } else if (name == "out") {
      if (!value_for(i, name, options.out_dir)) return false;
    } else if (name == "threads") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.threads))
        return false;
      if (options.threads < 0) {
        return usage_error("--threads must be >= 0");
      }
    } else if (name == "checkpoint-every") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.checkpoint_every))
        return false;
    } else if (name == "max-steps") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.max_steps))
        return false;
    } else if (name == "retries") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.retries))
        return false;
      if (options.retries < 0) {
        return usage_error("--retries must be >= 0");
      }
    } else {
      return usage_error("unknown option: --" + name);
    }
  }
  if (options.plan_path.empty()) {
    return usage_error("--plan is required");
  }
  // Checkpoint flags are meaningless without an artifact directory —
  // accepting them would silently persist nothing and strand --max-steps
  // runs with no way to resume.
  if (options.resume && options.out_dir.empty()) {
    return usage_error("--resume needs --out (checkpoints live there)");
  }
  if (options.checkpoint_every != 0 && options.out_dir.empty()) {
    return usage_error("--checkpoint-every needs --out (snapshots are "
                       "written there)");
  }
  if (options.max_steps != 0 && options.out_dir.empty()) {
    return usage_error("--max-steps needs --out (interrupted runs resume "
                       "from checkpoints written there)");
  }
  return true;
}

int run(const Options& options) {
  std::ifstream plan_file(options.plan_path);
  if (!plan_file.good()) {
    throw Error("cannot open plan file " + options.plan_path);
  }
  std::stringstream plan_text;
  plan_text << plan_file.rdbuf();
  auto plan = RunPlan::parse(plan_text.str());
  if (!plan) throw Error(plan.error().message);
  if (options.threads >= 0) plan->threads = options.threads;

  const auto runs = plan->expand();
  if (options.dry_run) {
    std::cout << "plan: " << options.plan_path << " (" << runs.size()
              << " run" << (runs.size() == 1 ? "" : "s") << ")\n";
    for (const auto& run : runs) {
      if (!run.scenario.empty()) {
        std::cout << run.name << ": scenario=" << run.scenario;
        if (!run.learner_override.empty()) {
          std::cout << " learner=" << run.learner_override;
        }
        if (!run.selector_override.empty()) {
          std::cout << " selector=" << run.selector_override;
        }
        std::cout << " seed=" << run.seed << "\n";
        continue;
      }
      std::cout << run.name << ": learner=" << run.spec.learner
                << " selector=" << run.spec.selector
                << " seed=" << run.spec.seed << " tau=" << run.spec.tau
                << " q=" << run.spec.q << " rules=" << run.spec.rules.size()
                << "\n";
    }
    return 0;
  }

  RunPlanOptions plan_options;
  plan_options.output_dir = options.out_dir;
  plan_options.checkpoint_every = options.checkpoint_every;
  plan_options.max_steps = options.max_steps;
  plan_options.resume = options.resume;
  plan_options.retries = options.retries;
  std::cerr << "executing " << runs.size() << " run(s)"
            << (options.out_dir.empty() ? "" : " -> " + options.out_dir)
            << "\n";
  auto results = execute_plan(*plan, plan_options);
  if (!results) throw Error(results.error().message);

  bool all_completed = true;
  for (const auto& result : *results) {
    std::cout << result.name << ": "
              << (result.completed
                      ? std::string("done")
                      : std::string("interrupted (resume with --resume)"))
              << (result.resumed ? " [resumed]" : "") << " added="
              << result.instances_added << " iters=" << result.iterations_run
              << " accepted=" << result.iterations_accepted
              << " j_bar=" << result.final_j_bar
              << " rows=" << result.dataset_rows << "\n";
    all_completed = all_completed && result.completed;
  }
  if (!all_completed) {
    std::cerr << "some runs were interrupted by --max-steps; rerun with "
                 "--resume to finish them\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;
  if (options.help) {
    print_usage(std::cout);
    return 0;
  }
  try {
    return run(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
