// Shared strict argument-parsing machinery for the frote CLI tools.
//
// Both binaries promise the same contract (locked by the CTest suites in
// tools/CMakeLists.txt): every argument is a known --flag, value-taking
// flags are followed by a value, malformed numbers are usage errors (exit
// 1, message + usage on stderr), nothing is silently ignored. One
// implementation serves both so the contract cannot drift between tools.
#pragma once

#include <charconv>
#include <iostream>
#include <string>
#include <type_traits>

namespace frote::cli {

/// Per-tool context: the tool name for error prefixes and its usage
/// printer. All helpers return false so strict parse loops can
/// `return usage_error(...)`.
struct StrictArgs {
  const char* tool;
  void (*print_usage)(std::ostream& os);
  int argc;
  char** argv;

  bool usage_error(const std::string& message) const {
    std::cerr << tool << ": " << message << "\n";
    print_usage(std::cerr);
    return false;
  }

  /// Consume the value following --`name` (a token that is not itself a
  /// flag); advances `i`.
  bool value_for(int& i, const std::string& name, std::string& out) const {
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      return usage_error("missing value for --" + name);
    }
    out = argv[++i];
    return true;
  }

  /// Parse `text` fully as a number of type T; partial consumption is a
  /// usage error.
  template <typename T>
  bool parse_number(const std::string& name, const std::string& text,
                    T& out) const {
    const char* begin = text.data();
    const char* end = begin + text.size();
    std::from_chars_result result{};
    if constexpr (std::is_floating_point_v<T>) {
      // std::from_chars for doubles is still patchy across stdlibs; stod
      // with a full-consumption check is equivalent here.
      try {
        std::size_t consumed = 0;
        out = std::stod(text, &consumed);
        result.ec = consumed == text.size() ? std::errc{}
                                            : std::errc::invalid_argument;
      } catch (const std::exception&) {
        result.ec = std::errc::invalid_argument;
      }
    } else {
      result = std::from_chars(begin, end, out);
      if (result.ec == std::errc{} && result.ptr != end) {
        result.ec = std::errc::invalid_argument;
      }
    }
    if (result.ec != std::errc{}) {
      return usage_error("invalid value '" + text + "' for --" + name);
    }
    return true;
  }
};

}  // namespace frote::cli
