#!/usr/bin/env python3
"""Compare a fresh bench_micro JSON against the committed baseline.

Flags every benchmark whose real_time regressed by more than the threshold
(default 25%) and prints a full delta table. New or vanished benchmarks are
reported informationally — adding a benchmark must not fail CI.

Usage:
    tools/bench_compare.py [--threshold 0.25] [--strict] [--only A,B,...] \
        BASELINE.json FRESH.json

Exit status is 0 unless --strict is given and at least one regression
exceeds the threshold. CI runs the full table non-strict — micro timings on
shared runners are noisy, so regressions warn loudly instead of
hard-failing — plus (behind FROTE_BENCH_STRICT=1 in ci.sh) a strict pass
over a curated subset of load-bearing benchmarks via --only. A perf PR that
moves numbers on purpose refreshes the committed baseline.

Per-thread-count baselines: bench/dump_bench_json.sh's FROTE_BENCH_THREADS
sweep records "<name>/threads:<n>" rows; they diff by name like any other
benchmark (an --only base name also matches its /threads:n variants), and
the fresh run's variants are summarised as a thread-scaling table.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate entries (mean/median/stddev) would double-count; the
        # repo's recording runs single repetitions, but stay robust.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def print_thread_scaling(fresh):
    """Summarise /threads:n variants as speedup-vs-1-thread per benchmark."""
    groups = {}
    for name, ns in fresh.items():
        if "/threads:" not in name:
            continue
        base_name, _, count = name.rpartition("/threads:")
        try:
            groups.setdefault(base_name, {})[int(count)] = ns
        except ValueError:
            continue
    if not groups:
        return
    print("\nthread scaling (fresh run):")
    for base_name in sorted(groups):
        by_count = groups[base_name]
        one = by_count.get(1)
        cells = []
        for count in sorted(by_count):
            cell = f"{count}t={fmt_ns(by_count[count])}"
            if one is not None and count != 1:
                cell += f" ({one / by_count[count]:.2f}x)"
            cells.append(cell)
        print(f"  {base_name}: {'  '.join(cells)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative real_time growth that counts as a "
                             "regression (default 0.25 = +25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression exceeds the "
                             "threshold")
    parser.add_argument("--only", default="",
                        help="comma-separated benchmark names to compare; a "
                             "name also matches its /arg variants (e.g. "
                             "BM_IpSelection matches BM_IpSelection/4000). "
                             "With --strict, a curated subset gates CI "
                             "while the rest stays informational")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    if args.only:
        wanted = [w for w in args.only.split(",") if w]

        def selected(name):
            return any(name == w or name.startswith(w + "/") for w in wanted)

        def matches(name, names):
            return any(n == name or n.startswith(name + "/") for n in names)

        base = {k: v for k, v in base.items() if selected(k)}
        fresh = {k: v for k, v in fresh.items() if selected(k)}
        missing = [w for w in wanted
                   if not matches(w, base) or not matches(w, fresh)]
        if missing:
            print(f"--only names absent from baseline or fresh run: "
                  f"{', '.join(missing)}", file=sys.stderr)
            if args.strict:
                return 1

    common = [name for name in base if name in fresh]
    regressions = []
    width = max((len(n) for n in common), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'fresh':>10}  delta")
    for name in common:
        delta = fresh[name] / base[name] - 1.0
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  (improved)"
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  "
              f"{fmt_ns(fresh[name]):>10}  {delta:+7.1%}{marker}")

    for name in sorted(set(fresh) - set(base)):
        print(f"{name:<{width}}  {'—':>10}  {fmt_ns(fresh[name]):>10}  (new)")
    for name in sorted(set(base) - set(fresh)):
        print(f"{name:<{width}}  {fmt_ns(base[name]):>10}  {'—':>10}  "
              f"(missing from fresh run)")

    print_thread_scaling(fresh)

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        if args.strict:
            return 1
        print("(non-strict mode: reporting only — rerun with --strict to "
              "fail)", file=sys.stderr)
    else:
        print(f"\nno regressions beyond {args.threshold:.0%} across "
              f"{len(common)} common benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
