// frote_serve — the multi-tenant FROTE session daemon.
//
// Speaks line-delimited JSON-RPC 2.0 (docs/DESIGN.md §7) over one of two
// transports per invocation: stdio (default; one request per line, one
// response per line, lockstep) or the vendored HTTP/1.1 listener (--http;
// one request per POST body). Both carry the same envelope, so a request
// gets byte-identical response bytes whichever way it arrives — ci.sh
// diffs a stdio run against an HTTP-driven run to lock that.
//
// Methods: session.create / session.step / session.snapshot /
// session.result / session.close / server.stats, all backed by
// core/session_pool.hpp, plus scenario.list and scenario.run
// (core/scenario.hpp). Sessions are created from EngineSpec documents
// (dataset reference required — the daemon has no other input channel,
// the same posture as frote_run's plans) or from a registered scenario
// ref ({"scenario": "name", "seed": N}), which resolves to such a spec
// via scenario_session_spec.
//
// Shutdown: SIGTERM/SIGINT (or stdin EOF in stdio mode) stops the
// frontend between requests, spools every live session to the --spool
// directory, and exits 0. A restarted daemon pointed at the same spool
// recovers them and continues bit-identically.
//
// Exit codes: 0 clean shutdown / successful drive, 1 usage error,
// 2 runtime failure. Protocol-level errors (bad requests, stale session
// ids, specs that fail resolution) are JSON-RPC error responses, never
// daemon exits.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "frote/core/registry.hpp"
#include "frote/core/scenario.hpp"
#include "frote/core/session_pool.hpp"
#include "frote/core/spec.hpp"
#include "frote/net/http.hpp"
#include "frote/net/jsonrpc.hpp"
#include "frote/util/faultsim.hpp"
#include "frote/util/fsio.hpp"
#include "cli_common.hpp"

namespace {

using frote::EngineSpec;
using frote::FroteError;
using frote::JsonValue;
using frote::SessionPool;
using frote::SessionPoolConfig;
using frote::SessionStepOutcome;

struct Options {
  bool http = false;
  int port = 0;  // 0 = ephemeral; read back via --port-file
  std::string port_file;
  std::string spool;
  std::size_t max_live = 8;
  std::size_t max_sessions = 0;
  bool evict_every_request = false;
  int threads = 0;
  std::size_t max_request_bytes = std::size_t{1} << 20;
  int read_timeout_ms = 5000;
  // Deterministic fault injection (util/faultsim.hpp), merged with the
  // FROTE_FAULTS environment variable.
  std::string faults;
  std::size_t faults_seed = 0;
  // Client mode: POST each line of --script to a listening daemon.
  int drive_port = -1;
  std::string script;
  int retries = 3;  // --drive connect retries (deterministic backoff)
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: frote_serve [options]             serve JSON-RPC over stdio\n"
        "       frote_serve --http [options]      serve over HTTP/1.1\n"
        "       frote_serve --drive PORT --script FILE\n"
        "                                         post each script line to a\n"
        "                                         running daemon, print the\n"
        "                                         responses\n"
        "\n"
        "options:\n"
        "  --port N               HTTP port (default 0 = ephemeral)\n"
        "  --port-file PATH       write the bound HTTP port to PATH\n"
        "  --spool DIR            checkpoint spool: enables eviction,\n"
        "                         durability, and restart recovery\n"
        "  --max-live-sessions N  live sessions kept in memory before LRU\n"
        "                         eviction to the spool (default 8, 0 = all)\n"
        "  --evict-every-request  spool the session after every request\n"
        "                         (eviction-transparency verification mode)\n"
        "  --threads N            engine threads override (default: the\n"
        "                         spec / FROTE_NUM_THREADS)\n"
        "  --max-request-bytes N  reject longer request lines/bodies\n"
        "                         (default 1048576)\n"
        "  --max-sessions N       refuse session.create beyond N open\n"
        "                         sessions with an \"overloaded\" error\n"
        "                         (default 0 = unbounded)\n"
        "  --read-timeout-ms N    HTTP per-request read deadline; slow or\n"
        "                         stalled clients get 408 (default 5000,\n"
        "                         0 = no deadline)\n"
        "  --faults SPEC          deterministic fault injection, e.g.\n"
        "                         \"fsio.rename:nth=2:kill\" (see also the\n"
        "                         FROTE_FAULTS environment variable)\n"
        "  --faults-seed N        seed for prob= fault schedules (default 0)\n"
        "  --retries N            --drive: connect retries with\n"
        "                         deterministic exponential backoff\n"
        "                         (default 3)\n"
        "  --help                 show this message\n";
}

bool parse_args(int argc, char** argv, Options& options) {
  const frote::cli::StrictArgs args{"frote_serve", print_usage, argc, argv};
  bool saw_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help") {
      options.help = true;
      return true;
    } else if (arg == "--http") {
      options.http = true;
    } else if (arg == "--port") {
      if (!args.value_for(i, "port", value) ||
          !args.parse_number("port", value, options.port)) {
        return false;
      }
      saw_port = true;
    } else if (arg == "--port-file") {
      if (!args.value_for(i, "port-file", options.port_file)) return false;
    } else if (arg == "--spool") {
      if (!args.value_for(i, "spool", options.spool)) return false;
    } else if (arg == "--max-live-sessions") {
      if (!args.value_for(i, "max-live-sessions", value) ||
          !args.parse_number("max-live-sessions", value, options.max_live)) {
        return false;
      }
    } else if (arg == "--evict-every-request") {
      options.evict_every_request = true;
    } else if (arg == "--threads") {
      if (!args.value_for(i, "threads", value) ||
          !args.parse_number("threads", value, options.threads)) {
        return false;
      }
    } else if (arg == "--max-request-bytes") {
      if (!args.value_for(i, "max-request-bytes", value) ||
          !args.parse_number("max-request-bytes", value,
                             options.max_request_bytes)) {
        return false;
      }
    } else if (arg == "--max-sessions") {
      if (!args.value_for(i, "max-sessions", value) ||
          !args.parse_number("max-sessions", value, options.max_sessions)) {
        return false;
      }
    } else if (arg == "--read-timeout-ms") {
      if (!args.value_for(i, "read-timeout-ms", value) ||
          !args.parse_number("read-timeout-ms", value,
                             options.read_timeout_ms)) {
        return false;
      }
    } else if (arg == "--faults") {
      if (!args.value_for(i, "faults", options.faults)) return false;
    } else if (arg == "--faults-seed") {
      if (!args.value_for(i, "faults-seed", value) ||
          !args.parse_number("faults-seed", value, options.faults_seed)) {
        return false;
      }
    } else if (arg == "--retries") {
      if (!args.value_for(i, "retries", value) ||
          !args.parse_number("retries", value, options.retries)) {
        return false;
      }
    } else if (arg == "--drive") {
      if (!args.value_for(i, "drive", value) ||
          !args.parse_number("drive", value, options.drive_port)) {
        return false;
      }
    } else if (arg == "--script") {
      if (!args.value_for(i, "script", options.script)) return false;
    } else {
      return args.usage_error("unknown option: " + arg);
    }
  }
  if (options.drive_port >= 0 && options.script.empty()) {
    return args.usage_error("--drive needs --script");
  }
  if (!options.script.empty() && options.drive_port < 0) {
    return args.usage_error("--script needs --drive");
  }
  if ((saw_port || !options.port_file.empty()) && !options.http &&
      options.drive_port < 0) {
    return args.usage_error("--port/--port-file need --http");
  }
  if (options.port < 0 || options.port > 65535) {
    return args.usage_error("--port must be 0..65535");
  }
  if (options.evict_every_request && options.spool.empty()) {
    return args.usage_error("--evict-every-request needs --spool");
  }
  if (options.max_request_bytes == 0) {
    return args.usage_error("--max-request-bytes must be positive");
  }
  if (options.read_timeout_ms < 0) {
    return args.usage_error("--read-timeout-ms must be >= 0");
  }
  if (options.retries < 0) {
    return args.usage_error("--retries must be >= 0");
  }
  return true;
}

/// Protocol code for a pool/engine failure. The pool reports typed
/// conditions as message prefixes; the protocol distinguishes stale ids
/// (-32001), lost durable state (-32002), and admission refusals (-32005)
/// from genuinely bad params (-32602) / internal faults (-32603).
int code_for(const FroteError& error) {
  if (error.message.rfind("no such session", 0) == 0) {
    return frote::net::kSessionNotFound;
  }
  if (error.message.rfind("session unrecoverable", 0) == 0) {
    return frote::net::kSessionUnrecoverable;
  }
  if (error.message.rfind("overloaded", 0) == 0) {
    return frote::net::kOverloaded;
  }
  return frote::net::rpc_code_for(error);
}

/// Error envelope for a pool failure. Overloaded responses carry a
/// machine-readable retry hint so clients can back off without parsing
/// the message text.
std::string pool_error_line(const JsonValue& id, const FroteError& error) {
  const int code = code_for(error);
  if (code == frote::net::kOverloaded) {
    JsonValue data = JsonValue::object();
    data.set("retry_after_ms", std::int64_t{50});
    return frote::net::rpc_error_line(id, code, error.message,
                                      std::move(data));
  }
  return frote::net::rpc_error_line(id, code, error.message);
}

JsonValue step_outcome_json(const std::string& id,
                            const SessionStepOutcome& outcome) {
  JsonValue result = JsonValue::object();
  result.set("session", id);
  result.set("steps_executed", outcome.steps_executed);
  result.set("accepted", outcome.last_accepted);
  result.set("finished", outcome.finished);
  result.set("iterations_run", outcome.iterations_run);
  result.set("iterations_accepted", outcome.iterations_accepted);
  result.set("instances_added", outcome.instances_added);
  result.set("rows", outcome.rows);
  result.set("j_bar", outcome.j_bar);
  return result;
}

/// Execute one validated request against the pool; returns the response
/// line (result or error envelope, no trailing newline).
std::string dispatch(SessionPool& pool, const frote::net::RpcRequest& req) {
  using frote::net::kInvalidParams;
  using frote::net::kMethodNotFound;
  using frote::net::rpc_error_line;
  using frote::net::rpc_result_line;

  const auto session_param = [&]() -> const std::string* {
    const JsonValue* id = req.params.find("session");
    if (id == nullptr || !id->is_string()) return nullptr;
    return &id->as_string();
  };

  // Optional params.seed: a non-negative integer reseeding a scenario.
  const auto seed_param =
      [&](std::optional<std::uint64_t>& out) -> const char* {
    const JsonValue* raw = req.params.find("seed");
    if (raw == nullptr) return nullptr;
    if (raw->type() != frote::JsonType::kInt &&
        raw->type() != frote::JsonType::kUint) {
      return "params.seed must be a non-negative integer";
    }
    if (raw->type() == frote::JsonType::kInt && raw->as_int64() < 0) {
      return "params.seed must be a non-negative integer";
    }
    out = raw->as_uint64();
    return nullptr;
  };
  // Resolve params.scenario through the registry (typed errors for an
  // unknown name or a document that no longer validates).
  const auto scenario_param = [&](const JsonValue* name,
                                  frote::Expected<frote::ScenarioSpec>& out)
      -> const char* {
    if (!name->is_string()) return "params.scenario must be a scenario name";
    out = frote::make_named_scenario(name->as_string());
    return nullptr;
  };

  if (req.method == "session.create") {
    const JsonValue* spec_json = req.params.find("spec");
    const JsonValue* scenario_name = req.params.find("scenario");
    if (scenario_name != nullptr) {
      // Scenario ref: the registered document becomes the session's
      // EngineSpec (generator expressed as a DatasetSpec synthetic
      // reference), so the session spools/recovers like any other.
      if (spec_json != nullptr) {
        return rpc_error_line(
            req.id, kInvalidParams,
            "params.spec and params.scenario are mutually exclusive");
      }
      frote::Expected<frote::ScenarioSpec> scenario =
          FroteError::invalid_argument("unresolved");
      if (const char* problem = scenario_param(scenario_name, scenario)) {
        return rpc_error_line(req.id, kInvalidParams, problem);
      }
      if (!scenario) {
        return rpc_error_line(req.id, kInvalidParams,
                              scenario.error().message);
      }
      std::optional<std::uint64_t> seed;
      if (const char* problem = seed_param(seed)) {
        return rpc_error_line(req.id, kInvalidParams, problem);
      }
      auto spec = frote::scenario_session_spec(*scenario, seed);
      if (!spec) {
        return rpc_error_line(req.id, kInvalidParams, spec.error().message);
      }
      auto id = pool.create(*spec);
      if (!id) return pool_error_line(req.id, id.error());
      JsonValue result = JsonValue::object();
      result.set("session", *id);
      result.set("scenario", scenario->name);
      return rpc_result_line(req.id, std::move(result));
    }
    if (spec_json == nullptr || !spec_json->is_object()) {
      return rpc_error_line(req.id, kInvalidParams,
                            "params.spec must be an engine-spec object");
    }
    auto spec = EngineSpec::from_json(*spec_json);
    if (!spec) {
      return rpc_error_line(req.id, kInvalidParams, spec.error().message);
    }
    auto id = pool.create(*spec);
    if (!id) return pool_error_line(req.id, id.error());
    JsonValue result = JsonValue::object();
    result.set("session", *id);
    return rpc_result_line(req.id, std::move(result));
  }
  if (req.method == "scenario.list") {
    JsonValue names = JsonValue::array();
    for (const auto& name : frote::registered_scenario_names()) {
      names.push_back(name);
    }
    JsonValue result = JsonValue::object();
    result.set("scenarios", std::move(names));
    return rpc_result_line(req.id, std::move(result));
  }
  if (req.method == "scenario.run") {
    // Full replay in-process (drift schedule included — unlike
    // session.create, which serves the phase-0 state); the result is the
    // deterministic ScenarioReport document.
    const JsonValue* scenario_name = req.params.find("scenario");
    if (scenario_name == nullptr) {
      return rpc_error_line(req.id, kInvalidParams,
                            "params.scenario must be a scenario name");
    }
    frote::Expected<frote::ScenarioSpec> scenario =
        FroteError::invalid_argument("unresolved");
    if (const char* problem = scenario_param(scenario_name, scenario)) {
      return rpc_error_line(req.id, kInvalidParams, problem);
    }
    if (!scenario) {
      return rpc_error_line(req.id, kInvalidParams, scenario.error().message);
    }
    frote::ScenarioRunOptions run_options;
    if (const char* problem = seed_param(run_options.seed)) {
      return rpc_error_line(req.id, kInvalidParams, problem);
    }
    auto report = frote::run_scenario(*scenario, run_options);
    if (!report) return pool_error_line(req.id, report.error());
    return rpc_result_line(req.id, report->to_json());
  }
  if (req.method == "session.step") {
    const std::string* id = session_param();
    if (id == nullptr) {
      return rpc_error_line(req.id, kInvalidParams,
                            "params.session must be a session-id string");
    }
    std::size_t steps = 1;
    if (const JsonValue* raw = req.params.find("steps")) {
      if (!raw->is_number() || raw->type() == frote::JsonType::kDouble ||
          raw->as_int64() < 1) {
        return rpc_error_line(req.id, kInvalidParams,
                              "params.steps must be a positive integer");
      }
      steps = static_cast<std::size_t>(raw->as_int64());
    }
    auto outcome = pool.step(*id, steps);
    if (!outcome) return pool_error_line(req.id, outcome.error());
    return rpc_result_line(req.id, step_outcome_json(*id, *outcome));
  }
  const auto simple = [&](auto method) -> std::string {
    const std::string* id = session_param();
    if (id == nullptr) {
      return rpc_error_line(req.id, kInvalidParams,
                            "params.session must be a session-id string");
    }
    auto result = (pool.*method)(*id);
    if (!result) return pool_error_line(req.id, result.error());
    return rpc_result_line(req.id, std::move(*result));
  };
  if (req.method == "session.snapshot") return simple(&SessionPool::snapshot);
  if (req.method == "session.result") return simple(&SessionPool::result);
  if (req.method == "session.close") return simple(&SessionPool::close);
  if (req.method == "server.stats") {
    return rpc_result_line(req.id, pool.stats());
  }
  return rpc_error_line(req.id, kMethodNotFound,
                        "unknown method: " + req.method);
}

/// One request line/body in, one response line out (no trailing newline).
/// Never throws, never exits: every failure becomes an error envelope.
std::string handle_line(SessionPool& pool, const std::string& line,
                        std::size_t max_request_bytes) {
  using frote::net::kInternalError;
  using frote::net::kInvalidRequest;
  using frote::net::rpc_error_line;
  if (line.size() > max_request_bytes) {
    return rpc_error_line(JsonValue(), kInvalidRequest,
                          "request exceeds --max-request-bytes (" +
                              std::to_string(max_request_bytes) + ")");
  }
  auto request = frote::net::parse_rpc_request(line);
  if (!request) {
    return rpc_error_line(request.error().id, request.error().rpc_code,
                          request.error().message);
  }
  try {
    return dispatch(pool, *request);
  } catch (const std::exception& e) {
    return rpc_error_line(request->id, kInternalError, e.what());
  }
}

// SIGTERM/SIGINT plumbing: the handler only does async-signal-safe work —
// one write() on the self-pipe (wakes the stdio poll loop) and
// HttpServer::stop() (itself a single write on the server's wake pipe).
int g_signal_pipe[2] = {-1, -1};
frote::net::HttpServer* g_http_server = nullptr;

void on_stop_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t rc = write(g_signal_pipe[1], &byte, 1);
  if (g_http_server != nullptr) g_http_server->stop();
}

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a client hanging up must not kill the daemon
}

void respond(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// The stdio frontend: poll stdin + the signal pipe, handle complete lines
/// in arrival order. Returns on EOF or stop signal.
void serve_stdio(SessionPool& pool, const Options& options) {
  std::string buffer;
  bool discarding = false;  // inside an oversized line, already answered
  char chunk[4096];
  for (;;) {
    struct pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    const int ready = poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // the signal pipe makes this visible
      break;
    }
    if (fds[1].revents != 0) break;  // stop signal
    if (fds[0].revents == 0) continue;
    const ssize_t n = read(STDIN_FILENO, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: clean shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (discarding) {
        discarding = false;  // tail of the line already rejected below
        continue;
      }
      if (line.empty()) continue;  // blank lines keep scripts readable
      respond(handle_line(pool, line, options.max_request_bytes));
    }
    // Reject a line that outgrew the limit before its newline arrived, so
    // an unbounded line cannot grow the buffer without bound.
    if (!discarding && buffer.size() > options.max_request_bytes) {
      respond(handle_line(pool, buffer, options.max_request_bytes));
      buffer.clear();
      discarding = true;
    } else if (discarding) {
      buffer.clear();
    }
  }
}

int serve_http(SessionPool& pool, const Options& options) {
  auto server =
      frote::net::HttpServer::listen(static_cast<std::uint16_t>(options.port));
  if (!server) {
    std::cerr << "frote_serve: " << server.error().message << "\n";
    return 2;
  }
  if (!options.port_file.empty()) {
    try {
      frote::write_file_atomic(options.port_file,
                               std::to_string(server->port()) + "\n");
    } catch (const frote::Error& e) {
      std::cerr << "frote_serve: " << e.what() << "\n";
      return 2;
    }
  }
  g_http_server = &*server;
  server->serve(
      [&](const frote::net::HttpRequest& request) {
        frote::net::HttpResponse response;
        // Tolerate the natural framing of line-oriented clients.
        std::string line = request.body;
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        response.body = handle_line(pool, line, options.max_request_bytes) +
                        "\n";
        return response;
      },
      frote::net::HttpLimits{
          /*max_body_bytes=*/options.max_request_bytes,
          /*max_header_bytes=*/std::size_t{64} << 10,
          /*read_timeout_ms=*/options.read_timeout_ms,
      });
  g_http_server = nullptr;
  return 0;
}

/// Client mode: POST each script line to a listening daemon, print each
/// response. The output of driving a script over HTTP must be byte-
/// identical to piping the same script into a stdio daemon (ci.sh diffs
/// the two).
int drive(const Options& options) {
  std::ifstream script(options.script);
  if (!script.good()) {
    std::cerr << "frote_serve: cannot open script " << options.script << "\n";
    return 2;
  }
  std::string line;
  while (std::getline(script, line)) {
    if (line.empty()) continue;
    // Bounded deterministic backoff on transport failures (daemon still
    // starting, listen queue momentarily full): fixed 10ms << attempt
    // delays, no jitter — retry timing is part of the reproducible
    // behaviour, and response *bytes* stay identical to the stdio run
    // because only transport errors are retried, never responses.
    auto response = frote::net::http_post(
        static_cast<std::uint16_t>(options.drive_port), "/rpc", line + "\n");
    for (int attempt = 0; !response && attempt < options.retries; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
      response = frote::net::http_post(
          static_cast<std::uint16_t>(options.drive_port), "/rpc", line + "\n");
    }
    if (!response) {
      std::cerr << "frote_serve: " << response.error().message << "\n";
      return 2;
    }
    std::fwrite(response->body.data(), 1, response->body.size(), stdout);
    if (response->body.empty() || response->body.back() != '\n') {
      std::fputc('\n', stdout);
    }
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;
  if (options.help) {
    print_usage(std::cout);
    return 0;
  }
  if (options.drive_port >= 0) return drive(options);

  // Fault injection arms only from explicit configuration — the env var
  // or the flag (the flag wins). A malformed spec is a usage error: a
  // typo'd spec that silently injected nothing would fake the coverage
  // its user asked for.
  try {
    frote::faultsim::configure_from_env();
    if (!options.faults.empty()) {
      frote::faultsim::configure(options.faults, options.faults_seed);
    }
  } catch (const frote::Error& e) {
    std::cerr << "frote_serve: " << e.what() << "\n";
    return 1;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "frote_serve: pipe: " << std::strerror(errno) << "\n";
    return 2;
  }
  install_signal_handlers();

  SessionPoolConfig config;
  config.spool_dir = options.spool;
  config.max_live = options.max_live;
  config.max_sessions = options.max_sessions;
  config.evict_every_request = options.evict_every_request;
  config.threads = options.threads;
  SessionPool pool(config);
  std::vector<std::string> problems;
  const std::size_t recovered = pool.recover_from_spool(&problems);
  for (const std::string& note : problems) {
    std::cerr << "frote_serve: spool: " << note << "\n";
  }
  if (recovered > 0) {
    std::cerr << "frote_serve: recovered " << recovered
              << " session(s) from spool\n";
  }

  int status = 0;
  if (options.http) {
    status = serve_http(pool, options);
  } else {
    serve_stdio(pool, options);
  }
  // Clean shutdown: every live session is spooled before exit, so a
  // restarted daemon can continue them.
  pool.checkpoint_all();
  return status;
}
