// frote_edit — command-line model editing.
//
// Reads a dataset CSV (schema header format, see data/csv.hpp) and a rule
// file (one rule per line, grammar in rules/parser.hpp), runs the FROTE edit
// through the Engine/Session pipeline and writes the augmented dataset plus
// an audit report.
//
// Usage:
//   frote_edit --data in.csv --rules rules.txt --out edited.csv
//              [--audit audit.txt] [--model rf|lr|gbdt|lgbm|nb|knn]
//              [--mod relabel|drop|none] [--select random|ip|online-proxy]
//              [--tau N] [--q F] [--k N] [--eta N] [--seed N]
//              [--trace] [--help]
//
// Argument parsing is strict: unknown flags, flags with a missing value, and
// malformed numbers are usage errors (exit 1), never silently ignored.
//
// Exit codes: 0 success, 1 usage error, 2 runtime error (bad data/rules).
#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "frote/frote_api.hpp"

namespace {

using namespace frote;

struct Options {
  std::string data_path;
  std::string rules_path;
  std::string out_path;
  std::string audit_path;
  std::string model = "rf";
  std::string mod = "relabel";
  std::string select = "random";
  std::size_t tau = 200;
  double q = 0.5;
  std::size_t k = 5;
  std::size_t eta = 0;
  std::uint64_t seed = 42;
  bool trace = false;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: frote_edit --data in.csv --rules rules.txt --out edited.csv\n"
        "                  [--audit audit.txt] "
        "[--model rf|lr|gbdt|lgbm|nb|knn]\n"
        "                  [--mod relabel|drop|none] "
        "[--select random|ip|online-proxy]\n"
        "                  [--tau N] [--q F] [--k N] [--eta N] [--seed N]\n"
        "                  [--trace]  log accepted iterations to stderr\n"
        "                  [--help]   show this message and exit 0\n";
}

bool usage_error(const std::string& message) {
  std::cerr << "frote_edit: " << message << "\n";
  print_usage(std::cerr);
  return false;
}

template <typename T>
bool parse_number(const std::string& name, const std::string& text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::from_chars_result result{};
  if constexpr (std::is_floating_point_v<T>) {
    // std::from_chars for doubles is still patchy across stdlibs; stod with
    // a full-consumption check is equivalent here.
    try {
      std::size_t consumed = 0;
      out = std::stod(text, &consumed);
      result.ec = consumed == text.size() ? std::errc{} : std::errc::invalid_argument;
    } catch (const std::exception&) {
      result.ec = std::errc::invalid_argument;
    }
  } else {
    result = std::from_chars(begin, end, out);
    if (result.ec == std::errc{} && result.ptr != end) {
      result.ec = std::errc::invalid_argument;
    }
  }
  if (result.ec != std::errc{}) {
    return usage_error("invalid value '" + text + "' for --" + name);
  }
  return true;
}

/// Strict flag parser: every argument must be a known --flag; value-taking
/// flags must be followed by a value (a token that is not itself a flag).
bool parse_args(int argc, char** argv, Options& options) {
  auto value_for = [&](int& i, const std::string& name,
                       std::string& out) -> bool {
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      return usage_error("missing value for --" + name);
    }
    out = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return usage_error("unexpected positional argument '" + arg + "'");
    }
    const std::string name = arg.substr(2);
    std::string value;
    if (name == "help") {
      options.help = true;
      return true;
    } else if (name == "trace") {
      options.trace = true;
    } else if (name == "data") {
      if (!value_for(i, name, options.data_path)) return false;
    } else if (name == "rules") {
      if (!value_for(i, name, options.rules_path)) return false;
    } else if (name == "out") {
      if (!value_for(i, name, options.out_path)) return false;
    } else if (name == "audit") {
      if (!value_for(i, name, options.audit_path)) return false;
    } else if (name == "model") {
      if (!value_for(i, name, options.model)) return false;
    } else if (name == "mod") {
      if (!value_for(i, name, options.mod)) return false;
    } else if (name == "select") {
      if (!value_for(i, name, options.select)) return false;
    } else if (name == "tau") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.tau))
        return false;
    } else if (name == "q") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.q))
        return false;
    } else if (name == "k") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.k))
        return false;
    } else if (name == "eta") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.eta))
        return false;
    } else if (name == "seed") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.seed))
        return false;
    } else {
      return usage_error("unknown option: --" + name);
    }
  }
  if (options.data_path.empty() || options.rules_path.empty() ||
      options.out_path.empty()) {
    return usage_error("--data, --rules and --out are required");
  }
  return true;
}

/// Validate names against the shared component registry up front, so typos
/// are usage errors (exit 1) rather than runtime errors.
bool validate_names(const Options& options) {
  const auto learner = make_named_learner(options.model);
  if (!learner) return usage_error(learner.error().message);
  if (options.mod != "relabel" && options.mod != "drop" &&
      options.mod != "none") {
    return usage_error("unknown mod strategy '" + options.mod + "'");
  }
  SelectorSpec probe;
  probe.k = options.k;
  const auto selector = make_named_selector(options.select, probe);
  if (!selector &&
      selector.error().code == FroteErrorCode::kUnknownComponent) {
    return usage_error(selector.error().message);
  }
  return true;
}

ModStrategy parse_mod(const std::string& name) {
  if (name == "relabel") return ModStrategy::kRelabel;
  if (name == "drop") return ModStrategy::kDrop;
  if (name == "none") return ModStrategy::kNone;
  // validate_names() reports this as a usage error first; the throw keeps
  // run() safe if it is ever called without that gate.
  throw Error("unknown mod strategy '" + name + "'");
}

int run(const Options& options) {
  const Dataset data = load_csv(options.data_path);
  std::cerr << "loaded " << data.size() << " rows, "
            << data.num_features() << " features, " << data.num_classes()
            << " classes from " << options.data_path << "\n";

  std::ifstream rules_file(options.rules_path);
  if (!rules_file.good()) {
    throw Error("cannot open rules file " + options.rules_path);
  }
  std::stringstream rules_text;
  rules_text << rules_file.rdbuf();
  auto parsed = parse_rules(rules_text.str(), data.schema());
  if (parsed.empty()) throw Error("no rules found in " + options.rules_path);
  FeedbackRuleSet frs(std::move(parsed));
  const std::size_t resolved = resolve_all_conflicts(frs, data.schema());
  std::cerr << "parsed " << frs.size() << " rule(s), resolved " << resolved
            << " conflict pair(s)\n";

  LearnerSpec learner_spec;
  learner_spec.seed = options.seed;
  const auto learner = make_named_learner(options.model, learner_spec).value();
  SelectorSpec selector_spec;
  selector_spec.k = options.k;
  selector_spec.frs = &frs;
  const auto selector =
      make_named_selector(options.select, selector_spec).value();

  Engine::Builder builder;
  builder.rules(frs)
      .tau(options.tau)
      .q(options.q)
      .k(options.k)
      .eta(options.eta)
      .seed(options.seed)
      .mod_strategy(parse_mod(options.mod))
      .selector(selector);
  if (options.trace) {
    auto tracer = std::make_shared<CallbackObserver>();
    tracer->step = [](const StepReport& report) {
      if (!report.accepted()) return;
      std::cerr << "iter " << report.iteration << ": accepted +"
                << report.batch_size << " rows (N = "
                << report.instances_added
                << ", J-hat-bar = " << report.best_j_bar << ")\n";
    };
    builder.observer(std::move(tracer));
  }
  const auto engine = builder.build().value();

  std::cerr << "running FROTE (model=" << options.model
            << ", select=" << options.select << ", tau=" << options.tau
            << ", q=" << options.q << ")...\n";
  auto session = engine.open(data, *learner).value();
  session.run();
  const auto result = std::move(session).result();
  std::cerr << "added " << result.instances_added << " synthetic rows over "
            << result.iterations_accepted << " accepted iterations\n";

  save_csv(result.augmented, options.out_path);
  std::cerr << "wrote " << result.augmented.size() << " rows to "
            << options.out_path << "\n";

  const auto record = build_audit_record(data, frs, engine.config(), result);
  if (options.audit_path.empty()) {
    write_audit_report(record, std::cout);
  } else {
    std::ofstream audit(options.audit_path);
    if (!audit.good()) {
      throw Error("cannot open audit file " + options.audit_path);
    }
    write_audit_report(record, audit);
    std::cerr << "audit report written to " << options.audit_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;
  if (options.help) {
    print_usage(std::cout);
    return 0;
  }
  if (!validate_names(options)) return 1;
  try {
    return run(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
