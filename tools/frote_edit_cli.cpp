// frote_edit — command-line model editing.
//
// Reads a dataset CSV (schema header format, see data/csv.hpp) and a rule
// file (one rule per line, grammar in rules/parser.hpp), runs the FROTE edit
// through the Engine/Session pipeline and writes the augmented dataset plus
// an audit report.
//
// Usage:
//   frote_edit --data in.csv --rules rules.txt --out edited.csv
//              [--audit audit.txt] [--model rf|lr|gbdt|lgbm|nb|knn]
//              [--mod relabel|drop|none] [--select random|ip|online-proxy]
//              [--tau N] [--q F] [--k N] [--eta N] [--seed N]
//              [--trace] [--help]
//
// Argument parsing is strict: unknown flags, flags with a missing value, and
// malformed numbers are usage errors (exit 1), never silently ignored.
//
// Exit codes: 0 success, 1 usage error, 2 runtime error (bad data/rules).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "frote/frote_api.hpp"

namespace {

using namespace frote;

struct Options {
  std::string data_path;
  std::string rules_path;
  std::string out_path;
  std::string audit_path;
  std::string model = "rf";
  std::string mod = "relabel";
  std::string select = "random";
  std::size_t tau = 200;
  double q = 0.5;
  std::size_t k = 5;
  std::size_t eta = 0;
  std::uint64_t seed = 42;
  bool trace = false;
  bool help = false;
};

void print_usage(std::ostream& os) {
  os << "usage: frote_edit --data in.csv --rules rules.txt --out edited.csv\n"
        "                  [--audit audit.txt] "
        "[--model rf|lr|gbdt|lgbm|nb|knn]\n"
        "                  [--mod relabel|drop|none] "
        "[--select random|ip|online-proxy]\n"
        "                  [--tau N] [--q F] [--k N] [--eta N] [--seed N]\n"
        "                  [--trace]  log accepted iterations to stderr\n"
        "                  [--help]   show this message and exit 0\n";
}

bool usage_error(const std::string& message) {
  return cli::StrictArgs{"frote_edit", print_usage, 0, nullptr}.usage_error(
      message);
}

/// Strict flag parser (tools/cli_common.hpp): every argument must be a
/// known --flag; value-taking flags must be followed by a value (a token
/// that is not itself a flag).
bool parse_args(int argc, char** argv, Options& options) {
  const cli::StrictArgs args{"frote_edit", print_usage, argc, argv};
  const auto value_for = [&](int& i, const std::string& name,
                             std::string& out) {
    return args.value_for(i, name, out);
  };
  const auto parse_number = [&](const std::string& name,
                                const std::string& text, auto& out) {
    return args.parse_number(name, text, out);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return usage_error("unexpected positional argument '" + arg + "'");
    }
    const std::string name = arg.substr(2);
    std::string value;
    if (name == "help") {
      options.help = true;
      return true;
    } else if (name == "trace") {
      options.trace = true;
    } else if (name == "data") {
      if (!value_for(i, name, options.data_path)) return false;
    } else if (name == "rules") {
      if (!value_for(i, name, options.rules_path)) return false;
    } else if (name == "out") {
      if (!value_for(i, name, options.out_path)) return false;
    } else if (name == "audit") {
      if (!value_for(i, name, options.audit_path)) return false;
    } else if (name == "model") {
      if (!value_for(i, name, options.model)) return false;
    } else if (name == "mod") {
      if (!value_for(i, name, options.mod)) return false;
    } else if (name == "select") {
      if (!value_for(i, name, options.select)) return false;
    } else if (name == "tau") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.tau))
        return false;
    } else if (name == "q") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.q))
        return false;
    } else if (name == "k") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.k))
        return false;
    } else if (name == "eta") {
      if (!value_for(i, name, value) || !parse_number(name, value, options.eta))
        return false;
    } else if (name == "seed") {
      if (!value_for(i, name, value) ||
          !parse_number(name, value, options.seed))
        return false;
    } else {
      return usage_error("unknown option: --" + name);
    }
  }
  if (options.data_path.empty() || options.rules_path.empty() ||
      options.out_path.empty()) {
    return usage_error("--data, --rules and --out are required");
  }
  return true;
}

/// Validate names against the shared component registry up front, so typos
/// are usage errors (exit 1) rather than runtime errors.
bool validate_names(const Options& options) {
  const auto learner = make_named_learner(options.model);
  if (!learner) return usage_error(learner.error().message);
  if (!parse_mod_strategy(options.mod).has_value()) {
    return usage_error("unknown mod strategy '" + options.mod + "'");
  }
  SelectorSpec probe;
  probe.k = options.k;
  const auto selector = make_named_selector(options.select, probe);
  if (!selector &&
      selector.error().code == FroteErrorCode::kUnknownComponent) {
    return usage_error(selector.error().message);
  }
  return true;
}

int run(const Options& options) {
  const Dataset data = load_csv(options.data_path);
  std::cerr << "loaded " << data.size() << " rows, "
            << data.num_features() << " features, " << data.num_classes()
            << " classes from " << options.data_path << "\n";

  std::ifstream rules_file(options.rules_path);
  if (!rules_file.good()) {
    throw Error("cannot open rules file " + options.rules_path);
  }
  std::stringstream rules_text;
  rules_text << rules_file.rdbuf();
  auto parsed = parse_rules(rules_text.str(), data.schema());
  if (parsed.empty()) throw Error("no rules found in " + options.rules_path);
  FeedbackRuleSet frs(std::move(parsed));
  const std::size_t resolved = resolve_all_conflicts(frs, data.schema());
  std::cerr << "parsed " << frs.size() << " rule(s), resolved " << resolved
            << " conflict pair(s)\n";

  // Assemble the declarative spec of this run and resolve engine + learner
  // through it — the same registry path frote_run and the harness use. The
  // (conflict-resolved) rules go in as text: the rule grammar round-trips
  // bit-exactly, so the engine built here is exactly engine.to_spec().
  EngineSpec spec;
  spec.tau = options.tau;
  spec.q = options.q;
  spec.k = options.k;
  spec.eta = options.eta;
  spec.seed = options.seed;
  spec.mod_strategy = options.mod;
  spec.selector = options.select;
  spec.learner = options.model;
  for (const auto& rule : frs.rules()) {
    spec.rules.push_back(rule.to_string(data.schema()));
  }
  spec.dataset = DatasetSpec{"csv", options.data_path, "", 0, 0};

  const auto learner = make_spec_learner(spec).value();
  Engine::Builder builder =
      Engine::Builder::from_spec(spec, data.schema()).value();
  if (options.trace) {
    auto tracer = std::make_shared<CallbackObserver>();
    tracer->step = [](const StepReport& report) {
      if (!report.accepted()) return;
      std::cerr << "iter " << report.iteration << ": accepted +"
                << report.batch_size << " rows (N = "
                << report.instances_added
                << ", J-hat-bar = " << report.best_j_bar << ")\n";
    };
    builder.observer(std::move(tracer));
  }
  const auto engine = builder.build().value();

  std::cerr << "running FROTE (model=" << options.model
            << ", select=" << options.select << ", tau=" << options.tau
            << ", q=" << options.q << ")...\n";
  auto session = engine.open(data, *learner).value();
  session.run();
  const auto result = std::move(session).result();
  std::cerr << "added " << result.instances_added << " synthetic rows over "
            << result.iterations_accepted << " accepted iterations\n";

  save_csv(result.augmented, options.out_path);
  std::cerr << "wrote " << result.augmented.size() << " rows to "
            << options.out_path << "\n";

  const auto record = build_audit_record(data, frs, engine.config(), result);
  if (options.audit_path.empty()) {
    write_audit_report(record, std::cout);
  } else {
    std::ofstream audit(options.audit_path);
    if (!audit.good()) {
      throw Error("cannot open audit file " + options.audit_path);
    }
    write_audit_report(record, audit);
    std::cerr << "audit report written to " << options.audit_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;
  if (options.help) {
    print_usage(std::cout);
    return 0;
  }
  if (!validate_names(options)) return 1;
  try {
    return run(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
