// frote_edit — command-line model editing.
//
// Reads a dataset CSV (schema header format, see data/csv.hpp) and a rule
// file (one rule per line, grammar in rules/parser.hpp), runs the FROTE edit
// and writes the augmented dataset plus an audit report.
//
// Usage:
//   frote_edit --data in.csv --rules rules.txt --out edited.csv
//              [--audit audit.txt] [--model rf|lr|gbdt|nb|knn]
//              [--mod relabel|drop|none] [--select random|ip]
//              [--tau N] [--q F] [--k N] [--eta N] [--seed N]
//
// Exit codes: 0 success, 1 usage error, 2 runtime error (bad data/rules).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "frote/core/audit.hpp"
#include "frote/core/frote.hpp"
#include "frote/data/csv.hpp"
#include "frote/ml/gbdt.hpp"
#include "frote/ml/knn_classifier.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/naive_bayes.hpp"
#include "frote/ml/random_forest.hpp"
#include "frote/rules/parser.hpp"

namespace {

using namespace frote;

struct Options {
  std::string data_path;
  std::string rules_path;
  std::string out_path;
  std::string audit_path;
  std::string model = "rf";
  std::string mod = "relabel";
  std::string select = "random";
  std::size_t tau = 200;
  double q = 0.5;
  std::size_t k = 5;
  std::size_t eta = 0;
  std::uint64_t seed = 42;
};

void print_usage(std::ostream& os) {
  os << "usage: frote_edit --data in.csv --rules rules.txt --out edited.csv\n"
        "                  [--audit audit.txt] [--model rf|lr|gbdt|nb|knn]\n"
        "                  [--mod relabel|drop|none] [--select random|ip]\n"
        "                  [--tau N] [--q F] [--k N] [--eta N] [--seed N]\n";
}

bool parse_args(int argc, char** argv, Options& options) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return false;
    args[key.substr(2)] = argv[i + 1];
  }
  if ((argc - 1) % 2 != 0) return false;
  auto take = [&](const char* name, std::string& out) {
    auto it = args.find(name);
    if (it != args.end()) {
      out = it->second;
      args.erase(it);
    }
  };
  take("data", options.data_path);
  take("rules", options.rules_path);
  take("out", options.out_path);
  take("audit", options.audit_path);
  take("model", options.model);
  take("mod", options.mod);
  take("select", options.select);
  std::string value;
  take("tau", value);
  if (!value.empty()) options.tau = std::stoul(value);
  value.clear();
  take("q", value);
  if (!value.empty()) options.q = std::stod(value);
  value.clear();
  take("k", value);
  if (!value.empty()) options.k = std::stoul(value);
  value.clear();
  take("eta", value);
  if (!value.empty()) options.eta = std::stoul(value);
  value.clear();
  take("seed", value);
  if (!value.empty()) options.seed = std::stoull(value);
  if (!args.empty()) {
    std::cerr << "unknown option: --" << args.begin()->first << "\n";
    return false;
  }
  return !options.data_path.empty() && !options.rules_path.empty() &&
         !options.out_path.empty();
}

std::unique_ptr<Learner> make_model(const std::string& name) {
  if (name == "rf") return std::make_unique<RandomForestLearner>();
  if (name == "lr") return std::make_unique<LogisticRegressionLearner>();
  if (name == "gbdt") return std::make_unique<GbdtLearner>();
  if (name == "nb") return std::make_unique<NaiveBayesLearner>();
  if (name == "knn") return std::make_unique<KnnClassifierLearner>();
  throw Error("unknown model '" + name + "'");
}

ModStrategy parse_mod(const std::string& name) {
  if (name == "relabel") return ModStrategy::kRelabel;
  if (name == "drop") return ModStrategy::kDrop;
  if (name == "none") return ModStrategy::kNone;
  throw Error("unknown mod strategy '" + name + "'");
}

SelectionStrategy parse_select(const std::string& name) {
  if (name == "random") return SelectionStrategy::kRandom;
  if (name == "ip") return SelectionStrategy::kIp;
  throw Error("unknown selection strategy '" + name + "'");
}

int run(const Options& options) {
  const Dataset data = load_csv(options.data_path);
  std::cerr << "loaded " << data.size() << " rows, "
            << data.num_features() << " features, " << data.num_classes()
            << " classes from " << options.data_path << "\n";

  std::ifstream rules_file(options.rules_path);
  if (!rules_file.good()) {
    throw Error("cannot open rules file " + options.rules_path);
  }
  std::stringstream rules_text;
  rules_text << rules_file.rdbuf();
  auto parsed = parse_rules(rules_text.str(), data.schema());
  if (parsed.empty()) throw Error("no rules found in " + options.rules_path);
  FeedbackRuleSet frs(std::move(parsed));
  const std::size_t resolved = resolve_all_conflicts(frs, data.schema());
  std::cerr << "parsed " << frs.size() << " rule(s), resolved " << resolved
            << " conflict pair(s)\n";

  const auto learner = make_model(options.model);
  FroteConfig config;
  config.tau = options.tau;
  config.q = options.q;
  config.k = options.k;
  config.eta = options.eta;
  config.seed = options.seed;
  config.mod_strategy = parse_mod(options.mod);
  config.selection = parse_select(options.select);

  std::cerr << "running FROTE (model=" << options.model
            << ", tau=" << config.tau << ", q=" << config.q << ")...\n";
  const auto result = frote_edit(data, *learner, frs, config);
  std::cerr << "added " << result.instances_added << " synthetic rows over "
            << result.iterations_accepted << " accepted iterations\n";

  save_csv(result.augmented, options.out_path);
  std::cerr << "wrote " << result.augmented.size() << " rows to "
            << options.out_path << "\n";

  const auto record = build_audit_record(data, frs, config, result);
  if (options.audit_path.empty()) {
    write_audit_report(record, std::cout);
  } else {
    std::ofstream audit(options.audit_path);
    if (!audit.good()) {
      throw Error("cannot open audit file " + options.audit_path);
    }
    write_audit_report(record, audit);
    std::cerr << "audit report written to " << options.audit_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage(std::cerr);
    return 1;
  }
  try {
    return run(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
