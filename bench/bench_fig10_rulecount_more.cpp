// Figure 10 (supplement): effect of feedback rule set size on the Car,
// Contraceptive, Nursery and Splice datasets (random selection, tcf = 0.2).
//
// Expected shape: as Figure 3 — improvements persist for large |F|; for
// some datasets no conflict-free FRS of size 15/20 exists.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figure 10 — FRS size effect on Car/Contraceptive/Nursery/Splice",
      "J̄ improvement persists at large |F| wherever a conflict-free FRS "
      "exists");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kCar,
                                       UciDataset::kContraceptive,
                                       UciDataset::kNursery,
                                       UciDataset::kSplice}
             : std::vector<UciDataset>{UciDataset::kCar,
                                       UciDataset::kContraceptive};
  const std::vector<std::size_t> frs_sizes =
      e.full ? std::vector<std::size_t>{8, 10, 15, 20}
             : std::vector<std::size_t>{8, 15};

  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table({"|F|", "runs", "J(initial)", "J(relabel)", "J(final)"});
    for (std::size_t frs_size : frs_sizes) {
      auto config = bench::base_run_config();
      config.frs_size = frs_size;
      config.tcf = 0.2;
      const auto outcomes = bench::run_many(ctx, LearnerKind::kRF, config,
                                            e.runs, 14100 + frs_size);
      if (outcomes.empty()) {
        table.add_row({std::to_string(frs_size), "0",
                       "no conflict-free FRS", "-", "-"});
        continue;
      }
      std::vector<double> j_init, j_mod, j_final;
      for (const auto& outcome : outcomes) {
        j_init.push_back(outcome.initial.j_bar);
        j_mod.push_back(outcome.mod.j_bar);
        j_final.push_back(outcome.final.j_bar);
      }
      table.add_row({std::to_string(frs_size),
                     std::to_string(outcomes.size()), bench::pm(j_init),
                     bench::pm(j_mod), bench::pm(j_final)});
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: J(final) ≥ J(relabel) ≥ J(initial) wherever "
               "an FRS exists; missing rows mirror the paper's note about "
               "unattainable conflict-free sets.\n";
  return 0;
}
