// Table 2: comparison with Overlay (Daly et al. 2021) on the binary
// Breast Cancer and Mushroom datasets. ΔJ̄ of Overlay-Soft, Overlay-Hard and
// FROTE relative to the initial model; |F| = 3, 50/50 coverage and
// outside-coverage splits, 50 runs in the paper.
//
// Expected shape: FROTE's ΔJ̄ > 0 for every dataset/model; Overlay-Hard's
// ΔJ̄ < 0 (rules too divergent from the model); Overlay-Soft in between.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 2 — comparison with Overlay (ΔJ̄ vs initial model)",
      "FROTE significantly beats both Overlay variants; Overlay-Hard "
      "degrades J̄ when rules diverge from the model");

  const std::vector<UciDataset> datasets = {UciDataset::kBreastCancer,
                                            UciDataset::kMushroom};
  TextTable table({"Dataset", "Model", "dJ Overlay-Soft", "dJ Overlay-Hard",
                   "dJ FROTE"});
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    for (LearnerKind learner : all_learners()) {
      auto config = bench::base_run_config();
      config.frs_size = 3;
      const auto outcomes = bench::run_many_overlay(
          ctx, learner, config, std::max<std::size_t>(e.runs, 4), 2100);
      if (outcomes.empty()) continue;
      std::vector<double> d_soft, d_hard, d_frote;
      for (const auto& outcome : outcomes) {
        d_soft.push_back(outcome.overlay_soft.j_bar - outcome.initial.j_bar);
        d_hard.push_back(outcome.overlay_hard.j_bar - outcome.initial.j_bar);
        d_frote.push_back(outcome.frote.j_bar - outcome.initial.j_bar);
      }
      table.add_row({dataset_info(dataset).name, learner_name(learner),
                     bench::pm(d_soft), bench::pm(d_hard),
                     bench::pm(d_frote)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: 'dJ FROTE' > 0 on every row and above both "
               "Overlay columns; 'dJ Overlay-Hard' typically < 0.\n";
  return 0;
}
