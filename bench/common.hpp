// Shared infrastructure for the per-table/per-figure bench binaries.
//
// The paper's full protocol (30–50 runs per setting, full dataset sizes,
// τ = 200) takes hours; bench binaries default to a scaled protocol that
// preserves the qualitative shapes and finishes in seconds-to-minutes.
// Environment knobs:
//   FROTE_RUNS  — runs per experimental setting (default 3)
//   FROTE_TAU   — FROTE iteration limit             (default 10)
//   FROTE_SCALE — multiplier on the bench dataset sizes (default 1.0)
//   FROTE_FULL  — 1 ⇒ paper-faithful protocol (all datasets, 30 runs,
//                 τ = 200, full sizes); expect hours
//   FROTE_FAST  — 1 ⇒ extra-small smoke configuration
#pragma once

#include <string>
#include <vector>

#include "frote/exp/harness.hpp"
#include "frote/util/stats.hpp"
#include "frote/util/table.hpp"

namespace frote::bench {

struct BenchEnv {
  std::size_t runs = 3;
  std::size_t tau = 10;
  double scale_mult = 1.0;
  bool full = false;
  bool fast = false;
};

const BenchEnv& env();

/// Bench-default dataset scale: targets ~900 rows per dataset (full paper
/// size under FROTE_FULL), scaled further by FROTE_SCALE / FROTE_FAST.
double bench_scale(UciDataset id);

/// Cached per-dataset experiment context at bench scale.
const ExperimentContext& context(UciDataset id);

/// Default run configuration honouring the env knobs.
RunConfig base_run_config();

/// Run `n` FROTE repetitions (seeds seed_base, seed_base+1, ...) and return
/// the valid outcomes.
std::vector<RunOutcome> run_many(const ExperimentContext& ctx,
                                 LearnerKind learner, const RunConfig& config,
                                 std::size_t n, std::uint64_t seed_base);

std::vector<OverlayOutcome> run_many_overlay(const ExperimentContext& ctx,
                                             LearnerKind learner,
                                             const RunConfig& config,
                                             std::size_t n,
                                             std::uint64_t seed_base);

/// Header banner printed by every bench binary.
void print_banner(const std::string& experiment_id,
                  const std::string& paper_claim);

/// "mean ± std" over a sample (empty-safe).
std::string pm(const std::vector<double>& values, int precision = 3);

/// Extractor helpers over outcome vectors.
std::vector<double> extract(const std::vector<RunOutcome>& outcomes,
                            double RunOutcome::*field);

}  // namespace frote::bench
