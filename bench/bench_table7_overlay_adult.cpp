// Table 7 (supplement): the Overlay comparison of Table 2 on the Adult
// dataset (the third binary dataset).
//
// Expected shape: FROTE ΔJ̄ > 0 for every model; Overlay-Hard ΔJ̄ < 0.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 7 — Overlay comparison on Adult (ΔJ̄ vs initial model)",
      "same conclusion as Table 2 on the larger Adult dataset");

  const auto& ctx = bench::context(UciDataset::kAdult);
  TextTable table({"Dataset", "Model", "dJ Overlay-Soft", "dJ Overlay-Hard",
                   "dJ FROTE"});
  for (LearnerKind learner : all_learners()) {
    auto config = bench::base_run_config();
    config.frs_size = 3;
    const auto outcomes = bench::run_many_overlay(
        ctx, learner, config, std::max<std::size_t>(e.runs, 4), 8100);
    if (outcomes.empty()) continue;
    std::vector<double> d_soft, d_hard, d_frote;
    for (const auto& outcome : outcomes) {
      d_soft.push_back(outcome.overlay_soft.j_bar - outcome.initial.j_bar);
      d_hard.push_back(outcome.overlay_hard.j_bar - outcome.initial.j_bar);
      d_frote.push_back(outcome.frote.j_bar - outcome.initial.j_bar);
    }
    table.add_row({"Adult", learner_name(learner), bench::pm(d_soft),
                   bench::pm(d_hard), bench::pm(d_frote)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: as in Table 2 — FROTE positive and dominant.\n";
  return 0;
}
