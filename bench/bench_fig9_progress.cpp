// Figure 9 (supplement): augmentation progress. Test-set J̄ as a function of
// the number of synthetic instances added, on Adult with |F| = 3, relabel,
// random selection, for each model and several tcf values.
//
// Expected shape: J̄ rises with the number of instances added; it rises
// FASTER (and from lower) at low tcf; RF needs fewer instances to converge
// than LR (non-linear models are cheaper to edit).
//
// The per-acceptance series comes from a ProgressObserver attached to the
// harness's editing Session (RunConfig::capture_trace): each accepted step
// re-evaluates test-set J̄ — the Engine/Session form of what the old
// AcceptCallback hook provided.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figure 9 — augmentation progress (test J̄ vs instances added, Adult)",
      "J̄ improves more quickly at lower tcf; RF needs fewer instances than "
      "LR");

  const auto& ctx = bench::context(UciDataset::kAdult);
  const std::vector<double> tcfs = e.full
                                       ? std::vector<double>{0.0, 0.1, 0.2}
                                       : std::vector<double>{0.0, 0.2};

  for (LearnerKind learner : all_learners()) {
    std::cout << "\n--- " << learner_name(learner) << " ---\n";
    TextTable table({"tcf", "run", "series (N -> test J)"});
    for (double tcf : tcfs) {
      auto config = bench::base_run_config();
      config.tcf = tcf;
      config.frs_size = 3;
      config.capture_trace = true;
      const auto outcomes = bench::run_many(
          ctx, learner, config, std::min<std::size_t>(e.runs, 2),
          13100 + static_cast<std::uint64_t>(tcf * 100));
      std::size_t run_id = 0;
      for (const auto& outcome : outcomes) {
        std::string series =
            "0 -> " + TextTable::fmt(outcome.initial.j_bar, 3);
        for (const auto& [added, j] : outcome.test_trace) {
          series += "; " + std::to_string(added) + " -> " +
                    TextTable::fmt(j, 3);
        }
        series += " [final " + TextTable::fmt(outcome.final.j_bar, 3) + "]";
        table.add_row({TextTable::fmt(tcf, 2), std::to_string(run_id++),
                       series});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: each series is (weakly) increasing in N; "
               "tcf = 0 series start lower and climb further; RF series "
               "plateau after fewer instances than LR series.\n";
  return 0;
}
