// Figures 5/6 (supplement): the Figure 2 experiment with the `none`
// modification strategy — contradictory covered instances stay in the
// training data and only augmentation can move the boundary.
//
// Expected shape: mod-imp (relabel-vs-initial improvement) is zero by
// definition; final-imp (final vs mod) is positive but with HIGHER VARIANCE
// than under relabel, since contradictory instances remain.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figures 5/6 — augmentation with the `none` strategy",
      "augmentation still improves J̄ without touching existing labels; "
      "variance is higher than under relabel");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kContraceptive,
                                       UciDataset::kCar,
                                       UciDataset::kBreastCancer,
                                       UciDataset::kMushroom}
             : std::vector<UciDataset>{UciDataset::kContraceptive,
                                       UciDataset::kCar};
  const std::vector<double> tcfs =
      e.full ? std::vector<double>{0.0, 0.1, 0.2, 0.4}
             : std::vector<double>{0.0, 0.2};

  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table(
        {"model", "tcf", "J(initial)", "J(final)", "final-imp", "std"});
    for (LearnerKind learner : all_learners()) {
      for (double tcf : tcfs) {
        auto config = bench::base_run_config();
        config.tcf = tcf;
        config.frs_size = 3;
        config.mod = ModStrategy::kNone;
        const auto outcomes = bench::run_many(
            ctx, learner, config, e.runs,
            11100 + static_cast<std::uint64_t>(tcf * 100));
        if (outcomes.empty()) continue;
        std::vector<double> j_init, j_final, imp;
        for (const auto& outcome : outcomes) {
          j_init.push_back(outcome.initial.j_bar);
          j_final.push_back(outcome.final.j_bar);
          imp.push_back(outcome.final.j_bar - outcome.mod.j_bar);
        }
        table.add_row({learner_name(learner), TextTable::fmt(tcf, 2),
                       bench::pm(j_init), bench::pm(j_final),
                       TextTable::fmt(mean_of(imp), 3),
                       TextTable::fmt(stddev_of(imp), 3)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: final-imp ≥ 0 on average; std columns larger "
               "than the corresponding relabel runs in Figure 2/4.\n";
  return 0;
}
