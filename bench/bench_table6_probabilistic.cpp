// Table 6 (supplement): probabilistic rules. A single *wrong* feedback rule
// (the test distribution stays unchanged), tcf = 0, LR model; FROTE runs
// with rule confidence p ∈ {0.4, 0.6, 0.8, 1.0} where generated labels
// follow the rule with probability p and the base instance otherwise.
// ΔMRA here measures agreement with the ORIGINAL labels inside coverage.
//
// Expected shape: p < 1 (less confident) beats p = 1 on ΔMRA — probabilistic
// rules mitigate over-confident expert feedback.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 6 — probabilistic rules mitigate a wrong expert rule",
      "confidence p < 1 preserves more original-label agreement (MRA) than "
      "fully trusting the wrong rule (p = 1)");

  const std::vector<UciDataset> datasets = {UciDataset::kMushroom,
                                            UciDataset::kWineQuality,
                                            UciDataset::kBreastCancer};
  const std::vector<double> probabilities = {0.4, 0.6, 0.8, 1.0};

  TextTable table({"Dataset", "p", "dMRA(true labels)", "dJ"});
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    for (double p : probabilities) {
      auto config = bench::base_run_config();
      config.frs_size = 1;   // single rule isolates the probabilistic effect
      config.tcf = 0.0;      // no coverage: relabel/drop not applicable
      config.mod = ModStrategy::kNone;
      config.rule_confidence = p;
      const auto outcomes = bench::run_many(
          ctx, LearnerKind::kLR, config,
          std::max<std::size_t>(e.runs, 4),
          7100 + static_cast<std::uint64_t>(p * 10));
      if (outcomes.empty()) continue;
      std::vector<double> d_mra_true, d_j;
      for (const auto& outcome : outcomes) {
        d_mra_true.push_back(outcome.final.mra_true -
                             outcome.initial.mra_true);
        d_j.push_back(outcome.final.j_bar - outcome.initial.j_bar);
      }
      table.add_row({dataset_info(dataset).name, TextTable::fmt(p, 1),
                     bench::pm(d_mra_true), bench::pm(d_j)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: within each dataset the p = 1.0 row should "
               "show the lowest (most negative) dMRA(true labels) — full "
               "confidence in a wrong rule costs the most original-label "
               "agreement.\n";
  return 0;
}
