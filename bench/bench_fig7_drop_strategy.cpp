// Figures 7/8 (supplement): the Figure 2 experiment with the `drop`
// modification strategy — covered instances that disagree with the rules
// are removed before augmentation.
//
// Expected shape: augmentation improves J̄ as with relabel, with higher
// variance (base instances are found via rule relaxation after the drop).
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figures 7/8 — augmentation with the `drop` strategy",
      "dropping disagreeing covered instances also works; variance is "
      "higher because relaxation supplies the base population");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kContraceptive,
                                       UciDataset::kCar,
                                       UciDataset::kBreastCancer,
                                       UciDataset::kMushroom}
             : std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kContraceptive};
  const std::vector<double> tcfs =
      e.full ? std::vector<double>{0.0, 0.1, 0.2, 0.4}
             : std::vector<double>{0.0, 0.2};

  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table({"model", "tcf", "J(initial)", "J(drop)", "J(final)",
                     "final-imp"});
    for (LearnerKind learner : all_learners()) {
      for (double tcf : tcfs) {
        auto config = bench::base_run_config();
        config.tcf = tcf;
        config.frs_size = 3;
        config.mod = ModStrategy::kDrop;
        const auto outcomes = bench::run_many(
            ctx, learner, config, e.runs,
            12100 + static_cast<std::uint64_t>(tcf * 100));
        if (outcomes.empty()) continue;
        std::vector<double> j_init, j_mod, j_final, imp;
        for (const auto& outcome : outcomes) {
          j_init.push_back(outcome.initial.j_bar);
          j_mod.push_back(outcome.mod.j_bar);
          j_final.push_back(outcome.final.j_bar);
          imp.push_back(outcome.final.j_bar - outcome.mod.j_bar);
        }
        table.add_row({learner_name(learner), TextTable::fmt(tcf, 2),
                       bench::pm(j_init), bench::pm(j_mod),
                       bench::pm(j_final), TextTable::fmt(mean_of(imp), 3)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: J(final) ≥ J(drop) ≥ J(initial) on average.\n";
  return 0;
}
