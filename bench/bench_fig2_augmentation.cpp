// Figure 2: benefit of augmentation. Test-set J̄ for models trained on the
// initial dataset, after relabelling, and after FROTE augmentation, as a
// function of the training coverage fraction (tcf), for three ML models.
//
// Expected shape (paper §5.2): final ≥ relabel ≥ initial; the final-vs-
// relabel gap is largest at small tcf (especially tcf = 0) and for LR.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figure 2 — benefit of augmentation (J̄ vs tcf, per model)",
      "FROTE's augmentation improves J̄ beyond relabelling alone; the gap "
      "grows as tcf shrinks and is largest for LR");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kAdult,
                                       UciDataset::kWineQuality,
                                       UciDataset::kContraceptive}
             : std::vector<UciDataset>{UciDataset::kContraceptive,
                                       UciDataset::kBreastCancer};
  const std::vector<double> tcfs =
      e.full ? std::vector<double>{0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
             : std::vector<double>{0.0, 0.1, 0.2, 0.4};
  const std::vector<std::size_t> frs_sizes =
      e.full ? std::vector<std::size_t>{1, 3, 5}
             : std::vector<std::size_t>{1, 3};

  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table({"model", "tcf", "J(initial)", "J(relabel)", "J(final)",
                     "final-relabel"});
    for (LearnerKind learner : all_learners()) {
      for (double tcf : tcfs) {
        std::vector<double> j_init, j_mod, j_final;
        std::uint64_t seed = 1000 + static_cast<std::uint64_t>(tcf * 100);
        for (std::size_t frs_size : frs_sizes) {
          auto config = bench::base_run_config();
          config.tcf = tcf;
          config.frs_size = frs_size;
          const auto outcomes =
              bench::run_many(ctx, learner, config, e.runs, seed);
          seed += 100;
          for (const auto& outcome : outcomes) {
            j_init.push_back(outcome.initial.j_bar);
            j_mod.push_back(outcome.mod.j_bar);
            j_final.push_back(outcome.final.j_bar);
          }
        }
        if (j_init.empty()) continue;
        table.add_row({learner_name(learner), TextTable::fmt(tcf, 2),
                       bench::pm(j_init), bench::pm(j_mod),
                       bench::pm(j_final),
                       TextTable::fmt(mean_of(j_final) - mean_of(j_mod), 3)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: J(final) column should dominate J(relabel), "
               "which dominates J(initial); the last column should shrink "
               "as tcf grows.\n";
  return 0;
}
