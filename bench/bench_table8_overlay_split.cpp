// Table 8 (supplement): ΔMRA and ΔF-Score reported separately for Overlay
// Soft/Hard and FROTE on the binary datasets.
//
// Expected shape: Overlay-Hard reaches high ΔMRA (it obeys rules by
// construction) but pays with a strongly negative ΔF-Score ON COVERED DATA
// (here visible as a large negative ΔF when rules diverge); FROTE improves
// MRA with ΔF ≈ 0.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 8 — ΔMRA / ΔF-Score split for Overlay vs FROTE",
      "hard constraints buy MRA at a steep F-Score cost; FROTE does not");

  const std::vector<UciDataset> datasets = {UciDataset::kBreastCancer,
                                            UciDataset::kMushroom};
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table({"Model", "dMRA Soft", "dMRA Hard", "dMRA FROTE",
                     "dF1 Soft", "dF1 Hard", "dF1 FROTE"});
    for (LearnerKind learner : all_learners()) {
      auto config = bench::base_run_config();
      config.frs_size = 3;
      const auto outcomes = bench::run_many_overlay(
          ctx, learner, config, std::max<std::size_t>(e.runs, 4), 9100);
      if (outcomes.empty()) continue;
      std::vector<double> mra_soft, mra_hard, mra_frote;
      std::vector<double> f1_soft, f1_hard, f1_frote;
      for (const auto& outcome : outcomes) {
        mra_soft.push_back(outcome.overlay_soft.mra - outcome.initial.mra);
        mra_hard.push_back(outcome.overlay_hard.mra - outcome.initial.mra);
        mra_frote.push_back(outcome.frote.mra - outcome.initial.mra);
        // ΔF is the eq-3 outside-coverage F1: hard patches retract the
        // provenance regions, which lie OUTSIDE cov(F) — the paper's
        // "performs very poorly on the outside coverage population".
        f1_soft.push_back(outcome.overlay_soft.f1 -
                          outcome.initial.f1);
        f1_hard.push_back(outcome.overlay_hard.f1 -
                          outcome.initial.f1);
        f1_frote.push_back(outcome.frote.f1 -
                           outcome.initial.f1);
      }
      table.add_row({learner_name(learner), bench::pm(mra_soft),
                     bench::pm(mra_hard), bench::pm(mra_frote),
                     bench::pm(f1_soft), bench::pm(f1_hard),
                     bench::pm(f1_frote)});
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: 'dMRA Hard' is the largest MRA gain but its "
               "'dF1 Hard' column is the most negative; FROTE's MRA gain "
               "comes with a much smaller true-label cost.\n";
  return 0;
}
