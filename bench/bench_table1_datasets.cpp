// Table 1: properties of the datasets used during the experiments.
// Regenerates the table from the dataset generators and verifies the
// generated schemas against it.
#include <iostream>
#include <string>

#include "common.hpp"
#include "frote/data/generators.hpp"

int main() {
  using namespace frote;
  bench::print_banner(
      "Table 1 — dataset properties",
      "8 UCI datasets: #instances, #features (numeric/nominal), #labels");

  TextTable table({"Dataset", "#Ins.", "#Feat.", "#Labels", "bench #Ins."});
  for (const auto& info : all_datasets()) {
    const auto data = make_dataset(
        info.id,
        std::max<std::size_t>(
            200, static_cast<std::size_t>(bench::bench_scale(info.id) *
                                          static_cast<double>(
                                              info.paper_size))));
    std::string feat = std::to_string(info.num_numeric + info.num_categorical) +
                       "(" +
                       (info.num_numeric > 0 ? std::to_string(info.num_numeric)
                                             : std::string("-")) +
                       "/" +
                       (info.num_categorical > 0
                            ? std::to_string(info.num_categorical)
                            : std::string("-")) +
                       ")";
    table.add_row({info.name, std::to_string(info.paper_size), feat,
                   std::to_string(info.num_classes),
                   std::to_string(data.size())});
  }
  table.print(std::cout);
  std::cout << "\nAll schemas match Table 1 (checked by construction in "
               "make_dataset).\n";
  return 0;
}
