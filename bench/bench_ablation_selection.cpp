// Ablation: base-instance selection strategies head-to-head under identical
// seeds — random (paper default), IP (eq. 5), the supplement's online-
// learning proxy (eq. 7), and the accept-always switch that disables
// Algorithm 1's accept/reject gate.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/spec.hpp"
#include "frote/data/split.hpp"
#include "frote/rules/perturb.hpp"

namespace {

using namespace frote;

/// Each variant is one declarative EngineSpec delta: the selector by
/// registry name (the online proxy included — no hand-built component
/// plumbing) or the accept-always switch.
struct Variant {
  std::string name;
  std::string selector = "random";
  bool accept_always = false;
};

}  // namespace

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Ablation — selection strategies & acceptance gate",
      "random ≈ IP (paper Table 3); the acceptance gate protects outside-F1; "
      "the online proxy trades quality for fewer black-box retrains");

  const auto& ctx = bench::context(UciDataset::kBreastCancer);
  const std::vector<Variant> variants = {
      {"random", "random", false},
      {"IP", "ip", false},
      {"online-proxy", "online-proxy", false},
      {"accept-always", "random", true},
  };

  TextTable table({"variant", "dJ", "dMRA", "dF1", "N added"});
  for (const auto& variant : variants) {
    std::vector<double> d_j, d_mra, d_f1, added;
    for (std::size_t run = 0; run < std::max<std::size_t>(e.runs, 3); ++run) {
      Rng rng(derive_seed(950, run));
      FeedbackRuleSet frs =
          sample_conflict_free_frs(ctx.pool, 3, ctx.data.schema(), rng);
      if (frs.empty()) continue;
      const auto cov = frs.coverage_union(ctx.data);
      auto split = coverage_split(ctx.data, cov, 0.1, 0.8, rng);
      const auto learner = make_learner(LearnerKind::kRF, 951, !e.full);
      const auto initial = learner->train(split.train);
      const auto before = evaluate_objective(*initial, frs, split.test);

      // Each variant is a spec delta on the same skeleton; the perturbed
      // rule set is installed in-process (it carries provenance the rule
      // grammar does not encode), exactly like the harness does.
      EngineSpec spec;
      spec.tau = e.tau;
      spec.eta = ctx.default_eta;
      spec.selector = variant.selector;
      spec.accept_always = variant.accept_always;
      const auto engine = Engine::Builder::from_spec(spec, ctx.data.schema())
                              .value()
                              .rules(frs)
                              .build()
                              .value();
      auto session = engine.open(split.train, *learner).value();
      session.run();
      const FroteResult result = std::move(session).result();
      const auto after = evaluate_objective(*result.model, frs, split.test);
      d_j.push_back(after.j_bar(after.coverage_prob) -
                    before.j_bar(before.coverage_prob));
      d_mra.push_back(after.mra - before.mra);
      d_f1.push_back(after.outside_f1 - before.outside_f1);
      added.push_back(static_cast<double>(result.instances_added));
    }
    if (d_j.empty()) continue;
    table.add_row({variant.name, bench::pm(d_j), bench::pm(d_mra),
                   bench::pm(d_f1), bench::pm(added, 1)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: random and IP comparable on dJ; "
               "accept-always adds the most instances with the weakest dF1 "
               "(no gate), confirming the accept/reject step earns its "
               "retraining cost.\n";
  return 0;
}
