// Table 5 (supplement): ΔMRA and ΔF-Score reported separately for the
// random and IP selection strategies.
//
// Expected shape: ΔJ̄ is dominated by ΔMRA — large positive MRA improvements
// with near-zero (sometimes slightly negative) ΔF-Score.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 5 — ΔMRA and ΔF-Score split, random vs IP",
      "MRA improves strongly while outside-coverage F1 is preserved");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kCar,
                                       UciDataset::kMushroom,
                                       UciDataset::kAdult,
                                       UciDataset::kWineQuality,
                                       UciDataset::kContraceptive,
                                       UciDataset::kNursery,
                                       UciDataset::kSplice}
             : std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kContraceptive,
                                       UciDataset::kCar};

  TextTable table({"Dataset", "Model", "dMRA (random)", "dMRA (IP)",
                   "dF1 (random)", "dF1 (IP)"});
  RunningStats all_dmra, all_df1;
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    for (LearnerKind learner : all_learners()) {
      std::vector<double> mra_random, mra_ip, f1_random, f1_ip;
      for (auto strategy :
           {SelectionStrategy::kRandom, SelectionStrategy::kIp}) {
        auto config = bench::base_run_config();
        config.selection = strategy;
        const auto outcomes =
            bench::run_many(ctx, learner, config, e.runs, 6100);
        for (const auto& outcome : outcomes) {
          const double dmra = outcome.final.mra - outcome.initial.mra;
          const double df1 = outcome.final.f1 - outcome.initial.f1;
          if (strategy == SelectionStrategy::kRandom) {
            mra_random.push_back(dmra);
            f1_random.push_back(df1);
          } else {
            mra_ip.push_back(dmra);
            f1_ip.push_back(df1);
          }
          all_dmra.add(dmra);
          all_df1.add(df1);
        }
      }
      if (mra_random.empty() || mra_ip.empty()) continue;
      table.add_row({dataset_info(dataset).name, learner_name(learner),
                     bench::pm(mra_random), bench::pm(mra_ip),
                     bench::pm(f1_random), bench::pm(f1_ip)});
    }
  }
  table.print(std::cout);
  std::cout << "\nOverall mean dMRA=" << TextTable::fmt(all_dmra.mean())
            << " vs mean dF1=" << TextTable::fmt(all_df1.mean())
            << "  (paper: improvement dominated by MRA, F1 ~ unchanged)\n";
  return 0;
}
