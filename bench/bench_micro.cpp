// Microbenchmarks (google-benchmark) for the library's hot paths, plus the
// ablations docs/DESIGN.md calls out: ball-tree vs brute-force kNN, rule coverage
// evaluation, SMOTE-NC generation, model training, the base-instance IP,
// and the per-iteration FROTE objective evaluation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/frote.hpp"
#include "frote/core/generate.hpp"
#include "frote/core/registry.hpp"
#include "frote/core/scenario.hpp"
#include "frote/data/generators.hpp"
#include "frote/exp/learners.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/opt/ip.hpp"
#include "frote/smote/smote.hpp"

#ifdef FROTE_SERVE_BINARY
#include "serve_harness.hpp"  // tests/; gtest-free by design
#endif

namespace {

using namespace frote;

const Dataset& adult(std::size_t n) {
  static std::map<std::size_t, Dataset> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, make_dataset(UciDataset::kAdult, n)).first;
  }
  return it->second;
}

FeedbackRule adult_rule(const Dataset& data) {
  // age > median AND education_num > median: deterministic class 1.
  const auto age = data.numeric_column_stats(0);
  return FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, age.mean},
              Predicate{1, Op::kGt, 10.0}}),
      1, data.num_classes());
}

void BM_CoverageEval(benchmark::State& state) {
  const auto& data = adult(static_cast<std::size_t>(state.range(0)));
  const auto rule = adult_rule(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverage(rule, data).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CoverageEval)->Arg(1000)->Arg(4000);

void BM_KnnBrute(benchmark::State& state) {
  const auto& data = adult(static_cast<std::size_t>(state.range(0)));
  const BruteKnn knn(data, MixedDistance::fit(data));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.query(data.row(q++ % data.size()), 5));
  }
}
BENCHMARK(BM_KnnBrute)->Arg(1000)->Arg(4000);

void BM_KnnBallTree(benchmark::State& state) {
  const auto& data = adult(static_cast<std::size_t>(state.range(0)));
  const BallTreeKnn knn(data, MixedDistance::fit(data));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.query(data.row(q++ % data.size()), 5));
  }
}
BENCHMARK(BM_KnnBallTree)->Arg(1000)->Arg(4000);

void BM_BallTreeBuild(benchmark::State& state) {
  const auto& data = adult(static_cast<std::size_t>(state.range(0)));
  const auto distance = MixedDistance::fit(data);
  for (auto _ : state) {
    BallTreeKnn knn(data, distance);
    benchmark::DoNotOptimize(knn.size());
  }
}
// 1000 = below the brute/ball-tree crossover, 4000 = at it (the build cost
// make_knn_index's crossover heuristic weighs against the per-query win).
BENCHMARK(BM_BallTreeBuild)->Arg(1000)->Arg(4000);

void BM_SmoteNcGenerate(benchmark::State& state) {
  const auto& data = adult(2000);
  const auto rule = adult_rule(data);
  FeedbackRuleSet frs({rule});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto distance = MixedDistance::fit(data);
  RuleConstrainedGenerator gen(data, rule, bp.per_rule[0], distance, {});
  Rng rng(1);
  std::vector<double> row;
  int label = 0;
  std::size_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen.generate(slot++ % bp.per_rule[0].indices.size(), rng, row,
                     label));
  }
}
BENCHMARK(BM_SmoteNcGenerate);

void BM_TrainModel(benchmark::State& state) {
  const auto& data = adult(1000);
  const auto kind = static_cast<LearnerKind>(state.range(0));
  const auto learner = make_learner(kind, 42, /*fast=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner->train(data));
  }
  state.SetLabel(learner_name(kind));
}
BENCHMARK(BM_TrainModel)
    ->Arg(static_cast<int>(LearnerKind::kLR))
    ->Arg(static_cast<int>(LearnerKind::kRF))
    ->Arg(static_cast<int>(LearnerKind::kLGBM));

void BM_ModelUpdate(benchmark::State& state) {
  // Learner::update() on a dataset grown by one accepted batch (η = 20 rows):
  // the accept-path retrain cost the session pays per committed edit, vs the
  // from-scratch cost BM_TrainModel measures. "rf" is the exact incremental
  // override (bitwise ≡ train); lr_warm / gbdt_additive are the opt-in
  // approximate warm starts (docs/DESIGN.md §10).
  static constexpr const char* kNames[] = {"rf", "lr_warm", "gbdt_additive"};
  const char* name = kNames[state.range(0)];
  const auto& base = adult(1000);
  LearnerSpec spec;
  spec.seed = 42;
  spec.fast = true;
  const auto learner = make_named_learner(name, spec).value();
  Dataset data(base);
  const std::size_t trained_rows = data.size();
  const auto previous = learner->train(data);
  for (std::size_t i = 0; i < 20; ++i) {
    data.add_row(base.row(i), base.label(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(learner->update(*previous, data, trained_rows));
  }
  state.SetLabel(name);
}
BENCHMARK(BM_ModelUpdate)->Arg(0)->Arg(1)->Arg(2);

void BM_ObjectiveEval(benchmark::State& state) {
  const auto& data = adult(2000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto model = learner->train(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_j_hat_bar(*model, frs, data));
  }
}
BENCHMARK(BM_ObjectiveEval);

void BM_IpSelection(benchmark::State& state) {
  const auto& data = adult(2000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto model = learner->train(data);
  IpSelector selector;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(data, bp, *model, 50, rng));
  }
}
BENCHMARK(BM_IpSelection);

void BM_IpSelectionSized(benchmark::State& state) {
  // Cold selection cost across dataset sizes (every iteration refits the
  // distance, rebuilds the index and re-predicts — the pre-workspace
  // per-step cost; 8000 crosses into the ball-tree engine). The scale
  // points run the scale tier for real: columnar chunked storage
  // (docs/DESIGN.md §8) and, past shard_min_rows, the sharded kNN index.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Dataset data = adult(n);
  if (n >= 100000) data.set_storage({/*chunk_rows=*/8192, /*mmap=*/false});
  FeedbackRuleSet frs({adult_rule(data)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto model = learner->train(data);
  IpSelector selector;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(data, bp, *model, 50, rng));
  }
}

/// Scale args for BM_IpSelection: 100k always (chunked storage + sharded
/// kNN), 1M only when FROTE_BENCH_SLOW=1 — the million-row point takes
/// minutes and is for dedicated perf runs, not the CI trend table.
void AddIpSelectionScaleArgs(benchmark::internal::Benchmark* bench) {
  bench->Arg(100000);
  const char* slow = std::getenv("FROTE_BENCH_SLOW");
  if (slow != nullptr && slow[0] != '\0' && std::string(slow) != "0") {
    bench->Arg(1000000);
  }
}

BENCHMARK(BM_IpSelectionSized)
    ->Name("BM_IpSelection")
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(8000)
    ->Apply(AddIpSelectionScaleArgs);

void BM_IpSelectionWarm(benchmark::State& state) {
  // Steady-state selection through a bound SessionWorkspace: after the
  // first call the distance/index/prediction/weight caches all hit — the
  // per-iteration cost of IP selection on the FROTE loop's reject path.
  const auto& data = adult(static_cast<std::size_t>(state.range(0)));
  FeedbackRuleSet frs({adult_rule(data)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto model = learner->train(data);
  IpSelector selector;
  SessionWorkspace ws(/*threads=*/0);
  ws.bind(data);
  ws.set_model_stamp(1);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(data, bp, *model, 50, rng, &ws));
  }
}
BENCHMARK(BM_IpSelectionWarm)->Arg(1000)->Arg(4000)->Arg(8000);

void BM_RandomSelection(benchmark::State& state) {
  const auto& data = adult(2000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto bp = preselect_base_population(data, frs, 5);
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto model = learner->train(data);
  RandomSelector selector;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(data, bp, *model, 50, rng));
  }
}
BENCHMARK(BM_RandomSelection);

void BM_ClassicSmote(benchmark::State& state) {
  const auto& data = adult(2000);
  SmoteConfig config;
  config.amount_percent = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(smote_oversample(data, 1, config).size());
  }
}
BENCHMARK(BM_ClassicSmote);

void BM_FroteIteration(benchmark::State& state) {
  // One full FROTE edit at τ = 2 — the end-to-end per-iteration cost,
  // through the legacy frote_edit() shim.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  FroteConfig config;
  config.tau = 2;
  config.eta = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        frote_edit(data, *learner, frs, config).instances_added);
  }
}
BENCHMARK(BM_FroteIteration);

void BM_EngineSessionRun(benchmark::State& state) {
  // The same τ = 2 workload through Engine/Session directly. The delta vs
  // BM_FroteIteration is the session-step overhead the CI baseline
  // (BENCH_micro.json) tracks; tests/test_engine_perf.cpp bounds it at 5%.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine =
      Engine::Builder().rules(frs).tau(2).eta(20).build().value();
  for (auto _ : state) {
    auto session = engine.open(data, *learner).value();
    session.run();
    benchmark::DoNotOptimize(std::move(session).result().instances_added);
  }
}
BENCHMARK(BM_EngineSessionRun);

void BM_SessionStep(benchmark::State& state) {
  // Amortized cost of one step() (select → generate → retrain → gate) on a
  // long-lived session. The session is recycled (outside the timed region)
  // before D̂ grows past 20% so the workload stays stationary — otherwise
  // ns/op would scale with the benchmark's min-time instead of the step.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine = Engine::Builder().rules(frs).eta(20).build().value();
  auto session = engine.open(data, *learner).value();
  for (auto _ : state) {
    if (session.finished() || session.progress().instances_added > 200) {
      state.PauseTiming();
      session = engine.open(data, *learner).value();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.step().status);
  }
}
BENCHMARK(BM_SessionStep);

struct NeverAcceptPolicy final : AcceptancePolicy {
  bool accept(const AcceptanceContext&) const override { return false; }
};

void BM_SessionStepAccept(benchmark::State& state) {
  // Every step accepted: commit + retrain-keep + incremental refresh of the
  // base population, column moments, distance and kNN index. The delta vs
  // BM_SessionStepReject is the full accept-path maintenance cost.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .eta(20)
                          .selection(SelectionStrategy::kIp)
                          .acceptance(std::make_shared<AlwaysAcceptPolicy>())
                          .build()
                          .value();
  auto session = engine.open(data, *learner).value();
  for (auto _ : state) {
    if (session.finished() || session.progress().instances_added > 200) {
      state.PauseTiming();
      session = engine.open(data, *learner).value();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.step().status);
  }
}
BENCHMARK(BM_SessionStepAccept);

void BM_SessionStepReject(benchmark::State& state) {
  // Every step rejected: stage + retrain + rollback, with the workspace
  // serving selection from its caches (the reject fast-path the session
  // workspace exists for) — D̂ never grows, so no recycling heuristics.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine = Engine::Builder()
                          .rules(frs)
                          .eta(20)
                          .selection(SelectionStrategy::kIp)
                          .acceptance(std::make_shared<NeverAcceptPolicy>())
                          .build()
                          .value();
  auto session = engine.open(data, *learner).value();
  for (auto _ : state) {
    if (session.finished()) {
      state.PauseTiming();
      session = engine.open(data, *learner).value();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.step().status);
  }
}
BENCHMARK(BM_SessionStepReject);

void scenario_replay(benchmark::State& state, const char* name) {
  // Whole-workload replay through run_scenario (generator → engine →
  // rules → expected-outcome check), amortised per engine step via
  // items_processed. Recorded in BENCH_micro.json as a trajectory baseline
  // for the three scenario families; not strict-gated.
  const ScenarioSpec spec = make_named_scenario(name).value();
  ScenarioRunOptions options;
  options.seed = 42;
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto report = run_scenario(spec, options);
    if (!report) {
      state.SetLabel(report.error().message);
      break;
    }
    steps += static_cast<std::int64_t>(report->iterations_run);
    benchmark::DoNotOptimize(report->final_j_bar);
  }
  state.SetItemsProcessed(steps);
}

void BM_ScenarioStepMulticlass(benchmark::State& state) {
  scenario_replay(state, "multiclass_wine");
}
BENCHMARK(BM_ScenarioStepMulticlass)->Name("BM_ScenarioStep/multiclass");

void BM_ScenarioStepDrift(benchmark::State& state) {
  scenario_replay(state, "drift_adult");
}
BENCHMARK(BM_ScenarioStepDrift)->Name("BM_ScenarioStep/drift");

void BM_ScenarioStepFairness(benchmark::State& state) {
  scenario_replay(state, "fairness_adult");
}
BENCHMARK(BM_ScenarioStepFairness)->Name("BM_ScenarioStep/fairness");

void BM_SnapshotSave(benchmark::State& state) {
  // Serialise a live mid-edit session to checkpoint JSON (the periodic
  // write the frote_run driver performs with --checkpoint-every): dataset
  // rows dominate — this is the cost of durability per interval.
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine = Engine::Builder().rules(frs).eta(20).build().value();
  auto session = engine.open(data, *learner).value();
  for (int i = 0; i < 3; ++i) session.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.snapshot().to_json_text().size());
  }
}
BENCHMARK(BM_SnapshotSave);

void BM_SnapshotRestore(benchmark::State& state) {
  // Parse + restore: rebuild D̂ from JSON, retrain the model, rebuild the
  // base population and workspace, and verify Ĵ̄ — the full
  // interrupt-to-stepping recovery latency (retraining dominates).
  const auto& data = adult(1000);
  FeedbackRuleSet frs({adult_rule(data)});
  const auto learner = make_learner(LearnerKind::kRF, 42, true);
  const auto engine = Engine::Builder().rules(frs).eta(20).build().value();
  auto session = engine.open(data, *learner).value();
  for (int i = 0; i < 3; ++i) session.step();
  const std::string text = session.snapshot().to_json_text();
  for (auto _ : state) {
    auto checkpoint = SessionCheckpoint::parse(text).value();
    auto restored = Session::restore(engine, *learner, checkpoint).value();
    benchmark::DoNotOptimize(restored.finished());
  }
}
BENCHMARK(BM_SnapshotRestore);

#ifdef FROTE_SERVE_BINARY
// Serving-layer costs, measured against the real frote_serve binary via
// the same spawn/pipe harness the contract tests use. Compare with the
// in-process rows: BM_ServeRequest vs BM_SessionStep isolates the
// protocol + transport tax of a served step request, and
// BM_ServeEvictRestore vs BM_ServeRequest isolates the spool-write +
// restore (retraining-dominated, cf. BM_SnapshotRestore) added when the
// pool evicts the session between every request.

/// A daemon with one session stepped to completion (responses stay small
/// and per-iteration work stays constant), spawned once per process.
frote::testing::ServeProcess& serve_daemon(bool evict_every_request) {
  static auto spawn = [](bool evict) {
    namespace fs = std::filesystem;
    // Scratch lives next to the daemon binary (inside the build tree), so
    // running the bench from the source root never litters the checkout.
    const fs::path dir = fs::path(FROTE_SERVE_BINARY).parent_path() /
                         "bench_serve_scratch" / (evict ? "evict" : "plain");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const fs::path csv = dir / "train.csv";
    frote::testing::write_threshold_csv(csv.string());
    frote::testing::ServeProcess::Options options;
    if (evict) {
      options.args = {"--spool", (dir / "spool").string(),
                      "--evict-every-request"};
    }
    auto daemon = std::make_unique<frote::testing::ServeProcess>(options);
    daemon->request(frote::testing::create_line(
        "c", frote::testing::serve_spec(csv.string())));
    daemon->request(frote::testing::step_line("warm", "s-000001", 50));
    return daemon;
  };
  static auto plain = spawn(false);
  static auto evicting = spawn(true);
  return evict_every_request ? *evicting : *plain;
}

void BM_ServeRequest(benchmark::State& state) {
  auto& daemon = serve_daemon(false);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string response =
        daemon.request(frote::testing::step_line("b", "s-000001"));
    bytes += response.size();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_ServeRequest);

void BM_ServeEvictRestore(benchmark::State& state) {
  auto& daemon = serve_daemon(true);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string response =
        daemon.request(frote::testing::step_line("b", "s-000001"));
    bytes += response.size();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_ServeEvictRestore);
#endif  // FROTE_SERVE_BINARY

}  // namespace

BENCHMARK_MAIN();
