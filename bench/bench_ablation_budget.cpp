// Ablation (§6 Broader Impact): the augmentation-budget inflection point.
// "There is generally an inflection point in terms of the number of data
// points added where the cost to overall model performance starts to
// outweigh the improvement in MRA." Sweeps q and reports MRA / outside-F1 /
// J̄ per budget, locating the J̄-maximising budget per model.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "frote/core/inflection.hpp"
#include "frote/data/split.hpp"
#include "frote/rules/perturb.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Ablation — augmentation budget inflection point (q sweep)",
      "MRA rises with budget while outside-F1 eventually pays; J̄ peaks at "
      "a model- and dataset-dependent budget");

  const auto& ctx = bench::context(UciDataset::kContraceptive);
  const std::vector<double> budgets =
      e.full ? std::vector<double>{0.0, 0.1, 0.25, 0.5, 1.0, 2.0}
             : std::vector<double>{0.0, 0.25, 0.5, 1.0};

  for (LearnerKind learner_kind : all_learners()) {
    Rng rng(derive_seed(900, static_cast<std::uint64_t>(learner_kind)));
    FeedbackRuleSet frs =
        sample_conflict_free_frs(ctx.pool, 3, ctx.data.schema(), rng);
    if (frs.empty()) continue;
    const auto cov = frs.coverage_union(ctx.data);
    auto split = coverage_split(ctx.data, cov, 0.1, 0.8, rng);

    const auto learner = make_learner(learner_kind, 901, !e.full);
    FroteConfig config;
    config.tau = e.tau;
    config.eta = ctx.default_eta;
    const auto analysis = sweep_budget(split.train, split.test, *learner,
                                       frs, config, budgets);

    std::cout << "\n--- " << learner_name(learner_kind) << " ---\n";
    TextTable table({"q", "N added", "MRA", "outside-F1", "J"});
    for (const auto& point : analysis.points) {
      table.add_row({TextTable::fmt(point.q, 2),
                     std::to_string(point.instances_added),
                     TextTable::fmt(point.mra), TextTable::fmt(point.outside_f1),
                     TextTable::fmt(point.j_bar)});
    }
    table.print(std::cout);
    std::cout << "J-maximising budget: q = "
              << analysis.points[analysis.best_index].q
              << (analysis.inflection_found
                      ? "  (inflection: larger budgets decline)"
                      : "  (flat or rising beyond this budget)")
              << "\n";
  }
  std::cout << "\nShape check: MRA is non-decreasing in q while J̄ peaks "
               "and flattens/declines — the §6 inflection behaviour.\n";
  return 0;
}
