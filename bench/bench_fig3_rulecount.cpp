// Figure 3: effect of feedback rule set size, Breast Cancer, tcf = 0.2,
// random selection. Box statistics of J̄ for initial / relabel / final with
// |F| ∈ {8, 10, 15, 20}.
//
// Expected shape: the improvement (final over relabel over initial) is
// maintained up to 20 rules; for some sizes a conflict-free FRS may not
// exist (the paper reports this for |F| = 15, 20 on some datasets).
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figure 3 — effect of feedback rule set size (Breast Cancer)",
      "J̄ improvement is maintained for FRS sizes up to 20 rules");

  const auto& ctx = bench::context(UciDataset::kBreastCancer);
  const std::vector<std::size_t> frs_sizes = {8, 10, 15, 20};

  TextTable table({"|F|", "runs", "J(initial)", "J(relabel)", "J(final)",
                   "median(final)"});
  for (std::size_t frs_size : frs_sizes) {
    auto config = bench::base_run_config();
    config.frs_size = frs_size;
    config.tcf = 0.2;
    const auto outcomes = bench::run_many(ctx, LearnerKind::kRF, config,
                                          e.runs, 3100 + frs_size);
    if (outcomes.empty()) {
      table.add_row({std::to_string(frs_size), "0",
                     "no conflict-free FRS", "-", "-", "-"});
      continue;
    }
    std::vector<double> j_init, j_mod, j_final;
    for (const auto& outcome : outcomes) {
      j_init.push_back(outcome.initial.j_bar);
      j_mod.push_back(outcome.mod.j_bar);
      j_final.push_back(outcome.final.j_bar);
    }
    table.add_row({std::to_string(frs_size),
                   std::to_string(outcomes.size()), bench::pm(j_init),
                   bench::pm(j_mod), bench::pm(j_final),
                   TextTable::fmt(box_stats(j_final).median, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: J(final) stays above J(initial) across all "
               "attainable |F|; rows may report missing conflict-free FRS "
               "for large |F| exactly as the paper notes.\n";
  return 0;
}
