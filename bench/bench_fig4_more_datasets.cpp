// Figure 4 (supplement): the Figure 2 comparison (initial / relabel / final
// vs tcf) on the remaining datasets — Splice, Nursery, Breast Cancer,
// Mushroom, Car — with the relabel strategy.
//
// Expected shape: same as Figure 2 — augmentation helps beyond relabel,
// most at low tcf.
#include <cstdint>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Figure 4 — benefit of augmentation on additional datasets (relabel)",
      "Fig 2's conclusions extend to Splice/Nursery/B.Cancer/Mushroom/Car");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kSplice,
                                       UciDataset::kNursery,
                                       UciDataset::kBreastCancer,
                                       UciDataset::kMushroom,
                                       UciDataset::kCar}
             : std::vector<UciDataset>{UciDataset::kCar,
                                       UciDataset::kMushroom};
  const std::vector<double> tcfs =
      e.full ? std::vector<double>{0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
             : std::vector<double>{0.0, 0.2};

  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    std::cout << "\n--- " << dataset_info(dataset).name << " ---\n";
    TextTable table({"model", "tcf", "J(initial)", "J(relabel)", "J(final)"});
    for (LearnerKind learner : all_learners()) {
      for (double tcf : tcfs) {
        auto config = bench::base_run_config();
        config.tcf = tcf;
        config.frs_size = 3;
        const auto outcomes = bench::run_many(
            ctx, learner, config, e.runs,
            10100 + static_cast<std::uint64_t>(tcf * 100));
        if (outcomes.empty()) continue;
        std::vector<double> j_init, j_mod, j_final;
        for (const auto& outcome : outcomes) {
          j_init.push_back(outcome.initial.j_bar);
          j_mod.push_back(outcome.mod.j_bar);
          j_final.push_back(outcome.final.j_bar);
        }
        table.add_row({learner_name(learner), TextTable::fmt(tcf, 2),
                       bench::pm(j_init), bench::pm(j_mod),
                       bench::pm(j_final)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: same ordering as Figure 2 on every dataset.\n";
  return 0;
}
