#!/usr/bin/env bash
# Record the bench_micro hot-path timings as JSON, so perf PRs have a
# baseline trajectory to diff against (the repo keeps the committed baseline
# in BENCH_micro.json; ci.sh refreshes a build-local copy every run).
#
# Works against both benchmark runners: the real google-benchmark and the
# vendored minibenchmark shim accept --benchmark_format=json.
#
# Usage:
#   bench/dump_bench_json.sh [build-dir] [out.json]
#   MINIBENCH_MIN_TIME=0.05 bench/dump_bench_json.sh build BENCH_micro.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
BIN="$BUILD_DIR/bench/bench_micro"

if [[ ! -x "$BIN" ]]; then
  echo "dump_bench_json: $BIN not built (run cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

# Keep the recording quick by default; callers can raise MINIBENCH_MIN_TIME
# (vendored shim honours it; the real google-benchmark ignores it) for
# lower-variance numbers.
export MINIBENCH_MIN_TIME=${MINIBENCH_MIN_TIME:-0.05}

"$BIN" --benchmark_format=json > "$OUT"
echo "dump_bench_json: wrote $(grep -c '"name"' "$OUT") benchmark entries to $OUT" >&2
