#!/usr/bin/env bash
# Record the bench_micro hot-path timings as JSON, so perf PRs have a
# baseline trajectory to diff against (the repo keeps the committed baseline
# in BENCH_micro.json; ci.sh refreshes a build-local copy every run).
#
# Works against both benchmark runners: the real google-benchmark and the
# vendored minibenchmark shim accept --benchmark_format=json and
# --benchmark_filter=<regex>.
#
# Usage:
#   bench/dump_bench_json.sh [build-dir] [out.json]
#   MINIBENCH_MIN_TIME=0.05 bench/dump_bench_json.sh build BENCH_micro.json
#
# Multicore leg: FROTE_BENCH_THREADS="1 2 4" reruns the thread-sensitive hot
# paths (BM_FroteIteration / BM_IpSelection / BM_SessionStepAccept) once per
# count and merges them into the output as "<name>/threads:<n>" rows, next to
# the main (default-threads) table. bench_compare.py diffs those rows by name
# like any other benchmark, so the committed BENCH_micro.json carries a
# per-thread-count baseline — the scaling table.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_micro.json}
BIN="$BUILD_DIR/bench/bench_micro"
SWEEP_FILTER='^(BM_FroteIteration|BM_IpSelection|BM_SessionStepAccept)'

if [[ ! -x "$BIN" ]]; then
  echo "dump_bench_json: $BIN not built (run cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

# Keep the recording quick by default; callers can raise MINIBENCH_MIN_TIME
# (vendored shim honours it; the real google-benchmark ignores it) for
# lower-variance numbers.
export MINIBENCH_MIN_TIME=${MINIBENCH_MIN_TIME:-0.05}

"$BIN" --benchmark_format=json > "$OUT"

if [[ -n "${FROTE_BENCH_THREADS:-}" ]]; then
  SWEEP_DIR=$(mktemp -d)
  trap 'rm -rf "$SWEEP_DIR"' EXIT
  for count in $FROTE_BENCH_THREADS; do
    FROTE_NUM_THREADS=$count "$BIN" --benchmark_format=json \
      --benchmark_filter="$SWEEP_FILTER" > "$SWEEP_DIR/threads_$count.json"
  done
  python3 - "$OUT" "$SWEEP_DIR" <<'PY'
import json
import pathlib
import sys

out_path, sweep_dir = sys.argv[1], pathlib.Path(sys.argv[2])
with open(out_path) as fh:
    doc = json.load(fh)
for path in sorted(sweep_dir.glob("threads_*.json"),
                   key=lambda p: int(p.stem.split("_")[1])):
    count = path.stem.split("_")[1]
    with open(path) as fh:
        sweep = json.load(fh)
    for bench in sweep.get("benchmarks", []):
        row = dict(bench)
        row["name"] = f"{row['name']}/threads:{count}"
        doc["benchmarks"].append(row)
with open(out_path, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
PY
fi

echo "dump_bench_json: wrote $(grep -c '"name"' "$OUT") benchmark entries to $OUT" >&2
