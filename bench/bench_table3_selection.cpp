// Table 3: comparison of `random` and `IP` base instance selection
// strategies: ΔJ̄ of the final augmented model relative to the initial model,
// across datasets and models.
//
// Expected shape: no clear winner between random and IP on ΔJ̄ (the paper's
// "win-loss-tie 11-8-5"); both ≥ 0 on average.
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 3 — random vs IP base instance selection (ΔJ̄ vs initial)",
      "no clear winner on ΔJ̄; IP is more informed but random avoids "
      "overfitting the training objective");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kCar,
                                       UciDataset::kMushroom,
                                       UciDataset::kAdult,
                                       UciDataset::kWineQuality,
                                       UciDataset::kContraceptive,
                                       UciDataset::kNursery,
                                       UciDataset::kSplice}
             : std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kCar,
                                       UciDataset::kContraceptive};

  TextTable table({"Dataset", "Model", "dJ (random)", "dJ (IP)"});
  int wins = 0, losses = 0, ties = 0;
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    for (LearnerKind learner : all_learners()) {
      std::vector<double> d_random, d_ip;
      for (auto strategy : {SelectionStrategy::kRandom, SelectionStrategy::kIp}) {
        auto config = bench::base_run_config();
        config.selection = strategy;
        // Same seeds for both strategies: paired comparison as in the paper.
        const auto outcomes =
            bench::run_many(ctx, learner, config, e.runs, 4100);
        for (const auto& outcome : outcomes) {
          (strategy == SelectionStrategy::kRandom ? d_random : d_ip)
              .push_back(outcome.final.j_bar - outcome.initial.j_bar);
        }
      }
      if (d_random.empty() || d_ip.empty()) continue;
      table.add_row({dataset_info(dataset).name, learner_name(learner),
                     bench::pm(d_random), bench::pm(d_ip)});
      const double mr = mean_of(d_random), mi = mean_of(d_ip);
      if (std::abs(mr - mi) < 0.001) {
        ++ties;
      } else if (mr > mi) {
        ++wins;
      } else {
        ++losses;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nrandom-vs-IP win-loss-tie (3 decimals): " << wins << "-"
            << losses << "-" << ties
            << "  (paper reports 11-8-5 over 24 pairs — i.e. no clear "
               "winner)\n";
  return 0;
}
