#include "common.hpp"

#include <iostream>
#include <map>

#include "frote/util/env.hpp"

namespace frote::bench {

const BenchEnv& env() {
  static const BenchEnv kEnv = [] {
    BenchEnv e;
    e.full = env_flag("FROTE_FULL");
    e.fast = env_flag("FROTE_FAST");
    e.runs = static_cast<std::size_t>(
        env_int("FROTE_RUNS", e.full ? 30 : (e.fast ? 2 : 3)));
    e.tau = static_cast<std::size_t>(
        env_int("FROTE_TAU", e.full ? 200 : (e.fast ? 5 : 10)));
    e.scale_mult = env_double("FROTE_SCALE", 1.0);
    return e;
  }();
  return kEnv;
}

double bench_scale(UciDataset id) {
  const auto& e = env();
  if (e.full) return std::min(1.0, e.scale_mult);
  const double target = e.fast ? 350.0 : 700.0;
  const double base =
      std::min(1.0, target / static_cast<double>(dataset_info(id).paper_size));
  return std::min(1.0, base * e.scale_mult);
}

const ExperimentContext& context(UciDataset id) {
  static std::map<UciDataset, ExperimentContext> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, make_context(id, bench_scale(id))).first;
  }
  return it->second;
}

RunConfig base_run_config() {
  RunConfig config;
  config.tau = env().tau;
  config.fast_learner = !env().full;
  return config;
}

std::vector<RunOutcome> run_many(const ExperimentContext& ctx,
                                 LearnerKind learner, const RunConfig& config,
                                 std::size_t n, std::uint64_t seed_base) {
  std::vector<RunOutcome> outcomes;
  for (std::size_t r = 0; r < n; ++r) {
    auto outcome = run_frote_once(ctx, learner, config, seed_base + r);
    if (outcome.valid) outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<OverlayOutcome> run_many_overlay(const ExperimentContext& ctx,
                                             LearnerKind learner,
                                             const RunConfig& config,
                                             std::size_t n,
                                             std::uint64_t seed_base) {
  std::vector<OverlayOutcome> outcomes;
  for (std::size_t r = 0; r < n; ++r) {
    auto outcome = run_overlay_once(ctx, learner, config, seed_base + r);
    if (outcome.valid) outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

void print_banner(const std::string& experiment_id,
                  const std::string& paper_claim) {
  const auto& e = env();
  std::cout
      << "==============================================================\n"
      << experiment_id << "\n"
      << "Paper claim: " << paper_claim << "\n"
      << "Protocol: runs/setting=" << e.runs << ", tau=" << e.tau
      << (e.full ? " [FULL paper protocol]"
                 : " [scaled; FROTE_FULL=1 for paper protocol]")
      << "\n"
      << "==============================================================\n";
}

std::string pm(const std::vector<double>& values, int precision) {
  if (values.empty()) return "n/a";
  return TextTable::fmt_pm(mean_of(values), stddev_of(values), precision);
}

std::vector<double> extract(const std::vector<RunOutcome>& outcomes,
                            double RunOutcome::*field) {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const auto& outcome : outcomes) out.push_back(outcome.*field);
  return out;
}

}  // namespace frote::bench
