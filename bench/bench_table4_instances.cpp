// Table 4 (supplement): random vs IP selection with the number of instances
// added (as a fraction of the dataset size) alongside ΔJ̄.
//
// Expected shape: comparable ΔJ̄, but IP generally adds FEWER instances than
// random for the same improvement.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace frote;
  const auto& e = bench::env();
  bench::print_banner(
      "Table 4 — instances added by random vs IP selection",
      "IP achieves comparable ΔJ̄ while adding fewer instances");

  const std::vector<UciDataset> datasets =
      e.full ? std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kCar,
                                       UciDataset::kMushroom,
                                       UciDataset::kAdult,
                                       UciDataset::kWineQuality,
                                       UciDataset::kContraceptive,
                                       UciDataset::kNursery,
                                       UciDataset::kSplice}
             : std::vector<UciDataset>{UciDataset::kBreastCancer,
                                       UciDataset::kCar,
                                       UciDataset::kContraceptive};

  TextTable table({"Dataset", "Model", "dJ (random)", "dJ (IP)",
                   "dIns/|D| (random)", "dIns/|D| (IP)"});
  double total_added_random = 0.0, total_added_ip = 0.0;
  for (UciDataset dataset : datasets) {
    const auto& ctx = bench::context(dataset);
    for (LearnerKind learner : all_learners()) {
      std::vector<double> d_random, d_ip, add_random, add_ip;
      for (auto strategy :
           {SelectionStrategy::kRandom, SelectionStrategy::kIp}) {
        auto config = bench::base_run_config();
        config.selection = strategy;
        const auto outcomes =
            bench::run_many(ctx, learner, config, e.runs, 5100);
        for (const auto& outcome : outcomes) {
          const double dj = outcome.final.j_bar - outcome.initial.j_bar;
          if (strategy == SelectionStrategy::kRandom) {
            d_random.push_back(dj);
            add_random.push_back(outcome.added_frac);
          } else {
            d_ip.push_back(dj);
            add_ip.push_back(outcome.added_frac);
          }
        }
      }
      if (d_random.empty() || d_ip.empty()) continue;
      table.add_row({dataset_info(dataset).name, learner_name(learner),
                     bench::pm(d_random), bench::pm(d_ip),
                     bench::pm(add_random), bench::pm(add_ip)});
      total_added_random += mean_of(add_random);
      total_added_ip += mean_of(add_ip);
    }
  }
  table.print(std::cout);
  std::cout << "\nAggregate added fraction: random=" << total_added_random
            << " vs IP=" << total_added_ip
            << "  (paper: IP generally adds fewer instances)\n";
  return 0;
}
