// Drop-in replacement for GoogleTest's gtest_main: parses --gtest_* flags
// and runs every registered test, returning nonzero on any failure.
#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
