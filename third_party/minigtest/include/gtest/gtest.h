// minigtest — a single-header, dependency-free test runner exposing the
// subset of the GoogleTest API this repository uses, so the suite builds
// and runs with no network access and no system gtest installation.
//
// Supported surface:
//   TEST, TEST_F, TEST_P + INSTANTIATE_TEST_SUITE_P
//   ::testing::Test, ::testing::TestWithParam<T>
//   ::testing::Values / Range / Combine
//   EXPECT_/ASSERT_ {EQ,NE,GT,GE,LT,LE,TRUE,FALSE,NEAR,DOUBLE_EQ,FLOAT_EQ,
//                    THROW,NO_THROW,ANY_THROW}
//   ADD_FAILURE, FAIL, SUCCEED, streaming `<< "context"` on all assertions
//   RUN_ALL_TESTS, InitGoogleTest, --gtest_filter=PATTERN, --gtest_list_tests
//
// Failure reporting matches gtest conventions: `file:line: Failure` followed
// by an expectation message, nonzero process exit code when any test fails.
// The implementation is intentionally small and independent of GoogleTest's.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Test;

namespace internal {

// ---------------------------------------------------------------------------
// Value printing: stream when possible, fall back to enum/byte dumps.
// ---------------------------------------------------------------------------

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string PrintValue(const T& value) {
  std::ostringstream os;
  os << std::boolalpha;
  if constexpr (std::is_same_v<T, std::nullptr_t>) {
    os << "nullptr";
  } else if constexpr (IsStreamable<T>::value) {
    os << value;
  } else if constexpr (std::is_enum_v<T>) {
    os << static_cast<std::underlying_type_t<T>>(value);
  } else {
    os << "<" << sizeof(T) << "-byte object>";
  }
  return os.str();
}

template <typename... Ts>
std::string PrintValue(const std::tuple<Ts...>& value) {
  std::ostringstream os;
  os << "(";
  std::apply(
      [&os](const auto&... elems) {
        const char* sep = "";
        ((os << sep << PrintValue(elems), sep = ", "), ...);
      },
      value);
  os << ")";
  return os.str();
}

template <typename A, typename B>
std::string PrintValue(const std::pair<A, B>& value) {
  return "(" + PrintValue(value.first) + ", " + PrintValue(value.second) + ")";
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Message: ostream-style accumulator streamed onto failed assertions.
// ---------------------------------------------------------------------------

class Message {
 public:
  Message() = default;
  template <typename T>
  Message& operator<<(const T& value) {
    ss_ << internal::PrintValue(value);
    return *this;
  }
  std::string GetString() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

// ---------------------------------------------------------------------------
// AssertionResult: carries success/failure plus an explanation.
// ---------------------------------------------------------------------------

class AssertionResult {
 public:
  explicit AssertionResult(bool success) : success_(success) {}
  explicit operator bool() const { return success_; }
  template <typename T>
  AssertionResult& operator<<(const T& value) {
    message_ += internal::PrintValue(value);
    return *this;
  }
  const std::string& failure_message() const { return message_; }

 private:
  bool success_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

namespace internal {

// ---------------------------------------------------------------------------
// Global unit-test state (header-only via C++17 inline variables).
// ---------------------------------------------------------------------------

struct TestInfo {
  std::string suite;
  std::string name;
  std::function<Test*()> factory;
};

struct UnitTestState {
  std::vector<TestInfo> tests;
  // Type-erased expanders that turn TEST_P patterns × instantiations into
  // concrete TestInfo entries; run once at the top of RUN_ALL_TESTS.
  std::vector<std::function<void(std::vector<TestInfo>&)>> param_expanders;
  bool current_test_failed = false;
  int failed_assertions = 0;
  std::string filter = "*";
  bool list_only = false;
};

inline UnitTestState& State() {
  static UnitTestState state;
  return state;
}

// Simple '*'-wildcard matcher for --gtest_filter (no ':' lists, no '-').
inline bool WildcardMatch(const char* pattern, const char* text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*')
    return WildcardMatch(pattern + 1, text) ||
           (*text != '\0' && WildcardMatch(pattern, text + 1));
  return *pattern == *text && WildcardMatch(pattern + 1, text + 1);
}

inline bool FilterAccepts(const std::string& full_name) {
  const std::string& filter = State().filter;
  // Support ':'-separated positive patterns, the common gtest subset.
  std::size_t start = 0;
  while (start <= filter.size()) {
    std::size_t colon = filter.find(':', start);
    const std::string pat = filter.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start);
    if (!pat.empty() && WildcardMatch(pat.c_str(), full_name.c_str()))
      return true;
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return false;
}

// Registers a concrete (non-parameterized) test at static-init time.
struct TestRegistrar {
  TestRegistrar(const char* suite, const char* name,
                std::function<Test*()> factory) {
    State().tests.push_back({suite, name, std::move(factory)});
  }
};

// Records one assertion failure with gtest-style location formatting.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string message)
      : file_(file), line_(line), message_(std::move(message)) {}
  void operator=(const Message& user_message) const {
    State().current_test_failed = true;
    ++State().failed_assertions;
    std::cout << file_ << ":" << line_ << ": Failure\n" << message_;
    const std::string extra = user_message.GetString();
    if (!extra.empty()) std::cout << "\n" << extra;
    std::cout << "\n" << std::flush;
  }

 private:
  const char* file_;
  int line_;
  std::string message_;
};

// ---------------------------------------------------------------------------
// Comparison helpers (return AssertionResult so macros can stream context).
// ---------------------------------------------------------------------------

#define MINIGTEST_DEFINE_CMP_(helper_name, op, op_text)                       \
  template <typename A, typename B>                                           \
  AssertionResult helper_name(const char* lhs_expr, const char* rhs_expr,     \
                              const A& lhs, const B& rhs) {                   \
    if (lhs op rhs) return AssertionSuccess();                                \
    return AssertionFailure()                                                 \
           << "Expected: (" << lhs_expr << ") " op_text " (" << rhs_expr      \
           << "), actual: " << PrintValue(lhs) << " vs " << PrintValue(rhs);  \
  }

MINIGTEST_DEFINE_CMP_(CmpHelperNE, !=, "!=")
MINIGTEST_DEFINE_CMP_(CmpHelperGT, >, ">")
MINIGTEST_DEFINE_CMP_(CmpHelperGE, >=, ">=")
MINIGTEST_DEFINE_CMP_(CmpHelperLT, <, "<")
MINIGTEST_DEFINE_CMP_(CmpHelperLE, <=, "<=")
#undef MINIGTEST_DEFINE_CMP_

template <typename A, typename B>
AssertionResult CmpHelperEQ(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  if (lhs == rhs) return AssertionSuccess();
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_expr << "\n    Which is: " << PrintValue(lhs)
                            << "\n  " << rhs_expr
                            << "\n    Which is: " << PrintValue(rhs);
}

inline AssertionResult BoolHelper(const char* expr, bool value, bool expected) {
  if (value == expected) return AssertionSuccess();
  return AssertionFailure() << "Value of: " << expr << "\n  Actual: "
                            << (value ? "true" : "false")
                            << "\nExpected: " << (expected ? "true" : "false");
}

// EXPECT_TRUE(some_assertion_result) must also work.
inline AssertionResult BoolHelper(const char* expr,
                                  const AssertionResult& value, bool expected) {
  if (static_cast<bool>(value) == expected) return AssertionSuccess();
  return AssertionFailure() << "Value of: " << expr << "\n  Actual: "
                            << (static_cast<bool>(value) ? "true" : "false")
                            << "\nExpected: " << (expected ? "true" : "false")
                            << (value.failure_message().empty()
                                    ? ""
                                    : "\n" + value.failure_message());
}

inline AssertionResult NearHelper(const char* lhs_expr, const char* rhs_expr,
                                  const char* tol_expr, double lhs, double rhs,
                                  double tolerance) {
  const double diff = std::fabs(lhs - rhs);
  if (diff <= tolerance) return AssertionSuccess();
  return AssertionFailure()
         << "The difference between " << lhs_expr << " and " << rhs_expr
         << " is " << diff << ", which exceeds " << tol_expr << ", where\n"
         << lhs_expr << " evaluates to " << lhs << ",\n"
         << rhs_expr << " evaluates to " << rhs << ", and\n"
         << tol_expr << " evaluates to " << tolerance << ".";
}

// 4-ULP floating-point equality, matching gtest's AlmostEquals contract.
template <typename Float>
bool AlmostEqual(Float lhs, Float rhs) {
  if (std::isnan(lhs) || std::isnan(rhs)) return false;
  if (lhs == rhs) return true;
  using Bits = std::conditional_t<sizeof(Float) == 8, std::uint64_t,
                                  std::uint32_t>;
  constexpr Bits kSignBit = Bits{1} << (sizeof(Bits) * 8 - 1);
  auto biased = [](Float f) {
    Bits b;
    std::memcpy(&b, &f, sizeof(Float));
    return (b & kSignBit) ? ~b + 1 : b | kSignBit;
  };
  const Bits a = biased(lhs), b = biased(rhs);
  const Bits distance = a > b ? a - b : b - a;
  return distance <= 4;
}

template <typename Float>
AssertionResult FloatingEqHelper(const char* lhs_expr, const char* rhs_expr,
                                 Float lhs, Float rhs) {
  if (AlmostEqual(lhs, rhs)) return AssertionSuccess();
  std::ostringstream lhs_os, rhs_os;
  lhs_os.precision(17);
  rhs_os.precision(17);
  lhs_os << lhs;
  rhs_os << rhs;
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_expr << "\n    Which is: " << lhs_os.str()
                            << "\n  " << rhs_expr
                            << "\n    Which is: " << rhs_os.str();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test base classes.
// ---------------------------------------------------------------------------

class Test {
 public:
  virtual ~Test() = default;
  virtual void TestBody() = 0;
  virtual void SetUp() {}
  virtual void TearDown() {}
  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  // The pending-param slot is set by the parameterized-test factory
  // immediately before construction, then copied into the instance.
  TestWithParam() : param_(*PendingParam()) {}
  const T& GetParam() const { return param_; }
  static const T*& PendingParam() {
    static const T* pending = nullptr;
    return pending;
  }

 private:
  T param_;
};

/// Passed to INSTANTIATE_TEST_SUITE_P name generators.
template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& a_param, std::size_t an_index)
      : param(a_param), index(an_index) {}
  T param;
  std::size_t index;
};

namespace internal {

// ---------------------------------------------------------------------------
// Parameterized-test machinery. A ParamRegistry<Suite> collects the TEST_P
// patterns and INSTANTIATE_TEST_SUITE_P value lists for one fixture type;
// RUN_ALL_TESTS expands the cross product into concrete tests.
// ---------------------------------------------------------------------------

template <typename Suite>
class ParamRegistry {
 public:
  using ParamType = typename Suite::ParamType;

  static ParamRegistry& Instance() {
    static ParamRegistry* registry = [] {
      auto* r = new ParamRegistry();
      State().param_expanders.push_back(
          [r](std::vector<TestInfo>& out) { r->Expand(out); });
      return r;
    }();
    return *registry;
  }

  int AddPattern(const char* suite_name, const char* test_name,
                 std::function<Test*(const ParamType&)> factory) {
    patterns_.push_back({suite_name, test_name, std::move(factory)});
    return 0;
  }

  template <typename Generator>
  int AddInstantiation(const char* prefix, const Generator& generator) {
    // Generators convert lazily; the target element type is only known here.
    std::vector<ParamType> values = generator;
    instantiations_.push_back({prefix, std::move(values), nullptr});
    return 0;
  }

  // Four-argument form: custom test-name generator, called with a
  // TestParamInfo<ParamType> and returning const char* or std::string.
  template <typename Generator, typename NameGenerator>
  int AddInstantiation(const char* prefix, const Generator& generator,
                       NameGenerator name_generator) {
    std::vector<ParamType> values = generator;
    instantiations_.push_back(
        {prefix, std::move(values),
         [name_generator](const TestParamInfo<ParamType>& info) {
           return std::string(name_generator(info));
         }});
    return 0;
  }

 private:
  struct Pattern {
    std::string suite;
    std::string name;
    std::function<Test*(const ParamType&)> factory;
  };
  struct Instantiation {
    std::string prefix;
    std::vector<ParamType> values;
    std::function<std::string(const TestParamInfo<ParamType>&)> namer;
  };

  void Expand(std::vector<TestInfo>& out) {
    for (const auto& inst : instantiations_) {
      for (std::size_t i = 0; i < inst.values.size(); ++i) {
        const std::string param_name =
            inst.namer ? inst.namer(TestParamInfo<ParamType>(inst.values[i], i))
                       : std::to_string(i);
        for (const auto& pattern : patterns_) {
          TestInfo info;
          info.suite = inst.prefix + "/" + pattern.suite;
          info.name = pattern.name + "/" + param_name;
          // The param vector outlives the run; capture a stable pointer.
          const ParamType* param = &inst.values[i];
          auto factory = pattern.factory;
          info.factory = [factory, param]() { return factory(*param); };
          out.push_back(std::move(info));
        }
      }
    }
  }

  std::vector<Pattern> patterns_;
  std::vector<Instantiation> instantiations_;
};

// ---------------------------------------------------------------------------
// Value generators. Each supports implicit conversion to std::vector<T> for
// the element type fixed by the instantiated suite, mirroring gtest's lazy
// ParamGenerator conversion.
// ---------------------------------------------------------------------------

template <typename... Ts>
struct ValueArray {
  std::tuple<Ts...> values;
  template <typename T>
  operator std::vector<T>() const {  // NOLINT(google-explicit-constructor)
    std::vector<T> out;
    out.reserve(sizeof...(Ts));
    std::apply(
        [&out](const auto&... vs) { (out.push_back(static_cast<T>(vs)), ...); },
        values);
    return out;
  }
};

template <typename T>
struct RangeGenerator {
  T begin, end, step;
  template <typename U>
  operator std::vector<U>() const {  // NOLINT(google-explicit-constructor)
    std::vector<U> out;
    for (T v = begin; v < end; v = static_cast<T>(v + step))
      out.push_back(static_cast<U>(v));
    return out;
  }
};

template <typename... Generators>
struct CombineGenerator {
  std::tuple<Generators...> generators;

  template <typename... Ts>
  operator std::vector<std::tuple<Ts...>>() const {  // NOLINT
    static_assert(sizeof...(Ts) == sizeof...(Generators),
                  "Combine() arity must match the suite's tuple param");
    const auto pools = std::apply(
        [](const auto&... gens) {
          return std::make_tuple(static_cast<std::vector<Ts>>(gens)...);
        },
        generators);
    std::vector<std::tuple<Ts...>> out;
    CartesianProduct(pools, out, std::index_sequence_for<Ts...>{});
    return out;
  }

 private:
  template <typename Pools, typename Tuple, std::size_t... Is>
  static void CartesianProduct(const Pools& pools, std::vector<Tuple>& out,
                               std::index_sequence<Is...>) {
    std::size_t total = 1;
    ((total *= std::get<Is>(pools).size()), ...);
    out.reserve(total);
    for (std::size_t flat = 0; flat < total; ++flat) {
      std::size_t remainder = flat;
      Tuple item;
      // Fill from the last axis to the first so the first axis varies
      // slowest, matching gtest's Combine enumeration order.
      (void)std::initializer_list<int>{
          (FillAxis<sizeof...(Is) - 1 - Is>(pools, item, remainder), 0)...};
      out.push_back(item);
    }
  }

  template <std::size_t Axis, typename Pools, typename Tuple>
  static void FillAxis(const Pools& pools, Tuple& item,
                       std::size_t& remainder) {
    const auto& pool = std::get<Axis>(pools);
    std::get<Axis>(item) = pool[remainder % pool.size()];
    remainder /= pool.size();
  }
};

}  // namespace internal

template <typename... Ts>
internal::ValueArray<Ts...> Values(Ts... values) {
  return {std::make_tuple(values...)};
}

template <typename T>
internal::RangeGenerator<T> Range(T begin, T end) {
  return {begin, end, T{1}};
}

template <typename T>
internal::RangeGenerator<T> Range(T begin, T end, T step) {
  return {begin, end, step};
}

inline internal::ValueArray<bool, bool> Bool() {
  return {std::make_tuple(false, true)};
}

template <typename... Generators>
internal::CombineGenerator<Generators...> Combine(Generators... generators) {
  return {std::make_tuple(generators...)};
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

inline void InitGoogleTest(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string filter_prefix = "--gtest_filter=";
    if (arg.rfind(filter_prefix, 0) == 0) {
      internal::State().filter = arg.substr(filter_prefix.size());
    } else if (arg == "--gtest_list_tests") {
      internal::State().list_only = true;
    } else if (arg.rfind("--gtest_", 0) == 0) {
      // Unsupported gtest flags (shuffle, color, …) are accepted and ignored.
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void InitGoogleTest() {}

inline int RunAllTests() {
  auto& state = internal::State();
  for (const auto& expand : state.param_expanders) expand(state.tests);
  state.param_expanders.clear();

  std::vector<const internal::TestInfo*> selected;
  for (const auto& test : state.tests) {
    if (internal::FilterAccepts(test.suite + "." + test.name))
      selected.push_back(&test);
  }

  if (state.list_only) {
    std::string last_suite;
    for (const auto* test : selected) {
      if (test->suite != last_suite) {
        std::cout << test->suite << ".\n";
        last_suite = test->suite;
      }
      std::cout << "  " << test->name << "\n";
    }
    return 0;
  }

  std::printf("[==========] Running %zu tests.\n", selected.size());
  std::vector<std::string> failed;
  for (const auto* test : selected) {
    const std::string full_name = test->suite + "." + test->name;
    std::printf("[ RUN      ] %s\n", full_name.c_str());
    state.current_test_failed = false;
    try {
      std::unique_ptr<Test> instance(test->factory());
      // Match GoogleTest semantics: a throwing SetUp skips the body, but
      // TearDown always runs so fixture cleanup is never leaked.
      try {
        instance->SetUp();
        instance->TestBody();
      } catch (const std::exception& e) {
        state.current_test_failed = true;
        std::printf("unexpected exception: %s\n", e.what());
      } catch (...) {
        state.current_test_failed = true;
        std::printf("unexpected non-std exception\n");
      }
      try {
        instance->TearDown();
      } catch (const std::exception& e) {
        state.current_test_failed = true;
        std::printf("unexpected exception in TearDown: %s\n", e.what());
      } catch (...) {
        state.current_test_failed = true;
        std::printf("unexpected non-std exception in TearDown\n");
      }
    } catch (const std::exception& e) {
      state.current_test_failed = true;
      std::printf("unexpected exception constructing fixture: %s\n", e.what());
    } catch (...) {
      state.current_test_failed = true;
      std::printf("unexpected non-std exception constructing fixture\n");
    }
    if (state.current_test_failed) {
      failed.push_back(full_name);
      std::printf("[  FAILED  ] %s\n", full_name.c_str());
    } else {
      std::printf("[       OK ] %s\n", full_name.c_str());
    }
  }
  std::printf("[==========] %zu tests ran.\n", selected.size());
  std::printf("[  PASSED  ] %zu tests.\n", selected.size() - failed.size());
  if (!failed.empty()) {
    std::printf("[  FAILED  ] %zu tests, listed below:\n", failed.size());
    for (const auto& name : failed)
      std::printf("[  FAILED  ] %s\n", name.c_str());
  }
  return failed.empty() ? 0 : 1;
}

}  // namespace testing

inline int RUN_ALL_TESTS() { return ::testing::RunAllTests(); }

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

#define GTEST_TEST_CLASS_NAME_(suite, name) suite##_##name##_Test

// Blocks a dangling `else` from binding to the assertion's internal `if`.
#define MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                              \
  case 0:                                 \
  default:

#define MINIGTEST_MESSAGE_AT_(message) \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, message) = \
      ::testing::Message()

#define MINIGTEST_NONFATAL_(message) MINIGTEST_MESSAGE_AT_(message)
#define MINIGTEST_FATAL_(message) return MINIGTEST_MESSAGE_AT_(message)

#define MINIGTEST_ASSERT_(expression, on_failure)                   \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_                                 \
  if (const ::testing::AssertionResult gtest_ar = (expression)) {   \
  } else /* NOLINT */                                               \
    on_failure(gtest_ar.failure_message())

#define MINIGTEST_CMP_(helper, lhs, rhs, on_failure) \
  MINIGTEST_ASSERT_(                                 \
      ::testing::internal::helper(#lhs, #rhs, (lhs), (rhs)), on_failure)

#define EXPECT_EQ(lhs, rhs) MINIGTEST_CMP_(CmpHelperEQ, lhs, rhs, MINIGTEST_NONFATAL_)
#define EXPECT_NE(lhs, rhs) MINIGTEST_CMP_(CmpHelperNE, lhs, rhs, MINIGTEST_NONFATAL_)
#define EXPECT_GT(lhs, rhs) MINIGTEST_CMP_(CmpHelperGT, lhs, rhs, MINIGTEST_NONFATAL_)
#define EXPECT_GE(lhs, rhs) MINIGTEST_CMP_(CmpHelperGE, lhs, rhs, MINIGTEST_NONFATAL_)
#define EXPECT_LT(lhs, rhs) MINIGTEST_CMP_(CmpHelperLT, lhs, rhs, MINIGTEST_NONFATAL_)
#define EXPECT_LE(lhs, rhs) MINIGTEST_CMP_(CmpHelperLE, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_EQ(lhs, rhs) MINIGTEST_CMP_(CmpHelperEQ, lhs, rhs, MINIGTEST_FATAL_)
#define ASSERT_NE(lhs, rhs) MINIGTEST_CMP_(CmpHelperNE, lhs, rhs, MINIGTEST_FATAL_)
#define ASSERT_GT(lhs, rhs) MINIGTEST_CMP_(CmpHelperGT, lhs, rhs, MINIGTEST_FATAL_)
#define ASSERT_GE(lhs, rhs) MINIGTEST_CMP_(CmpHelperGE, lhs, rhs, MINIGTEST_FATAL_)
#define ASSERT_LT(lhs, rhs) MINIGTEST_CMP_(CmpHelperLT, lhs, rhs, MINIGTEST_FATAL_)
#define ASSERT_LE(lhs, rhs) MINIGTEST_CMP_(CmpHelperLE, lhs, rhs, MINIGTEST_FATAL_)

#define EXPECT_TRUE(condition)                                               \
  MINIGTEST_ASSERT_(::testing::internal::BoolHelper(#condition, (condition), \
                                                    true),                   \
                    MINIGTEST_NONFATAL_)
#define EXPECT_FALSE(condition)                                              \
  MINIGTEST_ASSERT_(::testing::internal::BoolHelper(#condition, (condition), \
                                                    false),                  \
                    MINIGTEST_NONFATAL_)
#define ASSERT_TRUE(condition)                                               \
  MINIGTEST_ASSERT_(::testing::internal::BoolHelper(#condition, (condition), \
                                                    true),                   \
                    MINIGTEST_FATAL_)
#define ASSERT_FALSE(condition)                                              \
  MINIGTEST_ASSERT_(::testing::internal::BoolHelper(#condition, (condition), \
                                                    false),                  \
                    MINIGTEST_FATAL_)

#define EXPECT_NEAR(lhs, rhs, tolerance)                                    \
  MINIGTEST_ASSERT_(::testing::internal::NearHelper(                        \
                        #lhs, #rhs, #tolerance, (lhs), (rhs), (tolerance)), \
                    MINIGTEST_NONFATAL_)
#define ASSERT_NEAR(lhs, rhs, tolerance)                                    \
  MINIGTEST_ASSERT_(::testing::internal::NearHelper(                        \
                        #lhs, #rhs, #tolerance, (lhs), (rhs), (tolerance)), \
                    MINIGTEST_FATAL_)

#define EXPECT_DOUBLE_EQ(lhs, rhs)                                        \
  MINIGTEST_ASSERT_(::testing::internal::FloatingEqHelper<double>(        \
                        #lhs, #rhs, (lhs), (rhs)),                        \
                    MINIGTEST_NONFATAL_)
#define ASSERT_DOUBLE_EQ(lhs, rhs)                                        \
  MINIGTEST_ASSERT_(::testing::internal::FloatingEqHelper<double>(        \
                        #lhs, #rhs, (lhs), (rhs)),                        \
                    MINIGTEST_FATAL_)
#define EXPECT_FLOAT_EQ(lhs, rhs)                                         \
  MINIGTEST_ASSERT_(::testing::internal::FloatingEqHelper<float>(         \
                        #lhs, #rhs, (lhs), (rhs)),                        \
                    MINIGTEST_NONFATAL_)
#define ASSERT_FLOAT_EQ(lhs, rhs)                                         \
  MINIGTEST_ASSERT_(::testing::internal::FloatingEqHelper<float>(         \
                        #lhs, #rhs, (lhs), (rhs)),                        \
                    MINIGTEST_FATAL_)

#define MINIGTEST_THROW_(statement, expected_exception, on_failure)           \
  MINIGTEST_ASSERT_(                                                          \
      [&]() -> ::testing::AssertionResult {                                   \
        try {                                                                 \
          statement;                                                          \
        } catch (const expected_exception&) {                                 \
          return ::testing::AssertionSuccess();                               \
        } catch (...) {                                                       \
          return ::testing::AssertionFailure()                                \
                 << "Expected: " #statement " throws " #expected_exception    \
                    ".\n  Actual: it throws a different type.";               \
        }                                                                     \
        return ::testing::AssertionFailure()                                  \
               << "Expected: " #statement " throws " #expected_exception      \
                  ".\n  Actual: it throws nothing.";                          \
      }(),                                                                    \
      on_failure)

#define EXPECT_THROW(statement, expected_exception) \
  MINIGTEST_THROW_(statement, expected_exception, MINIGTEST_NONFATAL_)
#define ASSERT_THROW(statement, expected_exception) \
  MINIGTEST_THROW_(statement, expected_exception, MINIGTEST_FATAL_)

#define MINIGTEST_NO_THROW_(statement, on_failure)                            \
  MINIGTEST_ASSERT_(                                                          \
      [&]() -> ::testing::AssertionResult {                                   \
        try {                                                                 \
          statement;                                                          \
        } catch (const std::exception& e) {                                   \
          return ::testing::AssertionFailure()                                \
                 << "Expected: " #statement " doesn't throw.\n  Actual: it "  \
                    "throws "                                                 \
                 << e.what();                                                 \
        } catch (...) {                                                       \
          return ::testing::AssertionFailure()                                \
                 << "Expected: " #statement " doesn't throw.\n  Actual: it "  \
                    "throws.";                                                \
        }                                                                     \
        return ::testing::AssertionSuccess();                                 \
      }(),                                                                    \
      on_failure)

#define EXPECT_NO_THROW(statement) \
  MINIGTEST_NO_THROW_(statement, MINIGTEST_NONFATAL_)
#define ASSERT_NO_THROW(statement) \
  MINIGTEST_NO_THROW_(statement, MINIGTEST_FATAL_)

#define MINIGTEST_ANY_THROW_(statement, on_failure)                           \
  MINIGTEST_ASSERT_(                                                          \
      [&]() -> ::testing::AssertionResult {                                   \
        try {                                                                 \
          statement;                                                          \
        } catch (...) {                                                       \
          return ::testing::AssertionSuccess();                               \
        }                                                                     \
        return ::testing::AssertionFailure()                                  \
               << "Expected: " #statement " throws.\n  Actual: it throws "    \
                  "nothing.";                                                 \
      }(),                                                                    \
      on_failure)

#define EXPECT_ANY_THROW(statement) \
  MINIGTEST_ANY_THROW_(statement, MINIGTEST_NONFATAL_)
#define ASSERT_ANY_THROW(statement) \
  MINIGTEST_ANY_THROW_(statement, MINIGTEST_FATAL_)

#define ADD_FAILURE() MINIGTEST_NONFATAL_("Failed")
#define FAIL() MINIGTEST_FATAL_("Failed")
#define SUCCEED() \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_ if (true) {} else ::testing::Message()

// ---------------------------------------------------------------------------
// Test definition macros.
// ---------------------------------------------------------------------------

#define MINIGTEST_TEST_(suite, name, parent)                                 \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public parent {                \
   public:                                                                   \
    void TestBody() override;                                                \
   private:                                                                  \
    static const ::testing::internal::TestRegistrar registrar_;              \
  };                                                                         \
  const ::testing::internal::TestRegistrar GTEST_TEST_CLASS_NAME_(           \
      suite, name)::registrar_(#suite, #name, []() -> ::testing::Test* {     \
    return new GTEST_TEST_CLASS_NAME_(suite, name)();                        \
  });                                                                        \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)
#define GTEST_TEST(suite, name) TEST(suite, name)

#define TEST_P(suite, name)                                                   \
  class GTEST_TEST_CLASS_NAME_(suite, name) : public suite {                  \
   public:                                                                    \
    void TestBody() override;                                                 \
   private:                                                                   \
    static const int registered_;                                             \
  };                                                                          \
  const int GTEST_TEST_CLASS_NAME_(suite, name)::registered_ =                \
      ::testing::internal::ParamRegistry<suite>::Instance().AddPattern(       \
          #suite, #name,                                                      \
          [](const suite::ParamType& param) -> ::testing::Test* {             \
            suite::PendingParam() = &param;                                   \
            return new GTEST_TEST_CLASS_NAME_(suite, name)();                 \
          });                                                                 \
  void GTEST_TEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                          \
  static const int gtest_inst_##prefix##_##suite##_ =                         \
      ::testing::internal::ParamRegistry<suite>::Instance().AddInstantiation( \
          #prefix, __VA_ARGS__)
// Legacy gtest spelling.
#define INSTANTIATE_TEST_CASE_P(prefix, suite, ...) \
  INSTANTIATE_TEST_SUITE_P(prefix, suite, __VA_ARGS__)
