// minibenchmark — a single-header, dependency-free stand-in for the subset
// of the Google Benchmark API used by bench/bench_micro.cpp, selected at
// configure time when no system google-benchmark library is installed.
//
// Supported surface:
//   benchmark::State (range-for timing loop, range(), iterations(),
//                     SetItemsProcessed, SetBytesProcessed, SetLabel,
//                     PauseTiming, ResumeTiming)
//   benchmark::DoNotOptimize, benchmark::ClobberMemory
//   BENCHMARK(fn)->Arg(n)->Unit(...)   (Unit/Threads/etc. accepted, ignored)
//   BENCHMARK_MAIN()
//   --benchmark_format=console|json and --benchmark_out=<file> (the JSON
//   mirrors google-benchmark's schema subset: name/iterations/real_time/
//   cpu_time/time_unit/label — enough for bench/dump_bench_json.sh trends)
//   --benchmark_filter=<regex> (partial match against the run name, same as
//   google-benchmark — bench/dump_bench_json.sh uses it for the
//   FROTE_BENCH_THREADS sweep so either runner serves the filtered legs)
//
// Timing model: each (benchmark, arg) pair is calibrated with a short probe
// run, then iterated until ~MINIBENCH_MIN_TIME seconds (env, default 0.2)
// elapse; mean wall-clock ns/op is reported in a google-benchmark-style
// console table. No statistical repetitions — this is a smoke-and-trend
// harness, not a variance-controlled lab.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <regex>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

class State {
 public:
  State(std::vector<std::int64_t> args, std::int64_t max_iterations)
      : args_(std::move(args)), max_iterations_(max_iterations) {}

  std::int64_t range(std::size_t index = 0) const {
    return index < args_.size() ? args_[index] : 0;
  }
  std::int64_t iterations() const { return max_iterations_; }

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  void SetLabel(const std::string& label) { label_ = label; }
  void PauseTiming() { pause_started_ = Clock::now(); }
  void ResumeTiming() { paused_ns_ += NsSince(pause_started_); }

  std::int64_t items_processed() const { return items_processed_; }
  std::int64_t bytes_processed() const { return bytes_processed_; }
  const std::string& label() const { return label_; }
  /// Total measured nanoseconds (pauses excluded); valid after the loop.
  std::int64_t elapsed_ns() const { return elapsed_ns_ - paused_ns_; }

  // Range-for protocol: `for (auto _ : state)` runs max_iterations_ times
  // and brackets the loop with wall-clock timestamps.
  struct Item {};
  class iterator {
   public:
    iterator(State* state, std::int64_t remaining)
        : state_(state), remaining_(remaining) {}
    Item operator*() const { return {}; }
    iterator& operator++() {
      --remaining_;
      return *this;
    }
    bool operator!=(const iterator&) {
      if (remaining_ > 0) return true;
      state_->FinishTiming();
      return false;
    }

   private:
    State* state_;
    std::int64_t remaining_;
  };

  iterator begin() {
    StartTiming();
    return iterator(this, max_iterations_);
  }
  iterator end() { return iterator(this, 0); }

 private:
  using Clock = std::chrono::steady_clock;

  static std::int64_t NsSince(Clock::time_point start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start)
        .count();
  }

  void StartTiming() {
    paused_ns_ = 0;
    loop_started_ = Clock::now();
  }
  void FinishTiming() { elapsed_ns_ = NsSince(loop_started_); }

  std::vector<std::int64_t> args_;
  std::int64_t max_iterations_;
  std::int64_t items_processed_ = 0;
  std::int64_t bytes_processed_ = 0;
  std::string label_;
  Clock::time_point loop_started_{};
  Clock::time_point pause_started_{};
  std::int64_t elapsed_ns_ = 0;
  std::int64_t paused_ns_ = 0;
};

namespace internal {

using Function = void(State&);

class Benchmark {
 public:
  Benchmark(const char* name, Function* fn) : name_(name), fn_(fn) {}

  Benchmark* Arg(std::int64_t value) {
    arg_lists_.push_back({value});
    return this;
  }
  Benchmark* Args(const std::vector<std::int64_t>& values) {
    arg_lists_.push_back(values);
    return this;
  }
  Benchmark* Range(std::int64_t lo, std::int64_t hi) {
    // Multiplicative sweep that, like google-benchmark, always includes the
    // endpoint and tolerates lo == 0.
    std::int64_t v = lo;
    while (v < hi) {
      arg_lists_.push_back({v});
      v = v <= 0 ? 1 : v * 8;
    }
    arg_lists_.push_back({hi});
    return this;
  }
  /// Display-name override (google-benchmark's ->Name()): lets one function
  /// register size-parameterised runs under an established baseline name.
  Benchmark* Name(const std::string& name) {
    name_ = name;
    return this;
  }
  /// google-benchmark's ->Apply(): hand the registration to a function that
  /// adds args programmatically (e.g. environment-gated scale points).
  Benchmark* Apply(void (*custom_arguments)(Benchmark*)) {
    custom_arguments(this);
    return this;
  }
  // Accepted-and-ignored tuning knobs, for source compatibility.
  Benchmark* Unit(TimeUnit) { return this; }
  Benchmark* Threads(int) { return this; }
  Benchmark* Repetitions(int) { return this; }
  Benchmark* Iterations(std::int64_t) { return this; }
  Benchmark* MinTime(double) { return this; }

  const std::string& name() const { return name_; }
  Function* fn() const { return fn_; }
  /// Argument tuples to run; a benchmark with no Arg() runs once, arg-less.
  std::vector<std::vector<std::int64_t>> runs() const {
    return arg_lists_.empty()
               ? std::vector<std::vector<std::int64_t>>{{}}
               : arg_lists_;
  }

 private:
  std::string name_;
  Function* fn_;
  std::vector<std::vector<std::int64_t>> arg_lists_;
};

inline std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> registry;
  return registry;
}

inline Benchmark* RegisterBenchmarkInternal(Benchmark* bench) {
  Registry().push_back(bench);
  return bench;
}

inline std::string RunName(const Benchmark& bench,
                           const std::vector<std::int64_t>& args) {
  std::string name = bench.name();
  for (const auto arg : args) name += "/" + std::to_string(arg);
  return name;
}

struct RunResult {
  std::string name;
  double ns_per_op = 0.0;
  std::int64_t iterations = 0;
  std::string label;
};

/// Output options parsed from argv by Initialize(); the same two flags the
/// real google-benchmark accepts, so callers (bench/dump_bench_json.sh) work
/// against either implementation.
struct OutputOptions {
  std::string format = "console";  // "console" or "json"
  std::string out_path;            // when set, JSON is also written here
  std::string filter;              // regex; empty = run everything
};

inline OutputOptions& Options() {
  static OutputOptions options;
  return options;
}

inline std::string JsonEscape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

inline void WriteJson(std::FILE* file, const std::vector<RunResult>& results) {
  std::fprintf(file,
               "{\n  \"context\": {\"library\": \"minibenchmark\"},\n"
               "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(file,
                 "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                 "\"iterations\": %lld, \"real_time\": %.1f, "
                 "\"cpu_time\": %.1f, \"time_unit\": \"ns\", "
                 "\"label\": \"%s\"}%s\n",
                 JsonEscape(r.name).c_str(),
                 static_cast<long long>(r.iterations), r.ns_per_op,
                 r.ns_per_op, JsonEscape(r.label).c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
}

}  // namespace internal

inline void Initialize(int* argc, char** argv) {
  if (argc == nullptr || argv == nullptr) return;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string format_flag = "--benchmark_format=";
    const std::string out_flag = "--benchmark_out=";
    const std::string filter_flag = "--benchmark_filter=";
    if (arg.rfind(format_flag, 0) == 0) {
      internal::Options().format = arg.substr(format_flag.size());
    } else if (arg.rfind(out_flag, 0) == 0) {
      internal::Options().out_path = arg.substr(out_flag.size());
    } else if (arg.rfind(filter_flag, 0) == 0) {
      internal::Options().filter = arg.substr(filter_flag.size());
    }
  }
}

inline int RunSpecifiedBenchmarks() {
  const char* min_time_env = std::getenv("MINIBENCH_MIN_TIME");
  const double min_time_s = min_time_env ? std::atof(min_time_env) : 0.2;
  const bool console = internal::Options().format != "json";

  if (console) {
    std::printf("%-40s %15s %12s %s\n", "Benchmark", "Time/op (ns)",
                "Iterations", "Label");
    std::printf("%s\n", std::string(80, '-').c_str());
  }
  std::vector<internal::RunResult> results;
  // Partial-match filter, same semantics as google-benchmark's
  // --benchmark_filter.
  const std::string& filter = internal::Options().filter;
  std::regex filter_re;
  if (!filter.empty()) {
    try {
      filter_re = std::regex(filter);
    } catch (const std::regex_error&) {
      std::fprintf(stderr, "minibenchmark: bad --benchmark_filter=%s\n",
                   filter.c_str());
      return 1;
    }
  }
  for (const auto* bench : internal::Registry()) {
    for (const auto& args : bench->runs()) {
      if (!filter.empty() &&
          !std::regex_search(internal::RunName(*bench, args), filter_re)) {
        continue;
      }
      // Calibration probe: one iteration to estimate per-op cost.
      State probe(args, 1);
      bench->fn()(probe);
      const double probe_ns =
          std::max<std::int64_t>(probe.elapsed_ns(), 1);
      const auto iterations = static_cast<std::int64_t>(std::clamp(
          min_time_s * 1e9 / probe_ns, 1.0, 100000000.0));

      State state(args, iterations);
      bench->fn()(state);
      const double ns_per_op =
          static_cast<double>(state.elapsed_ns()) /
          static_cast<double>(iterations);
      results.push_back({internal::RunName(*bench, args), ns_per_op,
                         iterations, state.label()});
      if (console) {
        std::printf("%-40s %15.1f %12lld %s\n",
                    internal::RunName(*bench, args).c_str(), ns_per_op,
                    static_cast<long long>(iterations),
                    state.label().c_str());
      }
    }
  }
  if (!console) internal::WriteJson(stdout, results);
  if (!internal::Options().out_path.empty()) {
    std::FILE* file =
        std::fopen(internal::Options().out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "minibenchmark: cannot open --benchmark_out=%s\n",
                   internal::Options().out_path.c_str());
      return 1;
    }
    internal::WriteJson(file, results);
    std::fclose(file);
  }
  return 0;
}

inline void Shutdown() {}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT_(a, b) a##b
#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT_(a, b)

#define BENCHMARK(fn)                                                     \
  static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_CONCAT(      \
      minibench_reg_, __LINE__) =                                         \
      ::benchmark::internal::RegisterBenchmarkInternal(                   \
          new ::benchmark::internal::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                          \
  int main(int argc, char** argv) {               \
    ::benchmark::Initialize(&argc, argv);         \
    return ::benchmark::RunSpecifiedBenchmarks(); \
  }
