#include "frote/baselines/overlay.hpp"

#include <algorithm>
#include <cmath>

namespace frote {

OverlayModel::OverlayModel(const Model& base, FeedbackRuleSet frs,
                           OverlayMode mode, const Schema& schema)
    : Model(base.num_classes()), base_(&base), frs_(std::move(frs)),
      mode_(mode), schema_(&schema) {}

std::vector<double> OverlayModel::transform_into(std::span<const double> row,
                                                 const Clause& target) const {
  std::vector<double> out(row.begin(), row.end());
  for (std::size_t f = 0; f < out.size(); ++f) {
    if (!target.mentions(f)) continue;
    const auto c = target.constraint_for(f, *schema_);
    if (schema_->feature(f).is_categorical()) {
      const auto code = static_cast<std::size_t>(out[f]);
      const bool denied =
          std::find(c.denied.begin(), c.denied.end(), code) != c.denied.end();
      if (c.allowed.has_value()) {
        out[f] = static_cast<double>(*c.allowed);
      } else if (denied) {
        // Smallest permitted code (deterministic minimal edit).
        for (std::size_t alt = 0; alt < schema_->feature(f).cardinality();
             ++alt) {
          if (std::find(c.denied.begin(), c.denied.end(), alt) ==
              c.denied.end()) {
            out[f] = static_cast<double>(alt);
            break;
          }
        }
      }
    } else {
      if (c.pinned.has_value()) {
        out[f] = *c.pinned;
        continue;
      }
      double lo = c.lo, hi = c.hi;
      const double span =
          (std::isfinite(lo) && std::isfinite(hi)) ? hi - lo : 1.0;
      const double eps = std::max(1e-9, std::abs(span) * 1e-6);
      if (std::isfinite(lo) && c.lo_open) lo += eps;
      if (std::isfinite(hi) && c.hi_open) hi -= eps;
      if (std::isfinite(lo) && out[f] < lo) out[f] = lo;
      if (std::isfinite(hi) && out[f] > hi) out[f] = hi;
    }
  }
  return out;
}

int OverlayModel::patch_rule(std::span<const double> row) const {
  // Feedback clauses take precedence over provenance (retraction) regions:
  // a row covered by any feedback rule must get that rule's outcome even if
  // another rule's provenance also matches.
  for (std::size_t r = 0; r < frs_.size(); ++r) {
    if (frs_.rule(r).covers(row)) return static_cast<int>(r);
  }
  if (mode_ == OverlayMode::kHard) {
    for (std::size_t r = 0; r < frs_.size(); ++r) {
      const auto& rule = frs_.rule(r);
      if (rule.provenance.has_value() && rule.provenance->satisfies(row)) {
        return static_cast<int>(r);
      }
    }
  }
  return -1;
}

int OverlayModel::retracted_class(std::span<const double> row,
                                  int rule_class) const {
  // The original rule's outcome no longer applies here: for binary problems
  // the complement; for multiclass, the model's best class other than the
  // rule's (Overlay itself is presented for binary classification).
  if (num_classes() == 2) return 1 - rule_class;
  auto proba = base_->predict_proba(row);
  proba[static_cast<std::size_t>(rule_class)] = -1.0;
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

int OverlayModel::predict(std::span<const double> row) const {
  const int covering = patch_rule(row);
  if (covering < 0) return base_->predict(row);
  const auto& rule = frs_.rule(static_cast<std::size_t>(covering));
  if (mode_ == OverlayMode::kHard) {
    // Hard constraints: the modified rule set is enforced verbatim.
    if (rule.covers(row)) return rule.pi.mode();
    // Provenance-only region: the old rule was retracted.
    return retracted_class(row, rule.pi.mode());
  }
  // Soft constraints: predict on the instance mapped into the original-rule
  // region. Without provenance there is no transformation to apply.
  if (!rule.provenance.has_value()) return base_->predict(row);
  const auto transformed = transform_into(row, *rule.provenance);
  return base_->predict(transformed);
}

std::vector<double> OverlayModel::predict_proba(
    std::span<const double> row) const {
  const int covering = patch_rule(row);
  if (covering < 0) return base_->predict_proba(row);
  const auto& rule = frs_.rule(static_cast<std::size_t>(covering));
  if (mode_ == OverlayMode::kHard) {
    if (rule.covers(row)) return rule.pi.probs();
    std::vector<double> proba(num_classes(), 0.0);
    proba[static_cast<std::size_t>(retracted_class(row, rule.pi.mode()))] =
        1.0;
    return proba;
  }
  if (!rule.provenance.has_value()) return base_->predict_proba(row);
  return base_->predict_proba(transform_into(row, *rule.provenance));
}

}  // namespace frote
