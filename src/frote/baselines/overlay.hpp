// Overlay (Daly et al. 2021) — the state-of-the-art post-processing baseline
// FROTE is compared against (§5.2, Tables 2/7/8).
//
// Overlay leaves the underlying model untouched and patches predictions.
// Each feedback rule carries a provenance clause (the original model-
// explanation rule the user modified); Overlay's patch is the transformation
// between that original region and the feedback region:
//  - Hard Constraints: the modified rule set is enforced verbatim on the
//    whole transformation pair region. Instances satisfying the feedback
//    clause get the rule's class; instances that satisfy the ORIGINAL
//    (provenance) clause but no longer satisfy the modified rule have had
//    their old outcome *retracted* — they get the complementary outcome
//    (binary datasets; Overlay is presented for binary classification).
//    Because that retraction region lies outside cov(F), hard patching
//    performs "very poorly on the outside coverage population" when the
//    feedback diverges from the model — the failure mode of Tables 2/7/8.
//  - Soft Constraints: instances covered by a feedback clause are
//    *transformed* into the provenance region — where the model already
//    behaves as the user intends — and the model prediction on the
//    transformed instance is returned. Instances outside feedback coverage
//    are untouched, so soft patching cannot hurt outside-coverage F1.
// Instances covered by no rule get the plain model prediction.
#pragma once

#include "frote/ml/model.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

enum class OverlayMode { kSoft, kHard };

class OverlayModel : public Model {
 public:
  /// Wraps `base` (not owned; must outlive the overlay).
  OverlayModel(const Model& base, FeedbackRuleSet frs, OverlayMode mode,
               const Schema& schema);

  std::vector<double> predict_proba(std::span<const double> row) const override;
  int predict(std::span<const double> row) const override;

 private:
  /// Index of the first rule whose patch applies to `row`, or -1.
  int patch_rule(std::span<const double> row) const;

  /// Outcome for a provenance-only instance whose old rule was retracted.
  int retracted_class(std::span<const double> row, int rule_class) const;

  /// Project `row` into the region of `target` (minimal per-feature edits:
  /// pin '=' values, clamp into numeric windows, remap denied categories).
  std::vector<double> transform_into(std::span<const double> row,
                                     const Clause& target) const;

  const Model* base_;
  FeedbackRuleSet frs_;
  OverlayMode mode_;
  const Schema* schema_;
};

}  // namespace frote
