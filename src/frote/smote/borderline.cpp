#include "frote/smote/borderline.hpp"

#include "frote/util/parallel.hpp"

namespace frote {

std::vector<InstanceKind> categorize_instances(const Dataset& data,
                                               const Model& model,
                                               const BorderlineConfig& config) {
  FROTE_CHECK(!data.empty());
  const auto pred = model.predict_all(data, config.threads);
  const MixedDistance distance = MixedDistance::fit(data);
  const auto knn = make_knn_index(data, distance);

  std::vector<InstanceKind> kinds(data.size(), InstanceKind::kSafe);
  const std::size_t k = std::min(config.k, data.size() - 1);
  if (k == 0) return kinds;
  // Every instance is categorised from its own neighbourhood only, so the
  // sweep fans out over fixed chunks without affecting the result.
  parallel_for(data.size(), 16, config.threads, [&](std::size_t begin,
                                                    std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      auto neighbors = knn->query(data.row(i), k + 1);
      std::size_t same = 0, diff = 0;
      for (const auto& nb : neighbors) {
        const std::size_t j = knn->dataset_index(nb.index);
        if (j == i) continue;  // skip self
        if (same + diff == k) break;
        (pred[j] == pred[i] ? same : diff) += 1;
      }
      // Han et al. thresholds: noisy when (almost) all neighbours disagree,
      // borderline when the split is near-even, safe otherwise.
      if (diff == same + diff) {
        kinds[i] = InstanceKind::kNoisy;
      } else if (2 * diff >= same + diff) {  // q ≈ p or q > p (but not all)
        kinds[i] = InstanceKind::kBorderline;
      } else {
        kinds[i] = InstanceKind::kSafe;
      }
    }
  });
  return kinds;
}

std::vector<double> borderline_weights(const Dataset& data, const Model& model,
                                       const BorderlineConfig& config) {
  const auto kinds = categorize_instances(data, model, config);
  std::vector<double> weights(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    weights[i] = kinds[i] == InstanceKind::kBorderline
                     ? config.borderline_weight
                     : config.other_weight;
  }
  return weights;
}

}  // namespace frote
