// Classic SMOTE / SMOTE-NC oversampling (Chawla et al. 2002).
//
// Included both as the historical baseline FROTE builds on and as a usable
// imbalance tool: minority base instances are combined with one of their k
// nearest minority neighbours; numeric attributes interpolate uniformly
// along the segment (eq. 6), categorical attributes take the majority value
// among the neighbours (SMOTE-NC).
#pragma once

#include "frote/data/dataset.hpp"
#include "frote/knn/knn.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct SmoteConfig {
  std::size_t k = 5;  // the paper's setting (following Chawla/Han)
  /// Oversampling amount in percent of the minority class size (SMOTE's N):
  /// 200 ⇒ two synthetic instances per minority instance.
  std::size_t amount_percent = 100;
  std::uint64_t seed = 42;
};

/// One SMOTE-NC interpolation between `base` and `neighbor` (no rule
/// constraints — FROTE's constrained variant lives in core/generate.*).
/// `neighbor_rows` are the k neighbour rows used for categorical majority
/// votes.
std::vector<double> smote_nc_interpolate(
    std::span<const double> base,
    std::span<const double> neighbor,
    const std::vector<std::span<const double>>& neighbor_rows,
    const Schema& schema, Rng& rng);

/// Oversample class `minority_class` of `data`; returns only the synthetic
/// instances (label = minority_class).
Dataset smote_oversample(const Dataset& data, int minority_class,
                         const SmoteConfig& config = {});

}  // namespace frote
