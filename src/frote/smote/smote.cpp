#include "frote/smote/smote.hpp"

#include <algorithm>
#include <map>

namespace frote {

std::vector<double> smote_nc_interpolate(
    std::span<const double> base, std::span<const double> neighbor,
    const std::vector<std::span<const double>>& neighbor_rows,
    const Schema& schema, Rng& rng) {
  std::vector<double> out(base.size());
  for (std::size_t f = 0; f < base.size(); ++f) {
    const auto& spec = schema.feature(f);
    if (spec.is_categorical()) {
      // Majority value among the neighbours (ties: smallest code, which
      // makes the operation deterministic given the neighbour set).
      std::map<double, std::size_t> votes;
      for (const auto& row : neighbor_rows) votes[row[f]]++;
      double best_value = base[f];
      std::size_t best_count = 0;
      for (const auto& [value, count] : votes) {
        if (count > best_count) {
          best_count = count;
          best_value = value;
        }
      }
      out[f] = best_value;
    } else {
      // f_v = x_i + (x_j − x_i)·ω(0,1)  (eq. 6)
      out[f] = base[f] + (neighbor[f] - base[f]) * rng.uniform();
    }
  }
  return out;
}

Dataset smote_oversample(const Dataset& data, int minority_class,
                         const SmoteConfig& config) {
  FROTE_CHECK(!data.empty());
  std::vector<std::size_t> minority;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) == minority_class) minority.push_back(i);
  }
  FROTE_CHECK_MSG(minority.size() > config.k,
                  "need more than k minority instances");

  const MixedDistance distance = MixedDistance::fit(data);
  BruteKnn knn(data, distance, minority);

  Rng rng(config.seed);
  Dataset synthetic(data.schema_ptr());
  const std::size_t per_instance = config.amount_percent / 100;
  const double frac =
      static_cast<double>(config.amount_percent % 100) / 100.0;
  for (std::size_t m = 0; m < minority.size(); ++m) {
    std::size_t count = per_instance + (rng.bernoulli(frac) ? 1 : 0);
    if (count == 0) continue;
    const auto base = data.row(minority[m]);
    // k+1 because the base instance is its own nearest neighbour.
    auto neighbors = knn.query(base, config.k + 1);
    std::vector<std::span<const double>> neighbor_rows;
    std::vector<std::size_t> neighbor_ids;
    for (const auto& nb : neighbors) {
      const std::size_t ds_idx = knn.dataset_index(nb.index);
      if (ds_idx == minority[m]) continue;
      neighbor_rows.push_back(data.row(ds_idx));
      neighbor_ids.push_back(ds_idx);
      if (neighbor_rows.size() == config.k) break;
    }
    if (neighbor_rows.empty()) continue;
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t pick = rng.index(neighbor_rows.size());
      auto row = smote_nc_interpolate(base, neighbor_rows[pick],
                                      neighbor_rows, data.schema(), rng);
      synthetic.add_row(row, minority_class);
    }
  }
  return synthetic;
}

}  // namespace frote
