// Borderline instance categorisation (Han et al. 2005), used by FROTE's IP
// base-instance selector (supplement A): each instance is classified by the
// mix of its k-nearest neighbours' labels — here the *predicted* labels of
// the model being edited — as
//   noisy      (q >> p: almost all neighbours disagree),
//   safe       (p >> q: almost all neighbours agree),
//   borderline (p ≈ q:  the instance sits near a decision boundary),
// and borderline instances get the largest selection weight (w = 3 vs 1).
#pragma once

#include "frote/data/dataset.hpp"
#include "frote/knn/knn.hpp"
#include "frote/ml/model.hpp"

namespace frote {

enum class InstanceKind { kNoisy, kSafe, kBorderline };

struct BorderlineConfig {
  std::size_t k = 10;            // supplement: k = 10 nearest neighbours
  double borderline_weight = 3.0;
  double other_weight = 1.0;
  /// Threads for the per-instance categorisation sweep;
  /// 0 ⇒ FROTE_NUM_THREADS. Deterministic for every value.
  int threads = 0;
};

/// Categorise every row of `data` using the predicted labels of `model`.
std::vector<InstanceKind> categorize_instances(
    const Dataset& data, const Model& model,
    const BorderlineConfig& config = {});

/// Selection weights w_i from the categorisation.
std::vector<double> borderline_weights(const Dataset& data, const Model& model,
                                       const BorderlineConfig& config = {});

}  // namespace frote
