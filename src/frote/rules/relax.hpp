// Rule relaxation (Algorithm 2): when a feedback rule has dataset coverage
// below L = k+1, find a *maximal partial rule* — the version of the rule
// with the fewest conditions removed that attains the largest coverage —
// via greedy breadth-first condition deletion.
#pragma once

#include <cstddef>

#include "frote/data/dataset.hpp"
#include "frote/rules/rule.hpp"

namespace frote {

struct RelaxationResult {
  /// Relaxed clause (equal to the input clause when no relaxation needed).
  Clause relaxed;
  /// Number of predicates deleted.
  std::size_t removed_conditions = 0;
  /// Coverage of the relaxed clause in the dataset.
  std::size_t support = 0;
  /// True when even the empty clause was reached (rule had to be fully
  /// relaxed; support is then |D|).
  bool fully_relaxed = false;
};

/// Relax `clause` against `data` until its coverage is at least
/// `min_support` (Algorithm 2, lines 7–22). At each level the condition
/// whose removal yields maximum coverage is deleted. If the clause becomes
/// empty, coverage is |D| and the loop stops.
RelaxationResult relax_rule(const Clause& clause, const Dataset& data,
                            std::size_t min_support);

}  // namespace frote
