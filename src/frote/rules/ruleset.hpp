// Feedback rule sets and dataset coverage (eq. 1–2), plus conflict detection
// and the three resolution strategies of §3.1.
#pragma once

#include <cstddef>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/rules/rule.hpp"

namespace frote {

/// cov(s, D): indices of rows in D covered by the rule (eq. 1). The scan is
/// chunked (util/parallel.hpp) with per-chunk index lists concatenated in
/// ascending chunk order, so the output is the ascending index list for any
/// thread count (`threads` 0 ⇒ FROTE_NUM_THREADS).
std::vector<std::size_t> coverage(const FeedbackRule& rule,
                                  const Dataset& data, int threads = 0);

/// cov(s, D) for a bare clause (no exclusions).
std::vector<std::size_t> coverage(const Clause& clause, const Dataset& data,
                                  int threads = 0);

/// An ordered set of feedback rules F = {(s_r, π_r)}.
class FeedbackRuleSet {
 public:
  FeedbackRuleSet() = default;
  explicit FeedbackRuleSet(std::vector<FeedbackRule> rules)
      : rules_(std::move(rules)) {}

  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const FeedbackRule& rule(std::size_t r) const {
    FROTE_CHECK(r < rules_.size());
    return rules_[r];
  }
  FeedbackRule& rule(std::size_t r) {
    FROTE_CHECK(r < rules_.size());
    return rules_[r];
  }
  const std::vector<FeedbackRule>& rules() const { return rules_; }
  void add(FeedbackRule rule) { rules_.push_back(std::move(rule)); }

  /// cov(F, D): union of per-rule coverages (eq. 2), sorted, deduplicated.
  std::vector<std::size_t> coverage_union(const Dataset& data) const;

  /// Per-rule coverage lists.
  std::vector<std::vector<std::size_t>> coverage_per_rule(
      const Dataset& data) const;

  /// Index of the first rule covering `row`, or -1.
  int first_covering_rule(std::span<const double> row) const;

 private:
  std::vector<FeedbackRule> rules_;
};

/// Two rules conflict iff their coverages intersect over the feature domain
/// and their label distributions differ (§3.1). Exclusion clauses are taken
/// into account conservatively (a pair is non-conflicting if either rule
/// excludes the other's clause entirely — we check the carved clause pair).
bool rules_conflict(const FeedbackRule& a, const FeedbackRule& b,
                    const Schema& schema);

/// Whether any pair of rules in F conflicts.
bool has_conflicts(const FeedbackRuleSet& frs, const Schema& schema);

/// Conflict resolution option 1 (§3.1): carve the intersection out of both
/// rules by adding each other's clause as an exclusion.
void resolve_by_exclusion(FeedbackRule& a, FeedbackRule& b);

/// Conflict resolution option 2 (§3.1): produce a third rule covering the
/// intersection with the mixture (π_a + π_b)/2, and exclude the intersection
/// from both originals.
FeedbackRule resolve_by_mixture(FeedbackRule& a, FeedbackRule& b);

/// Resolve all pairwise conflicts in-place using option 1 (repeatedly, as
/// §3.1 prescribes). Returns the number of pairs resolved.
std::size_t resolve_all_conflicts(FeedbackRuleSet& frs, const Schema& schema);

}  // namespace frote
