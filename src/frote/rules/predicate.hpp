// Predicates: (attribute, operator, value) triples, the atoms of feedback
// rules (§3.1). Categorical attributes allow {=, ≠}; numeric attributes
// allow {=, >, ≥, <, ≤}.
#pragma once

#include <span>
#include <string>

#include "frote/data/schema.hpp"

namespace frote {

enum class Op { kEq, kNe, kGt, kGe, kLt, kLe };

/// Printable operator symbol.
std::string op_symbol(Op op);

/// Shortest decimal form of `v` that parses back to exactly the same
/// double (tries 15 → 17 significant digits). Rule text is a persistence
/// format (core/spec.hpp serialises rules through it), so thresholds and
/// probabilities must survive print → parse bit-exactly — while staying
/// human-readable for the common short-decimal case.
std::string format_rule_number(double v);

/// Reverse an operator per the paper's perturbation 1 (§5.1): = ↔ ≠ for
/// categoricals; > ↔ <, ≥ ↔ ≤ for numerics (= maps to ≠ and back).
Op reverse_op(Op op);

/// Whether `op` is allowed on the given feature type.
bool op_valid_for(Op op, FeatureType type);

struct Predicate {
  std::size_t feature = 0;
  Op op = Op::kEq;
  /// Threshold for numeric features; category code for categorical ones.
  double value = 0.0;

  bool evaluate(std::span<const double> row) const {
    const double x = row[feature];
    switch (op) {
      case Op::kEq: return x == value;
      case Op::kNe: return x != value;
      case Op::kGt: return x > value;
      case Op::kGe: return x >= value;
      case Op::kLt: return x < value;
      case Op::kLe: return x <= value;
    }
    return false;
  }

  bool operator==(const Predicate& other) const {
    return feature == other.feature && op == other.op && value == other.value;
  }

  std::string to_string(const Schema& schema) const;
};

}  // namespace frote
