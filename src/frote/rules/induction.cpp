#include "frote/rules/induction.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace frote {

namespace {

/// Build the candidate predicate pool: one (=, code) per observed category
/// value, and (≤ t) / (> t) at empirical quantiles for numeric features.
std::vector<Predicate> candidate_predicates(const Dataset& data,
                                            std::size_t num_thresholds) {
  std::vector<Predicate> pool;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const auto& spec = data.schema().feature(f);
    if (spec.is_categorical()) {
      const auto counts = data.category_counts(f);
      for (std::size_t c = 0; c < counts.size(); ++c) {
        if (counts[c] == 0) continue;
        pool.push_back({f, Op::kEq, static_cast<double>(c)});
        pool.push_back({f, Op::kNe, static_cast<double>(c)});
      }
    } else {
      std::vector<double> column;
      column.reserve(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        column.push_back(data.row(i)[f]);
      }
      std::sort(column.begin(), column.end());
      std::set<double> thresholds;
      for (std::size_t t = 1; t <= num_thresholds; ++t) {
        const double q = static_cast<double>(t) /
                         static_cast<double>(num_thresholds + 1);
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(column.size() - 1));
        thresholds.insert(column[idx]);
      }
      for (double t : thresholds) {
        pool.push_back({f, Op::kLe, t});
        pool.push_back({f, Op::kGt, t});
      }
    }
  }
  return pool;
}

struct GrowResult {
  Clause clause;
  std::size_t positives_covered = 0;
  std::size_t total_covered = 0;
};

/// Greedy clause growth on the active (uncovered) rows.
GrowResult grow_clause(const Dataset& data, const std::vector<int>& pred,
                       const std::vector<bool>& active, int target,
                       const std::vector<Predicate>& pool,
                       const InductionConfig& config) {
  GrowResult grown;
  std::vector<bool> in_cover = active;  // rows still matched by the clause
  auto precision_of = [&](std::size_t pos, std::size_t tot) {
    // Laplace correction keeps tiny covers from looking perfect.
    return (static_cast<double>(pos) + 1.0) /
           (static_cast<double>(tot) + 2.0);
  };
  std::size_t cur_pos = 0, cur_tot = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!in_cover[i]) continue;
    ++cur_tot;
    if (pred[i] == target) ++cur_pos;
  }
  while (grown.clause.size() < config.max_conditions &&
         precision_of(cur_pos, cur_tot) < config.target_precision) {
    double best_score = -1.0;
    const Predicate* best_pred = nullptr;
    std::size_t best_pos = 0, best_tot = 0;
    for (const auto& cand : pool) {
      if (grown.clause.mentions(cand.feature)) continue;
      std::size_t pos = 0, tot = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (!in_cover[i]) continue;
        if (!cand.evaluate(data.row(i))) continue;
        ++tot;
        if (pred[i] == target) ++pos;
      }
      if (tot < config.min_rule_coverage) continue;
      // Score: precision with a mild coverage bonus so maximally specific
      // predicates do not always win.
      const double score = precision_of(pos, tot) +
                           0.01 * std::log1p(static_cast<double>(pos));
      if (score > best_score) {
        best_score = score;
        best_pred = &cand;
        best_pos = pos;
        best_tot = tot;
      }
    }
    if (best_pred == nullptr) break;
    // The first condition is accepted unconditionally (every rule needs at
    // least one predicate to describe a region); later conditions must
    // strictly improve precision.
    if (!grown.clause.empty() &&
        precision_of(best_pos, best_tot) <= precision_of(cur_pos, cur_tot)) {
      break;
    }
    grown.clause.add(*best_pred);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (in_cover[i] && !best_pred->evaluate(data.row(i))) in_cover[i] = false;
    }
    cur_pos = best_pos;
    cur_tot = best_tot;
  }
  grown.positives_covered = cur_pos;
  grown.total_covered = cur_tot;
  return grown;
}

}  // namespace

std::vector<FeedbackRule> induce_rules(const Dataset& data, const Model& model,
                                       const InductionConfig& config) {
  FROTE_CHECK(!data.empty());
  const std::vector<int> pred = model.predict_all(data);
  const std::size_t num_classes = data.num_classes();
  const auto pool = candidate_predicates(data, config.num_thresholds);

  std::vector<FeedbackRule> rules;
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    const int target = static_cast<int>(cls);
    std::vector<bool> active(data.size(), true);
    for (std::size_t r = 0; r < config.max_rules_per_class; ++r) {
      // Separate-and-conquer: grow one clause on the not-yet-covered rows.
      std::size_t remaining_pos = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (active[i] && pred[i] == target) ++remaining_pos;
      }
      if (remaining_pos < config.min_rule_coverage) break;
      auto grown = grow_clause(data, pred, active, target, pool, config);
      if (grown.clause.empty() ||
          grown.total_covered < config.min_rule_coverage) {
        break;
      }
      rules.push_back(
          FeedbackRule::deterministic(grown.clause, target, num_classes));
      // Conquer: retire rows matched by the new clause.
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (active[i] && grown.clause.satisfies(data.row(i))) {
          active[i] = false;
        }
      }
    }
  }
  return rules;
}

}  // namespace frote
