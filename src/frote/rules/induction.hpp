// Rule-set explanation of a trained model — the BRCG (Dash et al. 2018)
// stand-in. The paper only needs "a rule set explanation for an initial ML
// model" as raw material for its feedback-rule perturbation pipeline (§5.1);
// we implement a greedy separate-and-conquer inducer (CN2/RIPPER-style) run
// on the model's *predicted* labels, so the induced rules describe the model,
// not the ground truth.
#pragma once

#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/ml/model.hpp"
#include "frote/rules/rule.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct InductionConfig {
  /// Max rules induced per class.
  std::size_t max_rules_per_class = 8;
  /// Max predicates per rule clause (paper favours small rules, §3.1).
  std::size_t max_conditions = 3;
  /// Stop growing a clause once (Laplace-corrected) precision reaches this.
  double target_precision = 0.9;
  /// Candidate numeric thresholds per feature (quantiles).
  std::size_t num_thresholds = 8;
  /// Discard rules covering fewer rows than this.
  std::size_t min_rule_coverage = 10;
};

/// Induce a rule-set description of `model`'s behaviour on `data`.
/// Each returned rule is deterministic with the model's predicted class as
/// target and carries no exclusions.
std::vector<FeedbackRule> induce_rules(const Dataset& data, const Model& model,
                                       const InductionConfig& config = {});

}  // namespace frote
