// Feedback-rule synthesis by perturbation (§5.1).
//
// The paper simulates users whose feedback deviates from the model: it
// extracts a rule-set explanation of an initial model, then perturbs each
// rule with three operations until 100 rules per dataset satisfy
// 0.05 ≤ |cov(s,D)|/|D| < 0.25:
//   1. reverse the operator of a randomly selected predicate,
//   2. update that predicate's value from the training data's value range,
//   3. add a randomly chosen condition from another rule.
// Each generated rule keeps the seed rule's target class (that is what makes
// the feedback deviate from the model) and records the seed clause as
// provenance (needed by the Overlay-Soft baseline).
#pragma once

#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/rules/rule.hpp"
#include "frote/rules/ruleset.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct PerturbConfig {
  double min_coverage_frac = 0.05;  // inclusive
  double max_coverage_frac = 0.25;  // exclusive
  std::size_t pool_size = 100;
  /// Attempt budget; generation stops early when exhausted (some datasets
  /// cannot yield 100 in-band rules, mirroring the paper's |F|=15/20 note).
  std::size_t max_attempts = 20000;
  /// Divergence filter: a candidate is kept only if at most this fraction
  /// of its covered instances already carry the rule's class. The paper's
  /// perturbed rules simulate feedback that *deviates* from the model
  /// (operator reversal on near-separable UCI data lands the asserted class
  /// in opposite-class territory); on our smoother synthetic datasets the
  /// same three operations need this explicit filter to reach comparable
  /// divergence (see docs/DESIGN.md §3).
  double max_label_agreement = 0.5;
};

/// One application of the paper's three perturbation operations to `rule`,
/// drawing the added condition from `seeds`. Provenance is set to the seed
/// rule's clause.
FeedbackRule perturb_rule(const FeedbackRule& seed,
                          const std::vector<FeedbackRule>& seeds,
                          const Dataset& data, Rng& rng);

/// Build a pool of up to `config.pool_size` perturbed feedback rules whose
/// coverage fraction on `data` lies in the configured band.
std::vector<FeedbackRule> generate_feedback_pool(
    const Dataset& data, const std::vector<FeedbackRule>& seeds,
    const PerturbConfig& config, Rng& rng);

/// Draw a conflict-free FRS of `size` rules from `pool` (pairwise symbolic
/// non-conflict, §3.1). Up to `max_attempts` random draws are tried; an empty
/// set is returned when no conflict-free set of that size could be formed
/// (the paper reports exactly this outcome for |F| ∈ {15, 20} on some
/// datasets).
FeedbackRuleSet sample_conflict_free_frs(const std::vector<FeedbackRule>& pool,
                                         std::size_t size,
                                         const Schema& schema, Rng& rng,
                                         std::size_t max_attempts = 200);

}  // namespace frote
