#include "frote/rules/predicate.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace frote {

std::string format_rule_number(double v) {
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string op_symbol(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
  }
  return "?";
}

Op reverse_op(Op op) {
  switch (op) {
    case Op::kEq: return Op::kNe;
    case Op::kNe: return Op::kEq;
    case Op::kGt: return Op::kLt;
    case Op::kGe: return Op::kLe;
    case Op::kLt: return Op::kGt;
    case Op::kLe: return Op::kGe;
  }
  return op;
}

bool op_valid_for(Op op, FeatureType type) {
  if (type == FeatureType::kCategorical) {
    return op == Op::kEq || op == Op::kNe;
  }
  return op != Op::kNe;  // numeric: {=, >, >=, <, <=} per §3.1
}

std::string Predicate::to_string(const Schema& schema) const {
  const auto& spec = schema.feature(feature);
  std::ostringstream os;
  os << spec.name << ' ' << op_symbol(op) << ' ';
  if (spec.is_categorical()) {
    os << '\'' << spec.categories[static_cast<std::size_t>(value)] << '\'';
  } else {
    os << format_rule_number(value);
  }
  return os.str();
}

}  // namespace frote
