#include "frote/rules/clause.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace frote {

bool FeatureConstraint::numeric_feasible() const {
  if (pinned.has_value()) {
    const double v = *pinned;
    if (v < lo || (lo_open && v == lo)) return false;
    if (v > hi || (hi_open && v == hi)) return false;
    return true;
  }
  if (lo > hi) return false;
  if (lo == hi && (lo_open || hi_open)) return false;
  return true;
}

bool FeatureConstraint::categorical_feasible(std::size_t cardinality) const {
  if (allowed.has_value()) {
    return std::find(denied.begin(), denied.end(), *allowed) == denied.end();
  }
  // Without an equality pin, feasible iff some code is not denied.
  std::vector<bool> is_denied(cardinality, false);
  for (std::size_t d : denied) {
    if (d < cardinality) is_denied[d] = true;
  }
  return std::any_of(is_denied.begin(), is_denied.end(),
                     [](bool b) { return !b; }) ||
         cardinality == 0;
}

Clause Clause::without(std::size_t idx) const {
  FROTE_CHECK(idx < predicates_.size());
  std::vector<Predicate> preds;
  preds.reserve(predicates_.size() - 1);
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i != idx) preds.push_back(predicates_[i]);
  }
  return Clause(std::move(preds));
}

bool Clause::mentions(std::size_t f) const {
  return std::any_of(predicates_.begin(), predicates_.end(),
                     [f](const Predicate& p) { return p.feature == f; });
}

FeatureConstraint Clause::constraint_for(std::size_t f,
                                         const Schema& schema) const {
  FeatureConstraint c;
  const bool categorical = schema.feature(f).is_categorical();
  for (const auto& p : predicates_) {
    if (p.feature != f) continue;
    if (categorical) {
      const auto code = static_cast<std::size_t>(p.value);
      if (p.op == Op::kEq) {
        if (c.allowed.has_value() && *c.allowed != code) {
          // Two different pins: mark infeasible by denying the pin.
          c.denied.push_back(*c.allowed);
        }
        c.allowed = code;
      } else if (p.op == Op::kNe) {
        c.denied.push_back(code);
      }
    } else {
      switch (p.op) {
        case Op::kEq:
          if (c.pinned.has_value() && *c.pinned != p.value) {
            // Contradictory pins: empty interval.
            c.lo = 1.0;
            c.hi = 0.0;
          }
          c.pinned = p.value;
          break;
        case Op::kGt:
          if (p.value > c.lo || (p.value == c.lo && !c.lo_open)) {
            c.lo = p.value;
            c.lo_open = true;
          }
          break;
        case Op::kGe:
          if (p.value > c.lo) {
            c.lo = p.value;
            c.lo_open = false;
          }
          break;
        case Op::kLt:
          if (p.value < c.hi || (p.value == c.hi && !c.hi_open)) {
            c.hi = p.value;
            c.hi_open = true;
          }
          break;
        case Op::kLe:
          if (p.value < c.hi) {
            c.hi = p.value;
            c.hi_open = false;
          }
          break;
        case Op::kNe:
          break;  // not allowed on numerics per §3.1; ignore defensively
      }
    }
  }
  return c;
}

bool Clause::satisfiable(const Schema& schema) const {
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    if (!mentions(f)) continue;
    const auto c = constraint_for(f, schema);
    const auto& spec = schema.feature(f);
    if (spec.is_categorical()) {
      if (!c.categorical_feasible(spec.cardinality())) return false;
    } else {
      if (!c.numeric_feasible()) return false;
    }
  }
  return true;
}

bool Clause::intersects(const Clause& other, const Schema& schema) const {
  return conjoin(*this, other).satisfiable(schema);
}

bool Clause::implies(const Clause& other, const Schema& schema) const {
  // An unsatisfiable antecedent implies everything.
  if (!satisfiable(schema)) return true;
  for (const auto& p : other.predicates()) {
    const auto c = constraint_for(p.feature, schema);
    const bool categorical = schema.feature(p.feature).is_categorical();
    bool proven = false;
    if (categorical) {
      const auto code = static_cast<std::size_t>(p.value);
      const bool denied =
          std::find(c.denied.begin(), c.denied.end(), code) != c.denied.end();
      if (p.op == Op::kEq) {
        proven = c.allowed.has_value() && *c.allowed == code;
      } else if (p.op == Op::kNe) {
        proven = (c.allowed.has_value() && *c.allowed != code) || denied;
      }
    } else {
      const bool pinned = c.pinned.has_value();
      switch (p.op) {
        case Op::kEq:
          proven = pinned && *c.pinned == p.value;
          break;
        case Op::kGt:
          proven = pinned ? *c.pinned > p.value
                          : (c.lo > p.value ||
                             (c.lo == p.value && c.lo_open));
          break;
        case Op::kGe:
          proven = pinned ? *c.pinned >= p.value : c.lo >= p.value;
          break;
        case Op::kLt:
          proven = pinned ? *c.pinned < p.value
                          : (c.hi < p.value ||
                             (c.hi == p.value && c.hi_open));
          break;
        case Op::kLe:
          proven = pinned ? *c.pinned <= p.value : c.hi <= p.value;
          break;
        case Op::kNe:
          proven = pinned && *c.pinned != p.value;
          break;
      }
    }
    if (!proven) return false;
  }
  return true;
}

std::string Clause::to_string(const Schema& schema) const {
  if (predicates_.empty()) return "TRUE";
  std::ostringstream os;
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) os << " AND ";
    os << predicates_[i].to_string(schema);
  }
  return os.str();
}

Clause conjoin(const Clause& a, const Clause& b) {
  std::vector<Predicate> preds = a.predicates();
  preds.insert(preds.end(), b.predicates().begin(), b.predicates().end());
  return Clause(std::move(preds));
}

}  // namespace frote
