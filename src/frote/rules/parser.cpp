#include "frote/rules/parser.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

namespace frote {

namespace {

/// Minimal recursive-descent tokenizer/parser over one rule line.
class RuleParser {
 public:
  RuleParser(const std::string& text, const Schema& schema)
      : text_(text), schema_(schema) {}

  FeedbackRule parse() {
    expect_keyword("IF");
    FeedbackRule rule;
    rule.clause = parse_clause();
    // Optional exclusions: AND NOT ( clause ) ...
    while (try_keyword("AND")) {
      if (try_keyword("NOT")) {
        expect_symbol("(");
        rule.exclusions.push_back(parse_clause());
        expect_symbol(")");
      } else {
        // Plain AND continues the main clause (parse_clause stops before
        // AND NOT so this only happens after an exclusion block).
        fail("expected NOT after AND at exclusion position");
      }
    }
    expect_keyword("THEN");
    rule.pi = parse_outcome();
    skip_space();
    if (pos_ != text_.size()) fail("trailing input after rule");
    return rule;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << "rule parse error at column " << pos_ + 1 << ": " << message
       << " in \"" << text_ << "\"";
    throw Error(os.str());
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool try_keyword(const std::string& keyword) {
    skip_space();
    const std::size_t saved = pos_;
    if (text_.compare(pos_, keyword.size(), keyword) != 0) return false;
    const std::size_t end = pos_ + keyword.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      pos_ = saved;
      return false;
    }
    pos_ = end;
    return true;
  }

  void expect_keyword(const std::string& keyword) {
    if (!try_keyword(keyword)) fail("expected '" + keyword + "'");
  }

  bool try_symbol(const std::string& symbol) {
    skip_space();
    if (text_.compare(pos_, symbol.size(), symbol) != 0) return false;
    pos_ += symbol.size();
    return true;
  }

  void expect_symbol(const std::string& symbol) {
    if (!try_symbol(symbol)) fail("expected '" + symbol + "'");
  }

  std::string parse_identifier() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == '(' || text_[pos_] == ')')) {
      // Identifiers may contain (), -, . to cover names like
      // "Wine Quality (white)"-style class labels without spaces.
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  double parse_number() {
    skip_space();
    const std::size_t start = pos_;
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(start), &consumed);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ = start + consumed;
    return value;
  }

  std::string parse_quoted() {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != '\'') fail("expected quote");
    ++pos_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
    if (pos_ >= text_.size()) fail("unterminated category literal");
    const std::string value = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return value;
  }

  Op parse_op() {
    skip_space();
    // Two-character operators first.
    if (try_symbol("!=")) return Op::kNe;
    if (try_symbol(">=")) return Op::kGe;
    if (try_symbol("<=")) return Op::kLe;
    if (try_symbol(">")) return Op::kGt;
    if (try_symbol("<")) return Op::kLt;
    if (try_symbol("=")) return Op::kEq;
    fail("expected comparison operator");
  }

  Predicate parse_predicate() {
    const std::string name = parse_identifier();
    const std::size_t feature = schema_.feature_index(name);
    const Op op = parse_op();
    const auto& spec = schema_.feature(feature);
    if (!op_valid_for(op, spec.type)) {
      fail("operator " + op_symbol(op) + " not allowed on " +
           (spec.is_categorical() ? "categorical" : "numeric") + " feature " +
           name);
    }
    double value = 0.0;
    if (spec.is_categorical()) {
      value = static_cast<double>(
          schema_.category_code(feature, parse_quoted()));
    } else {
      value = parse_number();
    }
    return Predicate{feature, op, value};
  }

  Clause parse_clause() {
    Clause clause;
    clause.add(parse_predicate());
    while (true) {
      skip_space();
      const std::size_t saved = pos_;
      if (!try_keyword("AND")) break;
      if (try_keyword("NOT")) {
        pos_ = saved;  // exclusion block: caller handles it
        break;
      }
      clause.add(parse_predicate());
    }
    return clause;
  }

  /// Class names may contain symbols identifiers cannot (Adult's ">50K"),
  /// so they lex as any run of non-space characters excluding the outcome
  /// grammar's delimiters.
  std::string parse_class_name() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(ch)) || ch == ':' ||
          ch == ',' || ch == ']') {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) fail("expected class name");
    return text_.substr(start, pos_ - start);
  }

  int class_index(const std::string& name) {
    for (std::size_t c = 0; c < schema_.num_classes(); ++c) {
      if (schema_.class_names()[c] == name) return static_cast<int>(c);
    }
    fail("unknown class '" + name + "'");
  }

  LabelDistribution parse_outcome() {
    skip_space();
    if (try_keyword("class")) {
      expect_symbol("=");
      const int target = class_index(parse_class_name());
      return LabelDistribution::deterministic(target, schema_.num_classes());
    }
    expect_keyword("Y");
    expect_symbol("~");
    expect_symbol("[");
    std::vector<double> probs(schema_.num_classes(), 0.0);
    while (true) {
      const int cls = class_index(parse_class_name());
      expect_symbol(":");
      probs[static_cast<std::size_t>(cls)] = parse_number();
      if (try_symbol("]")) break;
      expect_symbol(",");
    }
    return LabelDistribution::from_probs(std::move(probs));
  }

  const std::string& text_;
  const Schema& schema_;
  std::size_t pos_ = 0;
};

}  // namespace

FeedbackRule parse_rule(const std::string& text, const Schema& schema) {
  return RuleParser(text, schema).parse();
}

std::vector<FeedbackRule> parse_rules(const std::string& text,
                                      const Schema& schema) {
  std::vector<FeedbackRule> rules;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    // Trim leading whitespace to detect comments/blank lines.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start]))) {
      ++start;
    }
    if (start == line.size() || line[start] == '#') continue;
    rules.push_back(parse_rule(line.substr(start), schema));
  }
  return rules;
}

}  // namespace frote
