#include "frote/rules/rule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace frote {

LabelDistribution LabelDistribution::deterministic(int target,
                                                   std::size_t num_classes) {
  FROTE_CHECK_MSG(target >= 0 &&
                      static_cast<std::size_t>(target) < num_classes,
                  "target " << target << " vs " << num_classes << " classes");
  LabelDistribution d;
  d.probs_.assign(num_classes, 0.0);
  d.probs_[static_cast<std::size_t>(target)] = 1.0;
  return d;
}

LabelDistribution LabelDistribution::from_probs(std::vector<double> probs) {
  FROTE_CHECK(!probs.empty());
  double total = 0.0;
  for (double p : probs) {
    FROTE_CHECK_MSG(p >= 0.0, "negative probability " << p);
    total += p;
  }
  FROTE_CHECK_MSG(std::abs(total - 1.0) < 1e-6,
                  "probabilities sum to " << total);
  LabelDistribution d;
  d.probs_ = std::move(probs);
  return d;
}

LabelDistribution LabelDistribution::mixture(const LabelDistribution& a,
                                             const LabelDistribution& b) {
  FROTE_CHECK(a.num_classes() == b.num_classes());
  std::vector<double> probs(a.num_classes());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = 0.5 * (a.probs_[i] + b.probs_[i]);
  }
  return from_probs(std::move(probs));
}

double LabelDistribution::prob(int label) const {
  FROTE_CHECK(label >= 0 && static_cast<std::size_t>(label) < probs_.size());
  return probs_[static_cast<std::size_t>(label)];
}

bool LabelDistribution::is_deterministic() const {
  return std::any_of(probs_.begin(), probs_.end(),
                     [](double p) { return p == 1.0; });
}

int LabelDistribution::mode() const {
  FROTE_CHECK(!probs_.empty());
  return static_cast<int>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

int LabelDistribution::sample(Rng& rng) const {
  FROTE_CHECK(!probs_.empty());
  return static_cast<int>(rng.categorical(probs_));
}

std::string FeedbackRule::to_string(const Schema& schema) const {
  std::ostringstream os;
  os << "IF " << clause.to_string(schema);
  for (const auto& ex : exclusions) {
    os << " AND NOT (" << ex.to_string(schema) << ")";
  }
  os << " THEN ";
  if (pi.is_deterministic()) {
    os << "class = " << schema.class_names()[static_cast<std::size_t>(
        pi.mode())];
  } else {
    os << "Y ~ [";
    for (std::size_t c = 0; c < pi.num_classes(); ++c) {
      if (c > 0) os << ", ";
      os << schema.class_names()[c] << ":"
         << format_rule_number(pi.probs()[c]);
    }
    os << "]";
  }
  return os.str();
}

}  // namespace frote
