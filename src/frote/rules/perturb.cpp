#include "frote/rules/perturb.hpp"

#include <algorithm>

namespace frote {

namespace {

/// Perturbation 2: re-draw the predicate's value from the data. Categorical:
/// any code other than the current one; numeric: uniform in the observed
/// [min, max] of that attribute.
void redraw_value(Predicate& pred, const Dataset& data, Rng& rng) {
  const auto& spec = data.schema().feature(pred.feature);
  if (spec.is_categorical()) {
    if (spec.cardinality() < 2) return;
    auto code = static_cast<std::size_t>(pred.value);
    std::size_t draw = rng.index(spec.cardinality() - 1);
    if (draw >= code) ++draw;  // skip the current value
    pred.value = static_cast<double>(draw);
  } else {
    const auto stats = data.numeric_column_stats(pred.feature);
    pred.value = rng.uniform(stats.min, stats.max);
  }
}

}  // namespace

FeedbackRule perturb_rule(const FeedbackRule& seed,
                          const std::vector<FeedbackRule>& seeds,
                          const Dataset& data, Rng& rng) {
  FROTE_CHECK(!seed.clause.empty());
  FeedbackRule out = seed;
  out.exclusions.clear();
  out.provenance = seed.clause;

  std::vector<Predicate> preds = out.clause.predicates();

  // Op 1: reverse the operator of a randomly selected predicate.
  const std::size_t target = rng.index(preds.size());
  preds[target].op = reverse_op(preds[target].op);
  // Numeric features do not admit '!=' (§3.1); if reversing '=' produced it,
  // fall back to a directional operator.
  if (!data.schema().feature(preds[target].feature).is_categorical() &&
      preds[target].op == Op::kNe) {
    preds[target].op = rng.bernoulli(0.5) ? Op::kGe : Op::kLe;
  }

  // Op 2: update the selected predicate's value from the training data.
  redraw_value(preds[target], data, rng);

  // Op 3: add a randomly picked existing condition from any other rule.
  if (seeds.size() > 1) {
    for (std::size_t attempt = 0; attempt < 16; ++attempt) {
      const auto& donor = seeds[rng.index(seeds.size())];
      if (donor.clause.empty() || &donor == &seed) continue;
      const auto& cond =
          donor.clause.predicates()[rng.index(donor.clause.size())];
      // Avoid conditions on a feature the clause already constrains with an
      // equality pin — those make the clause trivially unsatisfiable.
      const bool duplicate =
          std::any_of(preds.begin(), preds.end(), [&](const Predicate& p) {
            return p.feature == cond.feature;
          });
      if (duplicate) continue;
      preds.push_back(cond);
      break;
    }
  }

  out.clause = Clause(std::move(preds));
  return out;
}

std::vector<FeedbackRule> generate_feedback_pool(
    const Dataset& data, const std::vector<FeedbackRule>& seeds,
    const PerturbConfig& config, Rng& rng) {
  FROTE_CHECK_MSG(!seeds.empty(), "need at least one seed rule");
  FROTE_CHECK(!data.empty());
  const auto lo = static_cast<std::size_t>(
      config.min_coverage_frac * static_cast<double>(data.size()));
  const auto hi = static_cast<std::size_t>(
      config.max_coverage_frac * static_cast<double>(data.size()));

  std::vector<FeedbackRule> pool;
  for (std::size_t attempt = 0;
       attempt < config.max_attempts && pool.size() < config.pool_size;
       ++attempt) {
    const auto& seed = seeds[rng.index(seeds.size())];
    if (seed.clause.empty()) continue;
    FeedbackRule candidate = perturb_rule(seed, seeds, data, rng);
    if (!candidate.clause.satisfiable(data.schema())) continue;
    const auto covered = coverage(candidate.clause, data);
    const auto cov = covered.size();
    if (cov < lo || cov >= hi) continue;
    // Divergence filter: the feedback must actually deviate from the data.
    std::size_t agree = 0;
    for (std::size_t idx : covered) {
      if (data.label(idx) == candidate.target_class()) ++agree;
    }
    if (static_cast<double>(agree) >
        config.max_label_agreement * static_cast<double>(cov)) {
      continue;
    }
    // Deduplicate on the clause.
    const bool dup = std::any_of(
        pool.begin(), pool.end(), [&](const FeedbackRule& r) {
          return r.clause == candidate.clause && r.pi == candidate.pi;
        });
    if (dup) continue;
    pool.push_back(std::move(candidate));
  }
  return pool;
}

FeedbackRuleSet sample_conflict_free_frs(const std::vector<FeedbackRule>& pool,
                                         std::size_t size,
                                         const Schema& schema, Rng& rng,
                                         std::size_t max_attempts) {
  if (pool.size() < size || size == 0) return {};
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Greedy build from a random permutation: keeps acceptance rate usable
    // for larger |F| compared to rejecting whole draws.
    auto order = rng.sample_without_replacement(pool.size(), pool.size());
    std::vector<FeedbackRule> chosen;
    for (std::size_t idx : order) {
      const auto& cand = pool[idx];
      const bool clash = std::any_of(
          chosen.begin(), chosen.end(), [&](const FeedbackRule& r) {
            return rules_conflict(r, cand, schema);
          });
      if (!clash) {
        chosen.push_back(cand);
        if (chosen.size() == size) return FeedbackRuleSet(std::move(chosen));
      }
    }
  }
  return {};
}

}  // namespace frote
