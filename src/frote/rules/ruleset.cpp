#include "frote/rules/ruleset.hpp"

#include <algorithm>

#include "frote/util/parallel.hpp"

namespace frote {

namespace {

/// Rows per coverage-scan chunk. The predicate test is a few ns per row, so
/// the grain is large: small datasets stay single-chunk (zero overhead) and
/// only production-sized scans fan out.
constexpr std::size_t kCoverageGrain = 4096;

/// Chunked predicate scan; per-chunk hit lists concatenate in ascending
/// chunk order, reproducing the serial ascending index list exactly.
template <typename Covers>
std::vector<std::size_t> scan_coverage(std::size_t n, int threads,
                                       const Covers& covers) {
  return parallel_reduce(
      n, kCoverageGrain, threads, std::vector<std::size_t>{},
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> hits;
        for (std::size_t i = begin; i < end; ++i) {
          if (covers(i)) hits.push_back(i);
        }
        return hits;
      },
      [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
        if (acc.empty()) {
          acc = std::move(part);
          return;
        }
        acc.insert(acc.end(), part.begin(), part.end());
      });
}

}  // namespace

std::vector<std::size_t> coverage(const FeedbackRule& rule,
                                  const Dataset& data, int threads) {
  return scan_coverage(data.size(), threads, [&](std::size_t i) {
    return rule.covers(data.row(i));
  });
}

std::vector<std::size_t> coverage(const Clause& clause, const Dataset& data,
                                  int threads) {
  return scan_coverage(data.size(), threads, [&](std::size_t i) {
    return clause.satisfies(data.row(i));
  });
}

std::vector<std::size_t> FeedbackRuleSet::coverage_union(
    const Dataset& data) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (const auto& rule : rules_) {
      if (rule.covers(data.row(i))) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> FeedbackRuleSet::coverage_per_rule(
    const Dataset& data) const {
  std::vector<std::vector<std::size_t>> out(rules_.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      if (rules_[r].covers(data.row(i))) out[r].push_back(i);
    }
  }
  return out;
}

int FeedbackRuleSet::first_covering_rule(std::span<const double> row) const {
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    if (rules_[r].covers(row)) return static_cast<int>(r);
  }
  return -1;
}

bool rules_conflict(const FeedbackRule& a, const FeedbackRule& b,
                    const Schema& schema) {
  if (a.pi == b.pi) return false;
  const Clause overlap = conjoin(a.clause, b.clause);
  if (!overlap.satisfiable(schema)) return false;
  // The base clauses intersect; the pair is still conflict-free if either
  // rule's exclusions provably carve the whole overlap region out
  // (overlap ⇒ exclusion). This covers both resolution option 1 (each rule
  // excludes the other's clause) and the mixture rule of option 2 (whose
  // clause is the overlap itself).
  auto carved = [&](const FeedbackRule& r) {
    return std::any_of(
        r.exclusions.begin(), r.exclusions.end(),
        [&](const Clause& ex) { return overlap.implies(ex, schema); });
  };
  if (carved(a) || carved(b)) return false;
  return true;
}

bool has_conflicts(const FeedbackRuleSet& frs, const Schema& schema) {
  for (std::size_t i = 0; i < frs.size(); ++i) {
    for (std::size_t j = i + 1; j < frs.size(); ++j) {
      if (rules_conflict(frs.rule(i), frs.rule(j), schema)) return true;
    }
  }
  return false;
}

void resolve_by_exclusion(FeedbackRule& a, FeedbackRule& b) {
  a.exclusions.push_back(b.clause);
  b.exclusions.push_back(a.clause);
}

FeedbackRule resolve_by_mixture(FeedbackRule& a, FeedbackRule& b) {
  FeedbackRule mid(conjoin(a.clause, b.clause),
                   LabelDistribution::mixture(a.pi, b.pi));
  resolve_by_exclusion(a, b);
  return mid;
}

std::size_t resolve_all_conflicts(FeedbackRuleSet& frs, const Schema& schema) {
  std::size_t resolved = 0;
  for (std::size_t i = 0; i < frs.size(); ++i) {
    for (std::size_t j = i + 1; j < frs.size(); ++j) {
      if (rules_conflict(frs.rule(i), frs.rule(j), schema)) {
        resolve_by_exclusion(frs.rule(i), frs.rule(j));
        ++resolved;
      }
    }
  }
  return resolved;
}

}  // namespace frote
