// Clauses: conjunctions of predicates (§3.1), plus the per-feature constraint
// summary used for symbolic satisfiability (conflict detection) and for the
// rule-constrained instance generation windows (supplement A).
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "frote/rules/predicate.hpp"

namespace frote {

/// Per-feature admissible set implied by a conjunction of predicates.
/// Numeric features get an interval (with open/closed endpoints and an
/// optional pinned equality); categorical features get an allow/deny set.
struct FeatureConstraint {
  // Numeric interval. lo/hi are -inf/+inf when unbounded.
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;  // true: x > lo; false: x >= lo
  bool hi_open = false;  // true: x < hi; false: x <= hi
  std::optional<double> pinned;  // from an '=' predicate

  // Categorical sets (codes). If `allowed` is set, only that code passes;
  // `denied` lists codes excluded by '!=' predicates.
  std::optional<std::size_t> allowed;
  std::vector<std::size_t> denied;

  /// Whether the numeric interval/pin is non-empty.
  bool numeric_feasible() const;
  /// Whether the categorical constraint admits any of `cardinality` codes.
  bool categorical_feasible(std::size_t cardinality) const;
};

/// A conjunction of predicates. An empty clause covers everything.
class Clause {
 public:
  Clause() = default;
  explicit Clause(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  const std::vector<Predicate>& predicates() const { return predicates_; }
  std::size_t size() const { return predicates_.size(); }
  bool empty() const { return predicates_.empty(); }

  void add(Predicate p) { predicates_.push_back(p); }

  /// True iff every predicate holds on `row`.
  bool satisfies(std::span<const double> row) const {
    for (const auto& p : predicates_) {
      if (!p.evaluate(row)) return false;
    }
    return true;
  }

  /// Clause with predicate `idx` removed (rule relaxation step).
  Clause without(std::size_t idx) const;

  /// Whether this clause constrains feature `f` at all.
  bool mentions(std::size_t f) const;

  /// Combined per-feature constraint for feature `f` (identity constraint if
  /// the clause does not mention `f`). Requires schema to know the type.
  FeatureConstraint constraint_for(std::size_t f, const Schema& schema) const;

  /// Symbolic satisfiability of this clause over the domain described by
  /// `schema` (every feature's combined constraint non-empty).
  bool satisfiable(const Schema& schema) const;

  /// Symbolic satisfiability of (this AND other): used for conflict
  /// detection, cov(s1) ∩ cov(s2) ≠ ∅ over the feature domain (§3.1).
  bool intersects(const Clause& other, const Schema& schema) const;

  /// Whether every point satisfying this clause also satisfies `other`
  /// (this ⇒ other). Conservative: returns false when implication cannot be
  /// proven from per-feature constraints.
  bool implies(const Clause& other, const Schema& schema) const;

  std::string to_string(const Schema& schema) const;

  bool operator==(const Clause& other) const {
    return predicates_ == other.predicates_;
  }

 private:
  std::vector<Predicate> predicates_;
};

/// Conjunction of two clauses (concatenated predicates).
Clause conjoin(const Clause& a, const Clause& b);

}  // namespace frote
