// Textual rule format: parsing and serialization.
//
// The paper argues rules are the natural medium for expert feedback because
// "they semantically resemble natural language" (§3.1); a production system
// therefore needs a textual round-trip so experts can author rules directly
// and audits can store them (§6's governance discussion). Grammar:
//
//   rule        := "IF" clause ["AND NOT" "(" clause ")"]* "THEN" outcome
//   clause      := predicate ("AND" predicate)*
//   predicate   := ident op value
//   op          := "=" | "!=" | ">" | ">=" | "<" | "<="
//   value       := number | "'" category "'"
//   outcome     := "class" "=" class-name
//                | "Y" "~" "[" class ":" prob ("," class ":" prob)* "]"
//
// Examples:
//   IF age < 29 AND marital_status = 'single' THEN class = approve
//   IF score > 7 THEN Y ~ [decline: 0.8, approve: 0.2]
//
// `FeedbackRule::to_string` emits exactly this format, so parse/print is a
// round-trip (tested).
#pragma once

#include <string>

#include "frote/rules/rule.hpp"

namespace frote {

/// Parse one rule; throws frote::Error with a position-annotated message on
/// malformed input, unknown features/categories/classes, or operators not
/// allowed for the feature type (§3.1).
FeedbackRule parse_rule(const std::string& text, const Schema& schema);

/// Parse a newline-separated list of rules (blank lines and lines starting
/// with '#' are skipped).
std::vector<FeedbackRule> parse_rules(const std::string& text,
                                      const Schema& schema);

}  // namespace frote
