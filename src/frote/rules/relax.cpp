#include "frote/rules/relax.hpp"

#include "frote/rules/ruleset.hpp"

namespace frote {

namespace {
std::size_t support_of(const Clause& clause, const Dataset& data) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (clause.satisfies(data.row(i))) ++n;
  }
  return n;
}
}  // namespace

RelaxationResult relax_rule(const Clause& clause, const Dataset& data,
                            std::size_t min_support) {
  RelaxationResult result;
  result.relaxed = clause;
  result.support = support_of(clause, data);
  // Algorithm 2: relax only while coverage < L.
  while (result.support < min_support) {
    if (result.relaxed.empty()) {
      // Empty clause covers everything; if that is still below min_support
      // the dataset itself is too small — caller must handle.
      result.fully_relaxed = true;
      break;
    }
    // One BFS level: try removing each remaining condition, keep the removal
    // with maximum coverage (lines 8–21). Removing the last condition gives
    // the empty clause with coverage |D| (lines 11–14).
    std::size_t best_support = 0;
    std::size_t best_idx = 0;
    for (std::size_t c = 0; c < result.relaxed.size(); ++c) {
      const Clause candidate = result.relaxed.without(c);
      const std::size_t sup =
          candidate.empty() ? data.size() : support_of(candidate, data);
      if (sup > best_support) {
        best_support = sup;
        best_idx = c;
      }
    }
    result.relaxed = result.relaxed.without(best_idx);
    result.support = best_support;
    ++result.removed_conditions;
    if (result.relaxed.empty()) {
      result.fully_relaxed = true;
      break;
    }
  }
  return result;
}

}  // namespace frote
