// Feedback rules R = (s, π): IF clause s THEN Y ~ π (§3.1).
//
// π is a distribution over class labels; the common deterministic case is a
// Kronecker delta on a target class. Conflict resolution can attach
// *exclusion clauses* to a rule (the "s1 AND NOT s2" construction of §3.1,
// option 1), so coverage is: clause holds AND no exclusion holds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frote/rules/clause.hpp"
#include "frote/util/rng.hpp"

namespace frote {

/// Label distribution π over l classes.
class LabelDistribution {
 public:
  LabelDistribution() = default;

  /// Kronecker delta on `target` (the deterministic case).
  static LabelDistribution deterministic(int target, std::size_t num_classes);
  /// Arbitrary distribution; probabilities must be non-negative, sum ~ 1.
  static LabelDistribution from_probs(std::vector<double> probs);
  /// Uniform mixture (π1 + π2)/2 used by conflict resolution option 2.
  static LabelDistribution mixture(const LabelDistribution& a,
                                   const LabelDistribution& b);

  std::size_t num_classes() const { return probs_.size(); }
  double prob(int label) const;
  const std::vector<double>& probs() const { return probs_; }

  bool is_deterministic() const;
  /// Most probable class (ties broken toward the smaller label).
  int mode() const;

  /// Sample a label from π.
  int sample(Rng& rng) const;

  bool operator==(const LabelDistribution& other) const {
    return probs_ == other.probs_;
  }

 private:
  std::vector<double> probs_;
};

/// A feedback rule with optional exclusions and perturbation provenance.
struct FeedbackRule {
  Clause clause;
  LabelDistribution pi;
  /// Regions carved out by conflict resolution (covered iff clause holds and
  /// no exclusion clause holds).
  std::vector<Clause> exclusions;
  /// The clause this rule was perturbed from (the model-explanation rule),
  /// when known. Overlay-Soft needs this original↔feedback mapping.
  std::optional<Clause> provenance;

  FeedbackRule() = default;
  FeedbackRule(Clause c, LabelDistribution dist)
      : clause(std::move(c)), pi(std::move(dist)) {}

  /// Convenience: deterministic rule IF clause THEN class = target.
  static FeedbackRule deterministic(Clause c, int target,
                                    std::size_t num_classes) {
    return FeedbackRule(std::move(c),
                        LabelDistribution::deterministic(target, num_classes));
  }

  bool covers(std::span<const double> row) const {
    if (!clause.satisfies(row)) return false;
    for (const auto& ex : exclusions) {
      if (ex.satisfies(row)) return false;
    }
    return true;
  }

  /// Target class for deterministic rules; mode of π otherwise.
  int target_class() const { return pi.mode(); }

  std::string to_string(const Schema& schema) const;
};

}  // namespace frote
