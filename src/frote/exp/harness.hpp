// Experiment harness reproducing the paper's protocol (§5.1):
//   dataset → initial model → rule-set explanation → perturbed feedback-rule
//   pool (100 rules, coverage band) → per run: draw a conflict-free FRS,
//   coverage-aware train/test split (tcf), train initial / mod / FROTE-final
//   models, report test-set J̄, MRA and F1.
#pragma once

#include <optional>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/data/generators.hpp"
#include "frote/exp/learners.hpp"
#include "frote/rules/perturb.hpp"

namespace frote {

/// Shared per-dataset state, built once and reused across runs.
struct ExperimentContext {
  UciDataset id = UciDataset::kAdult;
  Dataset data;
  /// Pool of perturbed feedback rules (the paper's 100-rule pools).
  std::vector<FeedbackRule> pool;
  /// Paper's per-iteration generation count η for this dataset (§5.1
  /// Configuration), scaled with the dataset.
  std::size_t default_eta = 20;
};

/// Build the context: generate the dataset at `scale` (fraction of the
/// paper's instance count), train the initial explanation model, induce
/// rules and perturb them into a pool.
ExperimentContext make_context(UciDataset id, double scale,
                               std::uint64_t seed = 42,
                               std::size_t pool_size = 100);

struct RunConfig {
  std::size_t frs_size = 3;
  double tcf = 0.2;
  double outside_train_fraction = 0.8;
  ModStrategy mod = ModStrategy::kRelabel;
  SelectionStrategy selection = SelectionStrategy::kRandom;
  double rule_confidence = 1.0;
  std::size_t tau = 200;  // paper's iteration limit
  double q = 0.5;         // paper's oversampling fraction
  std::size_t k = 5;
  std::size_t eta = 0;  // 0 ⇒ context default
  bool fast_learner = false;
  /// Record test-set J̄ after every accepted iteration (Fig 9).
  bool capture_trace = false;
};

/// Metric triple (J̄, MRA, outside-coverage F1) of one model on the test set.
struct EvalPoint {
  double j_bar = 0.0;
  double mra = 0.0;
  double f1 = 0.0;
  /// Agreement with the *original* test labels inside rule coverage (used by
  /// the probabilistic-rules experiment, Table 6).
  double mra_true = 0.0;
  /// Weighted F1 over the FULL test set against original labels. The Overlay
  /// comparison (Tables 2/7/8) uses this F-Score: hard patches honour the
  /// rules inside coverage at the expense of original-label accuracy there,
  /// which only a full-test F-Score exposes (outside-coverage F1 cannot go
  /// down for a patch that never fires outside coverage).
  double f1_full = 0.0;
  /// J̄ variant with the full-test F-Score as the performance term.
  double j_bar_full = 0.0;
};

struct RunOutcome {
  bool valid = false;  // conflict-free FRS of the requested size existed
  std::size_t frs_size = 0;
  EvalPoint initial;  // model trained on the unmodified training split
  EvalPoint mod;      // after the mod strategy (== initial when mod == none)
  EvalPoint final;    // after FROTE augmentation
  double added_frac = 0.0;  // instances added / |train|
  std::vector<std::pair<std::size_t, double>> test_trace;  // (N, test J̄)
};

/// One full FROTE run per the paper's protocol.
RunOutcome run_frote_once(const ExperimentContext& ctx, LearnerKind learner,
                          const RunConfig& config, std::uint64_t run_seed);

/// Overlay comparison run (§5.2 / Table 2 protocol: 50/50 coverage and
/// outside-coverage splits). Deltas are vs the initial model.
struct OverlayOutcome {
  bool valid = false;
  EvalPoint initial;
  EvalPoint overlay_soft;
  EvalPoint overlay_hard;
  EvalPoint frote;
};
OverlayOutcome run_overlay_once(const ExperimentContext& ctx,
                                LearnerKind learner, const RunConfig& config,
                                std::uint64_t run_seed);

/// Evaluate a model on `test` against `frs` (exposed for tests/examples).
EvalPoint evaluate_model(const Model& model, const FeedbackRuleSet& frs,
                         const Dataset& test);

}  // namespace frote
