#include "frote/exp/learners.hpp"

#include "frote/core/registry.hpp"
#include "frote/util/error.hpp"

namespace frote {

const char* learner_name(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kLR: return "LR";
    case LearnerKind::kRF: return "RF";
    case LearnerKind::kLGBM: return "LGBM";
  }
  return "?";
}

std::vector<LearnerKind> all_learners() {
  return {LearnerKind::kLR, LearnerKind::kRF, LearnerKind::kLGBM};
}

std::unique_ptr<Learner> make_learner(LearnerKind kind, std::uint64_t seed,
                                      bool fast, int threads) {
  // The enum is a typed view onto the shared registry (exp/registry.hpp);
  // the paper hyper-parameters live in the registry's factories.
  const char* name = nullptr;
  switch (kind) {
    case LearnerKind::kLR: name = "lr"; break;
    case LearnerKind::kRF: name = "rf"; break;
    case LearnerKind::kLGBM: name = "gbdt"; break;
  }
  if (name == nullptr) throw Error("unknown learner kind");
  LearnerSpec spec;
  spec.seed = seed;
  spec.fast = fast;
  spec.threads = threads;
  return make_named_learner(name, spec).value();
}

}  // namespace frote
