#include "frote/exp/learners.hpp"

#include "frote/ml/gbdt.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/random_forest.hpp"
#include "frote/util/error.hpp"

namespace frote {

const char* learner_name(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kLR: return "LR";
    case LearnerKind::kRF: return "RF";
    case LearnerKind::kLGBM: return "LGBM";
  }
  return "?";
}

std::vector<LearnerKind> all_learners() {
  return {LearnerKind::kLR, LearnerKind::kRF, LearnerKind::kLGBM};
}

std::unique_ptr<Learner> make_learner(LearnerKind kind, std::uint64_t seed,
                                      bool fast) {
  switch (kind) {
    case LearnerKind::kLR: {
      LogisticRegressionConfig config;
      config.max_iter = fast ? 120 : 500;  // paper: max_iter = 500
      return std::make_unique<LogisticRegressionLearner>(config);
    }
    case LearnerKind::kRF: {
      RandomForestConfig config;
      config.max_depth = 3;  // paper's setting
      config.num_trees = fast ? 15 : 50;
      config.seed = seed;
      return std::make_unique<RandomForestLearner>(config);
    }
    case LearnerKind::kLGBM: {
      GbdtConfig config;
      config.num_rounds = fast ? 15 : 60;
      config.seed = seed;
      return std::make_unique<GbdtLearner>(config);
    }
  }
  throw Error("unknown learner kind");
}

}  // namespace frote
