// Learner factory for the experiment harness: the paper's three
// classification algorithms (§5.1) — scikit-learn RF (max_depth=3) and LR
// (max_iter=500), and LightGBM — mapped to this library's implementations.
// `fast` selects reduced capacities for smoke tests (FROTE_FAST).
#pragma once

#include <memory>
#include <vector>

#include "frote/ml/model.hpp"

namespace frote {

enum class LearnerKind { kLR, kRF, kLGBM };

const char* learner_name(LearnerKind kind);
std::vector<LearnerKind> all_learners();

/// `threads` parallelises training (0 ⇒ FROTE_NUM_THREADS); the trained
/// model is identical for every thread count.
std::unique_ptr<Learner> make_learner(LearnerKind kind, std::uint64_t seed,
                                      bool fast = false, int threads = 0);

}  // namespace frote
