#include "frote/exp/harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "frote/baselines/overlay.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/spec.hpp"
#include "frote/data/split.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/rules/induction.hpp"

namespace frote {

namespace {

/// The run's declarative description: every engine and learner the harness
/// builds resolves through EngineSpec → from_spec / make_spec_learner, the
/// same registry path the CLI and the frote_run driver use. The perturbed
/// rule set itself is installed as in-process objects (Builder::rules)
/// rather than spec text: the harness rules carry perturbation provenance
/// the textual grammar does not encode.
EngineSpec harness_spec(const ExperimentContext& ctx, LearnerKind learner,
                        const RunConfig& config, std::uint64_t engine_seed,
                        std::uint64_t learner_seed) {
  EngineSpec spec;
  spec.tau = config.tau;
  spec.q = config.q;
  spec.k = config.k;
  spec.eta = config.eta != 0 ? config.eta : ctx.default_eta;
  spec.seed = engine_seed;
  spec.mod_strategy = mod_strategy_name(config.mod);
  spec.rule_confidence = config.rule_confidence;
  spec.selector =
      config.selection == SelectionStrategy::kIp ? "ip" : "random";
  switch (learner) {
    case LearnerKind::kLR: spec.learner = "lr"; break;
    case LearnerKind::kRF: spec.learner = "rf"; break;
    case LearnerKind::kLGBM: spec.learner = "gbdt"; break;
  }
  spec.learner_fast = config.fast_learner;
  spec.learner_seed = learner_seed;
  return spec;
}

/// Paper §5.1 Configuration: η = 200 for Adult; 50 for Nursery, Mushroom,
/// Splice, Wine; 20 for Car, Contraceptive, Breast Cancer.
std::size_t paper_eta(UciDataset id) {
  switch (id) {
    case UciDataset::kAdult: return 200;
    case UciDataset::kNursery:
    case UciDataset::kMushroom:
    case UciDataset::kSplice:
    case UciDataset::kWineQuality: return 50;
    case UciDataset::kCar:
    case UciDataset::kContraceptive:
    case UciDataset::kBreastCancer: return 20;
  }
  return 20;
}

}  // namespace

ExperimentContext make_context(UciDataset id, double scale,
                               std::uint64_t seed, std::size_t pool_size) {
  FROTE_CHECK(scale > 0.0 && scale <= 1.0);
  ExperimentContext ctx;
  ctx.id = id;
  const auto& info = dataset_info(id);
  const auto size = std::max<std::size_t>(
      300, static_cast<std::size_t>(scale *
                                    static_cast<double>(info.paper_size)));
  ctx.data = make_dataset(id, std::min(size, info.paper_size), seed);
  ctx.default_eta = std::max<std::size_t>(
      5, static_cast<std::size_t>(
             std::ceil(scale * static_cast<double>(paper_eta(id)))));

  // Initial explanation model (the model whose rules the simulated user
  // edits): a small random forest is cheap and rule-friendly.
  auto explainer = make_learner(LearnerKind::kRF, derive_seed(seed, 11),
                                /*fast=*/true);
  auto model = explainer->train(ctx.data);
  // BRCG produces few, high-support rules; mirror that so the perturbation
  // provenance regions have realistic (large) coverage.
  InductionConfig induction;
  induction.min_rule_coverage =
      std::max<std::size_t>(12, ctx.data.size() / 20);
  induction.max_rules_per_class = 4;
  auto seeds = induce_rules(ctx.data, *model, induction);
  if (seeds.empty()) {
    // High-support induction can come up empty on hard-to-describe models;
    // fall back to finer-grained rules rather than failing the experiment.
    induction.min_rule_coverage =
        std::max<std::size_t>(8, ctx.data.size() / 100);
    induction.max_rules_per_class = 8;
    seeds = induce_rules(ctx.data, *model, induction);
  }
  FROTE_CHECK_MSG(!seeds.empty(), "rule induction produced no seed rules");

  PerturbConfig perturb;
  perturb.pool_size = pool_size;
  Rng pool_rng(derive_seed(seed, 13));
  ctx.pool = generate_feedback_pool(ctx.data, seeds, perturb, pool_rng);
  FROTE_CHECK_MSG(!ctx.pool.empty(), "perturbation produced an empty pool");
  return ctx;
}

EvalPoint evaluate_model(const Model& model, const FeedbackRuleSet& frs,
                         const Dataset& test) {
  EvalPoint point;
  const auto breakdown = evaluate_objective(model, frs, test);
  point.j_bar = breakdown.j_bar(breakdown.coverage_prob);
  point.mra = breakdown.mra;
  point.f1 = breakdown.outside_f1;
  // Agreement with original labels inside coverage (Table 6's MRA).
  std::size_t covered = 0, agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto row = test.row(i);
    if (frs.first_covering_rule(row) < 0) continue;
    ++covered;
    if (model.predict(row) == test.label(i)) ++agree;
  }
  point.mra_true = covered > 0
                       ? static_cast<double>(agree) /
                             static_cast<double>(covered)
                       : 1.0;
  // Full-test F-Score against original labels (Overlay-table metric).
  ConfusionMatrix cm(test.num_classes());
  for (std::size_t i = 0; i < test.size(); ++i) {
    cm.add(test.label(i), model.predict(test.row(i)));
  }
  point.f1_full = cm.weighted_f1();
  point.j_bar_full = breakdown.coverage_prob * point.mra +
                     (1.0 - breakdown.coverage_prob) * point.f1_full;
  return point;
}

RunOutcome run_frote_once(const ExperimentContext& ctx, LearnerKind learner,
                          const RunConfig& config, std::uint64_t run_seed) {
  RunOutcome outcome;
  Rng rng(derive_seed(run_seed, 17));

  FeedbackRuleSet frs = sample_conflict_free_frs(
      ctx.pool, config.frs_size, ctx.data.schema(), rng);
  if (frs.empty()) return outcome;  // |F| unattainable conflict-free
  outcome.frs_size = frs.size();

  const auto coverage_indices = frs.coverage_union(ctx.data);
  auto split = coverage_split(ctx.data, coverage_indices, config.tcf,
                              config.outside_train_fraction, rng);
  if (split.train.empty() || split.test.empty()) return outcome;

  const EngineSpec spec = harness_spec(ctx, learner, config,
                                       derive_seed(run_seed, 23),
                                       derive_seed(run_seed, 19));
  const auto learner_ptr = make_spec_learner(spec).value();

  // Initial model on the unmodified training split.
  const auto initial_model = learner_ptr->train(split.train);
  outcome.initial = evaluate_model(*initial_model, frs, split.test);

  // Mod-strategy model.
  if (config.mod == ModStrategy::kNone) {
    outcome.mod = outcome.initial;
  } else {
    Dataset modded = split.train;
    apply_mod_strategy(modded, frs, config.mod);
    if (modded.empty()) return outcome;
    const auto mod_model = learner_ptr->train(modded);
    outcome.mod = evaluate_model(*mod_model, frs, split.test);
  }

  // FROTE augmentation through the declarative spec path.
  const auto engine = Engine::Builder::from_spec(spec, ctx.data.schema())
                          .value()
                          .rules(frs)
                          .build()
                          .value();
  auto session = engine.open(split.train, *learner_ptr).value();
  if (config.capture_trace) {
    auto tracer = std::make_shared<CallbackObserver>();
    tracer->accept = [&](const Model& model, std::size_t added) {
      outcome.test_trace.emplace_back(added,
                                      test_j_bar(model, frs, split.test));
    };
    session.add_observer(std::move(tracer));
  }
  session.run();
  const auto result = std::move(session).result();
  outcome.final = evaluate_model(*result.model, frs, split.test);
  outcome.added_frac = static_cast<double>(result.instances_added) /
                       static_cast<double>(split.train.size());
  outcome.valid = true;
  return outcome;
}

OverlayOutcome run_overlay_once(const ExperimentContext& ctx,
                                LearnerKind learner, const RunConfig& config,
                                std::uint64_t run_seed) {
  OverlayOutcome outcome;
  Rng rng(derive_seed(run_seed, 29));

  FeedbackRuleSet frs = sample_conflict_free_frs(
      ctx.pool, config.frs_size, ctx.data.schema(), rng);
  if (frs.empty()) return outcome;

  // Table 2 protocol: 50% of the coverage population in training, 50/50
  // outside-coverage split.
  const auto coverage_indices = frs.coverage_union(ctx.data);
  auto split = coverage_split(ctx.data, coverage_indices, /*tcf=*/0.5,
                              /*outside_train_fraction=*/0.5, rng);
  if (split.train.empty() || split.test.empty()) return outcome;

  const EngineSpec spec = harness_spec(ctx, learner, config,
                                       derive_seed(run_seed, 37),
                                       derive_seed(run_seed, 31));
  const auto learner_ptr = make_spec_learner(spec).value();
  const auto initial_model = learner_ptr->train(split.train);
  outcome.initial = evaluate_model(*initial_model, frs, split.test);

  const OverlayModel soft(*initial_model, frs, OverlayMode::kSoft,
                          ctx.data.schema());
  const OverlayModel hard(*initial_model, frs, OverlayMode::kHard,
                          ctx.data.schema());
  outcome.overlay_soft = evaluate_model(soft, frs, split.test);
  outcome.overlay_hard = evaluate_model(hard, frs, split.test);

  const auto engine = Engine::Builder::from_spec(spec, ctx.data.schema())
                          .value()
                          .rules(frs)
                          .build()
                          .value();
  auto session = engine.open(split.train, *learner_ptr).value();
  session.run();
  const auto result = std::move(session).result();
  outcome.frote = evaluate_model(*result.model, frs, split.test);
  outcome.valid = true;
  return outcome;
}

}  // namespace frote
