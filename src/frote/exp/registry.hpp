// Forwarding header — the component registry moved to core/registry.hpp
// (PR 5): the engine core resolves declarative specs through it, so it
// lives below the experiment layer now. Kept so existing includes of
// "frote/exp/registry.hpp" keep compiling; prefer the core path in new
// code.
#pragma once

#include "frote/core/registry.hpp"
