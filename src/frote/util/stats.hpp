// Summary statistics used by the experiment harness: mean ± std for the
// paper's tables, and box-plot statistics (median, IQR, 1.5×IQR whiskers)
// for its figures.
#pragma once

#include <cstddef>
#include <vector>

namespace frote {

/// Numerically stable (Welford) accumulator for mean / sample std.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Box-plot summary matching matplotlib's default convention used in the
/// paper's figures: quartiles by linear interpolation, whiskers at the most
/// extreme data points within 1.5×IQR of the box.
struct BoxStats {
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double whisker_lo = 0.0;
  double whisker_hi = 0.0;
  std::size_t n = 0;
};

/// Linear-interpolation percentile (q in [0,100]) of an unsorted sample.
double percentile(std::vector<double> values, double q);

/// Compute box-plot stats of an unsorted sample. Requires non-empty input.
BoxStats box_stats(std::vector<double> values);

double mean_of(const std::vector<double>& values);
double stddev_of(const std::vector<double>& values);

}  // namespace frote
