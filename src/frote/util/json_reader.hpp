// Field-wise JSON object reader shared by every document type in the
// declarative layer (core/spec.cpp, core/checkpoint.cpp).
//
// Two read modes implement the two halves of the docs/DESIGN.md §6
// forward-compat policy: `read()` leaves the caller's default in place
// when the key is absent (spec documents — new writers may add keys, old
// ones omit them), `require()` records a problem (checkpoint documents —
// state with missing pieces is unusable). Wrong-typed values accumulate
// into one kParseError either way; unknown keys are deliberately ignored.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "frote/util/error.hpp"
#include "frote/util/json.hpp"

namespace frote {

class JsonFieldReader {
 public:
  JsonFieldReader(const JsonValue& json, std::string what)
      : json_(json), what_(std::move(what)) {
    if (!json.is_object()) {
      problems_ = what_ + " must be a JSON object";
    }
  }

  template <typename T, typename Get>
  void read_with(const char* key, T& out, bool required, Get&& get) {
    if (!json_.is_object()) return;
    const JsonValue* value = json_.find(key);
    if (value == nullptr) {
      if (required) add_problem(std::string("missing \"") + key + "\"");
      return;
    }
    try {
      out = get(*value);
    } catch (const Error& e) {
      add_problem(std::string(key) + ": " + e.what());
    }
  }

  /// Optional field: absent keys keep the caller's default.
  template <typename T>
  void read(const char* key, T& out) {
    read_field(key, out, /*required=*/false);
  }
  /// Required field: absent keys are a problem.
  template <typename T>
  void require(const char* key, T& out) {
    read_field(key, out, /*required=*/true);
  }

  void add_problem(std::string problem) {
    if (!problems_.empty()) problems_ += "; ";
    problems_ += problem;
  }

  const JsonValue* find(const char* key) const { return json_.find(key); }

  bool ok() const { return problems_.empty(); }
  FroteError take_error() const {
    return FroteError::parse_error("invalid " + what_ + ": " + problems_);
  }

 private:
  void read_field(const char* key, bool& out, bool required) {
    read_with(key, out, required,
              [](const JsonValue& v) { return v.as_bool(); });
  }
  void read_field(const char* key, double& out, bool required) {
    read_with(key, out, required,
              [](const JsonValue& v) { return v.as_double(); });
  }
  void read_field(const char* key, std::string& out, bool required) {
    read_with(key, out, required,
              [](const JsonValue& v) { return v.as_string(); });
  }
  // std::size_t fields bind here too (same 64-bit type on this platform).
  void read_field(const char* key, std::uint64_t& out, bool required) {
    read_with(key, out, required,
              [](const JsonValue& v) { return v.as_uint64(); });
  }
  void read_field(const char* key, int& out, bool required) {
    read_with(key, out, required, [](const JsonValue& v) {
      const std::int64_t raw = v.as_int64();
      if (raw < std::numeric_limits<int>::min() ||
          raw > std::numeric_limits<int>::max()) {
        throw Error("integer out of int range");
      }
      return static_cast<int>(raw);
    });
  }

  const JsonValue& json_;
  std::string what_;
  std::string problems_;
};

}  // namespace frote
