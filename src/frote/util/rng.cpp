#include "frote/util/rng.hpp"

#include <cmath>
#include <numeric>

namespace frote {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FROTE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FROTE_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  FROTE_CHECK_MSG(total > 0.0, "all categorical weights are zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return last positive slot
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t count) {
  FROTE_CHECK_MSG(count <= n, "cannot sample " << count << " from " << n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(pool[i], pool[i + index(n - i)]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace frote
