#include "frote/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "frote/util/error.hpp"

namespace frote {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FROTE_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  FROTE_CHECK_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt_pm(double mean, double std, int precision) {
  return fmt(mean, precision) + " ± " + fmt(std, precision);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    const bool needs_quote =
        f.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      os_ << '"';
      for (char ch : f) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << f;
    }
    if (i + 1 < fields.size()) os_ << ',';
  }
  os_ << '\n';
}

}  // namespace frote
