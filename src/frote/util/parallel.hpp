// Deterministic parallel execution for the retrain/eval hot paths.
//
// The FROTE loop is dominated by model retraining and dataset-wide
// evaluation; exploiting cores must not cost reproducibility, because
// tests/test_determinism.cpp locks seed → bit-identical output. The
// primitives here make `threads = 1` and `threads = N` bit-identical *by
// construction*:
//
//   - Work over [0, n) is split into fixed chunk boundaries that depend only
//     on (n, grain) — never on the thread count. Chunk c covers
//     [c·grain, min(n, (c+1)·grain)).
//   - parallel_reduce combines per-chunk partial results in ascending chunk
//     order, so floating-point accumulation order is a pure function of
//     (n, grain) too. The serial path executes the *same* chunked plan
//     inline; there is no separate single-threaded code shape to diverge.
//
// Thread count resolution (resolve_threads): an explicit per-call request
// wins; otherwise the process default applies — set_default_threads(n), or
// the FROTE_NUM_THREADS environment variable, or 1 (today's serial
// behaviour). The shared pool is lazily initialized on the first parallel
// region that actually wants >1 threads; a nested parallel region executes
// inline on the calling worker (same chunk plan, sequential), so components
// can compose without deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace frote {

/// Effective thread count for a parallel region. `requested` > 0 wins;
/// 0 defers to the process default (set_default_threads, else the
/// FROTE_NUM_THREADS environment variable, else 1). Always >= 1.
int resolve_threads(int requested);

/// Process-wide default used when a component's `threads` knob is 0.
/// `n` > 0 pins the default; n == 0 restores env-var resolution.
void set_default_threads(int n);

/// The process default that resolve_threads(0) would return.
int default_threads();

/// True while the calling thread is executing inside a parallel region;
/// nested regions run inline (same chunk plan, sequential).
bool in_parallel_region();

/// Number of fixed chunks for n items at the given grain (>= 1 items each).
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

namespace detail {
/// Execute fn(chunk) for every chunk in [0, chunks) on the shared pool,
/// using up to `threads` threads including the caller. Blocks until all
/// chunks completed; rethrows the first exception a chunk threw.
void pool_run(std::size_t chunks, int threads,
              const std::function<void(std::size_t)>& fn);
}  // namespace detail

/// Run body(begin, end) over fixed chunks of [0, n). Boundaries depend only
/// on (n, grain); chunks may execute concurrently and in any order, so the
/// body must only touch disjoint per-index (or per-chunk) state.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, int threads, Body&& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  const int t = resolve_threads(threads);
  if (t <= 1 || chunks <= 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }
  detail::pool_run(chunks, t, [&](std::size_t c) {
    body(c * grain, std::min(n, (c + 1) * grain));
  });
}

/// Chunked reduction: acc starts from `init`; every chunk computes
/// map(begin, end) -> T independently, and combine(acc, partial) folds the
/// partials in ascending chunk order. Because the fold order is fixed by
/// (n, grain) alone, the result is bit-identical for every thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, int threads, T init,
                  Map&& map, Combine&& combine) {
  T acc = std::move(init);
  if (n == 0) return acc;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  const int t = resolve_threads(threads);
  if (t <= 1 || chunks <= 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      combine(acc, map(c * grain, std::min(n, (c + 1) * grain)));
    }
    return acc;
  }
  std::vector<std::optional<T>> partials(chunks);
  detail::pool_run(chunks, t, [&](std::size_t c) {
    partials[c].emplace(map(c * grain, std::min(n, (c + 1) * grain)));
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    combine(acc, std::move(*partials[c]));
  }
  return acc;
}

}  // namespace frote
