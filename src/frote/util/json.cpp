#include "frote/util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

namespace frote {

// ---------------------------------------------------------------------------
// JsonValue accessors

namespace {
[[noreturn]] void type_failure(const char* wanted, JsonType got) {
  static const char* const kNames[] = {"null",   "bool",  "int",   "uint",
                                       "double", "string", "array", "object"};
  throw Error(std::string("JSON value is ") +
              kNames[static_cast<std::size_t>(got)] + ", expected " + wanted);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&node_)) return *b;
  type_failure("bool", type());
}

double JsonValue::as_double() const {
  switch (type()) {
    case JsonType::kInt:
      return static_cast<double>(std::get<std::int64_t>(node_));
    case JsonType::kUint:
      return static_cast<double>(std::get<std::uint64_t>(node_));
    case JsonType::kDouble:
      return std::get<double>(node_);
    default:
      type_failure("number", type());
  }
}

std::int64_t JsonValue::as_int64() const {
  if (const auto* i = std::get_if<std::int64_t>(&node_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&node_)) {
    if (*u <= static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
      return static_cast<std::int64_t>(*u);
    }
    throw Error("JSON integer out of int64 range");
  }
  type_failure("integer", type());
}

std::uint64_t JsonValue::as_uint64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&node_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&node_)) {
    if (*i >= 0) return static_cast<std::uint64_t>(*i);
    throw Error("JSON integer is negative, expected unsigned");
  }
  type_failure("unsigned integer", type());
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&node_)) return *s;
  type_failure("string", type());
}

const JsonValue::Array& JsonValue::items() const {
  if (const auto* a = std::get_if<Array>(&node_)) return *a;
  type_failure("array", type());
}

JsonValue::Array& JsonValue::items() {
  if (auto* a = std::get_if<Array>(&node_)) return *a;
  type_failure("array", type());
}

const JsonValue::Object& JsonValue::members() const {
  if (const auto* o = std::get_if<Object>(&node_)) return *o;
  type_failure("object", type());
}

JsonValue::Object& JsonValue::members() {
  if (auto* o = std::get_if<Object>(&node_)) return *o;
  type_failure("object", type());
}

void JsonValue::push_back(JsonValue value) {
  items().push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  Object& object = members();
  for (auto& [existing, slot] : object) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
}

bool JsonValue::operator==(const JsonValue& other) const {
  const bool this_int =
      type() == JsonType::kInt || type() == JsonType::kUint;
  const bool other_int =
      other.type() == JsonType::kInt || other.type() == JsonType::kUint;
  if (this_int && other_int) {
    const bool this_negative =
        type() == JsonType::kInt && std::get<std::int64_t>(node_) < 0;
    const bool other_negative = other.type() == JsonType::kInt &&
                                std::get<std::int64_t>(other.node_) < 0;
    if (this_negative != other_negative) return false;
    if (this_negative) {
      return std::get<std::int64_t>(node_) ==
             std::get<std::int64_t>(other.node_);
    }
    return as_uint64() == other.as_uint64();
  }
  return node_ == other.node_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* object = std::get_if<Object>(&node_);
  if (object == nullptr) return nullptr;
  for (const auto& [existing, slot] : *object) {
    if (existing == key) return &slot;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<JsonValue, FroteError> parse() {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value, 0)) return take_error();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after the top-level value");
      return take_error();
    }
    return value;
  }

 private:
  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 256 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        out = JsonValue(nullptr);
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') return fail("expected '\"' to start an object key");
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) {
        return fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members().emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items().push_back(std::move(value));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (!parse_escape(out)) return false;
        continue;
      }
      if (c < 0x20) {
        return fail("raw control character in string (use \\u escapes)");
      }
      if (c < 0x80) {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (!copy_utf8_sequence(out)) return false;
    }
  }

  bool parse_escape(std::string& out) {
    ++pos_;  // backslash
    if (pos_ >= text_.size()) return fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out.push_back('"'); return true;
      case '\\': out.push_back('\\'); return true;
      case '/': out.push_back('/'); return true;
      case 'b': out.push_back('\b'); return true;
      case 'f': out.push_back('\f'); return true;
      case 'n': out.push_back('\n'); return true;
      case 'r': out.push_back('\r'); return true;
      case 't': out.push_back('\t'); return true;
      case 'u': {
        unsigned code = 0;
        if (!parse_hex4(code)) return false;
        if (code >= 0xD800 && code <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00..\uDFFF.
          if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
              text_[pos_ + 1] != 'u') {
            return fail("unpaired high surrogate");
          }
          pos_ += 2;
          unsigned low = 0;
          if (!parse_hex4(low)) return false;
          if (low < 0xDC00 || low > 0xDFFF) {
            return fail("invalid low surrogate");
          }
          const unsigned cp =
              0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          append_utf8(out, cp);
          return true;
        }
        if (code >= 0xDC00 && code <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        append_utf8(out, code);
        return true;
      }
      default:
        return fail(std::string("invalid escape '\\") + e + "'");
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid hex digit in \\u escape");
      out = (out << 4) | digit;
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// Validate and copy one multi-byte UTF-8 sequence starting at pos_.
  /// Overlong encodings, surrogates and values beyond U+10FFFF are rejected.
  bool copy_utf8_sequence(std::string& out) {
    const unsigned char lead = static_cast<unsigned char>(text_[pos_]);
    int continuation;
    unsigned cp, min_cp;
    if ((lead & 0xE0) == 0xC0) {
      continuation = 1; cp = lead & 0x1Fu; min_cp = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      continuation = 2; cp = lead & 0x0Fu; min_cp = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      continuation = 3; cp = lead & 0x07u; min_cp = 0x10000;
    } else {
      return fail("invalid UTF-8 lead byte in string");
    }
    if (pos_ + static_cast<std::size_t>(continuation) >= text_.size()) {
      return fail("truncated UTF-8 sequence in string");
    }
    for (int i = 1; i <= continuation; ++i) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_ + i]);
      if ((c & 0xC0) != 0x80) {
        return fail("invalid UTF-8 continuation byte in string");
      }
      cp = (cp << 6) | (c & 0x3Fu);
    }
    if (cp < min_cp) return fail("overlong UTF-8 encoding in string");
    if (cp > 0x10FFFF) return fail("UTF-8 code point beyond U+10FFFF");
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      return fail("UTF-8 encoded surrogate in string");
    }
    out.append(text_.substr(pos_, 1 + static_cast<std::size_t>(continuation)));
    pos_ += 1 + static_cast<std::size_t>(continuation);
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: "0" alone or a non-zero-leading digit run.
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_ = start;
        return fail("leading zeros are not allowed");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          out = JsonValue(static_cast<std::int64_t>(v));
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          out = JsonValue(static_cast<std::uint64_t>(v));
          return true;
        }
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    if (!std::isfinite(v)) {
      pos_ = start;
      return fail("number overflows a double");
    }
    out = JsonValue(v);
    return true;
  }

  bool consume_literal(const char* literal) {
    const std::string_view expect(literal);
    if (text_.substr(pos_, expect.size()) != expect) {
      return fail("invalid value");
    }
    pos_ += expect.size();
    return true;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool fail(std::string what) {
    // Only the first failure is reported (later frames unwind through it).
    if (!error_message_.empty()) return false;
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    error_message_ = "JSON parse error at " + std::to_string(line) + ":" +
                     std::to_string(column) + ": " + std::move(what);
    return false;
  }

  FroteError take_error() {
    return FroteError::parse_error(std::move(error_message_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_message_;
};

}  // namespace

Expected<JsonValue, FroteError> json_parse(std::string_view text) {
  return Parser(text).parse();
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void write_escaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void write_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    throw Error("JSON cannot represent a non-finite double");
  }
  // 17 significant digits round-trip any IEEE-754 double exactly through a
  // correctly-rounded strtod (the checkpoint bit-identity contract).
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
  // Keep the number recognisably floating-point so the parser restores the
  // same kind (pure-integer text would come back as kInt/kUint).
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

bool all_scalars(const JsonValue::Array& array) {
  for (const auto& item : array) {
    if (item.is_array() || item.is_object()) return false;
  }
  return true;
}

void write_value(const JsonValue& value, int indent, int depth,
                 std::string& out) {
  const bool pretty = indent > 0;
  const auto newline_indent = [&](int levels) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (value.type()) {
    case JsonType::kNull:
      out += "null";
      return;
    case JsonType::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonType::kInt:
      out += std::to_string(value.as_int64());
      return;
    case JsonType::kUint:
      out += std::to_string(value.as_uint64());
      return;
    case JsonType::kDouble:
      write_double(value.as_double(), out);
      return;
    case JsonType::kString:
      write_escaped(value.as_string(), out);
      return;
    case JsonType::kArray: {
      const auto& array = value.items();
      if (array.empty()) {
        out += "[]";
        return;
      }
      // Scalar-only arrays (rows of numbers) stay on one line even when
      // pretty-printing; nested structures get one element per line.
      const bool inline_array = !pretty || all_scalars(array);
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (!inline_array) {
          newline_indent(depth + 1);
        } else if (pretty && i > 0) {
          out.push_back(' ');
        }
        write_value(array[i], indent, depth + 1, out);
      }
      if (!inline_array) newline_indent(depth);
      out.push_back(']');
      return;
    }
    case JsonType::kObject: {
      const auto& object = value.members();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_indent(depth + 1);
        write_escaped(object[i].first, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(object[i].second, indent, depth + 1, out);
      }
      if (pretty) newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string json_dump(const JsonValue& value, int indent) {
  std::string out;
  write_value(value, indent, 0, out);
  return out;
}

}  // namespace frote
