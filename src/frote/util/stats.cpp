#include "frote/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/error.hpp"

namespace frote {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  FROTE_CHECK(n_ > 0);
  return mean_;
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double percentile(std::vector<double> values, double q) {
  FROTE_CHECK(!values.empty());
  FROTE_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BoxStats box_stats(std::vector<double> values) {
  FROTE_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  BoxStats b;
  b.n = values.size();
  auto interp = [&](double q) {
    const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  b.median = interp(50.0);
  b.q1 = interp(25.0);
  b.q3 = interp(75.0);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = values.back();
  b.whisker_hi = values.front();
  for (double v : values) {
    if (v >= lo_fence) {
      b.whisker_lo = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  return b;
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

}  // namespace frote
