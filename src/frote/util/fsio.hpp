// Crash-consistent small-file IO shared by every subsystem that persists
// JSON artifacts (core/runplan.cpp run directories, core/session_pool.cpp
// checkpoint spool). One implementation so the durability contract — a
// final path only ever holds complete content — cannot drift.
#pragma once

#include <filesystem>
#include <string>

namespace frote {

/// Write tmp file + atomic rename: readers (including a crashed-and-
/// restarted process) never observe a torn file. Throws frote::Error when
/// the content cannot be written (e.g. full disk).
void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content);

/// Slurp a file; false when it does not exist or cannot be opened.
bool read_file(const std::filesystem::path& path, std::string& out);

}  // namespace frote
