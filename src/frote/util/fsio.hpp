// Crash-consistent small-file IO shared by every subsystem that persists
// JSON artifacts (core/runplan.cpp run directories, core/session_pool.cpp
// checkpoint spool). One implementation so the durability contract — a
// final path only ever holds complete content, durably — cannot drift.
//
// Two tiers:
//   * write_file_atomic / read_file — tmp + fsync(file) + rename +
//     fsync(dir): a reader (including a crashed-and-restarted process)
//     never observes a torn file, and a completed write survives power
//     loss. Content bytes are exactly what the caller passed.
//   * write_file_durable / read_file_validated — the same, plus a
//     length+FNV-1a-64 integrity footer appended to the stored bytes and
//     checked+stripped on read, so a reader can *prove* the file is the
//     complete artifact one writer produced (bit rot, truncation by a
//     broken filesystem, or a concurrent non-frote writer all surface as
//     kCorrupt instead of as parse errors or silent garbage). The spool
//     and frote_run checkpoints use this tier.
//
// Every syscall here is a registered fault point (util/faultsim.hpp:
// fsio.write / fsio.fsync / fsio.close / fsio.rename / fsio.fsync_dir /
// fsio.read), which is how the chaos suite crashes the daemon inside the
// write protocol and proves the atomicity claim above.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace frote {

/// Write tmp file + fsync + atomic rename + directory fsync. Throws
/// frote::Error when the content cannot be written durably (full disk,
/// failed fsync/close — errors are surfaced, never swallowed); the
/// destination is untouched on any failure before the rename.
void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content);

/// Slurp a file; false when it does not exist or cannot be opened.
bool read_file(const std::filesystem::path& path, std::string& out);

/// The integrity footer appended by write_file_durable:
///   "#frote-integrity v1 len=<decimal> fnv1a64=<16 hex digits>\n"
/// over the content bytes that precede it.
std::string integrity_footer(std::string_view content);

/// write_file_atomic + integrity footer.
void write_file_durable(const std::filesystem::path& path,
                        const std::string& content);

enum class ValidatedRead {
  kOk,       // footer present and consistent; `out` holds the content
  kMissing,  // no such file
  kCorrupt,  // torn, truncated, bit-flipped, or not a durable frote file
};

/// Read a write_file_durable file: verify and strip the footer. On kOk,
/// `out` is exactly the content the writer passed; on kCorrupt, `out` is
/// unspecified and the caller should quarantine the file.
ValidatedRead read_file_validated(const std::filesystem::path& path,
                                  std::string& out);

/// Move a corrupt file aside to "<path>.corrupt" (replacing any previous
/// quarantine) so it stops poisoning readers but stays inspectable.
/// Returns the quarantine path; best-effort — failures are swallowed, the
/// caller is already on an error path.
std::filesystem::path quarantine_file(const std::filesystem::path& path);

}  // namespace frote
