#include "frote/util/faultsim.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "frote/util/env.hpp"
#include "frote/util/hash.hpp"
#include "frote/util/rng.hpp"

namespace frote::faultsim {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Action { kFail, kKill };

struct PointState {
  std::string point;
  bool nth_mode = false;
  std::uint64_t nth = 0;     // 1-based hit index to fire on (nth mode)
  double prob = 0.0;         // per-hit probability (prob mode)
  Action action = Action::kFail;
  Rng rng{0};                // per-point stream (prob mode)
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
};

/// All slow-path state behind one mutex: fault points fire from the pool's
/// worker threads (checkpoint_all) as well as the frontend thread.
struct Config {
  std::mutex m;
  std::vector<PointState> points;
};

Config& config() {
  static Config instance;
  return instance;
}

PointState* find_point(Config& cfg, const char* point) {
  for (PointState& state : cfg.points) {
    if (state.point == point) return &state;
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& fault_points() {
  static const std::vector<std::string> points = {
      "fsio.write", "fsio.fsync",  "fsio.close", "fsio.rename",
      "fsio.fsync_dir", "fsio.read", "net.accept", "net.read",
      "net.write",  "pool.evict", "pool.restore",
  };
  return points;
}

bool is_fault_point(const std::string& name) {
  const auto& points = fault_points();
  return std::find(points.begin(), points.end(), name) != points.end();
}

namespace detail {

bool should_fail_slow(const char* point) {
  Config& cfg = config();
  Action action = Action::kFail;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(cfg.m);
    PointState* state = find_point(cfg, point);
    if (state == nullptr) return false;
    ++state->hits;
    if (state->nth_mode) {
      fire = state->hits == state->nth;
    } else {
      // Schedule purity: the draw for hit N is the Nth draw of the
      // point's own stream, whatever other points are doing.
      fire = state->rng.uniform() < state->prob;
    }
    if (fire) {
      ++state->triggers;
      action = state->action;
    }
  }
  if (fire && action == Action::kKill) {
    // A crash, not an exit: no unwinding, no atexit, no buffered flushes —
    // the process dies exactly at the fault point, like power loss.
    ::kill(::getpid(), SIGKILL);
  }
  return fire;
}

}  // namespace detail

void configure(const std::string& spec, std::uint64_t seed) {
  std::vector<PointState> points;
  std::size_t begin = 0;
  while (begin <= spec.size() && !spec.empty()) {
    const std::size_t end = std::min(spec.find(',', begin), spec.size());
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      throw Error("fault spec: empty entry in \"" + spec + "\"");
    }

    // point ":" mode [":" action]
    const std::size_t first = entry.find(':');
    if (first == std::string::npos) {
      throw Error("fault spec entry \"" + entry +
                  "\" needs \"point:mode[:action]\"");
    }
    PointState state;
    state.point = entry.substr(0, first);
    if (!is_fault_point(state.point)) {
      throw Error("fault spec: unknown fault point \"" + state.point + "\"");
    }
    const std::size_t second = entry.find(':', first + 1);
    const std::string mode =
        entry.substr(first + 1, second == std::string::npos
                                    ? std::string::npos
                                    : second - first - 1);
    const std::string action =
        second == std::string::npos ? "fail" : entry.substr(second + 1);

    const auto parse_tail = [&](const std::string& prefix) -> std::string {
      return mode.substr(prefix.size());
    };
    try {
      if (mode.rfind("nth=", 0) == 0) {
        std::size_t used = 0;
        const std::string tail = parse_tail("nth=");
        const unsigned long long n = std::stoull(tail, &used);
        if (used != tail.size() || n == 0) throw Error("");
        state.nth_mode = true;
        state.nth = n;
      } else if (mode.rfind("prob=", 0) == 0) {
        std::size_t used = 0;
        const std::string tail = parse_tail("prob=");
        const double p = std::stod(tail, &used);
        if (used != tail.size() || p < 0.0 || p > 1.0) throw Error("");
        state.nth_mode = false;
        state.prob = p;
        state.rng = Rng(derive_seed(seed, fnv1a64(state.point)));
      } else {
        throw Error("");
      }
    } catch (const std::exception&) {
      throw Error("fault spec entry \"" + entry +
                  "\": mode must be nth=K (K >= 1) or prob=P (0 <= P <= 1)");
    }
    if (action == "fail") {
      state.action = Action::kFail;
    } else if (action == "kill") {
      state.action = Action::kKill;
    } else {
      throw Error("fault spec entry \"" + entry +
                  "\": action must be \"fail\" or \"kill\"");
    }
    for (const PointState& existing : points) {
      if (existing.point == state.point) {
        throw Error("fault spec: point \"" + state.point +
                    "\" configured twice");
      }
    }
    points.push_back(std::move(state));
    if (end == spec.size()) break;
  }

  Config& cfg = config();
  std::lock_guard<std::mutex> lock(cfg.m);
  cfg.points = std::move(points);
  detail::g_armed.store(!cfg.points.empty(), std::memory_order_relaxed);
}

void configure_from_env() {
  const std::string spec = env_string("FROTE_FAULTS", "");
  if (spec.empty()) return;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("FROTE_FAULTS_SEED", 0));
  configure(spec, seed);
}

void disarm() { configure("", 0); }

std::uint64_t hits(const std::string& point) {
  Config& cfg = config();
  std::lock_guard<std::mutex> lock(cfg.m);
  const PointState* state = find_point(cfg, point.c_str());
  return state == nullptr ? 0 : state->hits;
}

std::uint64_t triggers(const std::string& point) {
  Config& cfg = config();
  std::lock_guard<std::mutex> lock(cfg.m);
  const PointState* state = find_point(cfg, point.c_str());
  return state == nullptr ? 0 : state->triggers;
}

}  // namespace frote::faultsim
