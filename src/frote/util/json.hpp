// Strict JSON reader/writer — the serialisation substrate for the
// declarative layer (core/spec.hpp run specs, core/checkpoint.hpp session
// snapshots, core/runplan.hpp plans).
//
// Vendored rather than depended upon, following the minigtest /
// minibenchmark philosophy: the library must build offline with no
// third-party packages. The dialect is exactly RFC 8259 JSON, parsed
// strictly — no comments, no trailing commas, no NaN/Infinity literals,
// no duplicate object keys, strings must be valid UTF-8 — because specs are
// long-lived artifacts and silent tolerance turns typos into behaviour.
//
// Numbers carry their kind: integer literals that fit are stored as
// int64/uint64 (seeds are full-width 64-bit values a double cannot hold),
// everything else as double. Doubles are written with 17 significant digits,
// so double → text → double round-trips bit-exactly on IEEE-754 platforms —
// the checkpoint subsystem's resume-is-bit-identical contract rests on this.
//
//   auto parsed = json_parse(text);            // Expected<JsonValue, ...>
//   if (!parsed) { ... parsed.error().message has line:column ... }
//   const JsonValue* tau = parsed->find("tau");
//
//   JsonValue obj = JsonValue::object();
//   obj.set("tau", JsonValue(std::uint64_t{200}));
//   std::string text = json_dump(obj, /*indent=*/2);
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "frote/util/error.hpp"

namespace frote {

enum class JsonType { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                      kObject };

/// One JSON value: null, bool, number (int64 / uint64 / double), string,
/// array, or object. Objects preserve insertion order (writers emit keys in
/// the order they were set, so dumped specs diff cleanly).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Object member list; order preserved, keys unique (set() replaces).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : node_(nullptr) {}
  JsonValue(std::nullptr_t) : node_(nullptr) {}
  JsonValue(bool value) : node_(value) {}
  JsonValue(double value) : node_(value) {}
  JsonValue(std::string value) : node_(std::move(value)) {}
  JsonValue(std::string_view value) : node_(std::string(value)) {}
  JsonValue(const char* value) : node_(std::string(value)) {}
  /// Integral values keep their exact width: signed → kInt, unsigned →
  /// kUint (a 64-bit seed survives where a double would round it).
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonValue(T value) {
    if constexpr (std::is_signed_v<T>) {
      node_ = static_cast<std::int64_t>(value);
    } else {
      node_ = static_cast<std::uint64_t>(value);
    }
  }

  static JsonValue array() {
    JsonValue v;
    v.node_ = Array{};
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.node_ = Object{};
    return v;
  }

  JsonType type() const { return static_cast<JsonType>(node_.index()); }
  bool is_null() const { return type() == JsonType::kNull; }
  bool is_bool() const { return type() == JsonType::kBool; }
  bool is_number() const {
    return type() == JsonType::kInt || type() == JsonType::kUint ||
           type() == JsonType::kDouble;
  }
  bool is_string() const { return type() == JsonType::kString; }
  bool is_array() const { return type() == JsonType::kArray; }
  bool is_object() const { return type() == JsonType::kObject; }

  /// Typed accessors; wrong-type access throws frote::Error (use the is_*
  /// predicates or the spec readers' Expected-based helpers first).
  bool as_bool() const;
  /// Any number kind, converted to double (u64 → double rounds above 2^53).
  double as_double() const;
  /// kInt, or kUint within int64 range; throws otherwise.
  std::int64_t as_int64() const;
  /// kUint, or non-negative kInt; throws otherwise.
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;

  const Array& items() const;
  Array& items();
  const Object& members() const;
  Object& members();

  /// Array append (value must be an array).
  void push_back(JsonValue value);
  /// Object set: replaces the existing member or appends a new one.
  void set(std::string key, JsonValue value);
  /// Object lookup; nullptr when absent (or when this is not an object).
  const JsonValue* find(std::string_view key) const;

  /// Structural equality. The two integer kinds compare by value (42 ==
  /// 42u — the parser cannot know which width a writer used), but integers
  /// never equal doubles: the writer keeps the kinds distinguishable
  /// ("42" vs "42.0") and round-trips must preserve that.
  bool operator==(const JsonValue& other) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      node_;
};

/// Parse strict RFC 8259 JSON. Errors carry kParseError and a line:column
/// annotated message; nesting beyond 256 levels is rejected.
Expected<JsonValue, FroteError> json_parse(std::string_view text);

/// Serialise. indent == 0 emits compact single-line output; indent > 0
/// pretty-prints with that many spaces per level, keeping arrays whose
/// elements are all scalars on one line (row data stays readable). Doubles
/// are written with enough digits to round-trip bit-exactly; non-finite
/// doubles throw frote::Error (JSON has no representation for them).
std::string json_dump(const JsonValue& value, int indent = 0);

}  // namespace frote
