// Error handling helpers used across the library.
//
// Two reporting styles coexist:
//   * exceptions (`Error` + the FROTE_CHECK macros) for precondition and
//     invariant violations deep inside the algorithm, where unwinding is the
//     only sensible recovery;
//   * `Expected<T, FroteError>` for fallible construction at the API
//     boundary (Engine::Builder::build, Engine::open, the component
//     registry), where the caller wants a typed, inspectable error instead
//     of a throw.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace frote {

/// Exception type thrown by all FROTE_CHECK failures and library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-inspectable category of a `FroteError`.
enum class FroteErrorCode {
  kInvalidConfig,      // a builder/config field failed validation
  kInvalidArgument,    // a runtime argument is unusable (e.g. empty dataset)
  kUnknownComponent,   // a registry lookup by name found nothing
  kMissingDependency,  // a component needs state the caller did not supply
  kParseError,         // malformed serialized input (JSON, rule text)
  kIoError,            // a file could not be read or written
};

/// Typed error value returned by fallible API-boundary operations.
struct FroteError {
  FroteErrorCode code = FroteErrorCode::kInvalidConfig;
  std::string message;

  static FroteError invalid_config(std::string message) {
    return {FroteErrorCode::kInvalidConfig, std::move(message)};
  }
  static FroteError invalid_argument(std::string message) {
    return {FroteErrorCode::kInvalidArgument, std::move(message)};
  }
  static FroteError unknown_component(std::string message) {
    return {FroteErrorCode::kUnknownComponent, std::move(message)};
  }
  static FroteError missing_dependency(std::string message) {
    return {FroteErrorCode::kMissingDependency, std::move(message)};
  }
  static FroteError parse_error(std::string message) {
    return {FroteErrorCode::kParseError, std::move(message)};
  }
  static FroteError io_error(std::string message) {
    return {FroteErrorCode::kIoError, std::move(message)};
  }
};

/// Minimal expected/either type (std::expected arrives in C++23; this is the
/// subset the API needs). Holds either a T or an E; `value()` throws
/// `frote::Error` carrying the error message when no value is present, so
/// callers that don't care about typed handling can stay exception-based.
template <typename T, typename E = FroteError>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    throw_if_error();
    return std::get<0>(storage_);
  }
  const T& value() const& {
    throw_if_error();
    return std::get<0>(storage_);
  }
  T&& value() && {
    throw_if_error();
    return std::get<0>(std::move(storage_));
  }

  T& operator*() & { return std::get<0>(storage_); }
  const T& operator*() const& { return std::get<0>(storage_); }
  T* operator->() { return &std::get<0>(storage_); }
  const T* operator->() const { return &std::get<0>(storage_); }

  const E& error() const { return std::get<1>(storage_); }

 private:
  void throw_if_error() const {
    if (!has_value()) throw Error(std::get<1>(storage_).message);
  }

  std::variant<T, E> storage_;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FROTE_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace frote

/// Precondition / invariant check: throws frote::Error on failure.
#define FROTE_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::frote::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Check with a streamed message: FROTE_CHECK_MSG(x > 0, "x=" << x).
#define FROTE_CHECK_MSG(expr, msg_stream)                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg_stream;                                                   \
      ::frote::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                           os_.str());                     \
    }                                                                      \
  } while (0)
