// Error handling helpers used across the library.
//
// We follow the C++ Core Guidelines: exceptions for error reporting, with a
// single macro for precondition/invariant checks so call sites stay terse and
// the thrown message always carries the failing expression and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace frote {

/// Exception type thrown by all FROTE_CHECK failures and library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FROTE_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace frote

/// Precondition / invariant check: throws frote::Error on failure.
#define FROTE_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::frote::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Check with a streamed message: FROTE_CHECK_MSG(x > 0, "x=" << x).
#define FROTE_CHECK_MSG(expr, msg_stream)                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg_stream;                                                   \
      ::frote::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                           os_.str());                     \
    }                                                                      \
  } while (0)
