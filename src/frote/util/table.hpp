// Fixed-width ASCII table printer + CSV writer used by the benchmark
// harness to emit paper-style table rows and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace frote {

/// Accumulates rows of strings and prints them column-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helper: fixed-precision double.
  static std::string fmt(double v, int precision = 3);
  /// Format helper: "mean ± std" cell, the paper's table convention.
  static std::string fmt_pm(double mean, double std, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& os_;
};

}  // namespace frote
