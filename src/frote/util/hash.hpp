// FNV-1a 64 — the repo's one non-cryptographic byte hash.
//
// Three subsystems need a cheap, stable digest of a byte stream: the
// session pool's dataset digest (the byte-identity witness session.result
// exposes), the spool integrity footer (util/fsio.hpp), and the fault
// simulator's per-point seed streams (util/faultsim.hpp). One shared
// implementation so the constants — and therefore every persisted or
// wire-visible digest — cannot drift between them.
#pragma once

#include <cstdint>
#include <string_view>

namespace frote {

/// Incremental FNV-1a 64 accumulator. Byte order is explicit everywhere
/// (u64s are mixed little-endian-first), so digests are platform-stable.
class Fnv1a64 {
 public:
  void update(std::string_view bytes) {
    for (const char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kPrime;
    }
  }

  /// Mix one u64 as its eight bytes, lowest first.
  void update_u64(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (value >> (byte * 8)) & 0xffull;
      hash_ *= kPrime;
    }
  }

  std::uint64_t digest() const { return hash_; }

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = kOffset;
};

/// One-shot convenience over a byte string.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1a64 h;
  h.update(bytes);
  return h.digest();
}

}  // namespace frote
