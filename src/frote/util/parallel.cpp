#include "frote/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "frote/util/env.hpp"

namespace frote {

namespace {

std::atomic<int> g_default_threads{0};  // 0 ⇒ resolve from the environment

/// Upper bound on pool workers; far above any sane FROTE_NUM_THREADS and
/// low enough that a typo (e.g. "400") cannot exhaust the process.
constexpr int kMaxThreads = 256;

thread_local bool t_in_parallel = false;

/// One fan-out of chunk tasks. Workers and the submitting thread pull chunk
/// indices from `next` until exhausted; `done` counts completed chunks.
/// Heap-allocated and shared: a worker that wakes for a job keeps its own
/// reference, so a late worker touching the bookkeeping after the submitter
/// has already returned reads valid (exhausted) state, never a dead frame.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t total = 0;
  /// Pool workers allowed to join (the submitter always participates).
  int helper_limit = 0;
  std::atomic<int> helpers{0};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr error;  // first exception, guarded by error_mu
  std::mutex error_mu;
};

/// Lazily-started shared worker pool. One job runs at a time (submissions
/// serialize on submit_mu_); nested parallel regions never reach the pool —
/// parallel_for/parallel_reduce run them inline on the calling worker.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t chunks, int threads,
           const std::function<void(std::size_t)>& fn) {
    std::unique_lock<std::mutex> submit_lock(submit_mu_);
    const int helpers = std::min<int>(
        threads - 1, static_cast<int>(std::min<std::size_t>(chunks, kMaxThreads)));
    ensure_workers(helpers);

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->total = chunks;
    job->helper_limit = helpers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = job;
    }
    cv_.notify_all();

    // The submitting thread participates: it drains chunks alongside the
    // workers, then waits for the stragglers.
    work_on(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return job->done.load() == job->total; });
      if (current_ == job) current_ = nullptr;
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  void ensure_workers(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < count) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_parallel = true;  // nested regions on this thread run inline
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || current_ != nullptr; });
      if (stop_) return;
      std::shared_ptr<Job> job = current_;  // own a reference past unlock
      lock.unlock();
      // Honour the job's thread budget: once helper_limit pool threads have
      // joined, later wakers leave it alone (the submitter is not counted).
      if (job->helpers.fetch_add(1) < job->helper_limit) {
        work_on(*job);
      }
      lock.lock();
      if (current_ == job && job->next.load() >= job->total) {
        current_ = nullptr;  // fully claimed: stop waking for it
      }
    }
  }

  void work_on(Job& job) {
    const bool was_in_parallel = t_in_parallel;
    t_in_parallel = true;
    for (;;) {
      const std::size_t c = job.next.fetch_add(1);
      if (c >= job.total) break;
      try {
        (*job.fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1) + 1 == job.total) {
        // Take mu_ before notifying so the submitter cannot check the
        // predicate and go to sleep between our increment and the notify
        // (the classic lost-wakeup interleaving).
        { std::lock_guard<std::mutex> lock(mu_); }
        done_cv_.notify_all();
      }
    }
    t_in_parallel = was_in_parallel;
  }

  std::mutex submit_mu_;  // serializes whole jobs
  std::mutex mu_;         // guards current_/stop_/workers_
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_;
  bool stop_ = false;
};

}  // namespace

int resolve_threads(int requested) {
  int n = requested > 0 ? requested : default_threads();
  if (n < 1) n = 1;
  return std::min(n, kMaxThreads);
}

void set_default_threads(int n) { g_default_threads.store(n > 0 ? n : 0); }

int default_threads() {
  const int pinned = g_default_threads.load();
  if (pinned > 0) return std::min(pinned, kMaxThreads);
  const int from_env = env_int("FROTE_NUM_THREADS", 1);
  return std::clamp(from_env, 1, kMaxThreads);
}

bool in_parallel_region() { return t_in_parallel; }

namespace detail {

void pool_run(std::size_t chunks, int threads,
              const std::function<void(std::size_t)>& fn) {
  Pool::instance().run(chunks, threads, fn);
}

}  // namespace detail

}  // namespace frote
