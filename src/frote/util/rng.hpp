// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed
// (the paper runs all experiments with a fixed seed, §5.1). `Rng` wraps a
// xoshiro256** engine seeded via splitmix64 so that (a) runs are reproducible
// across platforms (std::mt19937_64 would also be portable, but the
// distributions are not — we implement our own), and (b) independent streams
// can be derived cheaply for per-run / per-component use.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "frote/util/error.hpp"

namespace frote {

/// splitmix64 step; used both for seeding and for deriving child seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive a child seed for an independent stream (e.g. per experiment run).
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(s);
}

/// Complete serialisable state of an Rng: the four xoshiro256** words plus
/// the Box–Muller spare. `cached_normal` is carried as raw IEEE-754 bits so
/// a checkpointed stream resumes bit-identically (core/checkpoint.hpp).
struct RngState {
  std::uint64_t words[4] = {};
  std::uint64_t cached_normal_bits = 0;
  bool cached_normal_valid = false;

  /// Exact state identity — how incremental learners prove a derived stream
  /// was unaffected by a dataset append (RandomForestLearner::update).
  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Deterministic PRNG with the distribution helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_normal_valid_ = false;
  }

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    FROTE_CHECK(n > 0);
    // Lemire-style rejection-free bounded draw is overkill here; modulo bias
    // for n << 2^64 is negligible, but we still use the multiply-shift trick.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  long long int_range(long long lo, long long hi) {
    FROTE_CHECK(lo <= hi);
    return lo + static_cast<long long>(
                    index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached pair for speed).
  double normal() {
    if (cached_normal_valid_) {
      cached_normal_valid_ = false;
      return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_normal_ = r * std::sin(theta);
    cached_normal_valid_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Draw an index from an unnormalised non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample `count` distinct indices from [0, n) (partial Fisher–Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t count);

  /// Snapshot / restore the full generator state; set_state(state()) resumes
  /// the stream exactly where it was, including the cached normal spare.
  RngState state() const {
    RngState s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    std::memcpy(&s.cached_normal_bits, &cached_normal_, sizeof(double));
    s.cached_normal_valid = cached_normal_valid_;
    return s;
  }
  void set_state(const RngState& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    std::memcpy(&cached_normal_, &s.cached_normal_bits, sizeof(double));
    cached_normal_valid_ = s.cached_normal_valid;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace frote
