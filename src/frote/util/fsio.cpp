#include "frote/util/fsio.hpp"

#include <fstream>
#include <sstream>

#include "frote/util/error.hpp"

namespace frote {

namespace fs = std::filesystem;

void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    out.close();  // flush before the write check — a full disk fails here
    if (!out.good()) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw Error("cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, path);
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace frote
