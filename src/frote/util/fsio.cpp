#include "frote/util/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "frote/util/error.hpp"
#include "frote/util/faultsim.hpp"
#include "frote/util/hash.hpp"

namespace frote {

namespace fs = std::filesystem;

namespace {

/// Owns an fd; close errors on the destructor path are ignored (the
/// success path closes explicitly and checks).
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  int release() {
    const int out = fd;
    fd = -1;
    return out;
  }
};

/// Removes the tmp file unless the write protocol reached the rename.
struct TmpGuard {
  fs::path tmp;
  bool committed = false;
  ~TmpGuard() {
    if (!committed) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
    }
  }
};

[[noreturn]] void fail(const char* op, const fs::path& path) {
  throw Error(std::string("cannot ") + op + " " + path.string() + ": " +
              std::strerror(errno));
}

/// fsync the directory holding `path`, making a completed rename durable.
void fsync_parent_dir(const fs::path& path) {
  faultsim::hit("fsio.fsync_dir");
  fs::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  Fd d;
  d.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (d.fd < 0) fail("open directory", dir);
  if (::fsync(d.fd) != 0) fail("fsync directory", dir);
  if (::close(d.release()) != 0) fail("close directory", dir);
}

constexpr const char* kFooterPrefix = "#frote-integrity v1 len=";

}  // namespace

void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  TmpGuard guard{tmp};

  Fd f;
  f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (f.fd < 0) fail("create", tmp);

  faultsim::hit("fsio.write");
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(f.fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }

  // The crash window this order closes: rename-before-fsync can surface an
  // empty or partial file under the *final* name after power loss.
  faultsim::hit("fsio.fsync");
  if (::fsync(f.fd) != 0) fail("fsync", tmp);

  faultsim::hit("fsio.close");
  if (::close(f.release()) != 0) fail("close", tmp);

  faultsim::hit("fsio.rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail("rename", tmp);
  guard.committed = true;

  // And this one makes the rename itself durable: the directory entry for
  // `path` must reach disk before the write can be reported complete.
  fsync_parent_dir(path);
}

bool read_file(const fs::path& path, std::string& out) {
  if (faultsim::should_fail("fsio.read")) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

std::string integrity_footer(std::string_view content) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%s%zu fnv1a64=%016llx\n",
                kFooterPrefix, content.size(),
                static_cast<unsigned long long>(fnv1a64(content)));
  return buffer;
}

void write_file_durable(const fs::path& path, const std::string& content) {
  write_file_atomic(path, content + integrity_footer(content));
}

ValidatedRead read_file_validated(const fs::path& path, std::string& out) {
  std::string stored;
  if (!read_file(path, stored)) {
    std::error_code ec;
    return fs::exists(path, ec) ? ValidatedRead::kCorrupt
                                : ValidatedRead::kMissing;
  }
  // The footer is the final line; it must start at a line boundary.
  const std::size_t pos = stored.rfind(kFooterPrefix);
  if (pos == std::string::npos || (pos != 0 && stored[pos - 1] != '\n')) {
    return ValidatedRead::kCorrupt;
  }
  std::string content = stored.substr(0, pos);
  if (stored.compare(pos, std::string::npos, integrity_footer(content)) != 0) {
    return ValidatedRead::kCorrupt;
  }
  out = std::move(content);
  return ValidatedRead::kOk;
}

fs::path quarantine_file(const fs::path& path) {
  const fs::path target = path.string() + ".corrupt";
  std::error_code ignored;
  fs::rename(path, target, ignored);
  return target;
}

}  // namespace frote
