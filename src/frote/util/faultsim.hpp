// Deterministic fault injection — failure as a modeled, replayable input.
//
// The serving stack (util/fsio, net/http, core/session_pool) is threaded
// with named *fault points*: places where the machine can lie — a write
// that hits ENOSPC, a rename interrupted by a crash, a connection that
// dies mid-read. Each point is a single call:
//
//   faultsim::hit("fsio.rename");          // throws frote::Error on trigger
//   if (faultsim::should_fail("net.read")) // caller simulates the syscall
//     { ... treat as EIO ... }             // failure itself
//
// Injection is *schedule-pure*: whether the Nth hit of a point triggers is
// a function of (configuration, N) only — `nth=K` fires on exactly the
// Kth hit, `prob=P` draws from a per-point RNG stream derived via
// derive_seed(seed, fnv1a64(point)) — never of wall clock, thread timing,
// or address-space layout. Run the same request script twice against the
// same fault spec and the same operations fail, which is what makes the
// kill-recover chaos suite (tests/test_chaos_serve.cpp) a sweep instead of
// a dice roll.
//
// Configuration comes from the FROTE_FAULTS environment variable or an
// explicit configure() call (frote_serve's --faults flag). The grammar:
//
//   FROTE_FAULTS = entry ("," entry)*
//   entry        = point ":" mode [":" action]
//   mode         = "nth=" K        fire on exactly the Kth hit (1-based)
//                | "prob=" P       fire each hit with probability P
//   action       = "fail"          throw / report failure  (default)
//                | "kill"          SIGKILL the process at the point —
//                                  a crash simulator with no unwinding,
//                                  no destructors, no flushes
//
// e.g. FROTE_FAULTS="fsio.rename:nth=2:kill,fsio.fsync:prob=0.25:fail".
// The probability seed comes from FROTE_FAULTS_SEED (default 0) or the
// configure() argument. Unknown point names are rejected loudly — a typo'd
// spec that silently injects nothing would un-test exactly what it claims
// to test.
//
// Cost when unconfigured: one relaxed atomic load and a predictable
// branch per point — nothing allocates, nothing locks. The strict bench
// gate on BM_ServeRequest (ci.sh, FROTE_BENCH_STRICT=1) holds the serving
// hot path to this.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "frote/util/error.hpp"

namespace frote::faultsim {

namespace detail {
// Armed flag lives outside the function so the fast path is a single
// relaxed load, not a magic-static guard.
extern std::atomic<bool> g_armed;
bool should_fail_slow(const char* point);
}  // namespace detail

/// The catalog of registered fault points. configure() rejects names not
/// in this list; the chaos suite iterates it to kill the daemon at every
/// point. Grouped by subsystem:
///   fsio.*  — util/fsio.cpp      (write / fsync / close / rename /
///                                 fsync_dir / read)
///   net.*   — net/http.cpp       (accept / read / write)
///   pool.*  — core/session_pool  (evict = spool write, restore = rehydrate)
const std::vector<std::string>& fault_points();

/// True when `name` is a registered fault point.
bool is_fault_point(const std::string& name);

/// Should this hit of `point` fail? Counts the hit, consults the schedule,
/// and — for kill-action entries — SIGKILLs the process right here instead
/// of returning. Free (one relaxed load) when nothing is configured.
inline bool should_fail(const char* point) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::should_fail_slow(point);
}

/// Exception-style fault point: throws frote::Error("injected fault: …")
/// on trigger. For code whose error path already unwinds (fsio, the pool).
inline void hit(const char* point) {
  if (should_fail(point)) {
    throw Error(std::string("injected fault: ") + point);
  }
}

/// Parse and install a fault spec (see the grammar above); replaces any
/// previous configuration and resets all hit counters. Empty spec ⇒
/// disarm. Throws frote::Error on malformed specs or unknown points.
void configure(const std::string& spec, std::uint64_t seed = 0);

/// Install from FROTE_FAULTS / FROTE_FAULTS_SEED; no-op when unset.
/// Called by the daemons' main(), not by the library — linking frote must
/// never arm injection behind a caller's back.
void configure_from_env();

/// Remove all configuration; should_fail() returns to the free path.
void disarm();

/// Observed hit / trigger counters for `point` since the last configure()
/// — the introspection the unit tests assert schedule purity with.
std::uint64_t hits(const std::string& point);
std::uint64_t triggers(const std::string& point);

}  // namespace frote::faultsim
