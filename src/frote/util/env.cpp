#include "frote/util/env.hpp"

#include <cstdlib>
#include <stdexcept>

namespace frote {

namespace {
const char* raw(const char* name) { return std::getenv(name); }
}  // namespace

int env_int(const char* name, int fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool env_flag(const char* name) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "false" && s != "FALSE" && s != "no";
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace frote
