// Environment-variable configuration for the benchmark harness.
//
// The paper's full protocol (30–50 runs per setting, full UCI dataset sizes,
// τ = 200 retraining iterations) takes hours; the bench binaries default to a
// scaled-down protocol that preserves the result *shapes* and can be dialed
// back up:
//   FROTE_RUNS   — runs per experimental setting (default: per-bench)
//   FROTE_SCALE  — dataset size multiplier in (0, 1]         (default 1.0
//                  for unit tests; benches pass their own default)
//   FROTE_TAU    — iteration limit override
//   FROTE_FAST=1 — aggressive downscale for smoke-testing everything
//
// The library itself reads one knob here:
//   FROTE_NUM_THREADS — default thread count for the deterministic parallel
//                       subsystem (util/parallel.hpp) when a component's
//                       `threads` config field is 0. Default 1 (serial).
//                       Output is bit-identical for every thread count.
#pragma once

#include <string>

namespace frote {

/// Read an env var as int; returns `fallback` when unset or unparsable.
int env_int(const char* name, int fallback);

/// Read an env var as double; returns `fallback` when unset or unparsable.
double env_double(const char* name, double fallback);

/// True when the env var is set to a non-empty value other than "0"/"false".
bool env_flag(const char* name);

/// Read an env var as string; returns `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace frote
