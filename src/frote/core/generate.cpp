#include "frote/core/generate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace frote {

namespace {
/// Nudge used to turn open interval endpoints into samplable closed ones.
double window_epsilon(double lo, double hi) {
  const double span = std::abs(hi - lo);
  return std::max(1e-9, span * 1e-6);
}
}  // namespace

RuleConstrainedGenerator::RuleConstrainedGenerator(
    const Dataset& data, const FeedbackRule& rule,
    const RuleBasePopulation& bp, const MixedDistance& distance,
    GenerateConfig config)
    : data_(&data), rule_(&rule), bp_(&bp), config_(config) {
  knn_ = std::make_unique<BruteKnn>(data, distance, bp.indices,
                                    config.threads);
  const Schema& schema = data.schema();
  constraints_.reserve(schema.num_features());
  constrained_.reserve(schema.num_features());
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    constrained_.push_back(rule.clause.mentions(f));
    constraints_.push_back(rule.clause.constraint_for(f, schema));
  }
}

double RuleConstrainedGenerator::numeric_value(std::size_t f, double base,
                                               double neighbor,
                                               Rng& rng) const {
  if (!constrained_[f]) {
    // Plain SMOTE interpolation (eq. 6).
    return base + (neighbor - base) * rng.uniform();
  }
  const FeatureConstraint& c = constraints_[f];
  if (c.pinned.has_value()) return *c.pinned;  // '=' condition

  // Window from the rule's comparison operators (supplement A): closed
  // [w_lo, w_hi], with open endpoints pulled inward by an epsilon.
  double w_lo = c.lo;
  double w_hi = c.hi;
  const bool lo_finite = std::isfinite(w_lo);
  const bool hi_finite = std::isfinite(w_hi);
  const double eps = window_epsilon(lo_finite ? w_lo : base,
                                    hi_finite ? w_hi : neighbor);
  if (lo_finite && c.lo_open) w_lo += eps;
  if (hi_finite && c.hi_open) w_hi -= eps;

  // Tightest window: intersect with the segment between base and neighbour
  // so generated values stay SMOTE-like when possible.
  double seg_lo = std::min(base, neighbor);
  double seg_hi = std::max(base, neighbor);
  double lo = std::max(seg_lo, lo_finite ? w_lo : seg_lo);
  double hi = std::min(seg_hi, hi_finite ? w_hi : seg_hi);
  if (lo > hi) {
    // Segment lies outside the admissible window: sample the window itself.
    // Unbounded sides fall back to the nearest data-driven anchor.
    const auto stats = data_->numeric_column_stats(f);
    lo = lo_finite ? w_lo : std::min(stats.min, w_hi);
    hi = hi_finite ? w_hi : std::max(stats.max, w_lo);
    if (lo > hi) std::swap(lo, hi);
  }
  return rng.uniform(lo, hi == lo ? lo + 0.0 : hi);
}

double RuleConstrainedGenerator::categorical_value(
    std::size_t f, double base,
    const std::vector<std::span<const double>>& neighbor_rows,
    Rng& rng) const {
  // Values sorted by decreasing frequency among the neighbours
  // (supplement A); the base value breaks ties for determinism.
  std::map<double, std::size_t> votes;
  votes[base] += 1;
  for (const auto& row : neighbor_rows) votes[row[f]] += 1;
  std::vector<std::pair<std::size_t, double>> ranked;  // (count, value)
  ranked.reserve(votes.size());
  for (const auto& [value, count] : votes) ranked.push_back({count, value});
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  if (!constrained_[f]) return ranked.front().second;

  const FeatureConstraint& c = constraints_[f];
  if (c.allowed.has_value()) {
    return static_cast<double>(*c.allowed);  // '=' condition value
  }
  auto denied = [&](double value) {
    const auto code = static_cast<std::size_t>(value);
    return std::find(c.denied.begin(), c.denied.end(), code) != c.denied.end();
  };
  // Highest-ranked value that passes every '!=' condition.
  for (const auto& [count, value] : ranked) {
    if (!denied(value)) return value;
  }
  // All neighbour values denied: pick a uniformly random permitted code.
  const std::size_t cardinality = data_->schema().feature(f).cardinality();
  std::vector<double> permitted;
  for (std::size_t code = 0; code < cardinality; ++code) {
    if (!denied(static_cast<double>(code))) {
      permitted.push_back(static_cast<double>(code));
    }
  }
  FROTE_CHECK_MSG(!permitted.empty(),
                  "rule denies every category of feature " << f);
  return permitted[rng.index(permitted.size())];
}

int RuleConstrainedGenerator::sample_label(int base_label, Rng& rng) const {
  if (config_.rule_confidence >= 1.0) {
    // Deterministic rules assign the class; probabilistic π is sampled.
    return rule_->pi.is_deterministic() ? rule_->pi.mode()
                                        : rule_->pi.sample(rng);
  }
  // Supplement B's probabilistic-rule scheme: with probability p follow the
  // rule's class c; otherwise keep the base instance's label, except when it
  // already equals c, in which case pick uniformly among the other classes.
  const int c = rule_->pi.mode();
  if (rng.bernoulli(config_.rule_confidence)) return c;
  if (base_label != c) return base_label;
  const std::size_t classes = data_->num_classes();
  std::size_t draw = rng.index(classes - 1);
  if (draw >= static_cast<std::size_t>(c)) ++draw;
  return static_cast<int>(draw);
}

bool RuleConstrainedGenerator::generate(std::size_t bp_slot, Rng& rng,
                                        std::vector<double>& row_out,
                                        int& label_out) const {
  FROTE_CHECK(bp_slot < bp_->indices.size());
  if (bp_->indices.size() < 2) return false;
  const std::size_t base_idx = bp_->indices[bp_slot];
  const auto base = data_->row(base_idx);

  // k nearest neighbours *within the rule's base population* (they satisfy
  // the same possibly-relaxed rule — difference 1 from SMOTE).
  const std::size_t k = std::min(config_.k, bp_->indices.size() - 1);
  auto found = knn_->query(base, k + 1);
  std::vector<std::span<const double>> neighbor_rows;
  for (const auto& nb : found) {
    const std::size_t ds_idx = knn_->dataset_index(nb.index);
    if (ds_idx == base_idx) continue;
    neighbor_rows.push_back(data_->row(ds_idx));
    if (neighbor_rows.size() == k) break;
  }
  if (neighbor_rows.empty()) return false;
  const auto neighbor = neighbor_rows[rng.index(neighbor_rows.size())];

  row_out.resize(data_->num_features());
  for (std::size_t f = 0; f < row_out.size(); ++f) {
    if (data_->schema().feature(f).is_categorical()) {
      row_out[f] = categorical_value(f, base[f], neighbor_rows, rng);
    } else {
      row_out[f] = numeric_value(f, base[f], neighbor[f], rng);
    }
  }

  // Difference 2 from SMOTE: the instance must satisfy the original,
  // unrelaxed rule. Construction guarantees the clause; exclusions added by
  // conflict resolution can still reject (rare) — skip those instances.
  if (!rule_->covers(row_out)) return false;

  label_out = sample_label(data_->label(base_idx), rng);
  return true;
}

}  // namespace frote
