#include "frote/core/engine.hpp"

#include <algorithm>
#include <string>

#include "frote/core/engine_impl.hpp"
#include "frote/core/registry.hpp"
#include "frote/metrics/metrics.hpp"

namespace frote {

// ---------------------------------------------------------------------------
// Engine

const FroteConfig& Engine::config() const { return impl_->config; }

const FeedbackRuleSet& Engine::rules() const { return impl_->frs; }

Expected<Session, FroteError> Engine::open(const Dataset& data,
                                           const Learner& learner) const {
  if (data.empty()) {
    return FroteError::invalid_argument(
        "FROTE requires a non-empty input dataset");
  }
  return Session(impl_, data, learner);
}

// ---------------------------------------------------------------------------
// Engine::Builder

Engine::Builder::Builder() = default;

Engine::Builder& Engine::Builder::from_config(const FroteConfig& config) {
  config_ = config;
  return *this;
}

Engine::Builder& Engine::Builder::rules(FeedbackRuleSet frs) {
  frs_ = std::move(frs);
  // The provenance spec's rule text no longer describes frs_; to_spec()
  // must re-serialise from the live rule set (schema overload).
  if (spec_ != nullptr) rules_overridden_ = true;
  return *this;
}

Engine::Builder& Engine::Builder::tau(std::size_t tau) {
  config_.tau = tau;
  return *this;
}

Engine::Builder& Engine::Builder::q(double q) {
  config_.q = q;
  return *this;
}

Engine::Builder& Engine::Builder::k(std::size_t k) {
  config_.k = k;
  return *this;
}

Engine::Builder& Engine::Builder::eta(std::size_t eta) {
  config_.eta = eta;
  return *this;
}

Engine::Builder& Engine::Builder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

Engine::Builder& Engine::Builder::threads(int threads) {
  config_.threads = threads;
  return *this;
}

Engine::Builder& Engine::Builder::mod_strategy(ModStrategy strategy) {
  config_.mod_strategy = strategy;
  return *this;
}

Engine::Builder& Engine::Builder::selection(SelectionStrategy strategy) {
  config_.selection = strategy;
  // Last selector choice wins, like the selector() overloads.
  selector_name_.clear();
  config_.custom_selector = nullptr;
  return *this;
}

Engine::Builder& Engine::Builder::rule_confidence(double confidence) {
  config_.rule_confidence = confidence;
  return *this;
}

Engine::Builder& Engine::Builder::accept_always(bool always) {
  config_.accept_always = always;
  return *this;
}

Engine::Builder& Engine::Builder::selector(std::string name) {
  selector_name_ = std::move(name);
  config_.custom_selector = nullptr;  // last selector call wins
  return *this;
}

Engine::Builder& Engine::Builder::selector(
    std::shared_ptr<const BaseInstanceSelector> selector) {
  config_.custom_selector = std::move(selector);
  selector_name_.clear();  // last selector call wins
  return *this;
}

Engine::Builder& Engine::Builder::generator(
    std::shared_ptr<const InstanceGenerator> generator) {
  generator_ = std::move(generator);
  if (spec_gap_.empty()) spec_gap_ = "custom generator instance";
  return *this;
}

Engine::Builder& Engine::Builder::acceptance(
    std::shared_ptr<const AcceptancePolicy> policy) {
  acceptance_ = std::move(policy);
  if (spec_gap_.empty()) spec_gap_ = "custom acceptance policy instance";
  return *this;
}

Engine::Builder& Engine::Builder::stopping(
    std::shared_ptr<const StoppingCriterion> criterion) {
  stopping_ = std::move(criterion);
  if (spec_gap_.empty()) spec_gap_ = "custom stopping criterion instance";
  return *this;
}

Engine::Builder& Engine::Builder::observer(
    std::shared_ptr<ProgressObserver> observer) {
  observers_.push_back(std::move(observer));
  return *this;
}

Expected<Engine, FroteError> Engine::Builder::build() const {
  // Negated comparisons so NaN fails validation instead of slipping through.
  std::vector<std::string> problems;
  if (config_.tau == 0) {
    problems.push_back("tau must be > 0 (the iteration limit)");
  }
  if (!(config_.q >= 0.0)) {
    problems.push_back("q must be >= 0 (the oversampling fraction)");
  }
  if (config_.k == 0) {
    problems.push_back("k must be > 0 (nearest neighbours / BP support)");
  }
  if (!(config_.rule_confidence >= 0.0 && config_.rule_confidence <= 1.0)) {
    problems.push_back("rule_confidence must be in [0, 1]");
  }
  if (config_.threads < 0) {
    problems.push_back("threads must be >= 0 (0 = FROTE_NUM_THREADS)");
  }
  if (!problems.empty()) {
    std::string message = "invalid Engine configuration: ";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i > 0) message += "; ";
      message += problems[i];
    }
    return FroteError::invalid_config(std::move(message));
  }

  auto impl = std::make_shared<Impl>();
  impl->config = config_;
  impl->frs = frs_;
  // Selector: an explicit component instance wins, then a registry name
  // (resolved here, against the engine's own rule set — selectors holding a
  // rule-set reference must never bind to a caller temporary), then the
  // SelectionStrategy enum.
  if (config_.custom_selector != nullptr) {
    impl->selector = config_.custom_selector;
  } else if (!selector_name_.empty()) {
    SelectorSpec selector_spec;
    selector_spec.k = config_.k;
    selector_spec.frs = &impl->frs;
    selector_spec.threads = config_.threads;
    auto named = make_named_selector(selector_name_, selector_spec);
    if (!named) return named.error();
    impl->selector = std::move(*named);
  } else {
    impl->selector = std::shared_ptr<const BaseInstanceSelector>(
        make_selector(config_.selection, config_.k, config_.threads));
  }
  impl->generator = generator_
                        ? generator_
                        : std::make_shared<const SmoteNcInstanceGenerator>();
  if (acceptance_) {
    impl->acceptance = acceptance_;
  } else if (config_.accept_always) {
    impl->acceptance = std::make_shared<const AlwaysAcceptPolicy>();
  } else {
    impl->acceptance = std::make_shared<const JHatImprovementPolicy>();
  }
  if (stopping_) {
    impl->stopping = stopping_;
  } else if (spec_ != nullptr) {
    auto stopping = make_spec_stopping(spec_->stopping);
    if (!stopping) return stopping.error();
    impl->stopping = std::move(*stopping);
  } else {
    impl->stopping = std::make_shared<const BudgetStoppingCriterion>();
  }
  impl->observers = observers_;
  impl->generate_config.k = config_.k;
  impl->generate_config.rule_confidence = config_.rule_confidence;
  impl->generate_config.threads = config_.threads;

  // Synthesize the to_spec() provenance: start from the originating spec
  // when there is one (it carries the learner / dataset reference), re-sync
  // every scalar the builder may have changed since, and record what — if
  // anything — cannot be represented declaratively. Observers are runtime
  // attachments, deliberately outside the spec.
  EngineSpec spec = spec_ != nullptr ? *spec_ : EngineSpec{};
  spec.tau = config_.tau;
  spec.q = config_.q;
  spec.k = config_.k;
  spec.eta = config_.eta;
  spec.seed = config_.seed;
  spec.threads = config_.threads;
  spec.mod_strategy = mod_strategy_name(config_.mod_strategy);
  spec.rule_confidence = config_.rule_confidence;
  spec.accept_always = config_.accept_always;
  if (!selector_name_.empty()) {
    spec.selector = selector_name_;
  } else if (config_.custom_selector == nullptr) {
    spec.selector =
        config_.selection == SelectionStrategy::kIp ? "ip" : "random";
  }
  std::string gap = spec_gap_;
  if (gap.empty() && config_.custom_selector != nullptr) {
    gap = "custom selector instance";
  }
  if (spec_ != nullptr && !rules_overridden_) {
    impl->spec_rules_valid = true;  // provenance text still matches frs
  } else {
    spec.rules.clear();
    impl->spec_rules_valid = frs_.empty();
  }
  impl->spec = std::move(spec);
  impl->spec_representable = gap.empty();
  impl->spec_gap = std::move(gap);
  return Engine(std::move(impl));
}

// ---------------------------------------------------------------------------
// Session

Session::Session(std::shared_ptr<const Engine::Impl> engine,
                 const Dataset& data, const Learner& learner)
    : engine_(std::move(engine)),
      learner_(&learner),
      rng_(engine_->config.seed),
      active_(data) {
  const FroteConfig& config = engine_->config;
  const FeedbackRuleSet& frs = engine_->frs;

  // Input modification (relabel / drop / none), then line 1's defaults:
  // η ← q|D|/τ unless fixed; the budget q|D| uses the *input* size. Kept
  // expression-for-expression identical to the pre-Engine frote_edit() so
  // seed → bit-identical output holds across the shim.
  apply_mod_strategy(active_, frs, config.mod_strategy);
  eta_ = config.eta != 0
             ? config.eta
             : std::max<std::size_t>(
                   1, static_cast<std::size_t>(
                          config.q * static_cast<double>(data.size()) /
                          static_cast<double>(config.tau)));
  quota_ =
      static_cast<std::size_t>(config.q * static_cast<double>(data.size()));
  // Pre-size for the full augmentation budget (the loop may overshoot the
  // quota by at most one η batch), so staged appends never reallocate.
  active_.reserve_rows(active_.size() + quota_ + eta_);
  ws_ = std::make_unique<SessionWorkspace>(config.threads);

  // Lines 2–3: train on D̂ and evaluate Ĵ. We track J̄ = 1 − J, so Algorithm
  // 1's "accept if j' < ĵ" becomes "accept if j̄' > j̄". When D̂ has no rule
  // coverage (tcf = 0) the MRA term is pessimistically 0 (train_j_hat_bar),
  // so the first learned batch of synthetic instances is accepted. The
  // evaluation's per-row predictions land in the workspace cache, where the
  // IP selector will find them.
  model_ = learner.train(active_);
  model_version_ = ++model_stamp_counter_;
  ws_->set_model_stamp(model_version_);
  best_j_bar_ = train_j_hat_bar(*model_, frs, active_, config.threads,
                                ws_->predictions(), model_version_);
  trace_.push_back({0, 0, best_j_bar_, true});
  for (const auto& observer : engine_->observers) {
    observer->on_session_start(*model_, best_j_bar_);
  }

  if (frs.empty() || config.q == 0.0) {
    done_ = true;
    return;
  }

  // Line 4: P ← PreSelectBP(D̂, F), plus the fitted SMOTE-NC distance (the
  // workspace's moments-based fit — bit-identical to MixedDistance::fit).
  bp_ = preselect_base_population(active_, frs, config.k);
  FROTE_CHECK_MSG(!active_.empty(),
                  "the mod strategy removed every row of the input dataset");
  ws_->bind(active_);
}

SessionProgress Session::progress() const {
  SessionProgress p;
  p.iterations_run = iterations_run_;
  p.iterations_accepted = iterations_accepted_;
  p.instances_added = added_;
  p.tau = engine_->config.tau;
  p.quota = quota_;
  p.best_j_bar = best_j_bar_;
  p.consecutive_rejections = consecutive_rejections_;
  return p;
}

bool Session::finished() const {
  return done_ || engine_->stopping->should_stop(progress());
}

void Session::add_observer(std::shared_ptr<ProgressObserver> observer) {
  observers_.push_back(std::move(observer));
}

void Session::notify_step(const StepReport& report) {
  for (const auto& observer : engine_->observers) observer->on_step(report);
  for (const auto& observer : observers_) observer->on_step(report);
}

void Session::notify_accept() {
  for (const auto& observer : engine_->observers) {
    observer->on_accept(*model_, added_);
  }
  for (const auto& observer : observers_) observer->on_accept(*model_, added_);
}

StepReport Session::step() {
  StepReport report;
  report.iteration = iterations_run_;
  report.instances_added = added_;
  report.best_j_bar = best_j_bar_;
  if (done_) {
    report.status = StepStatus::kFinished;
    return report;
  }
  ++iterations_run_;
  report.iteration = iterations_run_;
  // Re-bind after a Session move (the workspace tracks D̂ by address); a
  // no-op whenever the binding is already current.
  ws_->bind(active_);

  // Line 7: B ← SelectBaseInstances(P, η). The workspace hands the selector
  // the cached distance / index / predictions (and, on the reject
  // fast-path, the previous iteration's IP weights).
  const auto selected =
      engine_->selector->select(active_, bp_, *model_, eta_, rng_, ws_.get());
  if (selected.empty()) {  // no usable base population left
    done_ = true;
    report.status = StepStatus::kExhausted;
    notify_step(report);
    return report;
  }

  // Line 8: S ← Generate(B).
  const GenerationContext context{active_,  engine_->frs,
                                  bp_,      ws_->distance(),
                                  engine_->generate_config, ws_.get()};
  Dataset synthetic = engine_->generator->generate(context, selected, rng_);
  if (synthetic.empty()) {
    // A fruitless step counts toward the plateau: without this, a custom
    // StoppingCriterion watching consecutive_rejections could spin run()
    // forever on data where generation persistently yields nothing.
    ++consecutive_rejections_;
    report.status = StepStatus::kNoSynthetic;
    notify_step(report);
    return report;
  }
  report.batch_size = synthetic.size();

  // Line 9: D′ ← D̂ ∪ S, staged in place: the batch is appended to the
  // active storage (visible to the learner and the evaluation below) and
  // either committed or rolled back by the gate — no dataset copy on
  // either path (docs/DESIGN.md §5; tests/test_engine_perf.cpp locks it).
  const std::size_t staged_at = active_.stage_rows(synthetic);

  // Lines 10–11: retrain on D′ and evaluate Ĵ_D̂ on the candidate dataset
  // D′. Evaluating on D′ rather than the pre-merge D̂ is what makes the
  // tcf = 0 regime work: when the active dataset has no rule coverage at
  // all, only the candidate's synthetic instances can supply the MRA
  // evidence needed to accept the first batch (docs/DESIGN.md §4). The
  // candidate's per-row predictions fill the workspace cache under the
  // next model stamp — if the batch is accepted they are exactly the new
  // model's predictions over the new D̂, ready for the next selection.
  // The retrain goes through Learner::update with the previous model and
  // the size of the unchanged prefix: exact learners prove bit-identity to
  // train(D′) and reuse what the append cannot have changed; the default
  // update IS train(D′); approximate warm variants are opt-in registry
  // names (docs/DESIGN.md §10).
  auto candidate_model = learner_->update(*model_, active_, staged_at);
  ++model_updates_;
  const std::uint64_t candidate_stamp = ++model_stamp_counter_;
  const double j_bar = train_j_hat_bar(*candidate_model, engine_->frs,
                                       active_, engine_->config.threads,
                                       ws_->predictions(), candidate_stamp);
  report.candidate_j_bar = j_bar;

  // Lines 12–16: the acceptance gate.
  AcceptanceContext acceptance;
  acceptance.candidate_j_bar = j_bar;
  acceptance.best_j_bar = best_j_bar_;
  acceptance.iteration = iterations_run_;
  acceptance.instances_added = added_;
  acceptance.batch_size = synthetic.size();
  const bool accept = engine_->acceptance->accept(acceptance);
  trace_.push_back(
      {iterations_run_, added_ + synthetic.size(), j_bar, accept});
  if (accept) {
    active_.commit();
    model_ = std::move(candidate_model);
    model_version_ = candidate_stamp;
    ws_->set_model_stamp(model_version_);
    best_j_bar_ = j_bar;
    added_ += synthetic.size();
    ++iterations_accepted_;
    consecutive_rejections_ = 0;
    // Line 15: P ← PreSelectBP(D̂, F), incrementally — only the appended
    // rows can join an unrelaxed rule's population; relaxed rules rescan.
    // The workspace absorbs the batch: moments extend, the distance refits
    // from them, and the kNN index appends rather than rebuilds.
    update_base_population(bp_, active_, engine_->frs, engine_->config.k,
                           staged_at);
    ws_->bind(active_);
    report.status = StepStatus::kAccepted;
  } else {
    active_.rollback();
    ++consecutive_rejections_;
    report.status = StepStatus::kRejected;
  }
  report.instances_added = added_;
  report.best_j_bar = best_j_bar_;
  notify_step(report);
  if (accept) notify_accept();
  return report;
}

std::size_t Session::run() {
  std::size_t steps = 0;
  while (!finished()) {
    const StepReport report = step();
    ++steps;
    if (report.terminal()) break;
  }
  return steps;
}

FroteResult Session::result() && {
  FroteResult result;
  result.augmented = std::move(active_);
  result.model = std::move(model_);
  result.instances_added = added_;
  result.iterations_run = iterations_run_;
  result.iterations_accepted = iterations_accepted_;
  result.trace = std::move(trace_);
  return result;
}

}  // namespace frote
