#include "frote/core/frote.hpp"

#include "frote/core/engine.hpp"

namespace frote {

std::size_t apply_mod_strategy(Dataset& data, const FeedbackRuleSet& frs,
                               ModStrategy strategy) {
  if (strategy == ModStrategy::kNone) return 0;
  std::vector<std::size_t> to_drop;
  std::size_t affected = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int covering = frs.first_covering_rule(data.row(i));
    if (covering < 0) continue;
    const auto& rule = frs.rule(static_cast<std::size_t>(covering));
    // "Instances that do not have the same class label as the feedback rules
    // covering those instances" (§5.1): for probabilistic rules we treat a
    // label with zero probability under π as disagreeing.
    if (rule.pi.prob(data.label(i)) > 0.0) continue;
    ++affected;
    if (strategy == ModStrategy::kRelabel) {
      data.set_label(i, rule.pi.mode());
    } else {
      to_drop.push_back(i);
    }
  }
  if (strategy == ModStrategy::kDrop) data.remove_rows(to_drop);
  return affected;
}

FroteResult frote_edit(const Dataset& data, const Learner& learner,
                       const FeedbackRuleSet& frs, const FroteConfig& config,
                       const AcceptCallback& on_accept) {
  // Compatibility shim: Algorithm 1's loop lives in Session::step()
  // (core/engine.cpp); this assembles the equivalent Engine and runs a
  // session to completion. Output is bit-identical to the pre-Engine
  // implementation for the same seed (tests/test_engine_api.cpp).
  auto engine = Engine::Builder().from_config(config).rules(frs).build();
  if (!engine) throw Error(engine.error().message);
  auto session = engine->open(data, learner);
  if (!session) throw Error(session.error().message);
  if (on_accept) {
    auto observer = std::make_shared<CallbackObserver>();
    observer->accept = on_accept;
    session->add_observer(std::move(observer));
  }
  session->run();
  return std::move(*session).result();
}

}  // namespace frote
