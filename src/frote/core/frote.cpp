#include "frote/core/frote.hpp"

#include <algorithm>
#include <cmath>

#include "frote/core/generate.hpp"

namespace frote {

std::size_t apply_mod_strategy(Dataset& data, const FeedbackRuleSet& frs,
                               ModStrategy strategy) {
  if (strategy == ModStrategy::kNone) return 0;
  std::vector<std::size_t> to_drop;
  std::size_t affected = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int covering = frs.first_covering_rule(data.row(i));
    if (covering < 0) continue;
    const auto& rule = frs.rule(static_cast<std::size_t>(covering));
    // "Instances that do not have the same class label as the feedback rules
    // covering those instances" (§5.1): for probabilistic rules we treat a
    // label with zero probability under π as disagreeing.
    if (rule.pi.prob(data.label(i)) > 0.0) continue;
    ++affected;
    if (strategy == ModStrategy::kRelabel) {
      data.set_label(i, rule.pi.mode());
    } else {
      to_drop.push_back(i);
    }
  }
  if (strategy == ModStrategy::kDrop) data.remove_rows(to_drop);
  return affected;
}

FroteResult frote_edit(const Dataset& data, const Learner& learner,
                       const FeedbackRuleSet& frs, const FroteConfig& config,
                       const AcceptCallback& on_accept) {
  FROTE_CHECK_MSG(!data.empty(), "FROTE requires a non-empty input dataset");
  FROTE_CHECK(config.tau > 0);
  FROTE_CHECK(config.q >= 0.0);

  Rng rng(config.seed);
  FroteResult result;

  // Input modification (relabel / drop / none).
  result.augmented = data;
  apply_mod_strategy(result.augmented, frs, config.mod_strategy);
  Dataset& active = result.augmented;  // D̂

  // Line 1: η ← q|D|/τ unless the user fixed it.
  const std::size_t eta =
      config.eta != 0
          ? config.eta
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       config.q * static_cast<double>(data.size()) /
                       static_cast<double>(config.tau)));
  const auto quota = static_cast<std::size_t>(
      config.q * static_cast<double>(data.size()));

  // Lines 2–3: train on D̂ and evaluate Ĵ. We track J̄ = 1 − J, so Algorithm
  // 1's "accept if j' < ĵ" becomes "accept if j̄' > j̄". When D̂ has no rule
  // coverage (tcf = 0) the MRA term is pessimistically 0 (train_j_hat_bar),
  // so the first learned batch of synthetic instances is accepted.
  result.model = learner.train(active);
  double best_j_bar = train_j_hat_bar(*result.model, frs, active);
  result.trace.push_back({0, 0, best_j_bar, true});

  if (frs.empty() || config.q == 0.0) return result;

  // Line 4: P ← PreSelectBP(D̂, F).
  BasePopulation bp = preselect_base_population(active, frs, config.k);
  std::unique_ptr<BaseInstanceSelector> owned_selector;
  const BaseInstanceSelector* selector = config.custom_selector.get();
  if (selector == nullptr) {
    owned_selector = make_selector(config.selection, config.k);
    selector = owned_selector.get();
  }
  MixedDistance distance = MixedDistance::fit(active);

  GenerateConfig generate_config;
  generate_config.k = config.k;
  generate_config.rule_confidence = config.rule_confidence;

  // Lines 6–18: the augmentation loop.
  std::size_t added = 0;
  for (std::size_t iter = 0; iter < config.tau && added <= quota; ++iter) {
    ++result.iterations_run;

    // Line 7: B ← SelectBaseInstances(P, η).
    const auto selected =
        selector->select(active, bp, *result.model, eta, rng);
    if (selected.empty()) break;  // no usable base population left

    // Line 8: S ← Generate(B). One generator per rule (they own the
    // per-rule kNN index over the current D̂).
    std::vector<std::unique_ptr<RuleConstrainedGenerator>> generators(
        frs.size());
    Dataset synthetic(active.schema_ptr());
    std::vector<double> row;
    int label = 0;
    for (const auto& pick : selected) {
      auto& gen = generators[pick.rule_index];
      if (!gen) {
        gen = std::make_unique<RuleConstrainedGenerator>(
            active, frs.rule(pick.rule_index), bp.per_rule[pick.rule_index],
            distance, generate_config);
      }
      if (gen->generate(pick.bp_slot, rng, row, label)) {
        synthetic.add_row(row, label);
      }
    }
    if (synthetic.empty()) continue;

    // Line 9: D′ ← D̂ ∪ S.
    Dataset candidate = active;
    candidate.append(synthetic);

    // Lines 10–11: retrain on D′ and evaluate Ĵ_D̂ on the candidate dataset
    // D′. Evaluating on D′ rather than the pre-merge D̂ is what makes the
    // tcf = 0 regime work: when the active dataset has no rule coverage at
    // all, only the candidate's synthetic instances can supply the MRA
    // evidence needed to accept the first batch (see DESIGN.md §5).
    auto candidate_model = learner.train(candidate);
    const double j_bar = train_j_hat_bar(*candidate_model, frs, candidate);

    // Lines 12–16: accept if the loss decreased (J̄ increased).
    const bool accept = config.accept_always || j_bar > best_j_bar;
    result.trace.push_back({result.iterations_run, added + synthetic.size(),
                            j_bar, accept});
    if (accept) {
      active = std::move(candidate);
      result.model = std::move(candidate_model);
      best_j_bar = j_bar;
      added += synthetic.size();
      ++result.iterations_accepted;
      // Line 15: P ← PreSelectBP(D̂, F); refresh the distance scales too.
      bp = preselect_base_population(active, frs, config.k);
      distance = MixedDistance::fit(active);
      if (on_accept) on_accept(*result.model, added);
    }
  }
  result.instances_added = added;
  return result;
}

}  // namespace frote
