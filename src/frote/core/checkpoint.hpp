// Session checkpoints — pause/resume for the FROTE editing loop.
//
// A FROTE run is a long generate → gate → retrain loop; serving it (or just
// surviving a restart) needs the loop state to be a value. A
// SessionCheckpoint captures everything that evolves during a session and
// is not a deterministic function of the engine configuration:
//   - the evolving D̂: schema, rows, labels, and the change-tracking
//     metadata (row ids / id counter / version / append_epoch) consumers
//     key caches by;
//   - the RNG stream (all four xoshiro words plus the Box–Muller spare);
//   - the loop counters (iterations run/accepted, instances added,
//     consecutive rejections, η, quota, model stamps) and the trace.
// The model and the SessionWorkspace are deliberately NOT serialised: the
// model is retrained from D̂ on restore (bit-identical — training is a
// deterministic function of the dataset bytes) and the workspace caches are
// rebuilt, every read being bit-identical to recomputation by the PR-4
// workspace contract. Net effect: interrupt-at-iteration-k + restore +
// run-to-completion produces bit-identical output (augmented dataset AND
// trace) to the uninterrupted run, at any thread count
// (tests/test_checkpoint.cpp).
//
//   auto ckpt = session.snapshot();
//   std::string text = ckpt.to_json_text();        // persist anywhere
//   ...
//   auto restored = SessionCheckpoint::parse(text).value();
//   auto session2 = Session::restore(engine, *learner, restored).value();
//   session2.run();
//
// Doubles round-trip bit-exactly through the JSON layer (util/json.hpp);
// the format/version keys follow the same forward-compat policy as
// EngineSpec (docs/DESIGN.md §6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/util/json.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct SessionCheckpoint {
  /// v2 adds state.digest (the dataset/learner/Ĵ̄ binding witness that lets
  /// restore skip the verification retrain sweep) and state.model_updates.
  /// Both are optional on read, so v1 checkpoints restore unchanged — they
  /// just pay the full verification path.
  static constexpr std::uint64_t kFormatVersion = 2;

  // -- D̂ ---------------------------------------------------------------
  std::shared_ptr<const Schema> schema;
  std::vector<double> values;  // row-major, labels.size() × num_features
  std::vector<int> labels;
  std::vector<std::uint64_t> row_ids;
  std::uint64_t next_row_id = 0;
  std::uint64_t dataset_version = 0;
  std::uint64_t append_epoch = 0;
  /// Storage geometry of D̂ (docs/DESIGN.md §8). Recorded so restore
  /// rebuilds the same chunk layout bit-identically; absent in pre-chunking
  /// checkpoints, which read back as the flat default.
  std::size_t chunk_rows = 0;
  bool mmap = false;

  // -- RNG stream -------------------------------------------------------
  RngState rng;

  // -- Loop state -------------------------------------------------------
  std::uint64_t model_version = 0;
  std::uint64_t model_stamp_counter = 0;
  double best_j_bar = 0.0;
  std::size_t eta = 0;
  std::size_t quota = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  std::size_t instances_added = 0;
  std::size_t consecutive_rejections = 0;
  std::uint64_t model_updates = 0;
  bool done = false;
  std::vector<ProgressPoint> trace;

  /// FNV-1a over the dataset payload bytes, the loop identity (model
  /// version, best Ĵ̄ bits) and the learner name — written by
  /// Session::snapshot(). 0 = absent (v1 checkpoint or hand-built struct).
  /// When restore() recomputes the same value it may trust the recorded
  /// best_j_bar without the verification sweep; any mismatch (or absence)
  /// falls back to the full recompute-and-cross-check path, so tampering
  /// detection is never weaker than v1.
  std::uint64_t dataset_digest = 0;

  /// The digest over this checkpoint's own fields plus `learner_name`;
  /// what snapshot() stores in dataset_digest and restore() verifies.
  std::uint64_t compute_digest(std::string_view learner_name) const;

  JsonValue to_json() const;
  static Expected<SessionCheckpoint, FroteError> from_json(
      const JsonValue& json);

  std::string to_json_text(int indent = 2) const;
  static Expected<SessionCheckpoint, FroteError> parse(
      std::string_view json_text);
};

}  // namespace frote
