// SessionPool — the multi-tenant session table behind frote_serve.
//
// A serving daemon holds many live edits at once, but a live Session is
// heavy (D̂ + model + workspace caches), so the pool treats sessions as
// *evictable units*: every session is either live (an in-memory Session)
// or spooled (a SessionCheckpoint file under `spool_dir`), and moves
// between the two states without the client being able to tell. PR 5's
// bit-identical snapshot/restore contract is what makes this legal — an
// evicted-and-restored session answers every subsequent request with
// exactly the bytes the never-evicted session would have produced
// (tests/test_serve.cpp locks this: an evict-between-every-request run is
// byte-compared against a never-evicted one).
//
// Determinism contract (docs/DESIGN.md §7): a session's responses are a
// pure function of its creation spec and the *order* of the requests
// addressed to it. The pool enforces per-session serialization (one
// request in flight per session; concurrent requests to the same session
// queue on its mutex in arrival order) while requests to different
// sessions may execute concurrently — the engine's own parallelism runs on
// util/parallel.hpp underneath, so FROTE_NUM_THREADS never changes bytes.
// Nothing here reads the clock: LRU recency is the logical request
// counter, ids are a monotone sequence ("s-000001", ...), and stats are
// request-count functions.
//
// Durability: when a spool directory is configured, session.create
// persists the resolved EngineSpec next to the checkpoint slot, eviction
// writes <id>.checkpoint.json durably (fsync'd atomic rename + integrity
// footer, util/fsio.hpp), and checkpoint_all() (the SIGTERM/EOF path,
// parallel across sessions) spools every live session — so a restarted
// daemon pointed at the same spool recovers every session and continues
// it bit-identically. A spool file that fails validation on read (torn by
// a crash the rename protocol didn't cover, bit-rotted, hand-edited) is
// quarantined to <name>.corrupt and that one session degrades to a typed
// "session unrecoverable" error; the daemon and every other session keep
// serving. The kill-recover chaos suite (tests/test_chaos_serve.cpp)
// SIGKILLs the daemon at every fsio fault point and asserts recovery is
// always to the pre- or post-checkpoint state, never a third one.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/core/spec.hpp"
#include "frote/util/json.hpp"

namespace frote {

struct SessionPoolConfig {
  /// Checkpoint spool directory. Empty disables eviction and durability
  /// (sessions live in memory until closed; checkpoint_all is a no-op).
  std::string spool_dir;
  /// Live sessions kept in memory; exceeding this evicts the
  /// least-recently-used idle session to the spool. 0 = unbounded.
  /// Without a spool there is nowhere to evict to, so this becomes an
  /// admission limit instead: create() beyond it is refused with an
  /// "overloaded" typed error rather than OOM-ing the daemon.
  std::size_t max_live = 8;
  /// Hard cap on open sessions (live + evicted). create() beyond it is
  /// refused with an "overloaded" typed error. 0 = unbounded.
  std::size_t max_sessions = 0;
  /// Testing/verification mode: spool the session after *every* request,
  /// so each next request pays a full restore. Client-visible responses
  /// must not change — this is the eviction-transparency lock.
  bool evict_every_request = false;
  /// Engine-side threads override for served sessions (0 ⇒ the spec's own
  /// value, which itself defaults to FROTE_NUM_THREADS).
  int threads = 0;
};

/// Deterministic response payload of session.step (serialised by the
/// daemon; every field is a pure function of the session's request
/// history).
struct SessionStepOutcome {
  std::size_t steps_executed = 0;
  bool last_accepted = false;
  bool finished = false;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  std::size_t instances_added = 0;
  std::size_t rows = 0;
  double j_bar = 0.0;
};

class SessionPool {
 public:
  explicit SessionPool(SessionPoolConfig config);
  ~SessionPool();
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Scan the spool for persisted sessions from a previous daemon and
  /// re-register them (in evicted state — they hydrate lazily on first
  /// use). Returns how many were recovered; sessions whose spec or
  /// checkpoint no longer parses are skipped with a note in `problems`.
  std::size_t recover_from_spool(std::vector<std::string>* problems = nullptr);

  /// session.create: resolve the spec (dataset reference required — the
  /// daemon has no other input channel), open a Session, and return its id.
  Expected<std::string, FroteError> create(const EngineSpec& spec);

  /// session.step: run up to `steps` iterations (stops early when the
  /// session finishes).
  Expected<SessionStepOutcome, FroteError> step(const std::string& id,
                                                std::size_t steps);

  /// session.snapshot: the session's checkpoint document, as JSON.
  Expected<JsonValue, FroteError> snapshot(const std::string& id);

  /// session.result: deterministic summary of the session so far,
  /// including a digest of D̂ (the cheap byte-identity witness).
  Expected<JsonValue, FroteError> result(const std::string& id);

  /// session.close: final summary; the session and its spool files are
  /// removed, and its id becomes permanently stale.
  Expected<JsonValue, FroteError> close(const std::string& id);

  /// server.stats: pool counters (sessions, live/evicted, evictions,
  /// restores, requests, threads) plus a per-session "sessions" array
  /// (id-ordered) reporting each open session's residency state,
  /// last-observed D̂ geometry — row count and columnar chunk count
  /// (docs/DESIGN.md §8) — and loop counters (accepts, rejects,
  /// model_updates) without hydrating evicted sessions.
  /// Deterministic for a given request sequence — and therefore the one
  /// method whose responses *differ* between an evicting and a
  /// non-evicting run.
  JsonValue stats() const;

  /// Spool every live session (no-op without a spool dir). The shutdown
  /// path: parallel across sessions on util/parallel.hpp, safe to call
  /// repeatedly. Returns the number of sessions written.
  std::size_t checkpoint_all();

  /// True when `id` refers to an open (live or evicted) session.
  bool contains(const std::string& id) const;

 private:
  struct Entry;

  /// Look up an entry and bump its recency (the logical request counter —
  /// never the clock); "no such session" typed error when stale.
  Expected<std::shared_ptr<Entry>, FroteError> find_entry(
      const std::string& id);
  /// Ensure the entry has a live Session (restore from spool if evicted).
  /// Caller must hold the entry mutex. A torn/corrupt spooled checkpoint
  /// is quarantined and reported as a "session unrecoverable" typed error
  /// (JSON-RPC -32002) — the session is lost but the daemon keeps serving
  /// every other session.
  std::optional<FroteError> hydrate(Entry& entry);
  /// Spool the entry's live session and drop it. Caller must hold the
  /// entry mutex; no-op when already evicted or no spool is configured.
  void evict(Entry& entry);
  /// Apply evict_every_request and the max_live LRU bound after a request.
  /// Busy entries (their mutex is held — a request is executing) are never
  /// candidates: try_lock, don't block.
  void enforce_capacity();
  JsonValue summary_json(Entry& entry) const;
  std::filesystem::path spool_path(const std::string& id,
                                   const char* kind) const;

  SessionPoolConfig config_;
  /// Lock order: table_mutex_ is never *blocked on* while an entry mutex
  /// is held, and entry mutexes are only try_lock'ed under table_mutex_
  /// (enforce_capacity) — so the pair cannot deadlock.
  mutable std::mutex table_mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::uint64_t next_session_ = 1;
  /// Mutable: stats() is logically read-only but still counts as a request.
  mutable std::atomic<std::uint64_t> request_counter_{0};
  std::uint64_t sessions_created_ = 0;
  std::uint64_t sessions_closed_ = 0;
  std::uint64_t sessions_recovered_ = 0;
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> restores_{0};
  /// Evictions/checkpoints whose spool write failed (injected or real I/O
  /// error). The session stays live — a failed spool write must never cost
  /// state — but the counter surfaces the degradation in server.stats.
  std::atomic<std::uint64_t> spool_failures_{0};
};

}  // namespace frote
