// EngineSpec — the declarative, serialisable description of a FROTE run.
//
// A FROTE run used to exist only as in-process Engine::Builder calls plus
// ad-hoc CLI flags, so it could not be stored, diffed, handed to a service,
// or re-executed after a restart. EngineSpec captures everything the
// Builder accepts — scalar knobs, the selector and stopping criterion by
// registry name, the learner, the feedback rules via the rules/parser text
// round-trip, and an optional dataset reference — as one JSON document:
//
//   {
//     "format": "frote.engine_spec", "version": 1,
//     "tau": 30, "q": 0.5, "k": 5, "seed": 42,
//     "mod_strategy": "relabel", "selector": "ip",
//     "stopping": {"kind": "budget"},
//     "learner": {"name": "rf"},
//     "rules": ["IF score > 7 THEN class = decline"],
//     "dataset": {"kind": "synthetic", "name": "adult", "size": 500}
//   }
//
// Construction goes through the shared component registry (core/registry),
// so the CLI, the experiment harness, and any future service build engines
// through one path:
//
//   auto spec    = EngineSpec::parse(json_text).value();
//   auto data    = load_spec_dataset(spec.dataset.value()).value();
//   auto learner = make_spec_learner(spec).value();
//   auto engine  = Engine::Builder::from_spec(spec, data.schema())
//                      .value().build().value();
//
// Engine::to_spec() inverts from_spec losslessly (tests/test_spec.cpp locks
// JSON → Engine → to_spec() → JSON equality for every registry combination).
//
// Versioning / forward compatibility (docs/DESIGN.md §6): readers ignore
// unknown keys, missing keys take the documented defaults, and a "version"
// greater than the reader's is a typed error — older binaries refuse specs
// from the future instead of silently dropping semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/util/json.hpp"

namespace frote {

class StoppingCriterion;

/// Reference to the input dataset D. "csv" loads `path` (data/csv.hpp
/// schema-header format); "synthetic" generates the named UCI stand-in
/// (data/generators.hpp) at `size` rows with `seed`.
struct DatasetSpec {
  std::string kind = "synthetic";
  std::string path;                // csv
  std::string name = "adult";      // synthetic
  std::size_t size = 0;            // synthetic; 0 = the paper's size
  std::uint64_t seed = 42;         // synthetic

  /// Storage geometry (docs/DESIGN.md §8): rows per sealed columnar chunk
  /// (0 = flat contiguous storage, today's default) and whether sealed
  /// chunks are mmap-backed. Augmentation output is bit-identical across
  /// every geometry; these knobs trade layout for peak RSS at scale.
  std::size_t chunk_rows = 0;
  bool mmap = false;

  JsonValue to_json() const;
  static Expected<DatasetSpec, FroteError> from_json(const JsonValue& json);
};

/// Declarative stopping criterion: "budget" (τ + q·|D| bounds, the
/// Algorithm 1 default), "plateau" (stop after `patience` consecutive
/// non-accepting steps), or "any_of" over `children`.
struct StoppingSpec {
  std::string kind = "budget";
  std::size_t patience = 25;             // plateau
  std::vector<StoppingSpec> children;    // any_of

  JsonValue to_json() const;
  static Expected<StoppingSpec, FroteError> from_json(const JsonValue& json);
};

struct EngineSpec {
  static constexpr std::uint64_t kFormatVersion = 1;

  // Scalar engine configuration (FroteConfig mirror; same defaults).
  std::size_t tau = 200;
  double q = 0.5;
  std::size_t k = 5;
  std::size_t eta = 0;
  std::uint64_t seed = 42;
  int threads = 0;
  std::string mod_strategy = "relabel";
  double rule_confidence = 1.0;
  bool accept_always = false;

  /// Base-instance selector by registry name (make_named_selector).
  std::string selector = "random";
  StoppingSpec stopping;

  /// Black-box learner by registry name (make_named_learner). learner_seed
  /// defaults to the engine seed when unset.
  std::string learner = "rf";
  bool learner_fast = false;
  std::optional<std::uint64_t> learner_seed;

  /// Feedback rules in the rules/parser textual grammar, parsed against the
  /// dataset schema by Engine::Builder::from_spec.
  std::vector<std::string> rules;

  /// Input dataset reference; absent when the caller supplies the Dataset
  /// in process (the harness path).
  std::optional<DatasetSpec> dataset;

  JsonValue to_json() const;
  static Expected<EngineSpec, FroteError> from_json(const JsonValue& json);

  std::string to_json_text(int indent = 2) const;
  static Expected<EngineSpec, FroteError> parse(std::string_view json_text);
};

/// Resolve the spec's learner through the registry (seed falls back to the
/// engine seed).
Expected<std::unique_ptr<Learner>> make_spec_learner(const EngineSpec& spec);

/// Materialise a dataset reference.
Expected<Dataset> load_spec_dataset(const DatasetSpec& spec);

/// Build the stopping criterion a StoppingSpec describes.
Expected<std::shared_ptr<const StoppingCriterion>> make_spec_stopping(
    const StoppingSpec& spec);

/// ModStrategy ↔ its spec/CLI name ("relabel" | "drop" | "none").
Expected<ModStrategy> parse_mod_strategy(const std::string& name);
const char* mod_strategy_name(ModStrategy strategy);

}  // namespace frote
