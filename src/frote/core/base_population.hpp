// Base population pre-selection — Algorithm 2 (PreSelectBP).
//
// FROTE keeps a per-rule base population P[r]. Initially P[r] = cov(s_r, D̂);
// when a rule's coverage is below L = k+1 its clause is relaxed (maximal
// partial rule, BFS condition deletion) until the relaxed coverage reaches L.
// Instances matching the rule exactly are *strongly covered*; instances that
// only match the relaxed clause are *weakly covered*.
#pragma once

#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/rules/relax.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

struct RuleBasePopulation {
  std::size_t rule_index = 0;
  /// The clause actually used for membership (possibly relaxed).
  Clause effective_clause;
  bool relaxed = false;
  std::size_t removed_conditions = 0;
  /// Row indices of the base population in the active dataset D̂.
  std::vector<std::size_t> indices;
  /// indices[i] is strongly covered iff it matches the *unrelaxed* rule.
  std::vector<bool> strongly_covered;
};

struct BasePopulation {
  std::vector<RuleBasePopulation> per_rule;

  /// Union of all per-rule indices (sorted, deduplicated).
  std::vector<std::size_t> all_indices() const;
  /// Total number of (rule, instance) slots.
  std::size_t total_slots() const;
};

/// Algorithm 2: build per-rule base populations over `data` with
/// min support L = k + 1.
BasePopulation preselect_base_population(const Dataset& data,
                                         const FeedbackRuleSet& frs,
                                         std::size_t k);

/// Incremental Algorithm 2 after an append: rows [first_new_row, |D|) were
/// appended to `data` and every earlier row is unchanged. `bp` must be the
/// result of preselect/update over the pre-append prefix. Produces exactly
/// preselect_base_population(data, frs, k):
///   - a rule that was *not* relaxed keeps its clause (its coverage can only
///     have grown past L = k+1), so only the appended rows are scanned;
///   - a rule that *was* relaxed is recomputed from scratch — appended rows
///     can flip any of the greedy BFS deletion choices, or push the
///     original clause's coverage over L so no relaxation is needed at all
///     (docs/DESIGN.md §5).
void update_base_population(BasePopulation& bp, const Dataset& data,
                            const FeedbackRuleSet& frs, std::size_t k,
                            std::size_t first_new_row);

}  // namespace frote
