// Engine/Session: the composable, steppable form of the FROTE loop.
//
// `Engine` is an immutable, validated bundle of configuration + pipeline
// stage components (selection, generation, acceptance, stopping, observers).
// It is cheap to copy and safe to share; build one with `Engine::Builder`,
// which returns `Expected<Engine, FroteError>` so configuration mistakes are
// typed values, not throws.
//
// `Session` is one live edit: it owns the evolving D̂ and model state for a
// (dataset, learner) pair and exposes
//   step()   — one Algorithm-1 iteration, returning a typed StepReport
//   run()    — iterate until the engine's StoppingCriterion (or exhaustion)
//   result() — finalize into the classic FroteResult (rvalue-qualified:
//              `std::move(session).result()` hands over the model)
// so callers can pause, inspect intermediate state, interleave sessions, and
// later parallelize across them.
//
//   auto engine = frote::Engine::Builder()
//                     .rules(frs)
//                     .tau(30).q(0.5)
//                     .build().value();
//   auto session = engine.open(train, learner).value();
//   session.run();                       // or: while (!session.finished())
//   auto result = std::move(session).result();  //       session.step();
//
// The legacy free function frote_edit() (core/frote.hpp) is a thin shim over
// this API and produces bit-identical output for the same seed.
#pragma once

#include <memory>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/core/stages.hpp"
#include "frote/core/workspace.hpp"

namespace frote {

class Session;

class Engine {
 public:
  class Builder;

  /// Open an editing session on `data` with black-box trainer `learner`.
  /// Copies `data`, applies the mod strategy and trains the initial model —
  /// this is the pre-loop part of Algorithm 1 (lines 1–5). Both referents
  /// must outlive the session. Fails (kInvalidArgument) on an empty dataset.
  Expected<Session, FroteError> open(const Dataset& data,
                                     const Learner& learner) const;

  /// The validated scalar configuration (τ, q, k, η, seed, mod strategy...).
  const FroteConfig& config() const;
  /// The feedback rule set F this engine edits towards.
  const FeedbackRuleSet& rules() const;

 private:
  struct Impl;
  explicit Engine(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<const Impl> impl_;
  friend class Session;
};

/// Builder for Engine. Scalar knobs mirror FroteConfig; component setters
/// override the defaults assembled from those knobs. build() validates
/// everything and returns the immutable Engine or a typed FroteError.
class Engine::Builder {
 public:
  Builder();

  /// Seed all scalar knobs from a legacy FroteConfig (the shim path and the
  /// easiest migration entry point). custom_selector and accept_always are
  /// mapped onto their component equivalents.
  Builder& from_config(const FroteConfig& config);

  Builder& rules(FeedbackRuleSet frs);
  Builder& tau(std::size_t tau);
  Builder& q(double q);
  Builder& k(std::size_t k);
  Builder& eta(std::size_t eta);
  Builder& seed(std::uint64_t seed);
  /// Threads for the engine-side hot paths (Ĵ evaluation, IP selection
  /// scoring); 0 ⇒ FROTE_NUM_THREADS, default 1. Sessions produce
  /// bit-identical output for every thread count.
  Builder& threads(int threads);
  Builder& mod_strategy(ModStrategy strategy);
  Builder& selection(SelectionStrategy strategy);
  Builder& rule_confidence(double confidence);
  /// Convenience for the ablation switch; equivalent to
  /// acceptance(std::make_shared<AlwaysAcceptPolicy>()).
  Builder& accept_always(bool always);

  /// Component overrides (pluggable stages).
  Builder& selector(std::shared_ptr<const BaseInstanceSelector> selector);
  Builder& generator(std::shared_ptr<const InstanceGenerator> generator);
  Builder& acceptance(std::shared_ptr<const AcceptancePolicy> policy);
  Builder& stopping(std::shared_ptr<const StoppingCriterion> criterion);
  /// Observers receive events from every session the engine opens; may be
  /// called repeatedly to register several.
  Builder& observer(std::shared_ptr<ProgressObserver> observer);

  /// Validate and assemble. Reports every invalid field in one
  /// kInvalidConfig error message.
  Expected<Engine, FroteError> build() const;

 private:
  FroteConfig config_;
  FeedbackRuleSet frs_;
  std::shared_ptr<const InstanceGenerator> generator_;
  std::shared_ptr<const AcceptancePolicy> acceptance_;
  std::shared_ptr<const StoppingCriterion> stopping_;
  std::vector<std::shared_ptr<ProgressObserver>> observers_;
};

/// One live edit over a dataset. Move-only; create via Engine::open().
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Execute one Algorithm-1 iteration (lines 7–16): select → generate →
  /// retrain → accept/reject, notifying observers. A manual step() ignores
  /// the StoppingCriterion — the caller owns the loop; use finished() to
  /// honour it. After the base population exhausts (kExhausted) or on a
  /// finished session, returns a kFinished/kExhausted no-op report.
  StepReport step();

  /// Loop step() until the engine's StoppingCriterion fires or the session
  /// exhausts. Returns the number of steps executed by this call.
  std::size_t run();

  /// True when the StoppingCriterion says stop or no progress is possible.
  bool finished() const;

  /// Loop-state snapshot (iterations, N, τ, quota, best Ĵ̄, plateau count).
  SessionProgress progress() const;

  /// The evolving augmented dataset D̂.
  const Dataset& augmented() const { return active_; }
  /// The session's workspace: incrementally maintained distance / kNN index
  /// / prediction caches over D̂ (see core/workspace.hpp).
  const SessionWorkspace& workspace() const { return *ws_; }
  /// The current model M_D̂ (retrained on every accepted step).
  const Model& model() const { return *model_; }
  /// Per-iteration decisions so far (iteration 0 is the initial model).
  const std::vector<ProgressPoint>& trace() const { return trace_; }
  double best_j_hat_bar() const { return best_j_bar_; }

  /// Attach an observer to this session only. Events that already fired
  /// (e.g. on_session_start) are not replayed.
  void add_observer(std::shared_ptr<ProgressObserver> observer);

  /// Finalize into the classic FroteResult, handing over the model and the
  /// augmented dataset. Consumes the session: `std::move(session).result()`.
  FroteResult result() &&;

 private:
  Session(std::shared_ptr<const Engine::Impl> engine, const Dataset& data,
          const Learner& learner);
  friend class Engine;

  void notify_step(const StepReport& report);
  void notify_accept();

  std::shared_ptr<const Engine::Impl> engine_;
  const Learner* learner_ = nullptr;
  Rng rng_;
  Dataset active_;  // D̂; candidate batches are staged in place (no copies)
  std::unique_ptr<Model> model_;
  /// Stamp of model_ for the workspace caches (no pointer identity games).
  std::uint64_t model_version_ = 0;
  /// Monotone counter behind model stamps: every trained candidate gets a
  /// fresh stamp — two different candidates must never share one, even when
  /// D̂ returns to the same snapshot after a rejection.
  std::uint64_t model_stamp_counter_ = 0;
  double best_j_bar_ = 0.0;
  BasePopulation bp_;
  /// unique_ptr: the workspace address must survive Session moves — cached
  /// generators and indexes are reached through it every step.
  std::unique_ptr<SessionWorkspace> ws_;
  std::size_t eta_ = 0;
  std::size_t quota_ = 0;
  std::size_t iterations_run_ = 0;
  std::size_t iterations_accepted_ = 0;
  std::size_t added_ = 0;
  std::size_t consecutive_rejections_ = 0;
  std::vector<ProgressPoint> trace_;
  std::vector<std::shared_ptr<ProgressObserver>> observers_;
  bool done_ = false;  // exhausted, or nothing to do (empty F / q == 0)
};

}  // namespace frote
