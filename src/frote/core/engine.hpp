// Engine/Session: the composable, steppable form of the FROTE loop.
//
// `Engine` is an immutable, validated bundle of configuration + pipeline
// stage components (selection, generation, acceptance, stopping, observers).
// It is cheap to copy and safe to share; build one with `Engine::Builder`,
// which returns `Expected<Engine, FroteError>` so configuration mistakes are
// typed values, not throws.
//
// `Session` is one live edit: it owns the evolving D̂ and model state for a
// (dataset, learner) pair and exposes
//   step()   — one Algorithm-1 iteration, returning a typed StepReport
//   run()    — iterate until the engine's StoppingCriterion (or exhaustion)
//   result() — finalize into the classic FroteResult (rvalue-qualified:
//              `std::move(session).result()` hands over the model)
// so callers can pause, inspect intermediate state, interleave sessions, and
// later parallelize across them.
//
//   auto engine = frote::Engine::Builder()
//                     .rules(frs)
//                     .tau(30).q(0.5)
//                     .build().value();
//   auto session = engine.open(train, learner).value();
//   session.run();                       // or: while (!session.finished())
//   auto result = std::move(session).result();  //       session.step();
//
// The legacy free function frote_edit() (core/frote.hpp) is a thin shim over
// this API and produces bit-identical output for the same seed.
#pragma once

#include <memory>
#include <vector>

#include "frote/core/frote.hpp"
#include "frote/core/stages.hpp"
#include "frote/core/workspace.hpp"

namespace frote {

class Session;
struct EngineSpec;
struct SessionCheckpoint;

class Engine {
 public:
  class Builder;

  /// Open an editing session on `data` with black-box trainer `learner`.
  /// Copies `data`, applies the mod strategy and trains the initial model —
  /// this is the pre-loop part of Algorithm 1 (lines 1–5). Both referents
  /// must outlive the session. Fails (kInvalidArgument) on an empty dataset.
  Expected<Session, FroteError> open(const Dataset& data,
                                     const Learner& learner) const;

  /// The validated scalar configuration (τ, q, k, η, seed, mod strategy...).
  const FroteConfig& config() const;
  /// The feedback rule set F this engine edits towards.
  const FeedbackRuleSet& rules() const;

  /// Serialise back to the declarative spec (core/spec.hpp). Lossless for
  /// engines built via Builder::from_spec (the stored provenance — learner
  /// and dataset reference included — is returned with the scalar knobs
  /// re-synced). Engines assembled imperatively are representable as long
  /// as every component is registry-named (scalar knobs + the
  /// SelectionStrategy enum); custom component instances yield
  /// kInvalidArgument. The no-argument form needs rule text from the spec
  /// provenance — rules installed as in-process objects require the
  /// schema-taking overload to re-serialise them. Caveat for synthesized
  /// specs (no from_spec provenance): the learner and dataset fields are
  /// open()-time arguments an Engine never sees, so they hold the spec
  /// defaults — fill them in before persisting the document as a run.
  Expected<EngineSpec, FroteError> to_spec() const;
  Expected<EngineSpec, FroteError> to_spec(const Schema& schema) const;

 private:
  struct Impl;
  explicit Engine(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<const Impl> impl_;
  friend class Session;
};

/// Builder for Engine. Scalar knobs mirror FroteConfig; component setters
/// override the defaults assembled from those knobs. build() validates
/// everything and returns the immutable Engine or a typed FroteError.
class Engine::Builder {
 public:
  Builder();

  /// Seed all scalar knobs from a legacy FroteConfig (the shim path and the
  /// easiest migration entry point). custom_selector and accept_always are
  /// mapped onto their component equivalents.
  Builder& from_config(const FroteConfig& config);

  /// Seed the builder from a declarative spec (core/spec.hpp): scalar
  /// knobs, the selector and stopping criterion by registry name, and the
  /// rule text parsed against `schema`. Fails with a typed error on
  /// malformed rule text; unknown component names surface from build().
  /// The spec is kept as provenance so Engine::to_spec() is lossless.
  static Expected<Builder, FroteError> from_spec(const EngineSpec& spec,
                                                 const Schema& schema);

  Builder& rules(FeedbackRuleSet frs);
  Builder& tau(std::size_t tau);
  Builder& q(double q);
  Builder& k(std::size_t k);
  Builder& eta(std::size_t eta);
  Builder& seed(std::uint64_t seed);
  /// Threads for the engine-side hot paths (Ĵ evaluation, IP selection
  /// scoring); 0 ⇒ FROTE_NUM_THREADS, default 1. Sessions produce
  /// bit-identical output for every thread count.
  Builder& threads(int threads);
  Builder& mod_strategy(ModStrategy strategy);
  Builder& selection(SelectionStrategy strategy);
  Builder& rule_confidence(double confidence);
  /// Convenience for the ablation switch; equivalent to
  /// acceptance(std::make_shared<AlwaysAcceptPolicy>()).
  Builder& accept_always(bool always);

  /// Select the base-instance selector by registry name
  /// (make_named_selector: "random", "ip", "online-proxy", or anything
  /// registered at runtime). Resolution happens inside build(), after the
  /// rule set is fixed, so selectors that hold a rule-set reference
  /// (online-proxy) bind to the engine's own copy — never to a caller
  /// temporary.
  Builder& selector(std::string name);

  /// Component overrides (pluggable stages).
  Builder& selector(std::shared_ptr<const BaseInstanceSelector> selector);
  Builder& generator(std::shared_ptr<const InstanceGenerator> generator);
  Builder& acceptance(std::shared_ptr<const AcceptancePolicy> policy);
  Builder& stopping(std::shared_ptr<const StoppingCriterion> criterion);
  /// Observers receive events from every session the engine opens; may be
  /// called repeatedly to register several.
  Builder& observer(std::shared_ptr<ProgressObserver> observer);

  /// Validate and assemble. Reports every invalid field in one
  /// kInvalidConfig error message.
  Expected<Engine, FroteError> build() const;

 private:
  FroteConfig config_;
  FeedbackRuleSet frs_;
  std::string selector_name_;  // registry-resolved in build(); "" = unset
  std::shared_ptr<const InstanceGenerator> generator_;
  std::shared_ptr<const AcceptancePolicy> acceptance_;
  std::shared_ptr<const StoppingCriterion> stopping_;
  std::vector<std::shared_ptr<ProgressObserver>> observers_;
  /// Provenance for Engine::to_spec(): the spec this builder was seeded
  /// from, if any, and whether its rule text still matches frs_.
  std::shared_ptr<const EngineSpec> spec_;
  bool rules_overridden_ = false;
  /// First component override that has no spec representation ("" = none).
  std::string spec_gap_;
};

/// Optional warm-start inputs for Session::restore(). The pool stashes an
/// evicted session's model (Session::release_model) and passes it back on
/// rehydration: when `warm_model_version` equals the checkpoint's recorded
/// model version — and the checkpoint's dataset digest verifies — the model
/// is installed as-is instead of being retrained. Exact by object identity:
/// it is literally the model the snapshotting session carried.
struct SessionRestoreOptions {
  std::unique_ptr<Model> warm_model;
  std::uint64_t warm_model_version = 0;
};

/// One live edit over a dataset. Move-only; create via Engine::open().
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Execute one Algorithm-1 iteration (lines 7–16): select → generate →
  /// retrain → accept/reject, notifying observers. A manual step() ignores
  /// the StoppingCriterion — the caller owns the loop; use finished() to
  /// honour it. After the base population exhausts (kExhausted) or on a
  /// finished session, returns a kFinished/kExhausted no-op report.
  StepReport step();

  /// Loop step() until the engine's StoppingCriterion fires or the session
  /// exhausts. Returns the number of steps executed by this call.
  std::size_t run();

  /// True when the StoppingCriterion says stop or no progress is possible.
  bool finished() const;

  /// Loop-state snapshot (iterations, N, τ, quota, best Ĵ̄, plateau count).
  SessionProgress progress() const;

  /// The evolving augmented dataset D̂.
  const Dataset& augmented() const { return active_; }
  /// The session's workspace: incrementally maintained distance / kNN index
  /// / prediction caches over D̂ (see core/workspace.hpp).
  const SessionWorkspace& workspace() const { return *ws_; }
  /// The current model M_D̂ (retrained on every accepted step).
  const Model& model() const { return *model_; }
  /// Per-iteration decisions so far (iteration 0 is the initial model).
  const std::vector<ProgressPoint>& trace() const { return trace_; }
  double best_j_hat_bar() const { return best_j_bar_; }

  /// Attach an observer to this session only. Events that already fired
  /// (e.g. on_session_start) are not replayed.
  void add_observer(std::shared_ptr<ProgressObserver> observer);

  /// Capture the session's complete loop state — the evolving D̂ (rows plus
  /// change-tracking metadata), RNG stream, iteration/acceptance counters
  /// and trace — as a serialisable checkpoint (core/checkpoint.hpp). Legal
  /// at any iteration boundary; the session is unchanged. The model and
  /// workspace caches are NOT serialised: both are deterministic functions
  /// of the captured state and are rebuilt on restore.
  SessionCheckpoint snapshot() const;

  /// Rebuild a session from a checkpoint taken by snapshot(). `engine` and
  /// `learner` must describe the same run as the snapshotting session's
  /// (rebuild them from the run's EngineSpec); the model is retrained on
  /// the restored D̂ and the SessionWorkspace is rebuilt deterministically,
  /// so stepping the restored session is bit-identical to stepping the
  /// original — interrupt-at-k + resume equals an uninterrupted run
  /// (tests/test_checkpoint.cpp locks this at threads = 1 and 4). Fails
  /// with kInvalidArgument on malformed or inconsistent checkpoints.
  static Expected<Session, FroteError> restore(
      const Engine& engine, const Learner& learner,
      const SessionCheckpoint& checkpoint);
  /// Warm-path overload: may install options.warm_model instead of
  /// retraining (see SessionRestoreOptions for the exactness argument).
  static Expected<Session, FroteError> restore(
      const Engine& engine, const Learner& learner,
      const SessionCheckpoint& checkpoint, SessionRestoreOptions options);

  /// How many times the accept path has routed a retrain through
  /// Learner::update() (server.stats observability; survives checkpoints).
  std::uint64_t model_updates() const { return model_updates_; }
  /// Version stamp of the current model — pairs with release_model() so a
  /// pool can prove a stashed model still matches a checkpoint.
  std::uint64_t model_version() const { return model_version_; }
  /// Hand the trained model out of a session about to be dropped (pool
  /// eviction); the session must not be used afterwards.
  std::unique_ptr<Model> release_model() && { return std::move(model_); }

  /// Finalize into the classic FroteResult, handing over the model and the
  /// augmented dataset. Consumes the session: `std::move(session).result()`.
  FroteResult result() &&;

 private:
  Session(std::shared_ptr<const Engine::Impl> engine, const Dataset& data,
          const Learner& learner);
  /// Restore path (core/checkpoint.cpp): minimal construction; the caller
  /// fills every field from the checkpoint.
  struct RestoreTag {};
  Session(RestoreTag, std::shared_ptr<const Engine::Impl> engine,
          const Learner& learner);
  friend class Engine;

  void notify_step(const StepReport& report);
  void notify_accept();

  std::shared_ptr<const Engine::Impl> engine_;
  const Learner* learner_ = nullptr;
  Rng rng_;
  Dataset active_;  // D̂; candidate batches are staged in place (no copies)
  std::unique_ptr<Model> model_;
  /// Stamp of model_ for the workspace caches (no pointer identity games).
  std::uint64_t model_version_ = 0;
  /// Monotone counter behind model stamps: every trained candidate gets a
  /// fresh stamp — two different candidates must never share one, even when
  /// D̂ returns to the same snapshot after a rejection.
  std::uint64_t model_stamp_counter_ = 0;
  double best_j_bar_ = 0.0;
  BasePopulation bp_;
  /// unique_ptr: the workspace address must survive Session moves — cached
  /// generators and indexes are reached through it every step.
  std::unique_ptr<SessionWorkspace> ws_;
  std::size_t eta_ = 0;
  std::size_t quota_ = 0;
  std::size_t iterations_run_ = 0;
  std::size_t iterations_accepted_ = 0;
  std::size_t added_ = 0;
  std::size_t consecutive_rejections_ = 0;
  std::uint64_t model_updates_ = 0;
  std::vector<ProgressPoint> trace_;
  std::vector<std::shared_ptr<ProgressObserver>> observers_;
  bool done_ = false;  // exhausted, or nothing to do (empty F / q == 0)
};

}  // namespace frote
