#include "frote/core/base_population.hpp"

#include <algorithm>

namespace frote {

std::vector<std::size_t> BasePopulation::all_indices() const {
  std::vector<std::size_t> out;
  for (const auto& rule_bp : per_rule) {
    out.insert(out.end(), rule_bp.indices.begin(), rule_bp.indices.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t BasePopulation::total_slots() const {
  std::size_t total = 0;
  for (const auto& rule_bp : per_rule) total += rule_bp.indices.size();
  return total;
}

BasePopulation preselect_base_population(const Dataset& data,
                                         const FeedbackRuleSet& frs,
                                         std::size_t k) {
  BasePopulation bp;
  const std::size_t min_support = k + 1;
  for (std::size_t r = 0; r < frs.size(); ++r) {
    const FeedbackRule& rule = frs.rule(r);
    RuleBasePopulation rule_bp;
    rule_bp.rule_index = r;

    // Lines 4–24: relax the clause when coverage < L. Relaxation works on
    // the bare clause; exclusions are respected for strong coverage below.
    const RelaxationResult relax = relax_rule(rule.clause, data, min_support);
    rule_bp.effective_clause = relax.relaxed;
    rule_bp.relaxed = relax.removed_conditions > 0;
    rule_bp.removed_conditions = relax.removed_conditions;

    // Line 25: BP ← BP ∪ cov(R, D) with the (possibly relaxed) rule.
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto row = data.row(i);
      if (!rule_bp.effective_clause.satisfies(row)) continue;
      rule_bp.indices.push_back(i);
      rule_bp.strongly_covered.push_back(rule.covers(row));
    }
    bp.per_rule.push_back(std::move(rule_bp));
  }
  return bp;
}

}  // namespace frote
