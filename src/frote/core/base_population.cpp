#include "frote/core/base_population.hpp"

#include <algorithm>

namespace frote {

std::vector<std::size_t> BasePopulation::all_indices() const {
  std::vector<std::size_t> out;
  for (const auto& rule_bp : per_rule) {
    out.insert(out.end(), rule_bp.indices.begin(), rule_bp.indices.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t BasePopulation::total_slots() const {
  std::size_t total = 0;
  for (const auto& rule_bp : per_rule) total += rule_bp.indices.size();
  return total;
}

namespace {

RuleBasePopulation build_rule_bp(const Dataset& data, const FeedbackRule& rule,
                                 std::size_t rule_index,
                                 std::size_t min_support) {
  RuleBasePopulation rule_bp;
  rule_bp.rule_index = rule_index;

  // Lines 4–24: relax the clause when coverage < L. Relaxation works on
  // the bare clause; exclusions are respected for strong coverage below.
  const RelaxationResult relax = relax_rule(rule.clause, data, min_support);
  rule_bp.effective_clause = relax.relaxed;
  rule_bp.relaxed = relax.removed_conditions > 0;
  rule_bp.removed_conditions = relax.removed_conditions;

  // Line 25: BP ← BP ∪ cov(R, D) with the (possibly relaxed) rule.
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    if (!rule_bp.effective_clause.satisfies(row)) continue;
    rule_bp.indices.push_back(i);
    rule_bp.strongly_covered.push_back(rule.covers(row));
  }
  return rule_bp;
}

}  // namespace

BasePopulation preselect_base_population(const Dataset& data,
                                         const FeedbackRuleSet& frs,
                                         std::size_t k) {
  BasePopulation bp;
  const std::size_t min_support = k + 1;
  for (std::size_t r = 0; r < frs.size(); ++r) {
    bp.per_rule.push_back(build_rule_bp(data, frs.rule(r), r, min_support));
  }
  return bp;
}

void update_base_population(BasePopulation& bp, const Dataset& data,
                            const FeedbackRuleSet& frs, std::size_t k,
                            std::size_t first_new_row) {
  FROTE_CHECK(bp.per_rule.size() == frs.size());
  FROTE_CHECK(first_new_row <= data.size());
  const std::size_t min_support = k + 1;
  for (std::size_t r = 0; r < frs.size(); ++r) {
    RuleBasePopulation& rule_bp = bp.per_rule[r];
    const FeedbackRule& rule = frs.rule(r);
    if (rule_bp.relaxed) {
      // Appended rows can change the relaxation search itself; rebuild the
      // rule from scratch — bit-identical to the full rescan by definition.
      rule_bp = build_rule_bp(data, rule, r, min_support);
      continue;
    }
    // Unrelaxed rule: coverage is monotone under appends, so relax_rule
    // would return the original clause again. New members can only come
    // from the appended tail, and they extend `indices` in the same
    // ascending order a full rescan would produce.
    for (std::size_t i = first_new_row; i < data.size(); ++i) {
      const auto row = data.row(i);
      if (!rule_bp.effective_clause.satisfies(row)) continue;
      rule_bp.indices.push_back(i);
      rule_bp.strongly_covered.push_back(rule.covers(row));
    }
  }
}

}  // namespace frote
