#include "frote/core/selection.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "frote/core/workspace.hpp"
#include "frote/knn/knn.hpp"
#include "frote/util/parallel.hpp"

namespace frote {

std::vector<SelectedInstance> RandomSelector::select(const Dataset& data,
                                                     const BasePopulation& bp,
                                                     const Model& model,
                                                     std::size_t eta,
                                                     Rng& rng) const {
  (void)data;
  (void)model;
  std::vector<SelectedInstance> out;
  std::vector<std::size_t> usable;
  for (std::size_t r = 0; r < bp.per_rule.size(); ++r) {
    if (bp.per_rule[r].indices.size() >= 2) usable.push_back(r);
  }
  if (usable.empty() || eta == 0) return out;

  // Spread η evenly over rules; remainder round-robin.
  const std::size_t per_rule = eta / usable.size();
  std::size_t remainder = eta % usable.size();
  for (std::size_t r : usable) {
    std::size_t quota = per_rule + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    const auto& pool = bp.per_rule[r];
    for (std::size_t i = 0; i < quota; ++i) {
      out.push_back({r, rng.index(pool.indices.size())});
    }
  }
  return out;
}

namespace {

/// Borderline weights for a subset of rows (supplement A): weight 3 when the
/// k-NN predicted-label split is near-even, 1 for safe/noisy instances.
/// The per-candidate scoring loop is the IP selector's hot path: the k-NN
/// engine is auto-selected by size, candidates fan out over fixed chunks
/// (every weight depends only on its own row, so any thread count produces
/// identical weights), and predictions come either from one batched
/// dataset-wide pass or per candidate, whichever regime needs fewer model
/// evaluations — each candidate consults its own label plus k neighbours',
/// so a dense base population amortises the batch while a sparse one in a
/// large dataset must not pay for every row.
std::vector<double> subset_weights(const Dataset& data, const Model& model,
                                   const std::vector<std::size_t>& rows,
                                   const IpSelectorConfig& config,
                                   SessionWorkspace* ws) {
  // Workspace path: the (k+1)-neighbourhoods come from the session's
  // incremental cache — bit-identical to querying a fresh index, but an
  // accepted batch only rescores candidates against (kept list ∪ appended
  // rows) for rows whose certificate holds (SessionWorkspace::
  // neighborhoods). Standalone callers fit and query locally; that path is
  // the from-scratch reference the equivalence tests compare against.
  std::optional<MixedDistance> local_distance;
  std::unique_ptr<KnnIndex> local_knn;
  const std::size_t k = std::min(config.borderline_k, data.size() - 1);
  std::vector<double> weights(rows.size(), config.other_weight);
  if (k == 0) return weights;
  KnnIndex* knn = nullptr;
  std::vector<const RowNeighborhood*> hoods;
  if (ws != nullptr) {
    hoods = ws->neighborhoods(rows, k);
  } else {
    local_distance = MixedDistance::fit(data);
    KnnIndexConfig index_config;
    index_config.threads = config.threads;
    local_knn = make_knn_index(data, *local_distance, {}, index_config);
    knn = local_knn.get();
  }
  // Prediction source, cheapest first: the session's prediction cache (the
  // Ĵ evaluation of the current model already predicted every row), else
  // one batched dataset-wide pass, else per-candidate — each candidate
  // consults its own label plus k neighbours', so a dense base population
  // amortises the batch while a sparse one in a large dataset must not pay
  // for every row. All three sources yield argmax_class(predict_proba), so
  // the weights are identical whichever is picked.
  const int* cached = nullptr;
  if (ws != nullptr &&
      ws->predictions().valid_for(data, ws->model_stamp())) {
    cached = ws->predictions().predicted().data();
  }
  const bool batch =
      cached == nullptr && rows.size() * (k + 1) >= data.size();
  const std::vector<int> predicted =
      batch ? model.predict_all(data, config.threads) : std::vector<int>{};
  if (batch && ws != nullptr) {
    // Donate the batch to the session cache for later consumers.
    std::vector<int>& storage =
        ws->predictions().reset(data, ws->model_stamp());
    storage = predicted;
    ws->predictions().mark_filled();
    cached = ws->predictions().predicted().data();
  }
  const int* table = cached != nullptr ? cached
                     : batch           ? predicted.data()
                                       : nullptr;
  parallel_for(
      rows.size(), 16, config.threads,
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> proba;
        const auto predict_row = [&](std::size_t j) {
          if (table != nullptr) return table[j];
          model.predict_proba_into(data.row(j), proba);
          return argmax_class(proba);
        };
        std::vector<Neighbor> local_neighbors;
        for (std::size_t s = begin; s < end; ++s) {
          const std::size_t i = rows[s];
          const int own = predict_row(i);
          // Both sources are the same (squared distance, dataset row)
          // ascending order, so the counting loop sees identical rows.
          const std::vector<Neighbor>* neighbors;
          if (ws != nullptr) {
            neighbors = &hoods[s]->list;
          } else {
            local_neighbors = knn->query(data.row(i), k + 1);
            for (auto& nb : local_neighbors) {
              nb.index = knn->dataset_index(nb.index);
            }
            neighbors = &local_neighbors;
          }
          std::size_t same = 0, diff = 0;
          for (const auto& nb : *neighbors) {
            const std::size_t j = nb.index;
            if (j == i) continue;
            if (same + diff == k) break;
            (predict_row(j) == own ? same : diff) += 1;
          }
          const std::size_t total = same + diff;
          if (total > 0 && diff < total && 2 * diff >= total) {
            weights[s] = config.borderline_weight;  // p ≈ q: borderline
          }
        }
      });
  return weights;
}

}  // namespace

std::vector<SelectedInstance> IpSelector::select(const Dataset& data,
                                                 const BasePopulation& bp,
                                                 const Model& model,
                                                 std::size_t eta,
                                                 Rng& rng) const {
  return select(data, bp, model, eta, rng, nullptr);
}

std::vector<SelectedInstance> IpSelector::select(
    const Dataset& data, const BasePopulation& bp, const Model& model,
    std::size_t eta, Rng& rng, SessionWorkspace* ws) const {
  std::vector<SelectedInstance> out;
  const std::size_t m = bp.per_rule.size();
  if (m == 0 || eta == 0) return out;

  // Unique base-population instances become the binary variables z_i.
  std::map<std::size_t, std::size_t> var_of_row;  // dataset row -> var index
  std::vector<std::size_t> row_of_var;
  for (const auto& rule_bp : bp.per_rule) {
    for (std::size_t idx : rule_bp.indices) {
      if (var_of_row.emplace(idx, row_of_var.size()).second) {
        row_of_var.push_back(idx);
      }
    }
  }
  const std::size_t p = row_of_var.size();
  if (p == 0) return out;

  // Reject fast-path: while neither D̂ nor the model moved, the borderline
  // weights of the (unchanged) base population are cached in the workspace.
  // subset_weights draws no randomness, so the cached and fresh paths leave
  // `rng` in identical states.
  const std::vector<double>* cached_weights =
      ws != nullptr ? ws->cached_weights(row_of_var) : nullptr;
  std::vector<double> fresh_weights;
  if (cached_weights == nullptr) {
    fresh_weights = subset_weights(data, model, row_of_var, config_, ws);
    if (ws != nullptr) {
      ws->store_weights(row_of_var, std::move(fresh_weights));
      cached_weights = ws->cached_weights(row_of_var);
    } else {
      cached_weights = &fresh_weights;
    }
  }
  const std::vector<double>& weights = *cached_weights;

  // Per-rule bounds: k+1 ≤ Σ a_ji z_i ≤ max(k+1, η/m); a rule whose BP is
  // smaller than k+1 gets its lower bound clipped to the BP size.
  std::vector<double> lower_bound(m), upper_bound(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double bp_size = static_cast<double>(bp.per_rule[j].indices.size());
    lower_bound[j] = std::min(static_cast<double>(config_.k + 1), bp_size);
    upper_bound[j] = std::max(
        lower_bound[j],
        std::floor(static_cast<double>(eta) / static_cast<double>(m)));
    upper_bound[j] = std::min(upper_bound[j], bp_size);
  }

  // LP: variables = p binaries + m slacks; rows: Σ a_ji z_i + s_j = u_j,
  // 0 ≤ s_j ≤ u_j − l_j.
  LpProblem lp;
  lp.num_vars = p + m;
  lp.num_rows = m;
  lp.c.assign(lp.num_vars, 0.0);
  lp.lo.assign(lp.num_vars, 0.0);
  lp.hi.assign(lp.num_vars, 1.0);
  lp.a.assign(lp.num_rows * lp.num_vars, 0.0);
  lp.b.assign(m, 0.0);
  for (std::size_t i = 0; i < p; ++i) lp.c[i] = weights[i];
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t idx : bp.per_rule[j].indices) {
      lp.set_coeff(j, var_of_row.at(idx), 1.0);
    }
    lp.hi[p + j] = std::max(0.0, upper_bound[j] - lower_bound[j]);
    lp.b[j] = upper_bound[j];
  }

  std::vector<std::size_t> binaries(p);
  for (std::size_t i = 0; i < p; ++i) binaries[i] = i;
  const IpResult ip = solve_binary_ip(lp, binaries, config_.ip);

  std::vector<bool> selected_rows(p, false);
  if (ip.feasible) {
    for (std::size_t i = 0; i < p; ++i) selected_rows[i] = ip.x[i] > 0.5;
  } else {
    // Greedy bound repair: satisfy lower bounds with the heaviest instances
    // per rule, then fill toward the upper bounds by weight.
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<std::size_t> vars;
      for (std::size_t idx : bp.per_rule[j].indices) {
        vars.push_back(var_of_row.at(idx));
      }
      std::sort(vars.begin(), vars.end(), [&](std::size_t a, std::size_t b) {
        if (weights[a] != weights[b]) return weights[a] > weights[b];
        return a < b;
      });
      std::size_t taken = 0;
      for (std::size_t v : vars) {
        if (taken >= static_cast<std::size_t>(upper_bound[j])) break;
        if (!selected_rows[v] &&
            taken < static_cast<std::size_t>(lower_bound[j])) {
          selected_rows[v] = true;
        }
        if (selected_rows[v]) ++taken;
      }
    }
  }

  // Map selected instances back to (rule, slot) pairs, balancing rules whose
  // populations overlap. Randomised rule order keeps the assignment fair.
  std::vector<std::size_t> per_rule_assigned(m, 0);
  std::vector<std::size_t> rule_order(m);
  for (std::size_t j = 0; j < m; ++j) rule_order[j] = j;
  for (std::size_t i = 0; i < p; ++i) {
    if (!selected_rows[i]) continue;
    const std::size_t row = row_of_var[i];
    rng.shuffle(rule_order);
    std::size_t best_rule = m;
    std::size_t best_slot = 0;
    std::size_t best_load = static_cast<std::size_t>(-1);
    for (std::size_t j : rule_order) {
      const auto& pool = bp.per_rule[j].indices;
      const auto it = std::find(pool.begin(), pool.end(), row);
      if (it == pool.end()) continue;
      if (per_rule_assigned[j] < best_load) {
        best_load = per_rule_assigned[j];
        best_rule = j;
        best_slot = static_cast<std::size_t>(it - pool.begin());
      }
    }
    if (best_rule < m) {
      out.push_back({best_rule, best_slot});
      per_rule_assigned[best_rule]++;
    }
  }
  // Respect the per-iteration budget.
  if (out.size() > eta) out.resize(eta);
  return out;
}

std::unique_ptr<BaseInstanceSelector> make_selector(SelectionStrategy strategy,
                                                    std::size_t k,
                                                    int threads) {
  if (strategy == SelectionStrategy::kRandom) {
    return std::make_unique<RandomSelector>();
  }
  IpSelectorConfig config;
  config.k = k;
  config.threads = threads;
  return std::make_unique<IpSelector>(config);
}

}  // namespace frote
