// Inflection-point analysis for the augmentation budget (§6).
//
// "There is generally an inflection point in terms of the number of data
// points added where the cost to overall model performance starts to
// outweigh the improvement in MRA." This utility sweeps the oversampling
// quota q, records (instances added, MRA, outside-F1, J̄) per budget, and
// locates that inflection point: the budget after which J̄ stops improving
// (the marginal F1 cost exceeds the marginal MRA gain).
#pragma once

#include <vector>

#include "frote/core/frote.hpp"

namespace frote {

struct BudgetPoint {
  double q = 0.0;
  std::size_t instances_added = 0;
  double mra = 0.0;
  double outside_f1 = 0.0;
  double j_bar = 0.0;  // test-set J̄
};

struct InflectionAnalysis {
  std::vector<BudgetPoint> points;  // one per swept q, ascending
  /// Index into `points` of the J̄-maximising budget; the inflection point
  /// is the first budget beyond which J̄ declines (== points.size()-1 when
  /// J̄ is still rising at the largest budget).
  std::size_t best_index = 0;
  bool inflection_found = false;  // true when J̄ declines after best_index
};

/// Run FROTE once per q in `budgets` (same seed ⇒ same splits/rules) and
/// evaluate on `test`.
InflectionAnalysis sweep_budget(const Dataset& train, const Dataset& test,
                                const Learner& learner,
                                const FeedbackRuleSet& frs,
                                const FroteConfig& base_config,
                                const std::vector<double>& budgets);

}  // namespace frote
