// Audit trail for model edits (§6, Broader Impact).
//
// The paper argues FROTE fits governance frameworks (Arnold et al. 2019)
// because the feedback is interpretable and "clear auditing of the original
// data, the feedback rules and the newly created dataset can be stored to
// transparently log the updates to the model and capture the lineage of the
// data". This module records exactly that: the rules applied, the mod
// strategy, per-iteration accept/reject decisions, and the provenance of
// every synthetic row, serialised to a human-readable report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "frote/core/frote.hpp"

namespace frote {

struct AuditRecord {
  /// Where the edit started.
  std::size_t original_rows = 0;
  std::size_t relabelled_rows = 0;
  std::size_t dropped_rows = 0;
  ModStrategy mod_strategy = ModStrategy::kRelabel;
  /// The rules, as re-parsable text (see rules/parser.hpp).
  std::vector<std::string> rules;
  /// Per-iteration decisions copied from the FROTE trace.
  std::vector<ProgressPoint> trace;
  /// Where the edit ended.
  std::size_t final_rows = 0;
  std::size_t synthetic_rows = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  /// Configuration snapshot for reproducibility.
  std::size_t tau = 0;
  double q = 0.0;
  std::size_t k = 0;
  std::uint64_t seed = 0;
};

/// Build the audit record for a completed edit. `input` is the dataset FROTE
/// was invoked on (pre-modification).
AuditRecord build_audit_record(const Dataset& input,
                               const FeedbackRuleSet& frs,
                               const FroteConfig& config,
                               const FroteResult& result);

/// Render the record as a human-readable report (one block per section:
/// CONFIG, RULES, MODIFICATION, ITERATIONS, RESULT).
void write_audit_report(const AuditRecord& record, std::ostream& os);
std::string audit_report_string(const AuditRecord& record);

}  // namespace frote
