#include "frote/core/audit.hpp"

#include <ostream>
#include <sstream>

namespace frote {

namespace {
const char* mod_name(ModStrategy strategy) {
  switch (strategy) {
    case ModStrategy::kNone: return "none";
    case ModStrategy::kRelabel: return "relabel";
    case ModStrategy::kDrop: return "drop";
  }
  return "?";
}
}  // namespace

AuditRecord build_audit_record(const Dataset& input,
                               const FeedbackRuleSet& frs,
                               const FroteConfig& config,
                               const FroteResult& result) {
  AuditRecord record;
  record.original_rows = input.size();
  record.mod_strategy = config.mod_strategy;
  // Re-derive the modification counts from the input (cheap and avoids
  // entangling the audit into the hot loop).
  Dataset scratch = input;
  const std::size_t affected =
      apply_mod_strategy(scratch, frs, config.mod_strategy);
  if (config.mod_strategy == ModStrategy::kRelabel) {
    record.relabelled_rows = affected;
  } else if (config.mod_strategy == ModStrategy::kDrop) {
    record.dropped_rows = affected;
  }
  for (const auto& rule : frs.rules()) {
    record.rules.push_back(rule.to_string(input.schema()));
  }
  record.trace = result.trace;
  record.final_rows = result.augmented.size();
  record.synthetic_rows = result.instances_added;
  record.iterations_run = result.iterations_run;
  record.iterations_accepted = result.iterations_accepted;
  record.tau = config.tau;
  record.q = config.q;
  record.k = config.k;
  record.seed = config.seed;
  return record;
}

void write_audit_report(const AuditRecord& record, std::ostream& os) {
  os << "=== FROTE MODEL EDIT AUDIT ===\n";
  os << "[CONFIG] tau=" << record.tau << " q=" << record.q
     << " k=" << record.k << " seed=" << record.seed << "\n";
  os << "[RULES] " << record.rules.size() << " feedback rule(s)\n";
  for (const auto& rule : record.rules) {
    os << "  " << rule << "\n";
  }
  os << "[MODIFICATION] strategy=" << mod_name(record.mod_strategy)
     << " relabelled=" << record.relabelled_rows
     << " dropped=" << record.dropped_rows << "\n";
  os << "[ITERATIONS] run=" << record.iterations_run
     << " accepted=" << record.iterations_accepted << "\n";
  for (const auto& point : record.trace) {
    os << "  iter=" << point.iteration << " N=" << point.instances_added
       << " J_hat_bar=" << point.train_j_hat_bar
       << (point.accepted ? " ACCEPTED" : " rejected") << "\n";
  }
  os << "[RESULT] rows " << record.original_rows << " -> "
     << record.final_rows << " (+" << record.synthetic_rows
     << " synthetic)\n";
}

std::string audit_report_string(const AuditRecord& record) {
  std::ostringstream os;
  write_audit_report(record, os);
  return os.str();
}

}  // namespace frote
