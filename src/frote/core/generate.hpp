// Rule-constrained synthetic instance generation (§4.2 + supplement A).
//
// Differences from plain SMOTE-NC:
//   1. neighbours are *not* restricted to the base instance's class but must
//      satisfy the same (possibly relaxed) feedback rule;
//   2. the generated instance must satisfy the *original, unrelaxed* rule —
//      attributes mentioned by the rule's predicates are drawn inside the
//      admissible window implied by the predicates (supplement's min/max
//      window logic), and categorical majority votes are filtered by the
//      rule's conditions;
//   3. the class label is sampled from the rule's π (or assigned for
//      deterministic rules) rather than copied from the base instance; the
//      probabilistic-rules experiment additionally mixes in the base
//      instance's label with probability 1 − confidence (supplement B).
#pragma once

#include "frote/core/base_population.hpp"
#include "frote/knn/knn.hpp"
#include "frote/rules/rule.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct GenerateConfig {
  std::size_t k = 5;  // nearest neighbours (paper: k = 5)
  /// Probability of following the rule's label; with probability 1 − p the
  /// synthetic instance keeps the base instance's label (uniform among the
  /// other classes when the base label equals the rule's class). p = 1 is
  /// the deterministic setting used in all but the Table 6 experiment.
  double rule_confidence = 1.0;
  /// Threads for the per-rule base-population kNN scans; 0 ⇒
  /// FROTE_NUM_THREADS. The Engine propagates its `threads` setting here.
  /// Generated instances are bit-identical for every value.
  int threads = 0;
};

/// Generator bound to one rule's base population within the active dataset.
class RuleConstrainedGenerator {
 public:
  RuleConstrainedGenerator(const Dataset& data, const FeedbackRule& rule,
                           const RuleBasePopulation& bp,
                           const MixedDistance& distance,
                           GenerateConfig config);

  /// Generate one synthetic instance from base instance `bp_slot` (an index
  /// into the rule's base population). Returns false when no neighbour is
  /// available or the generated row fails the rule's coverage check.
  bool generate(std::size_t bp_slot, Rng& rng, std::vector<double>& row_out,
                int& label_out) const;

  std::size_t population_size() const { return bp_->indices.size(); }

 private:
  /// Value for a numeric feature given rule constraints (window logic).
  double numeric_value(std::size_t f, double base, double neighbor,
                       Rng& rng) const;
  /// Value for a categorical feature (majority vote under constraints).
  double categorical_value(std::size_t f, double base,
                           const std::vector<std::span<const double>>&
                               neighbor_rows,
                           Rng& rng) const;

  int sample_label(int base_label, Rng& rng) const;

  const Dataset* data_;
  const FeedbackRule* rule_;
  const RuleBasePopulation* bp_;
  GenerateConfig config_;
  std::unique_ptr<BruteKnn> knn_;  // index over the rule's base population
  std::vector<FeatureConstraint> constraints_;  // per feature, unrelaxed rule
  std::vector<bool> constrained_;               // feature mentioned by rule?
};

}  // namespace frote
