#include "frote/core/registry.hpp"

#include <map>
#include <utility>

#include "frote/core/online_proxy.hpp"
#include "frote/core/scenario.hpp"
#include "frote/ml/gbdt.hpp"
#include "frote/ml/knn_classifier.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/naive_bayes.hpp"
#include "frote/ml/random_forest.hpp"

namespace frote {

namespace {

template <typename Map>
std::string known_names_suffix(const Map& entries) {
  std::string suffix = " (known:";
  for (const auto& [name, factory] : entries) suffix += " " + name;
  return suffix + ")";
}

struct Registry {
  std::map<std::string, LearnerFactory> learners;
  std::map<std::string, SelectorFactory> selectors;
  /// Scenarios are stored as their JSON document text — the registry entry
  /// IS the artifact (core/scenario.hpp): registering a new workload means
  /// writing JSON, and make_named_scenario parses + validates on lookup so
  /// a stale entry surfaces as a typed error, never a half-built scenario.
  std::map<std::string, std::string> scenarios;

  Registry() {
    // The paper's three classification algorithms (§5.1) — scikit-learn RF
    // (max_depth = 3) and LR (max_iter = 500), and LightGBM — mapped to this
    // library's implementations, plus the CLI's extra model zoo.
    learners["lr"] = [](const LearnerSpec& spec) -> std::unique_ptr<Learner> {
      LogisticRegressionConfig config;
      config.max_iter = spec.fast ? 120 : 500;  // paper: max_iter = 500
      config.threads = spec.threads;
      return std::make_unique<LogisticRegressionLearner>(config);
    };
    learners["rf"] = [](const LearnerSpec& spec) -> std::unique_ptr<Learner> {
      RandomForestConfig config;
      config.max_depth = 3;  // paper's setting
      config.num_trees = spec.fast ? 15 : 50;
      config.seed = spec.seed;
      config.threads = spec.threads;
      return std::make_unique<RandomForestLearner>(config);
    };
    learners["gbdt"] = [](const LearnerSpec& spec) -> std::unique_ptr<Learner> {
      GbdtConfig config;
      config.num_rounds = spec.fast ? 15 : 60;
      config.seed = spec.seed;
      config.threads = spec.threads;
      return std::make_unique<GbdtLearner>(config);
    };
    learners["lgbm"] = learners["gbdt"];  // the paper's name for it
    // Opt-in approximate warm-start variants (docs/DESIGN.md §10): same
    // cold training as their exact counterparts, but Learner::update()
    // re-fits from the previous model instead of from scratch. Sessions
    // select these names explicitly — the default names stay bit-exact.
    learners["lr_warm"] =
        [](const LearnerSpec& spec) -> std::unique_ptr<Learner> {
      LogisticRegressionConfig config;
      config.max_iter = spec.fast ? 120 : 500;
      config.warm_max_iter = spec.fast ? 15 : 25;
      config.threads = spec.threads;
      return std::make_unique<LogisticRegressionWarmLearner>(config);
    };
    learners["gbdt_additive"] =
        [](const LearnerSpec& spec) -> std::unique_ptr<Learner> {
      GbdtConfig config;
      config.num_rounds = spec.fast ? 15 : 60;
      config.update_rounds = spec.fast ? 3 : 5;
      config.seed = spec.seed;
      config.threads = spec.threads;
      return std::make_unique<GbdtAdditiveLearner>(config);
    };
    learners["nb"] = [](const LearnerSpec&) -> std::unique_ptr<Learner> {
      return std::make_unique<NaiveBayesLearner>();
    };
    learners["knn"] = [](const LearnerSpec&) -> std::unique_ptr<Learner> {
      return std::make_unique<KnnClassifierLearner>();
    };

    selectors["random"] =
        [](const SelectorSpec&)
        -> Expected<std::shared_ptr<const BaseInstanceSelector>> {
      return std::shared_ptr<const BaseInstanceSelector>(
          std::make_shared<RandomSelector>());
    };
    selectors["ip"] =
        [](const SelectorSpec& spec)
        -> Expected<std::shared_ptr<const BaseInstanceSelector>> {
      IpSelectorConfig config;
      config.k = spec.k;
      config.threads = spec.threads;
      return std::shared_ptr<const BaseInstanceSelector>(
          std::make_shared<IpSelector>(config));
    };
    selectors["online-proxy"] =
        [](const SelectorSpec& spec)
        -> Expected<std::shared_ptr<const BaseInstanceSelector>> {
      if (spec.frs == nullptr) {
        return FroteError::missing_dependency(
            "selector 'online-proxy' scores candidates against the feedback "
            "rules; SelectorSpec::frs must be set");
      }
      OnlineProxyConfig config;
      config.k = spec.k;
      return std::shared_ptr<const BaseInstanceSelector>(
          std::make_shared<OnlineProxySelector>(*spec.frs, config));
    };

    for (const auto& [name, document] : builtin_scenario_documents()) {
      scenarios[name] = document;
    }
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

Expected<std::unique_ptr<Learner>> make_named_learner(const std::string& name,
                                                      const LearnerSpec& spec) {
  const auto& learners = registry().learners;
  const auto it = learners.find(name);
  if (it == learners.end()) {
    return FroteError::unknown_component("unknown learner '" + name + "'" +
                                         known_names_suffix(learners));
  }
  return it->second(spec);
}

Expected<std::shared_ptr<const BaseInstanceSelector>> make_named_selector(
    const std::string& name, const SelectorSpec& spec) {
  const auto& selectors = registry().selectors;
  const auto it = selectors.find(name);
  if (it == selectors.end()) {
    return FroteError::unknown_component("unknown selector '" + name + "'" +
                                         known_names_suffix(selectors));
  }
  return it->second(spec);
}

std::vector<std::string> registered_learner_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry().learners) names.push_back(name);
  return names;
}

std::vector<std::string> registered_selector_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry().selectors) {
    names.push_back(name);
  }
  return names;
}

void register_learner(const std::string& name, LearnerFactory factory) {
  registry().learners[name] = std::move(factory);
}

void register_selector(const std::string& name, SelectorFactory factory) {
  registry().selectors[name] = std::move(factory);
}

Expected<ScenarioSpec> make_named_scenario(const std::string& name) {
  const auto& scenarios = registry().scenarios;
  const auto it = scenarios.find(name);
  if (it == scenarios.end()) {
    return FroteError::unknown_component("unknown scenario '" + name + "'" +
                                         known_names_suffix(scenarios));
  }
  return ScenarioSpec::parse(it->second);
}

std::vector<std::string> registered_scenario_names() {
  std::vector<std::string> names;
  for (const auto& [name, document] : registry().scenarios) {
    names.push_back(name);
  }
  return names;
}

void register_scenario(const std::string& name, std::string scenario_json) {
  registry().scenarios[name] = std::move(scenario_json);
}

}  // namespace frote
