// Pipeline stages of the FROTE editing loop (Algorithm 1), promoted to
// first-class interfaces.
//
// The loop body — select base instances → generate synthetics → retrain →
// accept/reject → observe — used to be fused inside frote_edit(). Each stage
// is now a component the Engine composes, alongside the pre-existing
// `BaseInstanceSelector` (core/selection.hpp):
//
//   InstanceGenerator  — line 8's Generate(B): selected base instances to a
//                        batch of synthetic rows
//   AcceptancePolicy   — lines 12–16's Ĵ test (accept_always is a policy
//                        here, not a config bool)
//   StoppingCriterion  — when run() stops: τ, the q·|D| budget, plateaus
//   ProgressObserver   — per-step/per-accept hooks; subsumes the old
//                        AcceptCallback and the FroteResult trace for
//                        consumers that want live progress
//
// All components must be deterministic given the Rng they are handed —
// tests/test_determinism.cpp and the shim-equivalence suite lock seed →
// bit-identical output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "frote/core/base_population.hpp"
#include "frote/core/generate.hpp"
#include "frote/core/selection.hpp"
#include "frote/knn/distance.hpp"
#include "frote/ml/model.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

/// Outcome of one Session::step() call.
enum class StepStatus {
  kAccepted,     // batch trained and accepted; D̂ and the model advanced
  kRejected,     // batch trained but Ĵ did not improve; state unchanged
  kNoSynthetic,  // selection succeeded but generation produced no rows
  kExhausted,    // no usable base population remains; session is finished
  kFinished,     // the session had already finished; step() was a no-op
};

/// Typed report of one Algorithm-1 iteration, returned by Session::step()
/// and delivered to ProgressObserver::on_step.
struct StepReport {
  /// 1-based index of this iteration (counts every step, incl. rejected).
  std::size_t iteration = 0;
  StepStatus status = StepStatus::kFinished;
  /// Synthetic rows generated this step (0 unless a batch was trained).
  std::size_t batch_size = 0;
  /// Cumulative accepted synthetic instances after this step.
  std::size_t instances_added = 0;
  /// Ĵ̄ of the candidate model on D′ (valid when a batch was trained).
  double candidate_j_bar = 0.0;
  /// Best (accepted) Ĵ̄ after this step.
  double best_j_bar = 0.0;

  bool accepted() const { return status == StepStatus::kAccepted; }
  /// True when the session can make no further progress.
  bool terminal() const {
    return status == StepStatus::kExhausted || status == StepStatus::kFinished;
  }
};

/// Snapshot of a session's loop state, handed to StoppingCriterion.
struct SessionProgress {
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  /// Cumulative accepted synthetic instances N.
  std::size_t instances_added = 0;
  /// Iteration limit τ from the engine configuration.
  std::size_t tau = 0;
  /// Augmentation budget q·|D| (input size, pre-modification).
  std::size_t quota = 0;
  double best_j_bar = 0.0;
  /// Non-accepting steps (Ĵ rejections and empty-generation steps) since the
  /// last acceptance — the plateau-detection signal.
  std::size_t consecutive_rejections = 0;
};

class SessionWorkspace;

/// Everything an InstanceGenerator may read when producing a batch: the
/// evolving dataset D̂, the feedback rules, the current per-rule base
/// populations and the fitted distance, plus the generation knobs. When a
/// Session drives the loop, `workspace` points at its SessionWorkspace
/// (core/workspace.hpp) so generators can reuse per-rule state across
/// iterations; it is null for standalone generation.
struct GenerationContext {
  const Dataset& active;
  const FeedbackRuleSet& frs;
  const BasePopulation& bp;
  const MixedDistance& distance;
  GenerateConfig config;
  SessionWorkspace* workspace = nullptr;
};

/// Stage: Generate(B) — turn the selected base instances into a batch of
/// synthetic rows (a dataset over the active schema; may be empty).
class InstanceGenerator {
 public:
  virtual ~InstanceGenerator() = default;
  virtual Dataset generate(const GenerationContext& ctx,
                           const std::vector<SelectedInstance>& selected,
                           Rng& rng) const = 0;
};

/// Default generator: the paper's rule-constrained SMOTE-NC (§4.2), one
/// lazily-built RuleConstrainedGenerator per rule referenced by the batch.
class SmoteNcInstanceGenerator : public InstanceGenerator {
 public:
  Dataset generate(const GenerationContext& ctx,
                   const std::vector<SelectedInstance>& selected,
                   Rng& rng) const override;
};

/// Inputs to the accept/reject decision for one trained candidate batch.
struct AcceptanceContext {
  /// Ĵ̄ of the candidate model on D′ = D̂ ∪ S.
  double candidate_j_bar = 0.0;
  /// Ĵ̄ of the best accepted model so far.
  double best_j_bar = 0.0;
  std::size_t iteration = 0;
  /// Cumulative accepted instances before this batch.
  std::size_t instances_added = 0;
  std::size_t batch_size = 0;
};

/// Stage: lines 12–16's gate — keep the candidate dataset/model or discard.
class AcceptancePolicy {
 public:
  virtual ~AcceptancePolicy() = default;
  virtual bool accept(const AcceptanceContext& ctx) const = 0;
};

/// Algorithm 1's rule: accept iff the loss decreased (J̄ increased).
class JHatImprovementPolicy : public AcceptancePolicy {
 public:
  bool accept(const AcceptanceContext& ctx) const override {
    return ctx.candidate_j_bar > ctx.best_j_bar;
  }
};

/// The ablation switch formerly spelled `FroteConfig::accept_always`.
class AlwaysAcceptPolicy : public AcceptancePolicy {
 public:
  bool accept(const AcceptanceContext&) const override { return true; }
};

/// Stage: decides when Session::run() stops asking for more steps. Consulted
/// *before* each step; a session also stops on its own when the base
/// population is exhausted (StepStatus::kExhausted).
class StoppingCriterion {
 public:
  virtual ~StoppingCriterion() = default;
  virtual bool should_stop(const SessionProgress& progress) const = 0;
};

/// Algorithm 1's loop bounds: stop once τ iterations ran or the accepted
/// instance count exceeds the q·|D| budget (the final batch may overshoot by
/// at most η, exactly as the original loop allowed).
class BudgetStoppingCriterion : public StoppingCriterion {
 public:
  bool should_stop(const SessionProgress& p) const override {
    return p.iterations_run >= p.tau || p.instances_added > p.quota;
  }
};

/// Stop after `max_rejections` consecutive non-accepting steps — the edit
/// has plateaued and further retrains are wasted budget. Replacing the
/// default criterion removes the τ/budget bounds entirely; wrap this in
/// AnyOfStoppingCriterion alongside BudgetStoppingCriterion to keep them.
class PlateauStoppingCriterion : public StoppingCriterion {
 public:
  explicit PlateauStoppingCriterion(std::size_t max_rejections)
      : max_rejections_(max_rejections) {}
  bool should_stop(const SessionProgress& p) const override {
    return p.consecutive_rejections >= max_rejections_;
  }

 private:
  std::size_t max_rejections_;
};

/// Disjunction: stop as soon as any child criterion says stop. Use this to
/// add a plateau cut-off on top of the τ/budget bounds.
class AnyOfStoppingCriterion : public StoppingCriterion {
 public:
  explicit AnyOfStoppingCriterion(
      std::vector<std::shared_ptr<const StoppingCriterion>> criteria)
      : criteria_(std::move(criteria)) {}
  bool should_stop(const SessionProgress& p) const override {
    for (const auto& criterion : criteria_) {
      if (criterion && criterion->should_stop(p)) return true;
    }
    return false;
  }

 private:
  std::vector<std::shared_ptr<const StoppingCriterion>> criteria_;
};

/// Stage: progress hooks. Replaces the old AcceptCallback (on_accept) and
/// gives live access to what FroteResult::trace records after the fact.
/// Engine-level observers see every session the engine opens; observers
/// added to a Session see only that session's events after attachment.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;
  /// The initial model was trained on the mod-applied dataset; `j_hat_bar`
  /// is its Ĵ̄ (the trace's iteration-0 point).
  virtual void on_session_start(const Model& model, double j_hat_bar) {
    (void)model;
    (void)j_hat_bar;
  }
  /// A step completed (any status except kFinished).
  virtual void on_step(const StepReport& report) { (void)report; }
  /// A step was accepted (fires after on_step for that step), with the
  /// retrained model and the cumulative instance count — the old
  /// AcceptCallback signature.
  virtual void on_accept(const Model& model, std::size_t instances_added) {
    (void)model;
    (void)instances_added;
  }
};

/// Adapter: wrap plain std::functions as an observer. Unset callbacks are
/// skipped. Used by the frote_edit() shim to honour its AcceptCallback.
class CallbackObserver : public ProgressObserver {
 public:
  std::function<void(const Model&, double)> session_start;
  std::function<void(const StepReport&)> step;
  std::function<void(const Model&, std::size_t)> accept;

  void on_session_start(const Model& model, double j_hat_bar) override {
    if (session_start) session_start(model, j_hat_bar);
  }
  void on_step(const StepReport& report) override {
    if (step) step(report);
  }
  void on_accept(const Model& model, std::size_t instances_added) override {
    if (accept) accept(model, instances_added);
  }
};

}  // namespace frote
