#include "frote/core/stages.hpp"

#include "frote/core/workspace.hpp"

namespace frote {

Dataset SmoteNcInstanceGenerator::generate(
    const GenerationContext& ctx, const std::vector<SelectedInstance>& selected,
    Rng& rng) const {
  // One generator per rule, built lazily in batch order: each owns the
  // per-rule kNN index over the current D̂. With a session workspace the
  // generators persist across iterations while D̂ is unchanged (rejected
  // steps), so the per-rule index is packed once per accepted batch rather
  // than once per step. The iteration order and the RNG draw order must
  // match the pre-Engine loop exactly — the determinism suite asserts
  // seed → bit-identical augmentation across the shim.
  std::vector<std::unique_ptr<RuleConstrainedGenerator>> local(
      ctx.workspace != nullptr ? 0 : ctx.frs.size());
  Dataset synthetic(ctx.active.schema_ptr());
  std::vector<double> row;
  int label = 0;
  for (const auto& pick : selected) {
    RuleConstrainedGenerator* gen = nullptr;
    if (ctx.workspace != nullptr) {
      gen = &ctx.workspace->generator(pick.rule_index,
                                      ctx.frs.rule(pick.rule_index),
                                      ctx.bp.per_rule[pick.rule_index],
                                      ctx.config);
    } else {
      auto& slot = local[pick.rule_index];
      if (!slot) {
        slot = std::make_unique<RuleConstrainedGenerator>(
            ctx.active, ctx.frs.rule(pick.rule_index),
            ctx.bp.per_rule[pick.rule_index], ctx.distance, ctx.config);
      }
      gen = slot.get();
    }
    if (gen->generate(pick.bp_slot, rng, row, label)) {
      synthetic.add_row(row, label);
    }
  }
  return synthetic;
}

}  // namespace frote
