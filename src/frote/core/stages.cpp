#include "frote/core/stages.hpp"

namespace frote {

Dataset SmoteNcInstanceGenerator::generate(
    const GenerationContext& ctx, const std::vector<SelectedInstance>& selected,
    Rng& rng) const {
  // One generator per rule, built lazily in batch order: each owns the
  // per-rule kNN index over the current D̂. The iteration order and the RNG
  // draw order must match the pre-Engine loop exactly — the determinism
  // suite asserts seed → bit-identical augmentation across the shim.
  std::vector<std::unique_ptr<RuleConstrainedGenerator>> generators(
      ctx.frs.size());
  Dataset synthetic(ctx.active.schema_ptr());
  std::vector<double> row;
  int label = 0;
  for (const auto& pick : selected) {
    auto& gen = generators[pick.rule_index];
    if (!gen) {
      gen = std::make_unique<RuleConstrainedGenerator>(
          ctx.active, ctx.frs.rule(pick.rule_index),
          ctx.bp.per_rule[pick.rule_index], ctx.distance, ctx.config);
    }
    if (gen->generate(pick.bp_slot, rng, row, label)) {
      synthetic.add_row(row, label);
    }
  }
  return synthetic;
}

}  // namespace frote
