#include "frote/core/spec.hpp"

#include <utility>

#include "frote/core/engine_impl.hpp"
#include "frote/core/registry.hpp"
#include "frote/core/scenario.hpp"
#include "frote/data/csv.hpp"
#include "frote/data/generators.hpp"
#include "frote/rules/parser.hpp"
#include "frote/util/json_reader.hpp"

namespace frote {

// ---------------------------------------------------------------------------
// DatasetSpec

JsonValue DatasetSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("kind", kind);
  if (kind == "csv") {
    out.set("path", path);
  } else {
    out.set("name", name);
    out.set("size", size);
    out.set("seed", seed);
  }
  // Storage geometry is emitted only when it deviates from the flat default,
  // so pre-chunking specs round-trip byte-identically.
  if (chunk_rows != 0) out.set("chunk_rows", chunk_rows);
  if (mmap) out.set("mmap", mmap);
  return out;
}

Expected<DatasetSpec, FroteError> DatasetSpec::from_json(
    const JsonValue& json) {
  DatasetSpec spec;
  JsonFieldReader reader(json, "dataset spec");
  reader.read("kind", spec.kind);
  reader.read("path", spec.path);
  reader.read("name", spec.name);
  reader.read("size", spec.size);
  reader.read("seed", spec.seed);
  reader.read("chunk_rows", spec.chunk_rows);
  reader.read("mmap", spec.mmap);
  if (spec.kind != "csv" && spec.kind != "synthetic") {
    reader.add_problem("kind must be \"csv\" or \"synthetic\", got \"" +
                       spec.kind + "\"");
  }
  if (spec.kind == "csv" && spec.path.empty()) {
    reader.add_problem("kind \"csv\" requires a path");
  }
  if (!reader.ok()) return reader.take_error();
  return spec;
}

Expected<Dataset> load_spec_dataset(const DatasetSpec& spec) {
  // Loaders build flat datasets; the spec's storage geometry is applied as
  // one re-chunking pass afterwards. Row values/labels/ids are unchanged, so
  // every downstream result is bit-identical across geometries.
  const auto with_storage = [&](Dataset data) {
    const StorageOptions storage{spec.chunk_rows, spec.mmap};
    if (!(storage == StorageOptions{})) data.set_storage(storage);
    return data;
  };
  if (spec.kind == "csv") {
    try {
      return with_storage(load_csv(spec.path));
    } catch (const std::exception& e) {
      return FroteError::io_error("cannot load dataset CSV '" + spec.path +
                                  "': " + e.what());
    }
  }
  if (spec.kind == "synthetic") {
    // One generator path for every synthetic reference: DatasetSpec is the
    // override-free subset of GeneratorSpec (core/scenario.hpp), so specs
    // and scenarios materialise bit-identical datasets for the same knobs.
    GeneratorSpec generator;
    generator.name = spec.name;
    generator.size = spec.size;
    generator.seed = spec.seed;
    auto data = generate_dataset(generator);
    if (!data) return data.error();
    return with_storage(std::move(*data));
  }
  return FroteError::invalid_config("unknown dataset kind '" + spec.kind +
                                    "'");
}

// ---------------------------------------------------------------------------
// StoppingSpec

JsonValue StoppingSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("kind", kind);
  if (kind == "plateau") out.set("patience", patience);
  if (kind == "any_of") {
    JsonValue list = JsonValue::array();
    for (const auto& child : children) list.push_back(child.to_json());
    out.set("children", std::move(list));
  }
  return out;
}

Expected<StoppingSpec, FroteError> StoppingSpec::from_json(
    const JsonValue& json) {
  StoppingSpec spec;
  JsonFieldReader reader(json, "stopping spec");
  reader.read("kind", spec.kind);
  reader.read("patience", spec.patience);
  if (const JsonValue* children = reader.find("children")) {
    if (!children->is_array()) {
      reader.add_problem("children must be an array");
    } else {
      for (const auto& child : children->items()) {
        auto parsed = StoppingSpec::from_json(child);
        if (!parsed) return parsed.error();
        spec.children.push_back(std::move(*parsed));
      }
    }
  }
  if (spec.kind != "budget" && spec.kind != "plateau" &&
      spec.kind != "any_of") {
    reader.add_problem(
        "kind must be \"budget\", \"plateau\" or \"any_of\", got \"" +
        spec.kind + "\"");
  }
  // An any_of over zero criteria never fires — a session driven by it
  // would loop without bound, so reject it at parse time.
  if (spec.kind == "any_of" && spec.children.empty()) {
    reader.add_problem("kind \"any_of\" requires a non-empty children list");
  }
  if (!reader.ok()) return reader.take_error();
  return spec;
}

Expected<std::shared_ptr<const StoppingCriterion>> make_spec_stopping(
    const StoppingSpec& spec) {
  if (spec.kind == "budget") {
    return std::shared_ptr<const StoppingCriterion>(
        std::make_shared<BudgetStoppingCriterion>());
  }
  if (spec.kind == "plateau") {
    return std::shared_ptr<const StoppingCriterion>(
        std::make_shared<PlateauStoppingCriterion>(spec.patience));
  }
  if (spec.kind == "any_of") {
    std::vector<std::shared_ptr<const StoppingCriterion>> criteria;
    for (const auto& child : spec.children) {
      auto built = make_spec_stopping(child);
      if (!built) return built.error();
      criteria.push_back(std::move(*built));
    }
    return std::shared_ptr<const StoppingCriterion>(
        std::make_shared<AnyOfStoppingCriterion>(std::move(criteria)));
  }
  return FroteError::unknown_component("unknown stopping kind '" + spec.kind +
                                       "'");
}

// ---------------------------------------------------------------------------
// ModStrategy names

Expected<ModStrategy> parse_mod_strategy(const std::string& name) {
  if (name == "relabel") return ModStrategy::kRelabel;
  if (name == "drop") return ModStrategy::kDrop;
  if (name == "none") return ModStrategy::kNone;
  return FroteError::unknown_component(
      "unknown mod strategy '" + name + "' (known: relabel drop none)");
}

const char* mod_strategy_name(ModStrategy strategy) {
  switch (strategy) {
    case ModStrategy::kNone: return "none";
    case ModStrategy::kRelabel: return "relabel";
    case ModStrategy::kDrop: return "drop";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// EngineSpec

JsonValue EngineSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.engine_spec");
  out.set("version", kFormatVersion);
  out.set("tau", tau);
  out.set("q", q);
  out.set("k", k);
  out.set("eta", eta);
  out.set("seed", seed);
  out.set("threads", threads);
  out.set("mod_strategy", mod_strategy);
  out.set("rule_confidence", rule_confidence);
  out.set("accept_always", accept_always);
  out.set("selector", selector);
  out.set("stopping", stopping.to_json());
  JsonValue learner_json = JsonValue::object();
  learner_json.set("name", learner);
  learner_json.set("fast", learner_fast);
  if (learner_seed.has_value()) learner_json.set("seed", *learner_seed);
  out.set("learner", std::move(learner_json));
  JsonValue rules_json = JsonValue::array();
  for (const auto& rule : rules) rules_json.push_back(rule);
  out.set("rules", std::move(rules_json));
  if (dataset.has_value()) out.set("dataset", dataset->to_json());
  return out;
}

Expected<EngineSpec, FroteError> EngineSpec::from_json(const JsonValue& json) {
  EngineSpec spec;
  JsonFieldReader reader(json, "engine spec");
  // Required, like every document type: a wrong or missing format must not
  // quietly parse as an all-defaults spec (a checkpoint or result file fed
  // here would otherwise "succeed" and run a different experiment).
  const JsonValue* format = reader.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.engine_spec") {
    return FroteError::parse_error(
        "not an engine spec (format must be \"frote.engine_spec\")");
  }
  if (const JsonValue* version = reader.find("version")) {
    std::uint64_t v = 0;
    try {
      v = version->as_uint64();
    } catch (const Error& e) {
      return FroteError::parse_error(std::string("invalid version: ") +
                                     e.what());
    }
    if (v > kFormatVersion) {
      return FroteError::parse_error(
          "engine spec version " + std::to_string(v) +
          " is newer than this reader (" + std::to_string(kFormatVersion) +
          ")");
    }
  }
  reader.read("tau", spec.tau);
  reader.read("q", spec.q);
  reader.read("k", spec.k);
  reader.read("eta", spec.eta);
  reader.read("seed", spec.seed);
  reader.read("threads", spec.threads);
  reader.read("mod_strategy", spec.mod_strategy);
  reader.read("rule_confidence", spec.rule_confidence);
  reader.read("accept_always", spec.accept_always);
  reader.read("selector", spec.selector);
  if (const JsonValue* stopping = reader.find("stopping")) {
    auto parsed = StoppingSpec::from_json(*stopping);
    if (!parsed) return parsed.error();
    spec.stopping = std::move(*parsed);
  }
  if (const JsonValue* learner = reader.find("learner")) {
    JsonFieldReader learner_reader(*learner, "learner spec");
    learner_reader.read("name", spec.learner);
    learner_reader.read("fast", spec.learner_fast);
    if (learner_reader.find("seed") != nullptr) {
      std::uint64_t learner_seed = 0;
      learner_reader.read("seed", learner_seed);
      spec.learner_seed = learner_seed;
    }
    if (!learner_reader.ok()) return learner_reader.take_error();
  }
  if (const JsonValue* rules = reader.find("rules")) {
    if (!rules->is_array()) {
      reader.add_problem("rules must be an array of rule strings");
    } else {
      for (const auto& rule : rules->items()) {
        if (!rule.is_string()) {
          reader.add_problem("rules entries must be strings");
          break;
        }
        spec.rules.push_back(rule.as_string());
      }
    }
  }
  if (const JsonValue* dataset = reader.find("dataset")) {
    auto parsed = DatasetSpec::from_json(*dataset);
    if (!parsed) return parsed.error();
    spec.dataset = std::move(*parsed);
  }
  if (!reader.ok()) return reader.take_error();
  return spec;
}

std::string EngineSpec::to_json_text(int indent) const {
  return json_dump(to_json(), indent);
}

Expected<EngineSpec, FroteError> EngineSpec::parse(
    std::string_view json_text) {
  auto json = json_parse(json_text);
  if (!json) return json.error();
  return from_json(*json);
}

Expected<std::unique_ptr<Learner>> make_spec_learner(const EngineSpec& spec) {
  LearnerSpec learner_spec;
  learner_spec.seed = spec.learner_seed.value_or(spec.seed);
  learner_spec.fast = spec.learner_fast;
  learner_spec.threads = spec.threads;
  return make_named_learner(spec.learner, learner_spec);
}

// ---------------------------------------------------------------------------
// Engine::Builder::from_spec / Engine::to_spec

Expected<Engine::Builder, FroteError> Engine::Builder::from_spec(
    const EngineSpec& spec, const Schema& schema) {
  Builder builder;
  auto mod = parse_mod_strategy(spec.mod_strategy);
  if (!mod) return mod.error();
  builder.config_.tau = spec.tau;
  builder.config_.q = spec.q;
  builder.config_.k = spec.k;
  builder.config_.eta = spec.eta;
  builder.config_.seed = spec.seed;
  builder.config_.threads = spec.threads;
  builder.config_.mod_strategy = *mod;
  builder.config_.rule_confidence = spec.rule_confidence;
  builder.config_.accept_always = spec.accept_always;
  builder.selector_name_ = spec.selector;

  std::vector<FeedbackRule> rules;
  for (std::size_t i = 0; i < spec.rules.size(); ++i) {
    try {
      rules.push_back(parse_rule(spec.rules[i], schema));
    } catch (const Error& e) {
      return FroteError::parse_error("spec rule " + std::to_string(i) + ": " +
                                     e.what());
    }
  }
  builder.frs_ = FeedbackRuleSet(std::move(rules));
  builder.spec_ = std::make_shared<EngineSpec>(spec);
  return builder;
}

Expected<EngineSpec, FroteError> Engine::to_spec() const {
  if (!impl_->spec_representable) {
    return FroteError::invalid_argument(
        "engine is not representable as an EngineSpec: " + impl_->spec_gap);
  }
  if (!impl_->spec_rules_valid) {
    return FroteError::invalid_argument(
        "engine rules were installed as in-process objects; serialising "
        "them needs the dataset schema — call to_spec(schema)");
  }
  return impl_->spec;
}

Expected<EngineSpec, FroteError> Engine::to_spec(const Schema& schema) const {
  if (!impl_->spec_representable) {
    return FroteError::invalid_argument(
        "engine is not representable as an EngineSpec: " + impl_->spec_gap);
  }
  EngineSpec out = impl_->spec;
  out.rules.clear();
  for (const auto& rule : impl_->frs.rules()) {
    out.rules.push_back(rule.to_string(schema));
  }
  return out;
}

}  // namespace frote
