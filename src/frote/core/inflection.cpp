#include "frote/core/inflection.hpp"

#include <algorithm>

#include "frote/core/engine.hpp"

namespace frote {

InflectionAnalysis sweep_budget(const Dataset& train, const Dataset& test,
                                const Learner& learner,
                                const FeedbackRuleSet& frs,
                                const FroteConfig& base_config,
                                const std::vector<double>& budgets) {
  FROTE_CHECK(!budgets.empty());
  InflectionAnalysis analysis;
  std::vector<double> sorted = budgets;
  std::sort(sorted.begin(), sorted.end());
  for (double q : sorted) {
    // One engine per budget; each sweep point is an independent session over
    // the same train split (same seed ⇒ same splits/rules).
    const auto engine =
        Engine::Builder().from_config(base_config).q(q).rules(frs).build()
            .value();
    auto session = engine.open(train, learner).value();
    session.run();
    const auto result = std::move(session).result();
    const auto breakdown = evaluate_objective(*result.model, frs, test);
    BudgetPoint point;
    point.q = q;
    point.instances_added = result.instances_added;
    point.mra = breakdown.mra;
    point.outside_f1 = breakdown.outside_f1;
    point.j_bar = breakdown.j_bar(breakdown.coverage_prob);
    analysis.points.push_back(point);
  }
  analysis.best_index = 0;
  for (std::size_t i = 1; i < analysis.points.size(); ++i) {
    if (analysis.points[i].j_bar >
        analysis.points[analysis.best_index].j_bar) {
      analysis.best_index = i;
    }
  }
  analysis.inflection_found = false;
  for (std::size_t i = analysis.best_index + 1; i < analysis.points.size();
       ++i) {
    if (analysis.points[i].j_bar <
        analysis.points[analysis.best_index].j_bar - 1e-9) {
      analysis.inflection_found = true;
      break;
    }
  }
  return analysis;
}

}  // namespace frote
