#include "frote/core/session_pool.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "frote/core/checkpoint.hpp"
#include "frote/util/faultsim.hpp"
#include "frote/util/fsio.hpp"
#include "frote/util/hash.hpp"
#include "frote/util/parallel.hpp"

namespace frote {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSpecSuffix = ".spec.json";
constexpr const char* kCheckpointSuffix = ".checkpoint.json";

/// FNV-1a 64 over the augmented dataset's observable bytes (labels, row
/// ids, feature values bit-patterns). The cheap byte-identity witness
/// session.result exposes: two runs answering with the same digest hold
/// bit-identical D̂ without shipping the rows over the wire. Mixing order
/// (u64s, little-endian-first) matches the original inline implementation
/// — these digests are wire-visible and must stay stable.
std::uint64_t dataset_digest(const Dataset& data) {
  Fnv1a64 h;
  h.update_u64(data.size());
  h.update_u64(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update_u64(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(data.label(i))));
    h.update_u64(data.row_id(i));
    for (const double value : data.row(i)) {
      h.update_u64(std::bit_cast<std::uint64_t>(value));
    }
  }
  return h.digest();
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

FroteError no_such_session(const std::string& id) {
  return FroteError::invalid_argument("no such session: " + id);
}

/// The "session unrecoverable" message prefix is part of the protocol:
/// frote_serve maps it to JSON-RPC -32002. The session's durable state is
/// gone (corrupt and quarantined, or quarantined earlier); the daemon and
/// every other session keep serving.
FroteError unrecoverable(const std::string& id, const std::string& why) {
  return FroteError::io_error("session unrecoverable: " + id + ": " + why);
}

/// "overloaded" prefix ⇒ JSON-RPC -32005 with a retry_after_ms hint.
FroteError pool_overloaded(std::size_t limit, const char* what) {
  return FroteError::io_error("overloaded: " + std::string(what) +
                              " limit reached (" + std::to_string(limit) +
                              "); retry later");
}

}  // namespace

/// One tenant: the resolved run (spec/engine/learner are immutable after
/// create) plus the evolving session, which is either live in memory or
/// spooled as a checkpoint file. `m` serializes all requests addressed to
/// this session; arrival order at the mutex is the session's request order.
struct SessionPool::Entry {
  Entry(std::string id_in, EngineSpec spec_in, Engine engine_in,
        std::unique_ptr<Learner> learner_in)
      : id(std::move(id_in)),
        spec(std::move(spec_in)),
        engine(std::move(engine_in)),
        learner(std::move(learner_in)) {}

  const std::string id;
  const EngineSpec spec;
  const Engine engine;
  const std::unique_ptr<Learner> learner;

  std::mutex m;
  bool closed = false;
  std::optional<Session> live;
  bool spooled = false;  // <id>.checkpoint.json holds the current state
  std::atomic<std::uint64_t> last_used{0};

  /// Warm-restore stash: the model the session carried when it was last
  /// evicted, plus its version stamp. hydrate() hands both to
  /// Session::restore(), which installs the model instead of retraining iff
  /// the checkpoint's digest verifies and the version matches — exact by
  /// object identity (it is literally the evicted session's model). Guarded
  /// by `m`, like `live`.
  std::unique_ptr<Model> warm_model;
  std::uint64_t warm_model_version = 0;

  /// Last-observed D̂ geometry and loop counters, refreshed whenever the
  /// session is live in a request. Kept outside the Session so server.stats
  /// can report every session — evicted ones included — without hydrating
  /// it (an hydration just to answer stats would make the stats call
  /// evict-order dependent).
  std::atomic<std::size_t> rows{0};
  std::atomic<std::size_t> chunks{0};
  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> rejects{0};
  std::atomic<std::uint64_t> model_updates{0};

  /// Refresh rows/chunks/counters from the live session. Caller holds `m`.
  void note_geometry() {
    if (!live.has_value()) return;
    const Dataset& data = live->augmented();
    rows.store(data.size(), std::memory_order_relaxed);
    chunks.store(data.chunk_count(), std::memory_order_relaxed);
    const SessionProgress progress = live->progress();
    accepts.store(progress.iterations_accepted, std::memory_order_relaxed);
    rejects.store(progress.iterations_run - progress.iterations_accepted,
                  std::memory_order_relaxed);
    model_updates.store(live->model_updates(), std::memory_order_relaxed);
  }
};

SessionPool::SessionPool(SessionPoolConfig config)
    : config_(std::move(config)) {
  if (!config_.spool_dir.empty()) {
    fs::create_directories(config_.spool_dir);
  }
}

SessionPool::~SessionPool() = default;

fs::path SessionPool::spool_path(const std::string& id,
                                 const char* kind) const {
  return fs::path(config_.spool_dir) / (id + kind);
}

std::size_t SessionPool::recover_from_spool(
    std::vector<std::string>* problems) {
  if (config_.spool_dir.empty()) return 0;
  const auto note = [&](const std::string& message) {
    if (problems != nullptr) problems->push_back(message);
  };
  // Deterministic recovery order: directory iteration order is
  // filesystem-defined, so collect and sort by id first. Stale ".tmp"
  // files are uncommitted write_file_atomic leftovers — a crash landed
  // between create and rename — and are swept here so they never
  // accumulate or get mistaken for spool state.
  std::vector<std::string> ids;
  std::vector<fs::path> stale_tmp;
  for (const auto& item : fs::directory_iterator(config_.spool_dir)) {
    const std::string name = item.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale_tmp.push_back(item.path());
      continue;
    }
    const std::string suffix = kSpecSuffix;
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ids.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  for (const fs::path& tmp : stale_tmp) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    note("removed stale temp file: " + tmp.filename().string());
  }
  std::sort(ids.begin(), ids.end());

  std::size_t recovered = 0;
  for (const std::string& id : ids) {
    std::string spec_text;
    const ValidatedRead spec_read =
        read_file_validated(spool_path(id, kSpecSuffix), spec_text);
    if (spec_read == ValidatedRead::kCorrupt) {
      const fs::path moved = quarantine_file(spool_path(id, kSpecSuffix));
      note(id + ": spec file corrupt, quarantined to " +
           moved.filename().string());
      continue;
    }
    if (spec_read != ValidatedRead::kOk) {
      note(id + ": spec file unreadable");
      continue;
    }
    auto spec = EngineSpec::parse(spec_text);
    if (!spec) {
      note(id + ": " + spec.error().message);
      continue;
    }
    if (!fs::exists(spool_path(id, kCheckpointSuffix))) {
      // Created but never spooled (the previous daemon died uncleanly
      // before any eviction) — there is no state to continue from.
      note(id + ": no checkpoint in spool");
      continue;
    }
    if (!spec->dataset.has_value()) {
      note(id + ": spec has no dataset reference");
      continue;
    }
    auto dataset = load_spec_dataset(*spec->dataset);
    if (!dataset) {
      note(id + ": " + dataset.error().message);
      continue;
    }
    auto builder = Engine::Builder::from_spec(*spec, dataset->schema());
    if (!builder) {
      note(id + ": " + builder.error().message);
      continue;
    }
    if (config_.threads > 0) builder->threads(config_.threads);
    auto engine = builder->build();
    if (!engine) {
      note(id + ": " + engine.error().message);
      continue;
    }
    auto learner = make_spec_learner(*spec);
    if (!learner) {
      note(id + ": " + learner.error().message);
      continue;
    }
    auto entry = std::make_shared<Entry>(id, std::move(*spec),
                                         std::move(*engine),
                                         std::move(*learner));
    entry->spooled = true;  // hydrates lazily on first request
    std::lock_guard<std::mutex> lock(table_mutex_);
    entries_.emplace(id, std::move(entry));
    ++sessions_recovered_;
    ++recovered;
    // Ids must keep ascending across restarts: "s-000042" -> 43.
    if (id.rfind("s-", 0) == 0) {
      const std::uint64_t numeric =
          std::strtoull(id.c_str() + 2, nullptr, 10);
      next_session_ = std::max(next_session_, numeric + 1);
    }
  }
  return recovered;
}

Expected<std::string, FroteError> SessionPool::create(const EngineSpec& spec) {
  request_counter_.fetch_add(1);
  // Admission control, checked before the expensive spec resolution (and
  // authoritatively again at insertion): a pool at capacity refuses new
  // sessions with a typed retryable error instead of growing without
  // bound. Without a spool, max_live is the admission limit too — there
  // is nowhere to evict to.
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    if (config_.max_sessions > 0 &&
        entries_.size() >= config_.max_sessions) {
      return pool_overloaded(config_.max_sessions, "open-session");
    }
    if (config_.spool_dir.empty() && config_.max_live > 0 &&
        entries_.size() >= config_.max_live) {
      return pool_overloaded(config_.max_live, "live-session");
    }
  }
  if (!spec.dataset.has_value()) {
    return FroteError::invalid_argument(
        "spec needs a \"dataset\" reference — the daemon has no other input "
        "channel");
  }
  auto dataset = load_spec_dataset(*spec.dataset);
  if (!dataset) return dataset.error();
  auto builder = Engine::Builder::from_spec(spec, dataset->schema());
  if (!builder) return builder.error();
  if (config_.threads > 0) builder->threads(config_.threads);
  auto engine = builder->build();
  if (!engine) return engine.error();
  auto learner = make_spec_learner(spec);
  if (!learner) return learner.error();
  auto session = engine->open(*dataset, **learner);
  if (!session) return session.error();

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    // Re-check admission under the lock that admits: concurrent creates
    // may all have passed the early check.
    if (config_.max_sessions > 0 &&
        entries_.size() >= config_.max_sessions) {
      return pool_overloaded(config_.max_sessions, "open-session");
    }
    if (config_.spool_dir.empty() && config_.max_live > 0 &&
        entries_.size() >= config_.max_live) {
      return pool_overloaded(config_.max_live, "live-session");
    }
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, "s-%06llu",
                  static_cast<unsigned long long>(next_session_++));
    entry = std::make_shared<Entry>(buffer, spec, std::move(*engine),
                                    std::move(*learner));
    entry->live.emplace(std::move(*session));
    entry->note_geometry();
    entry->last_used.store(request_counter_.load());
    entries_.emplace(entry->id, entry);
    ++sessions_created_;
  }
  if (!config_.spool_dir.empty()) {
    // Persist the resolved run next to the checkpoint slot so a restarted
    // daemon can rebuild the engine and continue this session. Durable
    // (fsync + footer): the spec is the recovery key for everything else.
    try {
      write_file_durable(spool_path(entry->id, kSpecSuffix),
                         spec.to_json_text() + "\n");
    } catch (const Error& e) {
      std::lock_guard<std::mutex> lock(table_mutex_);
      entries_.erase(entry->id);
      return FroteError::io_error(e.what());
    }
  }
  enforce_capacity();
  return entry->id;
}

Expected<std::shared_ptr<SessionPool::Entry>, FroteError>
SessionPool::find_entry(const std::string& id) {
  const std::uint64_t stamp = request_counter_.fetch_add(1) + 1;
  std::lock_guard<std::mutex> lock(table_mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return no_such_session(id);
  it->second->last_used.store(stamp);
  return it->second;
}

std::optional<FroteError> SessionPool::hydrate(Entry& entry) {
  if (entry.live.has_value()) return std::nullopt;
  FROTE_CHECK_MSG(entry.spooled, "session " << entry.id
                                            << " is neither live nor spooled");
  if (faultsim::should_fail("pool.restore")) {
    return unrecoverable(entry.id, "injected fault: pool.restore");
  }
  const fs::path path = spool_path(entry.id, kCheckpointSuffix);
  std::string text;
  const ValidatedRead read = read_file_validated(path, text);
  if (read == ValidatedRead::kMissing) {
    // Including the post-quarantine state: a checkpoint found corrupt on
    // an earlier request was moved aside, and this session stays a typed
    // error for the rest of its (stale) life.
    return unrecoverable(entry.id, "checkpoint missing from spool");
  }
  if (read == ValidatedRead::kCorrupt) {
    const fs::path moved = quarantine_file(path);
    return unrecoverable(entry.id, "spooled checkpoint corrupt, quarantined " +
                                       moved.filename().string());
  }
  auto checkpoint = SessionCheckpoint::parse(text);
  if (!checkpoint) {
    // Footer-valid but unparsable: written by a different frote version or
    // hand-edited consistently. Quarantine all the same — rehydrating it
    // will never start working on its own.
    const fs::path moved = quarantine_file(path);
    return unrecoverable(entry.id, "spooled checkpoint unusable (quarantined " +
                                       moved.filename().string() +
                                       "): " + checkpoint.error().message);
  }
  // Hand back the model stashed at eviction. restore() installs it only if
  // the checkpoint's digest verifies and the stamp matches — otherwise it
  // retrains as before and the stash is simply dropped (it is a cache, not
  // state: the checkpoint alone stays sufficient for recovery).
  SessionRestoreOptions options;
  options.warm_model = std::move(entry.warm_model);
  options.warm_model_version = entry.warm_model_version;
  auto restored = Session::restore(entry.engine, *entry.learner, *checkpoint,
                                   std::move(options));
  if (!restored) {
    return unrecoverable(entry.id,
                         "restore failed: " + restored.error().message);
  }
  entry.live.emplace(std::move(*restored));
  entry.note_geometry();
  restores_.fetch_add(1);
  return std::nullopt;
}

void SessionPool::evict(Entry& entry) {
  if (!entry.live.has_value() || config_.spool_dir.empty()) return;
  faultsim::hit("pool.evict");
  write_file_durable(spool_path(entry.id, kCheckpointSuffix),
                     entry.live->snapshot().to_json_text() + "\n");
  entry.note_geometry();
  // Keep the trained model in memory across the eviction: rehydration
  // installs it instead of retraining when the checkpoint still matches
  // (see hydrate). Stashed only after the checkpoint write succeeded — a
  // failed spool leaves the session live and the old stash untouched.
  entry.warm_model_version = entry.live->model_version();
  entry.warm_model = std::move(*entry.live).release_model();
  entry.live.reset();
  entry.spooled = true;
  evictions_.fetch_add(1);
}

void SessionPool::enforce_capacity() {
  if (config_.spool_dir.empty()) return;  // nowhere to evict to
  std::lock_guard<std::mutex> lock(table_mutex_);
  // A failed spool write (injected fault, full disk) must not fail the
  // request that merely triggered capacity enforcement: the session simply
  // stays live — memory pressure is a quality-of-service concern, losing a
  // response is a correctness one.
  const auto try_evict = [this](Entry& entry) {
    try {
      evict(entry);
    } catch (const Error&) {
      spool_failures_.fetch_add(1);
    }
  };
  if (config_.evict_every_request) {
    for (auto& [id, entry] : entries_) {
      std::unique_lock<std::mutex> entry_lock(entry->m, std::try_to_lock);
      if (entry_lock.owns_lock() && !entry->closed) try_evict(*entry);
    }
    return;
  }
  if (config_.max_live == 0) return;
  // LRU sweep: evict idle live sessions, oldest logical stamp first, until
  // within the bound. Busy sessions are skipped — they are by definition
  // the most recently used.
  std::vector<Entry*> live;
  for (auto& [id, entry] : entries_) {
    if (entry->live.has_value()) live.push_back(entry.get());
  }
  if (live.size() <= config_.max_live) return;
  std::sort(live.begin(), live.end(), [](const Entry* a, const Entry* b) {
    return a->last_used.load() < b->last_used.load();
  });
  std::size_t excess = live.size() - config_.max_live;
  for (Entry* entry : live) {
    if (excess == 0) break;
    std::unique_lock<std::mutex> entry_lock(entry->m, std::try_to_lock);
    if (!entry_lock.owns_lock() || entry->closed) continue;
    try_evict(*entry);
    if (!entry->live.has_value()) --excess;
  }
}

Expected<SessionStepOutcome, FroteError> SessionPool::step(
    const std::string& id, std::size_t steps) {
  auto entry = find_entry(id);
  if (!entry) return entry.error();
  SessionStepOutcome outcome;
  {
    std::lock_guard<std::mutex> lock((*entry)->m);
    if ((*entry)->closed) return no_such_session(id);
    if (auto failure = hydrate(**entry)) return *failure;
    Session& session = *(*entry)->live;
    for (std::size_t i = 0; i < steps; ++i) {
      if (session.finished()) break;
      const StepReport report = session.step();
      ++outcome.steps_executed;
      outcome.last_accepted = report.accepted();
      if (report.terminal()) break;
    }
    const SessionProgress progress = session.progress();
    outcome.finished = session.finished();
    outcome.iterations_run = progress.iterations_run;
    outcome.iterations_accepted = progress.iterations_accepted;
    outcome.instances_added = progress.instances_added;
    outcome.rows = session.augmented().size();
    outcome.j_bar = session.best_j_hat_bar();
    (*entry)->note_geometry();
  }
  enforce_capacity();
  return outcome;
}

Expected<JsonValue, FroteError> SessionPool::snapshot(const std::string& id) {
  auto entry = find_entry(id);
  if (!entry) return entry.error();
  JsonValue checkpoint;
  {
    std::lock_guard<std::mutex> lock((*entry)->m);
    if ((*entry)->closed) return no_such_session(id);
    if (auto failure = hydrate(**entry)) return *failure;
    checkpoint = (*entry)->live->snapshot().to_json();
  }
  enforce_capacity();
  JsonValue result = JsonValue::object();
  result.set("session", id);
  result.set("checkpoint", std::move(checkpoint));
  return result;
}

JsonValue SessionPool::summary_json(Entry& entry) const {
  const Session& session = *entry.live;
  const SessionProgress progress = session.progress();
  JsonValue out = JsonValue::object();
  out.set("session", entry.id);
  out.set("finished", session.finished());
  out.set("rows", session.augmented().size());
  out.set("instances_added", progress.instances_added);
  out.set("iterations_run", progress.iterations_run);
  out.set("iterations_accepted", progress.iterations_accepted);
  out.set("j_bar", session.best_j_hat_bar());
  out.set("dataset_digest", hex64(dataset_digest(session.augmented())));
  entry.note_geometry();
  return out;
}

Expected<JsonValue, FroteError> SessionPool::result(const std::string& id) {
  auto entry = find_entry(id);
  if (!entry) return entry.error();
  JsonValue summary;
  {
    std::lock_guard<std::mutex> lock((*entry)->m);
    if ((*entry)->closed) return no_such_session(id);
    if (auto failure = hydrate(**entry)) return *failure;
    summary = summary_json(**entry);
  }
  enforce_capacity();
  return summary;
}

Expected<JsonValue, FroteError> SessionPool::close(const std::string& id) {
  auto entry = find_entry(id);
  if (!entry) return entry.error();
  JsonValue summary;
  {
    std::lock_guard<std::mutex> lock((*entry)->m);
    if ((*entry)->closed) return no_such_session(id);
    if (auto failure = hydrate(**entry)) {
      // An unrecoverable session can still be closed — that is how a
      // client clears it. The summary reports the degradation in place of
      // the run counters it no longer has.
      summary = JsonValue::object();
      summary.set("session", id);
      summary.set("unrecoverable", true);
      summary.set("error", failure->message);
    } else {
      summary = summary_json(**entry);
    }
    summary.set("closed", true);
    (*entry)->closed = true;
    (*entry)->live.reset();
  }
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    entries_.erase(id);
    ++sessions_closed_;
  }
  if (!config_.spool_dir.empty()) {
    std::error_code ignored;
    fs::remove(spool_path(id, kSpecSuffix), ignored);
    fs::remove(spool_path(id, kCheckpointSuffix), ignored);
  }
  return summary;
}

JsonValue SessionPool::stats() const {
  request_counter_.fetch_add(1);
  std::lock_guard<std::mutex> lock(table_mutex_);
  std::size_t live = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->live.has_value()) ++live;
  }
  // Per-session residency: id-ordered (entries_ is an ordered map), one row
  // per open session with its last-observed D̂ geometry. Evicted sessions
  // report without being hydrated — sessions recovered from a spool and
  // never touched yet report zeros until their first request.
  JsonValue sessions = JsonValue::array();
  for (const auto& [id, entry] : entries_) {
    JsonValue row = JsonValue::object();
    row.set("session", id);
    row.set("state", entry->live.has_value() ? "live" : "evicted");
    row.set("rows", entry->rows.load(std::memory_order_relaxed));
    row.set("chunks", entry->chunks.load(std::memory_order_relaxed));
    row.set("accepts", entry->accepts.load(std::memory_order_relaxed));
    row.set("rejects", entry->rejects.load(std::memory_order_relaxed));
    row.set("model_updates",
            entry->model_updates.load(std::memory_order_relaxed));
    sessions.push_back(std::move(row));
  }
  JsonValue out = JsonValue::object();
  out.set("sessions_open", entries_.size());
  out.set("sessions_live", live);
  out.set("sessions_evicted", entries_.size() - live);
  out.set("sessions_created", sessions_created_);
  out.set("sessions_closed", sessions_closed_);
  out.set("sessions_recovered", sessions_recovered_);
  out.set("evictions", evictions_.load());
  out.set("restores", restores_.load());
  out.set("spool_failures", spool_failures_.load());
  // Counts every pool request, this one included.
  out.set("requests", request_counter_.load());
  out.set("max_live", config_.max_live);
  out.set("max_sessions", config_.max_sessions);
  out.set("evict_every_request", config_.evict_every_request);
  out.set("spool", !config_.spool_dir.empty());
  out.set("threads", resolve_threads(config_.threads));
  out.set("sessions", std::move(sessions));
  return out;
}

std::size_t SessionPool::checkpoint_all() {
  if (config_.spool_dir.empty()) return 0;
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    entries.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) entries.push_back(entry);
  }
  std::atomic<std::size_t> written{0};
  // The shutdown path: spool every live session concurrently (grain 1 —
  // snapshot serialisation is per-session independent work). Blocking on
  // the entry mutex is correct here: an in-flight request finishes, then
  // its session is spooled.
  parallel_for(entries.size(), 1, config_.threads, [&](std::size_t begin,
                                                       std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Entry& entry = *entries[i];
      std::lock_guard<std::mutex> lock(entry.m);
      if (entry.closed || !entry.live.has_value()) continue;
      // One session's failed spool write must not abort the shutdown
      // sweep for the rest; the failed one stays live (and is simply lost
      // when the process exits — exactly what would have happened to all
      // of them without the sweep).
      try {
        evict(entry);
        written.fetch_add(1);
      } catch (const Error&) {
        spool_failures_.fetch_add(1);
      }
    }
  });
  return written.load();
}

bool SessionPool::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(table_mutex_);
  return entries_.find(id) != entries_.end();
}

}  // namespace frote
