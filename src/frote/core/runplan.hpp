// RunPlan — a batch of FROTE runs as one declarative JSON document, plus
// the concurrent driver that executes it.
//
// A plan is a base EngineSpec and a grid: lists of learners, selectors and
// seeds (and a replicate count) that are expanded into the cross product.
// Expansion order is deterministic — learners × selectors × seeds ×
// replicates, exactly as listed — and so are the artifacts: each expanded
// run gets an index-prefixed name and its own output directory with
//   spec.json        the fully-resolved EngineSpec of this run
//   checkpoint.json  periodic session snapshot (while running / interrupted)
//   result.json      deterministic summary (written on completion)
//   augmented.csv    the output dataset D̂
//
// Runs execute concurrently on util/parallel.hpp (grain 1, ordered result
// slots); within a driver worker, nested engine parallelism runs inline, so
// the per-run output is bit-identical whatever the driver thread count.
// Replicates draw per-run seeds via derive_seed(seed, replicate) —
// independent streams, reproducible from the plan alone.
//
//   {
//     "format": "frote.run_plan", "version": 1,
//     "base": { ... engine spec with a "dataset" reference ... },
//     "grid": {"learners": ["rf", "lr"], "seeds": [1, 2, 3]},
//     "threads": 4
//   }
//
// The driver supports checkpoint/resume (core/checkpoint.hpp): with
// checkpoint_every set it snapshots periodically; with resume set it picks
// incomplete runs back up from their checkpoint — and because restore is
// bit-identical, an interrupted-and-resumed plan produces byte-identical
// artifacts to an uninterrupted one (ci.sh proves this on every run).
//
// A scenario plan swaps the base spec for a list of registered scenarios
// (core/scenario.hpp) — "base" becomes optional and the grid's learner /
// selector axes override the scenarios' own components:
//
//   {
//     "format": "frote.run_plan", "version": 1,
//     "grid": {"scenarios": ["multiclass_wine", "drift_adult"],
//              "seeds": [42, 7]},
//     "threads": 4
//   }
//
// Scenario runs write spec.json (the fully-resolved ScenarioSpec document)
// and result.json (the ScenarioReport) — no checkpoint.json/augmented.csv —
// and completed runs are still skipped under resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "frote/core/scenario.hpp"
#include "frote/core/spec.hpp"

namespace frote {

struct RunPlan {
  static constexpr std::uint64_t kFormatVersion = 1;

  /// Template spec; every expanded run starts from a copy of it. Must carry
  /// a dataset reference for execute_plan (the driver has no other input).
  /// Ignored (and not required in the JSON) for scenario plans.
  EngineSpec base;

  /// Grid axes; an empty axis means "use the base spec's value".
  std::vector<std::string> learners;
  std::vector<std::string> selectors;
  std::vector<std::uint64_t> seeds;
  /// Scenario grid ("grid.scenarios"): registry names resolved through
  /// make_named_scenario. When non-empty the plan expands to scenario runs
  /// only — scenarios × learners × selectors × seeds × replicates, where an
  /// empty learner/selector axis means "the scenario's own" rather than the
  /// base spec's, and the run seed reseeds the whole scenario
  /// (ScenarioRunOptions). checkpoint_every / max_steps do not apply to
  /// scenario runs: a scenario replays in one piece (its drift schedule
  /// already exercises snapshot/restore internally).
  std::vector<std::string> scenarios;
  /// Runs per grid point. Replicate r of seed s runs with derive_seed(s, r)
  /// (replicates == 1 uses s itself).
  std::size_t replicates = 1;

  /// Driver concurrency across runs; 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;

  struct Run {
    std::string name;  // "run-012-rf-ip-s42" (index prefix fixes the order)
    EngineSpec spec;
    /// Scenario runs only: the registry name, the per-run overrides handed
    /// to run_scenario ("" = the scenario's own component) and the run
    /// seed. `spec` is unused for these.
    std::string scenario;
    std::string learner_override;
    std::string selector_override;
    std::uint64_t seed = 0;
  };
  /// Deterministic cross-product expansion.
  std::vector<Run> expand() const;

  JsonValue to_json() const;
  static Expected<RunPlan, FroteError> from_json(const JsonValue& json);
  std::string to_json_text(int indent = 2) const;
  static Expected<RunPlan, FroteError> parse(std::string_view json_text);
};

struct RunPlanOptions {
  /// Directory for per-run artifacts; empty runs everything in memory.
  std::string output_dir;
  /// Snapshot the session every k iterations (0 = only on interruption).
  std::size_t checkpoint_every = 0;
  /// Stop each run after this many steps *in this invocation* (0 =
  /// unbounded), leaving a checkpoint behind — the deterministic stand-in
  /// for being killed mid-plan, used by the ci.sh resume leg and --dry-run
  /// style smoke tests.
  std::size_t max_steps = 0;
  /// Resume incomplete runs from their checkpoint.json; completed runs
  /// (result.json present) are not re-executed. Checkpoints are durable
  /// files (integrity footer, util/fsio.hpp); one that fails validation is
  /// quarantined to checkpoint.json.corrupt and the run restarts fresh.
  bool resume = false;
  /// Re-attempts per run after an execution failure (transient I/O —
  /// artifact writes hitting a full disk, injected faults). Each retry
  /// restarts that run's body from scratch, so a retried run produces the
  /// same bytes a first-try run would. 0 disables.
  int retries = 2;
};

/// Summary of one expanded run. Deterministic — no wall-clock fields — so
/// result.json files can be diffed against goldens.
struct RunResult {
  std::string name;
  bool completed = false;  // false ⇒ interrupted by max_steps
  bool resumed = false;    // this invocation continued from a checkpoint
  std::size_t dataset_rows = 0;
  std::size_t instances_added = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  double final_j_bar = 0.0;

  JsonValue to_json() const;
};

/// Execute the plan. Results come back in expansion order regardless of the
/// driver thread count. Fails fast (before any run starts) on an unloadable
/// dataset or a spec that does not resolve through the registry.
Expected<std::vector<RunResult>> execute_plan(const RunPlan& plan,
                                              const RunPlanOptions& options);

}  // namespace frote
