// SessionWorkspace — the reusable loop state of one FROTE editing session
// (docs/DESIGN.md §5).
//
// Algorithm 1 re-derives several artefacts from D̂ every iteration even
// though D̂ only changes on *accepted* steps, and then only by an appended
// tail: the fitted SMOTE-NC distance, the kNN index over D̂, the current
// model's predictions, the IP selector's borderline weights, and the
// per-rule constrained generators. The workspace owns all of them, keyed by
// a cheap dataset snapshot (uid / append_epoch / row count), so
//   - rejected iterations reuse everything (the "reject fast-path"),
//   - accepted iterations refresh incrementally: column moments absorb only
//     the appended rows (bit-identical to a full refit, see ColumnMoments),
//     and the kNN index absorbs the batch via KnnIndex::try_append instead
//     of being rebuilt.
// Every cache read is bit-identical to recomputing from scratch — the
// determinism suites (test_determinism / test_engine_api / test_workspace)
// lock that equivalence.
//
// Ownership: a Session owns one workspace; standalone callers (benchmarks,
// custom drivers) may own one and pass it to IpSelector::select /
// GenerationContext. The workspace stores raw pointers into the bound
// dataset and the caller's BasePopulation, so it must not outlive them.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "frote/core/generate.hpp"
#include "frote/knn/knn.hpp"
#include "frote/metrics/metrics.hpp"

namespace frote {

/// One row's cached neighbourhood (docs/DESIGN.md §10): the first
/// min(k+1, n) entries of `list` are bit-identical to
/// index().query_squared(row, k+1) — ascending (squared distance, dataset
/// row index) — and every dataset row NOT in the list is provably at least
/// `outside_bound` away (squared). The bound is what lets an accepted batch
/// update the list by scoring only (list ∪ appended rows) instead of
/// re-querying the whole index. `list` keeps a few candidate entries past
/// the exact prefix (certification headroom — the bound starts further
/// out); consumers must treat entries beyond k+1 as internal.
struct RowNeighborhood {
  std::vector<Neighbor> list;
  double outside_bound = std::numeric_limits<double>::infinity();
};

/// Cheap identity of a dataset state: same uid + append_epoch + row count
/// implies every row a consumer absorbed is still byte-identical (staging a
/// tail and rolling it back returns to the same snapshot).
struct DatasetSnapshot {
  std::uint64_t uid = 0;
  std::uint64_t append_epoch = 0;
  std::size_t rows = 0;
  bool operator==(const DatasetSnapshot&) const = default;
};

inline DatasetSnapshot snapshot_of(const Dataset& data) {
  return {data.uid(), data.append_epoch(), data.size()};
}

class SessionWorkspace {
 public:
  SessionWorkspace() = default;
  explicit SessionWorkspace(int threads, KnnIndexConfig index_config = {})
      : index_config_(index_config), threads_(threads) {}

  /// Threads for the hot paths the workspace serves (kNN scans, batch
  /// predictions); 0 ⇒ FROTE_NUM_THREADS. Deterministic for every value.
  int threads() const { return threads_; }

  /// Bind to (or refresh against) the committed state of `data`: absorbs
  /// appended rows into the column moments and refits the distance. Binding
  /// a different dataset, or one whose existing rows changed
  /// (append_epoch), drops every cache and refits from scratch.
  void bind(const Dataset& data);
  bool bound() const { return data_ != nullptr; }
  const Dataset& data() const {
    FROTE_CHECK_MSG(data_ != nullptr, "workspace not bound");
    return *data_;
  }

  /// The SMOTE-NC distance fitted on the bound dataset — bit-identical to
  /// MixedDistance::fit(data) at every bind point.
  const MixedDistance& distance() const {
    FROTE_CHECK_MSG(distance_valid_, "workspace distance not fitted");
    return distance_;
  }

  /// Full-dataset kNN index, built lazily on first use and maintained via
  /// KnnIndex::try_append across binds. Query results are always
  /// bit-identical to make_knn_index over the bound dataset.
  KnnIndex& index();

  /// Owner-managed stamp of the model whose derived caches (predictions,
  /// IP weights) are valid; bump it whenever the model is retrained.
  void set_model_stamp(std::uint64_t stamp);
  std::uint64_t model_stamp() const { return model_stamp_; }

  /// Predicted-label cache slot (see PredictionCache); the Ĵ evaluation
  /// fills it, the IP selector reads it.
  PredictionCache& predictions() { return predictions_; }

  /// IP selection weights cached for (bound snapshot, model stamp, rows);
  /// nullptr on miss.
  const std::vector<double>* cached_weights(
      const std::vector<std::size_t>& rows) const;
  void store_weights(const std::vector<std::size_t>& rows,
                     std::vector<double> weights);

  /// Exact (k+1)-nearest neighbourhoods of each `rows[i]` over the bound
  /// dataset — the first min(k+1, n) entries of out[i]->list are
  /// bit-identical to index().query_squared(data().row(rows[i]), k+1); the
  /// list may carry extra candidate entries (see RowNeighborhood).
  /// Maintained incrementally: after an accepted
  /// batch, a row whose certified bound still separates its kept list from
  /// the rest of the dataset is updated by scoring only list ∪ appended
  /// rows; rows whose certificate fails (or that are new to the cache) pay
  /// one real index query. Returned pointers stay valid until the next
  /// neighborhoods()/bind() call. `rows` may contain duplicates.
  std::vector<const RowNeighborhood*> neighborhoods(
      const std::vector<std::size_t>& rows, std::size_t k);

  /// How many real index queries neighborhoods() has issued since this
  /// workspace was constructed — the observability hook the incremental
  /// tests use to prove the fast path actually ran.
  std::uint64_t neighborhood_queries() const { return nbr_queries_; }

  /// Per-rule constrained generator, cached until the bound snapshot moves.
  /// `rule` / `bp` must be the same objects across calls for a given bound
  /// snapshot (the Session's rule set and base population).
  RuleConstrainedGenerator& generator(std::size_t rule_index,
                                      const FeedbackRule& rule,
                                      const RuleBasePopulation& bp,
                                      const GenerateConfig& config);

 private:
  const Dataset* data_ = nullptr;
  DatasetSnapshot bound_;

  ColumnMoments moments_;
  MixedDistance distance_;
  bool distance_valid_ = false;

  std::unique_ptr<KnnIndex> index_;
  DatasetSnapshot index_snapshot_;
  KnnIndexConfig index_config_;
  int threads_ = 0;

  std::uint64_t model_stamp_ = 0;
  PredictionCache predictions_;

  std::vector<double> weights_;
  std::vector<std::size_t> weight_rows_;
  DatasetSnapshot weights_snapshot_;
  std::uint64_t weights_model_stamp_ = 0;
  bool weights_valid_ = false;

  /// Neighbourhood cache (see neighborhoods()). The slot stamp marks which
  /// refresh generation last touched an entry, so one pass can tell
  /// duplicates, already-current entries, and stale entries apart without a
  /// per-call set. The private PackedRows mirrors the bound dataset under
  /// nbr_distance_ — packing and squared() are byte-for-byte the engines'
  /// own, which is what makes incrementally computed distances bit-identical
  /// to index queries.
  struct NbrSlot {
    RowNeighborhood hood;
    std::uint64_t stamp = 0;
  };
  std::unordered_map<std::size_t, NbrSlot> nbr_entries_;
  DatasetSnapshot nbr_snapshot_;
  MixedDistance nbr_distance_;
  std::unique_ptr<detail::PackedRows> nbr_packed_;
  std::vector<std::size_t> nbr_packed_ids_;  // identity [0, rows)
  std::size_t nbr_k_ = 0;
  std::uint64_t nbr_stamp_ = 0;
  std::uint64_t nbr_queries_ = 0;
  bool nbr_valid_ = false;

  std::vector<std::unique_ptr<RuleConstrainedGenerator>> generators_;
  DatasetSnapshot generators_snapshot_;
};

}  // namespace frote
