// Online-learning proxy for base instance scoring (supplement A, eq. 7).
//
// Evaluating J(A(D̂ ∪ Generate(B)), F) exactly requires running the black-box
// trainer A per candidate. The supplement's alternative: distill the current
// model M_D̂ into a parametric M̂ (online logistic regression), approximate
// the retrained model by OL(M̂, Generate({i})) — one online update per
// singleton — and score candidates with Ĵ of the updated proxy. The paper
// found even this too slow to experiment with at Ĵ's O(|D̂|²) total cost; we
// implement it with a subsampled Ĵ estimate so it is actually usable, and
// expose it as a third selection strategy for ablation.
#pragma once

#include "frote/core/selection.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

struct OnlineProxyConfig {
  std::size_t k = 5;
  /// Rows of D̂ sampled for the Ĵ estimate (caps the quadratic cost the
  /// supplement flags as the bottleneck).
  std::size_t eval_sample = 200;
  /// Online updates applied per candidate singleton.
  std::size_t updates_per_candidate = 3;
  /// Candidates scored per rule (top-η/m by proxy score are selected).
  std::size_t candidates_per_rule = 40;
};

/// Scores singleton candidates with the online proxy and picks the highest
/// scoring ones per rule, subject to the same per-rule budget as IP.
class OnlineProxySelector : public BaseInstanceSelector {
 public:
  OnlineProxySelector(const FeedbackRuleSet& frs,
                      OnlineProxyConfig config = {})
      : frs_(&frs), config_(config) {}

  std::vector<SelectedInstance> select(const Dataset& data,
                                       const BasePopulation& bp,
                                       const Model& model, std::size_t eta,
                                       Rng& rng) const override;

 private:
  const FeedbackRuleSet* frs_;
  OnlineProxyConfig config_;
};

}  // namespace frote
