#include "frote/core/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "frote/core/base_population.hpp"
#include "frote/core/engine_impl.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/util/hash.hpp"
#include "frote/util/json_reader.hpp"

namespace frote {

// ---------------------------------------------------------------------------
// JSON round-trip

namespace {

JsonValue schema_to_json(const Schema& schema) {
  JsonValue features = JsonValue::array();
  for (const auto& feature : schema.features()) {
    JsonValue f = JsonValue::object();
    f.set("name", feature.name);
    f.set("type", feature.is_categorical() ? "cat" : "num");
    if (feature.is_categorical()) {
      JsonValue categories = JsonValue::array();
      for (const auto& category : feature.categories) {
        categories.push_back(category);
      }
      f.set("categories", std::move(categories));
    }
    features.push_back(std::move(f));
  }
  JsonValue classes = JsonValue::array();
  for (const auto& name : schema.class_names()) classes.push_back(name);
  JsonValue out = JsonValue::object();
  out.set("features", std::move(features));
  out.set("classes", std::move(classes));
  return out;
}

Expected<std::shared_ptr<const Schema>> schema_from_json(
    const JsonValue& json) {
  const JsonValue* features_json = json.find("features");
  const JsonValue* classes_json = json.find("classes");
  if (features_json == nullptr || !features_json->is_array() ||
      classes_json == nullptr || !classes_json->is_array()) {
    return FroteError::parse_error(
        "checkpoint schema needs \"features\" and \"classes\" arrays");
  }
  try {
    std::vector<FeatureSpec> features;
    for (const auto& f : features_json->items()) {
      const JsonValue* name = f.find("name");
      const JsonValue* type = f.find("type");
      if (name == nullptr || type == nullptr) {
        return FroteError::parse_error(
            "checkpoint schema feature needs \"name\" and \"type\"");
      }
      if (type->as_string() == "cat") {
        const JsonValue* categories = f.find("categories");
        if (categories == nullptr || !categories->is_array()) {
          return FroteError::parse_error(
              "categorical feature needs a \"categories\" array");
        }
        std::vector<std::string> names;
        for (const auto& category : categories->items()) {
          names.push_back(category.as_string());
        }
        features.push_back(
            FeatureSpec::categorical(name->as_string(), std::move(names)));
      } else if (type->as_string() == "num") {
        features.push_back(FeatureSpec::numeric(name->as_string()));
      } else {
        return FroteError::parse_error("unknown feature type \"" +
                                       type->as_string() + "\"");
      }
    }
    std::vector<std::string> classes;
    for (const auto& name : classes_json->items()) {
      classes.push_back(name.as_string());
    }
    return std::shared_ptr<const Schema>(
        std::make_shared<Schema>(std::move(features), std::move(classes)));
  } catch (const Error& e) {
    return FroteError::parse_error(std::string("invalid checkpoint schema: ") +
                                   e.what());
  }
}

/// Fetch a required member or fail with one consistent message.
Expected<const JsonValue*> require(const JsonValue& json, const char* key) {
  const JsonValue* value = json.find(key);
  if (value == nullptr) {
    return FroteError::parse_error(std::string("checkpoint is missing \"") +
                                   key + "\"");
  }
  return value;
}

}  // namespace

JsonValue SessionCheckpoint::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.checkpoint");
  out.set("version", kFormatVersion);
  FROTE_CHECK_MSG(schema != nullptr, "checkpoint without a schema");
  out.set("schema", schema_to_json(*schema));

  JsonValue dataset = JsonValue::object();
  JsonValue values_json = JsonValue::array();
  values_json.items().reserve(values.size());
  for (const double v : values) values_json.push_back(v);
  JsonValue labels_json = JsonValue::array();
  labels_json.items().reserve(labels.size());
  for (const int label : labels) labels_json.push_back(label);
  JsonValue ids_json = JsonValue::array();
  ids_json.items().reserve(row_ids.size());
  for (const std::uint64_t id : row_ids) ids_json.push_back(id);
  dataset.set("values", std::move(values_json));
  dataset.set("labels", std::move(labels_json));
  dataset.set("row_ids", std::move(ids_json));
  dataset.set("next_row_id", next_row_id);
  dataset.set("dataset_version", dataset_version);
  dataset.set("append_epoch", append_epoch);
  dataset.set("chunk_rows", chunk_rows);
  dataset.set("mmap", mmap);
  out.set("dataset", std::move(dataset));

  JsonValue rng_json = JsonValue::object();
  JsonValue words = JsonValue::array();
  for (const std::uint64_t word : rng.words) words.push_back(word);
  rng_json.set("words", std::move(words));
  rng_json.set("cached_normal_bits", rng.cached_normal_bits);
  rng_json.set("cached_normal_valid", rng.cached_normal_valid);
  out.set("rng", std::move(rng_json));

  JsonValue state = JsonValue::object();
  state.set("model_version", model_version);
  state.set("model_stamp_counter", model_stamp_counter);
  state.set("best_j_bar", best_j_bar);
  state.set("eta", eta);
  state.set("quota", quota);
  state.set("iterations_run", iterations_run);
  state.set("iterations_accepted", iterations_accepted);
  state.set("instances_added", instances_added);
  state.set("consecutive_rejections", consecutive_rejections);
  state.set("model_updates", model_updates);
  state.set("done", done);
  if (dataset_digest != 0) state.set("digest", dataset_digest);
  out.set("state", std::move(state));

  JsonValue trace_json = JsonValue::array();
  for (const auto& point : trace) {
    JsonValue p = JsonValue::object();
    p.set("iteration", point.iteration);
    p.set("instances_added", point.instances_added);
    p.set("train_j_hat_bar", point.train_j_hat_bar);
    p.set("accepted", point.accepted);
    trace_json.push_back(std::move(p));
  }
  out.set("trace", std::move(trace_json));
  return out;
}

Expected<SessionCheckpoint, FroteError> SessionCheckpoint::from_json(
    const JsonValue& json) {
  if (!json.is_object()) {
    return FroteError::parse_error("checkpoint must be a JSON object");
  }
  const JsonValue* format = json.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.checkpoint") {
    return FroteError::parse_error(
        "not a session checkpoint (format must be \"frote.checkpoint\")");
  }
  try {
    auto version = require(json, "version");
    if (!version) return version.error();
    if ((*version)->as_uint64() > kFormatVersion) {
      return FroteError::parse_error(
          "checkpoint version " + std::to_string((*version)->as_uint64()) +
          " is newer than this reader (" + std::to_string(kFormatVersion) +
          ")");
    }

    SessionCheckpoint ckpt;
    auto schema_json = require(json, "schema");
    if (!schema_json) return schema_json.error();
    auto schema = schema_from_json(**schema_json);
    if (!schema) return schema.error();
    ckpt.schema = std::move(*schema);

    auto dataset = require(json, "dataset");
    if (!dataset) return dataset.error();
    JsonFieldReader dataset_reader(**dataset, "checkpoint dataset");
    for (const char* key : {"values", "labels", "row_ids"}) {
      auto member = require(**dataset, key);
      if (!member) return member.error();
    }
    for (const auto& v : (*dataset)->find("values")->items()) {
      ckpt.values.push_back(v.as_double());
    }
    for (const auto& label : (*dataset)->find("labels")->items()) {
      const std::int64_t raw = label.as_int64();
      if (raw < std::numeric_limits<int>::min() ||
          raw > std::numeric_limits<int>::max()) {
        return FroteError::parse_error(
            "checkpoint label out of int range — truncating would mask the "
            "corruption");
      }
      ckpt.labels.push_back(static_cast<int>(raw));
    }
    for (const auto& id : (*dataset)->find("row_ids")->items()) {
      ckpt.row_ids.push_back(id.as_uint64());
    }
    dataset_reader.require("next_row_id", ckpt.next_row_id);
    dataset_reader.require("dataset_version", ckpt.dataset_version);
    dataset_reader.require("append_epoch", ckpt.append_epoch);
    // Storage geometry is optional: pre-chunking checkpoints restore onto
    // the flat default layout.
    dataset_reader.read("chunk_rows", ckpt.chunk_rows);
    dataset_reader.read("mmap", ckpt.mmap);
    if (!dataset_reader.ok()) return dataset_reader.take_error();

    auto rng_json = require(json, "rng");
    if (!rng_json) return rng_json.error();
    auto words = require(**rng_json, "words");
    if (!words) return words.error();
    if (!(*words)->is_array() || (*words)->items().size() != 4) {
      return FroteError::parse_error(
          "checkpoint rng.words must hold exactly 4 values");
    }
    for (int i = 0; i < 4; ++i) {
      ckpt.rng.words[i] = (*words)->items()[static_cast<std::size_t>(i)]
                              .as_uint64();
    }
    JsonFieldReader rng_reader(**rng_json, "checkpoint rng");
    rng_reader.require("cached_normal_bits", ckpt.rng.cached_normal_bits);
    rng_reader.require("cached_normal_valid", ckpt.rng.cached_normal_valid);
    if (!rng_reader.ok()) return rng_reader.take_error();

    auto state = require(json, "state");
    if (!state) return state.error();
    JsonFieldReader state_reader(**state, "checkpoint state");
    state_reader.require("model_version", ckpt.model_version);
    state_reader.require("model_stamp_counter", ckpt.model_stamp_counter);
    state_reader.require("best_j_bar", ckpt.best_j_bar);
    state_reader.require("eta", ckpt.eta);
    state_reader.require("quota", ckpt.quota);
    state_reader.require("iterations_run", ckpt.iterations_run);
    state_reader.require("iterations_accepted", ckpt.iterations_accepted);
    state_reader.require("instances_added", ckpt.instances_added);
    state_reader.require("consecutive_rejections",
                         ckpt.consecutive_rejections);
    state_reader.require("done", ckpt.done);
    // v2 additions — optional so v1 checkpoints keep restoring (they take
    // the full verification path and report zero incremental updates).
    state_reader.read("model_updates", ckpt.model_updates);
    state_reader.read("digest", ckpt.dataset_digest);
    if (!state_reader.ok()) return state_reader.take_error();

    auto trace = require(json, "trace");
    if (!trace) return trace.error();
    for (const auto& point_json : (*trace)->items()) {
      ProgressPoint point;
      JsonFieldReader point_reader(point_json, "checkpoint trace point");
      point_reader.require("iteration", point.iteration);
      point_reader.require("instances_added", point.instances_added);
      point_reader.require("train_j_hat_bar", point.train_j_hat_bar);
      point_reader.require("accepted", point.accepted);
      if (!point_reader.ok()) return point_reader.take_error();
      ckpt.trace.push_back(point);
    }
    return ckpt;
  } catch (const Error& e) {
    return FroteError::parse_error(std::string("invalid checkpoint: ") +
                                   e.what());
  }
}

std::uint64_t SessionCheckpoint::compute_digest(
    std::string_view learner_name) const {
  // Bit patterns, not numeric values: the digest is a *byte*-identity
  // witness, so -0.0 vs 0.0 or NaN payloads must not collide.
  Fnv1a64 h;
  h.update(learner_name);
  h.update_u64(static_cast<std::uint64_t>(labels.size()));
  for (const double v : values) h.update_u64(std::bit_cast<std::uint64_t>(v));
  for (const int label : labels) {
    h.update_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(label)));
  }
  for (const std::uint64_t id : row_ids) h.update_u64(id);
  h.update_u64(next_row_id);
  h.update_u64(dataset_version);
  h.update_u64(append_epoch);
  h.update_u64(model_version);
  h.update_u64(std::bit_cast<std::uint64_t>(best_j_bar));
  const std::uint64_t digest = h.digest();
  return digest != 0 ? digest : 1;  // 0 is reserved for "absent"
}

std::string SessionCheckpoint::to_json_text(int indent) const {
  return json_dump(to_json(), indent);
}

Expected<SessionCheckpoint, FroteError> SessionCheckpoint::parse(
    std::string_view json_text) {
  auto json = json_parse(json_text);
  if (!json) return json.error();
  return from_json(*json);
}

// ---------------------------------------------------------------------------
// Session::snapshot / Session::restore

Session::Session(RestoreTag, std::shared_ptr<const Engine::Impl> engine,
                 const Learner& learner)
    : engine_(std::move(engine)), learner_(&learner), rng_(0) {}

SessionCheckpoint Session::snapshot() const {
  // step() always commits or rolls back before returning, so a session is
  // only observable at iteration boundaries — but guard regardless: a
  // checkpoint of half-staged state would be unrestorable.
  FROTE_CHECK_MSG(!active_.has_staged(),
                  "snapshot on a dataset with staged rows");
  SessionCheckpoint ckpt;
  ckpt.schema = active_.schema_ptr();
  // Per-row copy rather than raw_values(): chunked storage has no
  // whole-table span, and each row is contiguous under every geometry.
  const std::size_t width = active_.num_features();
  ckpt.values.reserve(active_.size() * width);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const double* row = active_.row_ptr(i);
    ckpt.values.insert(ckpt.values.end(), row, row + width);
  }
  const auto labels = active_.raw_labels();
  ckpt.labels.assign(labels.begin(), labels.end());
  ckpt.chunk_rows = active_.storage().chunk_rows;
  ckpt.mmap = active_.storage().mmap;
  ckpt.row_ids.reserve(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    ckpt.row_ids.push_back(active_.row_id(i));
  }
  ckpt.next_row_id = active_.next_row_id();
  ckpt.dataset_version = active_.version();
  ckpt.append_epoch = active_.append_epoch();
  ckpt.rng = rng_.state();
  ckpt.model_version = model_version_;
  ckpt.model_stamp_counter = model_stamp_counter_;
  ckpt.best_j_bar = best_j_bar_;
  ckpt.eta = eta_;
  ckpt.quota = quota_;
  ckpt.iterations_run = iterations_run_;
  ckpt.iterations_accepted = iterations_accepted_;
  ckpt.instances_added = added_;
  ckpt.consecutive_rejections = consecutive_rejections_;
  ckpt.model_updates = model_updates_;
  ckpt.done = done_;
  ckpt.trace = trace_;
  ckpt.dataset_digest = ckpt.compute_digest(learner_->name());
  return ckpt;
}

Expected<Session, FroteError> Session::restore(
    const Engine& engine, const Learner& learner,
    const SessionCheckpoint& ckpt) {
  return restore(engine, learner, ckpt, SessionRestoreOptions{});
}

Expected<Session, FroteError> Session::restore(
    const Engine& engine, const Learner& learner,
    const SessionCheckpoint& ckpt, SessionRestoreOptions options) {
  if (ckpt.schema == nullptr) {
    return FroteError::invalid_argument("checkpoint has no schema");
  }
  const std::size_t width = ckpt.schema->num_features();
  if (ckpt.labels.empty() || ckpt.values.size() != ckpt.labels.size() * width ||
      ckpt.row_ids.size() != ckpt.labels.size()) {
    return FroteError::invalid_argument(
        "checkpoint dataset payload is inconsistent (values/labels/row_ids "
        "sizes disagree)");
  }
  const FroteConfig& config = engine.impl_->config;
  const FeedbackRuleSet& frs = engine.impl_->frs;

  Session session(RestoreTag{}, engine.impl_, learner);
  try {
    Dataset data(ckpt.schema, StorageOptions{ckpt.chunk_rows, ckpt.mmap});
    // Same headroom policy as Engine::open: the loop may overshoot the
    // remaining quota by at most one η batch, so staged appends after the
    // restore never reallocate.
    data.reserve_rows(ckpt.labels.size() + ckpt.quota + ckpt.eta);
    for (std::size_t i = 0; i < ckpt.labels.size(); ++i) {
      data.add_row(std::span<const double>(ckpt.values.data() + i * width,
                                           width),
                   ckpt.labels[i]);
    }
    data.restore_tracking(ckpt.row_ids, ckpt.next_row_id,
                          ckpt.dataset_version, ckpt.append_epoch);
    session.active_ = std::move(data);
  } catch (const Error& e) {
    return FroteError::invalid_argument(
        std::string("checkpoint rows do not fit the checkpoint schema: ") +
        e.what());
  }

  session.rng_.set_state(ckpt.rng);
  session.model_stamp_counter_ = ckpt.model_stamp_counter;
  session.model_version_ = ckpt.model_version;
  session.best_j_bar_ = ckpt.best_j_bar;
  session.eta_ = ckpt.eta;
  session.quota_ = ckpt.quota;
  session.iterations_run_ = ckpt.iterations_run;
  session.iterations_accepted_ = ckpt.iterations_accepted;
  session.added_ = ckpt.instances_added;
  session.consecutive_rejections_ = ckpt.consecutive_rejections;
  session.model_updates_ = ckpt.model_updates;
  session.trace_ = ckpt.trace;
  session.done_ = ckpt.done;

  // Everything below is recomputed, not deserialised — each piece is a
  // deterministic function of (D̂, engine config), and each recomputation
  // is locked bit-identical to the incremental state the original session
  // carried (update_base_population ≡ preselect_base_population; every
  // workspace cache read ≡ recomputing; retraining ≡ the accepted model).
  //
  // A verified digest (the v2 byte-identity witness over dataset payload +
  // learner name + recorded Ĵ̄) proves the checkpoint still binds the exact
  // bytes snapshot() saw, which licenses the two warm shortcuts:
  //   - install a stashed model instead of retraining, when the caller can
  //     prove it is the snapshotting session's own model (version match);
  //   - trust the recorded best_j_bar without the verification sweep —
  //     recomputing it would reproduce the same value by the determinism
  //     contract. v1 checkpoints (digest 0), hand-edited files, or digest
  //     mismatches all take the original recompute-and-cross-check path,
  //     so corruption detection is never weaker than before.
  const bool digest_ok =
      ckpt.dataset_digest != 0 &&
      ckpt.dataset_digest == ckpt.compute_digest(learner.name());
  const bool warm_model_ok = digest_ok && options.warm_model != nullptr &&
                             options.warm_model_version == ckpt.model_version;
  session.model_ = warm_model_ok ? std::move(options.warm_model)
                                 : learner.train(session.active_);
  session.ws_ = std::make_unique<SessionWorkspace>(config.threads);
  session.ws_->set_model_stamp(session.model_version_);
  if (!frs.empty() && config.q != 0.0) {
    session.bp_ = preselect_base_population(session.active_, frs, config.k);
    session.ws_->bind(session.active_);
  }
  if (!digest_ok) {
    const double recomputed_j_bar =
        train_j_hat_bar(*session.model_, frs, session.active_, config.threads,
                        session.ws_->predictions(), session.model_version_);
    // Consistency cross-check. Within one binary the recomputation is
    // bit-identical, but a checkpoint restored under different FP codegen
    // (another arch / compiler / contraction policy) may legitimately drift
    // by ulps — so tolerate tiny relative error rather than falsely
    // rejecting a good checkpoint. Real corruption (wrong dataset, wrong
    // learner, tampered rows) moves Ĵ̄ by orders of magnitude more. The
    // session proceeds from the *recorded* value either way, preserving
    // exact resume within a binary.
    const double tolerance =
        1e-9 * std::max(1.0, std::abs(ckpt.best_j_bar));
    if (!(std::abs(recomputed_j_bar - ckpt.best_j_bar) <= tolerance)) {
      return FroteError::invalid_argument(
          "checkpoint is inconsistent: Ĵ̄ of the model retrained on the "
          "restored D̂ does not match the recorded best_j_bar — the "
          "checkpoint was corrupted or belongs to a different "
          "engine/learner");
    }
  }
  return session;
}

}  // namespace frote
