// Named-component registry: string → learner / base-instance selector.
//
// The CLI (tools/frote_edit_cli) and the experiment harness (exp/learners)
// used to keep two divergent if/else chains mapping names to components;
// this registry is the single shared source of truth. Lookups return
// Expected so callers get a typed kUnknownComponent / kMissingDependency
// error (with the list of valid names) instead of a throw.
//
//   auto learner = make_named_learner("rf", {.seed = 7}).value();
//   auto selector = make_named_selector(
//       "ip", {.k = 5}).value();            // "online-proxy" also needs .frs
//
// The registry is extensible: register_learner / register_selector add new
// names at runtime (e.g. a test or an embedding application plugging in its
// own black-box trainer).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "frote/core/scenario.hpp"
#include "frote/core/selection.hpp"
#include "frote/ml/model.hpp"
#include "frote/rules/ruleset.hpp"
#include "frote/util/error.hpp"

namespace frote {

/// Options handed to a learner factory. `fast` selects reduced capacities
/// for smoke runs (the harness's FROTE_FAST mode). `threads` is forwarded
/// into the learner configs that parallelise training (lr/rf/gbdt);
/// 0 ⇒ FROTE_NUM_THREADS — training output is identical for every value.
struct LearnerSpec {
  std::uint64_t seed = 42;
  bool fast = false;
  int threads = 0;
};

/// Options handed to a selector factory. `frs` is required by selectors that
/// score against the rules (online-proxy); the factory reports
/// kMissingDependency when it is needed and absent. The rule set must
/// outlive the selector.
struct SelectorSpec {
  std::size_t k = 5;
  const FeedbackRuleSet* frs = nullptr;
  /// Threads for selectors with a scoring sweep (ip); 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;
};

using LearnerFactory =
    std::function<std::unique_ptr<Learner>(const LearnerSpec&)>;
using SelectorFactory =
    std::function<Expected<std::shared_ptr<const BaseInstanceSelector>>(
        const SelectorSpec&)>;

/// Create a learner by registered name. Built-ins: "lr", "rf", "gbdt"
/// (alias "lgbm"), "nb", "knn" — lr/rf/gbdt carry the paper's §5.1
/// hyper-parameters.
Expected<std::unique_ptr<Learner>> make_named_learner(
    const std::string& name, const LearnerSpec& spec = {});

/// Create a base-instance selector by registered name. Built-ins: "random",
/// "ip", "online-proxy".
Expected<std::shared_ptr<const BaseInstanceSelector>> make_named_selector(
    const std::string& name, const SelectorSpec& spec = {});

/// Registered names, sorted (for usage/help strings). Aliases included.
std::vector<std::string> registered_learner_names();
std::vector<std::string> registered_selector_names();

/// Extend the registry. Re-registering an existing name replaces it.
void register_learner(const std::string& name, LearnerFactory factory);
void register_selector(const std::string& name, SelectorFactory factory);

/// Resolve a scenario by registered name: the stored JSON document is
/// parsed and fully validated (core/scenario.hpp) on every lookup, so the
/// result is either a runnable ScenarioSpec or a typed error
/// (kUnknownComponent for the name, kParseError for a bad document).
/// Built-ins: "multiclass_wine", "drift_adult", "fairness_adult".
Expected<ScenarioSpec> make_named_scenario(const std::string& name);

/// Registered scenario names, sorted.
std::vector<std::string> registered_scenario_names();

/// Register (or replace) a scenario as its JSON document text — the whole
/// extension surface: a new workload is JSON plus this one call.
void register_scenario(const std::string& name, std::string scenario_json);

}  // namespace frote
