// Engine's private implementation record, shared by the translation units
// that assemble or re-open engines (engine.cpp, spec.cpp, checkpoint.cpp).
// Not part of the public API — include "frote/core/engine.hpp" instead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frote/core/engine.hpp"
#include "frote/core/spec.hpp"
#include "frote/core/stages.hpp"

namespace frote {

struct Engine::Impl {
  FroteConfig config;
  FeedbackRuleSet frs;
  std::shared_ptr<const BaseInstanceSelector> selector;
  std::shared_ptr<const InstanceGenerator> generator;
  std::shared_ptr<const AcceptancePolicy> acceptance;
  std::shared_ptr<const StoppingCriterion> stopping;
  std::vector<std::shared_ptr<ProgressObserver>> observers;
  GenerateConfig generate_config;

  /// Declarative provenance for Engine::to_spec(): the synthesized spec
  /// (exact when the builder came from_spec), whether the engine is
  /// spec-representable at all, and whether `spec.rules` still matches
  /// `frs`. `spec_gap` names the first non-representable component.
  EngineSpec spec;
  bool spec_representable = false;
  bool spec_rules_valid = false;
  std::string spec_gap;
};

}  // namespace frote
