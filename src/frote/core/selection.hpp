// Base instance selection strategies (§4.1): `random` — per-rule uniform
// draws from the base population — and `IP` — the integer program (5) that
// prefers borderline instances while keeping per-rule lower/upper bounds.
#pragma once

#include <memory>
#include <vector>

#include "frote/core/base_population.hpp"
#include "frote/ml/model.hpp"
#include "frote/opt/ip.hpp"
#include "frote/util/rng.hpp"

namespace frote {

class SessionWorkspace;

/// One selected base instance: which rule it augments and the slot within
/// that rule's base population.
struct SelectedInstance {
  std::size_t rule_index = 0;
  std::size_t bp_slot = 0;
};

enum class SelectionStrategy { kRandom, kIp };

class BaseInstanceSelector {
 public:
  virtual ~BaseInstanceSelector() = default;
  /// Select up to `eta` base instances for this iteration. `model` is the
  /// current M_D̂ (used by IP; ignored by random).
  virtual std::vector<SelectedInstance> select(const Dataset& data,
                                               const BasePopulation& bp,
                                               const Model& model,
                                               std::size_t eta,
                                               Rng& rng) const = 0;

  /// Workspace-aware entry point, called by Session with its
  /// SessionWorkspace (core/workspace.hpp). Selectors that maintain no
  /// cross-iteration state inherit this delegation; overriders must return
  /// exactly what the plain form returns and draw from `rng` identically,
  /// with or without a workspace — the caches only skip recomputation.
  virtual std::vector<SelectedInstance> select(const Dataset& data,
                                               const BasePopulation& bp,
                                               const Model& model,
                                               std::size_t eta, Rng& rng,
                                               SessionWorkspace* workspace)
      const {
    (void)workspace;
    return select(data, bp, model, eta, rng);
  }
};

/// Uniform per-rule selection: η is spread evenly over rules; instances are
/// drawn with replacement from each rule's base population.
class RandomSelector : public BaseInstanceSelector {
 public:
  std::vector<SelectedInstance> select(const Dataset& data,
                                       const BasePopulation& bp,
                                       const Model& model, std::size_t eta,
                                       Rng& rng) const override;
};

struct IpSelectorConfig {
  std::size_t k = 5;               // lower bound per rule: k + 1
  std::size_t borderline_k = 10;   // neighbours for the weight computation
  double borderline_weight = 3.0;
  double other_weight = 1.0;
  IpConfig ip;
  /// Threads for the per-candidate borderline scoring sweep;
  /// 0 ⇒ FROTE_NUM_THREADS. Deterministic for every value.
  int threads = 0;
};

/// Integer-program selection (eq. 5) with borderline weights; falls back to
/// a greedy bound-repair heuristic when the IP is infeasible or the node
/// budget is exhausted. With a SessionWorkspace, the fitted distance, kNN
/// index, model predictions and the borderline weights themselves are
/// served from (and stored into) the workspace caches — bit-identical to
/// the standalone computation, but rejected FROTE iterations skip the
/// entire O(|BP|) scoring pass.
class IpSelector : public BaseInstanceSelector {
 public:
  explicit IpSelector(IpSelectorConfig config = {}) : config_(config) {}

  std::vector<SelectedInstance> select(const Dataset& data,
                                       const BasePopulation& bp,
                                       const Model& model, std::size_t eta,
                                       Rng& rng) const override;
  std::vector<SelectedInstance> select(const Dataset& data,
                                       const BasePopulation& bp,
                                       const Model& model, std::size_t eta,
                                       Rng& rng, SessionWorkspace* workspace)
      const override;

 private:
  IpSelectorConfig config_;
};

std::unique_ptr<BaseInstanceSelector> make_selector(
    SelectionStrategy strategy, std::size_t k = 5, int threads = 0);

}  // namespace frote
