#include "frote/core/runplan.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <utility>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/registry.hpp"
#include "frote/data/csv.hpp"
#include "frote/util/fsio.hpp"
#include "frote/util/json_reader.hpp"
#include "frote/util/parallel.hpp"
#include "frote/util/rng.hpp"

namespace frote {

// ---------------------------------------------------------------------------
// RunPlan JSON round-trip

JsonValue RunPlan::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.run_plan");
  out.set("version", kFormatVersion);
  // Scenario plans carry no base spec — the scenarios are the runs.
  if (scenarios.empty()) out.set("base", base.to_json());
  JsonValue grid = JsonValue::object();
  const auto string_list = [](const std::vector<std::string>& values) {
    JsonValue list = JsonValue::array();
    for (const auto& value : values) list.push_back(value);
    return list;
  };
  if (!scenarios.empty()) grid.set("scenarios", string_list(scenarios));
  if (!learners.empty()) grid.set("learners", string_list(learners));
  if (!selectors.empty()) grid.set("selectors", string_list(selectors));
  if (!seeds.empty()) {
    JsonValue list = JsonValue::array();
    for (const std::uint64_t seed : seeds) list.push_back(seed);
    grid.set("seeds", std::move(list));
  }
  if (replicates != 1) grid.set("replicates", replicates);
  out.set("grid", std::move(grid));
  out.set("threads", threads);
  return out;
}

Expected<RunPlan, FroteError> RunPlan::from_json(const JsonValue& json) {
  if (!json.is_object()) {
    return FroteError::parse_error("run plan must be a JSON object");
  }
  const JsonValue* format = json.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.run_plan") {
    return FroteError::parse_error(
        "not a run plan (format must be \"frote.run_plan\")");
  }
  try {
    if (const JsonValue* version = json.find("version")) {
      if (version->as_uint64() > kFormatVersion) {
        return FroteError::parse_error(
            "run plan version " + std::to_string(version->as_uint64()) +
            " is newer than this reader (" + std::to_string(kFormatVersion) +
            ")");
      }
    }
    RunPlan plan;
    if (const JsonValue* grid = json.find("grid")) {
      if (!grid->is_object()) {
        return FroteError::parse_error("run plan \"grid\" must be an object");
      }
      if (const JsonValue* scenarios = grid->find("scenarios")) {
        for (const auto& name : scenarios->items()) {
          plan.scenarios.push_back(name.as_string());
        }
      }
      if (const JsonValue* learners = grid->find("learners")) {
        for (const auto& name : learners->items()) {
          plan.learners.push_back(name.as_string());
        }
      }
      if (const JsonValue* selectors = grid->find("selectors")) {
        for (const auto& name : selectors->items()) {
          plan.selectors.push_back(name.as_string());
        }
      }
      if (const JsonValue* seeds = grid->find("seeds")) {
        for (const auto& seed : seeds->items()) {
          plan.seeds.push_back(seed.as_uint64());
        }
      }
      if (const JsonValue* replicates = grid->find("replicates")) {
        plan.replicates =
            static_cast<std::size_t>(replicates->as_uint64());
      }
    }
    const JsonValue* base = json.find("base");
    if (base != nullptr) {
      auto spec = EngineSpec::from_json(*base);
      if (!spec) return spec.error();
      plan.base = std::move(*spec);
    } else if (plan.scenarios.empty()) {
      return FroteError::parse_error(
          "run plan is missing \"base\" (only scenario plans — non-empty "
          "\"grid.scenarios\" — may omit it)");
    }
    if (json.find("threads") != nullptr) {
      JsonFieldReader reader(json, "run plan");
      reader.read("threads", plan.threads);  // range-checked int read
      if (!reader.ok()) return reader.take_error();
    }
    if (plan.replicates == 0) {
      return FroteError::parse_error("run plan replicates must be >= 1");
    }
    return plan;
  } catch (const Error& e) {
    return FroteError::parse_error(std::string("invalid run plan: ") +
                                   e.what());
  }
}

std::string RunPlan::to_json_text(int indent) const {
  return json_dump(to_json(), indent);
}

Expected<RunPlan, FroteError> RunPlan::parse(std::string_view json_text) {
  auto json = json_parse(json_text);
  if (!json) return json.error();
  return from_json(*json);
}

std::vector<RunPlan::Run> RunPlan::expand() const {
  const std::vector<std::uint64_t> seed_axis =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;

  if (!scenarios.empty()) {
    // Scenario grid: empty learner/selector axes mean "the scenario's own
    // components" (an empty override string), not the base spec's — each
    // scenario document carries its own engine configuration.
    const std::vector<std::string> learner_axis =
        learners.empty() ? std::vector<std::string>{""} : learners;
    const std::vector<std::string> selector_axis =
        selectors.empty() ? std::vector<std::string>{""} : selectors;
    std::vector<Run> runs;
    runs.reserve(scenarios.size() * learner_axis.size() *
                 selector_axis.size() * seed_axis.size() * replicates);
    for (const auto& scenario : scenarios) {
      for (const auto& learner : learner_axis) {
        for (const auto& selector : selector_axis) {
          for (const std::uint64_t seed : seed_axis) {
            for (std::size_t r = 0; r < replicates; ++r) {
              Run run;
              run.scenario = scenario;
              run.learner_override = learner;
              run.selector_override = selector;
              run.seed = replicates > 1 ? derive_seed(seed, r) : seed;
              char prefix[16];
              std::snprintf(prefix, sizeof prefix, "run-%03zu", runs.size());
              run.name = std::string(prefix) + "-" + scenario;
              if (!learner.empty()) run.name += "-" + learner;
              if (!selector.empty()) run.name += "-" + selector;
              run.name += "-s" + std::to_string(seed);
              if (replicates > 1) run.name += "-r" + std::to_string(r);
              runs.push_back(std::move(run));
            }
          }
        }
      }
    }
    return runs;
  }

  const std::vector<std::string> learner_axis =
      learners.empty() ? std::vector<std::string>{base.learner} : learners;
  const std::vector<std::string> selector_axis =
      selectors.empty() ? std::vector<std::string>{base.selector} : selectors;

  std::vector<Run> runs;
  runs.reserve(learner_axis.size() * selector_axis.size() * seed_axis.size() *
               replicates);
  for (const auto& learner : learner_axis) {
    for (const auto& selector : selector_axis) {
      for (const std::uint64_t seed : seed_axis) {
        for (std::size_t r = 0; r < replicates; ++r) {
          Run run;
          run.spec = base;
          run.spec.learner = learner;
          run.spec.selector = selector;
          run.spec.seed = replicates > 1 ? derive_seed(seed, r) : seed;
          char prefix[16];
          std::snprintf(prefix, sizeof prefix, "run-%03zu", runs.size());
          run.name = std::string(prefix) + "-" + learner + "-" + selector +
                     "-s" + std::to_string(seed);
          if (replicates > 1) run.name += "-r" + std::to_string(r);
          runs.push_back(std::move(run));
        }
      }
    }
  }
  return runs;
}

// ---------------------------------------------------------------------------
// Driver

JsonValue RunResult::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.run_result");
  out.set("version", std::uint64_t{1});
  out.set("name", name);
  out.set("completed", completed);
  out.set("dataset_rows", dataset_rows);
  out.set("instances_added", instances_added);
  out.set("iterations_run", iterations_run);
  out.set("iterations_accepted", iterations_accepted);
  out.set("final_j_bar", final_j_bar);
  return out;
}

namespace {

namespace fs = std::filesystem;

/// Parse a previously-written result.json; false on any mismatch (the run
/// is then simply re-executed).
bool load_run_result(const fs::path& path, RunResult& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  auto json = json_parse(text);
  if (!json) return false;
  const JsonValue* format = json->find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.run_result") {
    return false;
  }
  // Same refusal policy as every other document type: a result written by
  // a newer format must not be silently re-interpreted (or re-executed).
  const JsonValue* version = json->find("version");
  if (version != nullptr && version->is_number() &&
      version->as_uint64() > 1) {
    throw Error(path.string() + " has result version " +
                std::to_string(version->as_uint64()) +
                ", newer than this reader");
  }
  try {
    out.completed = json->find("completed")->as_bool();
    out.dataset_rows =
        static_cast<std::size_t>(json->find("dataset_rows")->as_uint64());
    out.instances_added =
        static_cast<std::size_t>(json->find("instances_added")->as_uint64());
    out.iterations_run =
        static_cast<std::size_t>(json->find("iterations_run")->as_uint64());
    out.iterations_accepted = static_cast<std::size_t>(
        json->find("iterations_accepted")->as_uint64());
    out.final_j_bar = json->find("final_j_bar")->as_double();
    return true;
  } catch (...) {
    return false;
  }
}

/// Scenario-run counterpart of load_run_result: a previously-written
/// ScenarioReport for the same scenario counts as a completed run. Same
/// refusal policy on a newer result version.
bool load_scenario_result(const fs::path& path, const std::string& scenario,
                          RunResult& out) {
  std::string text;
  if (!read_file(path, text)) return false;
  auto json = json_parse(text);
  if (!json) return false;
  const JsonValue* format = json->find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.scenario_result") {
    return false;
  }
  const JsonValue* version = json->find("version");
  if (version != nullptr && version->is_number() &&
      version->as_uint64() > 1) {
    throw Error(path.string() + " has result version " +
                std::to_string(version->as_uint64()) +
                ", newer than this reader");
  }
  try {
    const JsonValue* name = json->find("scenario");
    if (name == nullptr || !name->is_string() ||
        name->as_string() != scenario) {
      return false;
    }
    out.completed = true;
    out.dataset_rows =
        static_cast<std::size_t>(json->find("rows_final")->as_uint64());
    out.instances_added =
        static_cast<std::size_t>(json->find("instances_added")->as_uint64());
    out.iterations_run =
        static_cast<std::size_t>(json->find("iterations_run")->as_uint64());
    out.iterations_accepted = static_cast<std::size_t>(
        json->find("iterations_accepted")->as_uint64());
    out.final_j_bar = json->find("final_j_bar")->as_double();
    return true;
  } catch (...) {
    return false;
  }
}

struct PreparedRun {
  RunPlan::Run run;
  /// Engine runs carry a built engine + learner; scenario runs carry the
  /// fully-resolved ScenarioSpec (overrides folded in) instead.
  std::optional<Engine> engine;
  std::unique_ptr<Learner> learner;
  std::optional<ScenarioSpec> scenario;
};

}  // namespace

Expected<std::vector<RunResult>> execute_plan(const RunPlan& plan,
                                              const RunPlanOptions& options) {
  const bool scenario_plan = !plan.scenarios.empty();
  std::optional<Dataset> dataset;
  if (!scenario_plan) {
    if (!plan.base.dataset.has_value()) {
      return FroteError::invalid_config(
          "run plan base spec needs a \"dataset\" reference — the driver "
          "has no other input channel");
    }
    auto loaded = load_spec_dataset(*plan.base.dataset);
    if (!loaded) return loaded.error();
    dataset.emplace(std::move(*loaded));
  }

  // Resolve every run up front (fail fast, before any artifact is written):
  // registry lookups and rule parsing happen here, serially.
  std::vector<PreparedRun> prepared;
  for (auto& run : plan.expand()) {
    PreparedRun p;
    p.run = std::move(run);
    if (!p.run.scenario.empty()) {
      auto spec = make_named_scenario(p.run.scenario);
      if (!spec) {
        return FroteError{spec.error().code,
                          p.run.name + ": " + spec.error().message};
      }
      ScenarioRunOptions overrides;
      overrides.seed = p.run.seed;
      overrides.learner = p.run.learner_override;
      overrides.selector = p.run.selector_override;
      auto resolved = resolve_scenario(*spec, overrides);
      if (!resolved) {
        return FroteError{resolved.error().code,
                          p.run.name + ": " + resolved.error().message};
      }
      // Override names resolve through the registry now, not mid-plan —
      // the scenario document itself was already fully validated by
      // ScenarioSpec::from_json inside make_named_scenario.
      auto learner = make_spec_learner(resolved->engine);
      if (!learner) {
        return FroteError{learner.error().code,
                          p.run.name + ": " + learner.error().message};
      }
      const auto selector_names = registered_selector_names();
      if (std::find(selector_names.begin(), selector_names.end(),
                    resolved->engine.selector) == selector_names.end()) {
        return FroteError::unknown_component(
            p.run.name + ": unknown selector '" + resolved->engine.selector +
            "'");
      }
      p.scenario = std::move(*resolved);
    } else {
      auto builder = Engine::Builder::from_spec(p.run.spec, dataset->schema());
      if (!builder) {
        return FroteError{builder.error().code,
                          p.run.name + ": " + builder.error().message};
      }
      auto engine = builder->build();
      if (!engine) {
        return FroteError{engine.error().code,
                          p.run.name + ": " + engine.error().message};
      }
      auto learner = make_spec_learner(p.run.spec);
      if (!learner) {
        return FroteError{learner.error().code,
                          p.run.name + ": " + learner.error().message};
      }
      p.engine.emplace(std::move(*engine));
      p.learner = std::move(*learner);
    }
    prepared.push_back(std::move(p));
  }

  const bool with_artifacts = !options.output_dir.empty();
  if (with_artifacts) {
    try {
      for (const auto& p : prepared) {
        fs::create_directories(fs::path(options.output_dir) / p.run.name);
      }
    } catch (const std::exception& e) {
      return FroteError::io_error(std::string("cannot create output dirs: ") +
                                  e.what());
    }
  }

  std::vector<RunResult> results(prepared.size());
  std::vector<std::string> failures(prepared.size());
  parallel_for(
      prepared.size(), 1, plan.threads, [&](std::size_t begin,
                                            std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const PreparedRun& p = prepared[i];
          RunResult& result = results[i];
          const fs::path dir = fs::path(options.output_dir) / p.run.name;
          const auto run_once = [&]() {
            result = RunResult{};
            result.name = p.run.name;
            if (p.scenario.has_value()) {
              // Scenario run: spec.json is the fully-resolved ScenarioSpec,
              // result.json the ScenarioReport. A scenario replays in one
              // piece — no checkpoint.json (its drift schedule exercises
              // snapshot/restore internally) and no augmented.csv (the
              // report carries the D̂ digest instead).
              if (with_artifacts) {
                write_file_atomic(dir / "spec.json",
                                  p.scenario->to_json_text() + "\n");
              }
              if (with_artifacts && options.resume &&
                  load_scenario_result(dir / "result.json",
                                       p.scenario->name, result)) {
                result.name = p.run.name;
                return;
              }
              auto report = run_scenario(*p.scenario);
              if (!report) throw Error(report.error().message);
              result.completed = true;
              result.dataset_rows = report->rows_final;
              result.instances_added = report->instances_added;
              result.iterations_run = report->iterations_run;
              result.iterations_accepted = report->iterations_accepted;
              result.final_j_bar = report->final_j_bar;
              if (with_artifacts) {
                write_file_atomic(dir / "result.json",
                                  report->to_json_text() + "\n");
              }
              return;
            }
            if (with_artifacts) {
              write_file_atomic(dir / "spec.json",
                                p.run.spec.to_json_text() + "\n");
            }
            // Resume bookkeeping: a finished run is not re-executed; an
            // interrupted one restarts from its checkpoint.
            if (with_artifacts && options.resume &&
                load_run_result(dir / "result.json", result)) {
              result.name = p.run.name;
              return;
            }
            // An unusable checkpoint — validation failure (torn or
            // bit-rotted: quarantined), unparseable, or inconsistent with
            // this plan's engine/learner (e.g. the plan was edited into
            // the same output dir) — is never fatal: the run simply
            // restarts from scratch, which is always correct for the
            // *current* plan. Only real execution errors fail.
            Session session = [&]() -> Session {
              if (with_artifacts && options.resume) {
                const fs::path ckpt_path = dir / "checkpoint.json";
                std::string text;
                const ValidatedRead read =
                    read_file_validated(ckpt_path, text);
                if (read == ValidatedRead::kCorrupt) {
                  const fs::path moved = quarantine_file(ckpt_path);
                  std::cerr << p.run.name
                            << ": checkpoint failed validation, quarantined "
                            << moved.filename().string()
                            << "; starting fresh\n";
                } else if (read == ValidatedRead::kOk) {
                  auto ckpt = SessionCheckpoint::parse(text);
                  auto restored =
                      ckpt ? Session::restore(*p.engine, *p.learner, *ckpt)
                           : Expected<Session, FroteError>(ckpt.error());
                  if (restored) {
                    result.resumed = true;
                    return std::move(*restored);
                  }
                  std::cerr << p.run.name << ": checkpoint not restorable ("
                            << restored.error().message
                            << "); starting fresh\n";
                }
              }
              return p.engine->open(*dataset, *p.learner).value();
            }();

            const auto write_checkpoint = [&]() {
              if (!with_artifacts) return;
              write_file_durable(dir / "checkpoint.json",
                                 session.snapshot().to_json_text() + "\n");
            };

            std::size_t steps_this_invocation = 0;
            bool interrupted = false;
            while (!session.finished()) {
              if (options.max_steps != 0 &&
                  steps_this_invocation >= options.max_steps) {
                interrupted = true;
                break;
              }
              const StepReport report = session.step();
              ++steps_this_invocation;
              if (report.terminal()) break;
              if (options.checkpoint_every != 0 &&
                  session.progress().iterations_run %
                          options.checkpoint_every ==
                      0) {
                write_checkpoint();
              }
            }
            if (interrupted) {
              write_checkpoint();
              const SessionProgress progress = session.progress();
              result.completed = false;
              result.dataset_rows = session.augmented().size();
              result.instances_added = progress.instances_added;
              result.iterations_run = progress.iterations_run;
              result.iterations_accepted = progress.iterations_accepted;
              result.final_j_bar = session.best_j_hat_bar();
              return;  // no result.json: the run is resumable
            }
            result.completed = true;
            result.final_j_bar = session.best_j_hat_bar();
            const FroteResult outcome = std::move(session).result();
            result.dataset_rows = outcome.augmented.size();
            result.instances_added = outcome.instances_added;
            result.iterations_run = outcome.iterations_run;
            result.iterations_accepted = outcome.iterations_accepted;
            if (with_artifacts) {
              save_csv(outcome.augmented, (dir / "augmented.csv").string());
              write_file_atomic(dir / "result.json",
                                json_dump(result.to_json(), 2) + "\n");
              std::error_code ignored;
              fs::remove(dir / "checkpoint.json", ignored);
            }
          };
          // Bounded per-run retries: each attempt restarts the run body
          // from scratch (clean RunResult, re-read checkpoint), so a
          // passing retry produces the same bytes a first-try pass would.
          // No sleep between attempts — the failures this shields are
          // injected or transient I/O, not remote services.
          for (int attempt = 0;; ++attempt) {
            try {
              run_once();
              failures[i].clear();
              break;
            } catch (const std::exception& e) {
              failures[i] = e.what();
              if (attempt >= options.retries) break;
            }
          }
        }
      });

  // Fail-fast semantics on the in-memory results only: every run that
  // completed has already persisted its result.json/augmented.csv, and a
  // later --resume invocation skips completed runs — so a single failed
  // run costs one re-invocation, not the other runs' work.
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (!failures[i].empty()) {
      return FroteError::invalid_argument(prepared[i].run.name +
                                          " failed: " + failures[i]);
    }
  }
  return results;
}

}  // namespace frote
