#include "frote/core/workspace.hpp"

namespace frote {

void SessionWorkspace::bind(const Dataset& data) {
  // Staged rows are revocable: absorbing them would leave the caches
  // describing rows a rollback deletes, and the snapshot key could not
  // tell a re-staged same-size batch apart. Only committed state binds.
  FROTE_CHECK_MSG(!data.has_staged(),
                  "SessionWorkspace::bind on a dataset with staged rows");
  const DatasetSnapshot snap = snapshot_of(data);
  const bool extends_bound =
      data_ != nullptr && bound_.uid == snap.uid &&
      bound_.append_epoch == snap.append_epoch &&
      snap.rows >= moments_.absorbed_rows();
  if (&data != data_) {
    // Same logical dataset at a new address (e.g. a moved Session): the
    // value caches survive, but the generators hold raw row pointers.
    generators_.clear();
    generators_snapshot_ = {};
  }
  data_ = &data;
  if (!extends_bound) {
    moments_ = ColumnMoments(data.schema());
    distance_valid_ = false;
    index_.reset();
    index_snapshot_ = {};
    weights_valid_ = false;
    predictions_.invalidate();
    generators_.clear();
    generators_snapshot_ = {};
  }
  if (!data.empty() &&
      (moments_.absorbed_rows() != snap.rows || !distance_valid_)) {
    moments_.absorb(data);
    distance_ = MixedDistance::from_moments(data.schema(), moments_);
    distance_valid_ = true;
  }
  bound_ = snap;
}

KnnIndex& SessionWorkspace::index() {
  FROTE_CHECK_MSG(data_ != nullptr && distance_valid_,
                  "workspace index requested before bind");
  if (index_ != nullptr) {
    if (index_snapshot_ == bound_) return *index_;
    if (index_snapshot_.uid == bound_.uid &&
        index_snapshot_.append_epoch == bound_.append_epoch &&
        index_snapshot_.rows <= bound_.rows &&
        index_->try_append(*data_, distance_)) {
      index_snapshot_ = bound_;
      return *index_;
    }
  }
  KnnIndexConfig config = index_config_;
  config.threads = threads_;
  index_ = make_knn_index(*data_, distance_, {}, config);
  index_snapshot_ = bound_;
  return *index_;
}

void SessionWorkspace::set_model_stamp(std::uint64_t stamp) {
  model_stamp_ = stamp;
}

const std::vector<double>* SessionWorkspace::cached_weights(
    const std::vector<std::size_t>& rows) const {
  if (!weights_valid_ || weights_snapshot_ != bound_ ||
      weights_model_stamp_ != model_stamp_ || weight_rows_ != rows) {
    return nullptr;
  }
  return &weights_;
}

void SessionWorkspace::store_weights(const std::vector<std::size_t>& rows,
                                     std::vector<double> weights) {
  weights_ = std::move(weights);
  weight_rows_ = rows;
  weights_snapshot_ = bound_;
  weights_model_stamp_ = model_stamp_;
  weights_valid_ = true;
}

RuleConstrainedGenerator& SessionWorkspace::generator(
    std::size_t rule_index, const FeedbackRule& rule,
    const RuleBasePopulation& bp, const GenerateConfig& config) {
  FROTE_CHECK_MSG(data_ != nullptr && distance_valid_,
                  "workspace generator requested before bind");
  if (generators_snapshot_ != bound_) {
    generators_.clear();
    generators_snapshot_ = bound_;
  }
  if (rule_index >= generators_.size()) generators_.resize(rule_index + 1);
  auto& slot = generators_[rule_index];
  if (slot == nullptr) {
    slot = std::make_unique<RuleConstrainedGenerator>(*data_, rule, bp,
                                                      distance_, config);
  }
  return *slot;
}

}  // namespace frote
