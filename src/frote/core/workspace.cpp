#include "frote/core/workspace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "frote/util/parallel.hpp"

namespace frote {

namespace {

/// min over columns of (new_scale / old_scale)²: multiplying an old squared
/// distance by this lower-bounds its value under the new fit, because every
/// per-column squared term rescales by exactly its own ratio². Returns 0.0
/// (bound degenerates, forcing requeries) when the fits are not comparable
/// or a scale is non-positive.
double min_scale_ratio_sq(const MixedDistance& old_fit,
                          const MixedDistance& new_fit) {
  if (old_fit.num_columns() != new_fit.num_columns()) return 0.0;
  double min_r2 = std::numeric_limits<double>::infinity();
  for (std::size_t f = 0; f < new_fit.num_columns(); ++f) {
    if (old_fit.column_categorical(f) != new_fit.column_categorical(f)) {
      return 0.0;
    }
    const double old_scale = new_fit.column_categorical(f)
                                 ? old_fit.categorical_penalty()
                                 : old_fit.column_inv_std(f);
    const double new_scale = new_fit.column_categorical(f)
                                 ? new_fit.categorical_penalty()
                                 : new_fit.column_inv_std(f);
    if (!(old_scale > 0.0) || !(new_scale > 0.0)) return 0.0;
    const double r = new_scale / old_scale;
    min_r2 = std::min(min_r2, r * r);
  }
  if (!std::isfinite(min_r2)) return min_r2 > 0.0 ? 1.0 : 0.0;
  return min_r2;
}

/// Margin the certification shaves off its bound: the analytic inequality
/// new_sq ≥ min_r2 · old_sq is exact over the reals but each side carries
/// O(d·ε) float rounding, so the strict comparison keeps a relative safety
/// gap rather than trusting the last few ulps.
constexpr double kBoundSafety = 1.0 - 1e-9;

/// Candidate entries kept beyond the served (k+1)-prefix. The certificate
/// only has to prove no row OUTSIDE the stored list reaches the prefix, so
/// a longer stored list starts `outside_bound` at the (k+1+pad+1)-th
/// distance instead of the (k+2)-th — far more headroom before accepted
/// batches decay the bound past the (k+1)-th distance and force a requery.
/// Exactness is claimed (and tested) for the prefix only; the tail is an
/// internal candidate set.
constexpr std::size_t kNbrPad = 8;

}  // namespace

void SessionWorkspace::bind(const Dataset& data) {
  // Staged rows are revocable: absorbing them would leave the caches
  // describing rows a rollback deletes, and the snapshot key could not
  // tell a re-staged same-size batch apart. Only committed state binds.
  FROTE_CHECK_MSG(!data.has_staged(),
                  "SessionWorkspace::bind on a dataset with staged rows");
  const DatasetSnapshot snap = snapshot_of(data);
  const bool extends_bound =
      data_ != nullptr && bound_.uid == snap.uid &&
      bound_.append_epoch == snap.append_epoch &&
      snap.rows >= moments_.absorbed_rows();
  if (&data != data_) {
    // Same logical dataset at a new address (e.g. a moved Session): the
    // value caches survive, but the generators hold raw row pointers.
    generators_.clear();
    generators_snapshot_ = {};
  }
  data_ = &data;
  if (!extends_bound) {
    moments_ = ColumnMoments(data.schema());
    distance_valid_ = false;
    index_.reset();
    index_snapshot_ = {};
    weights_valid_ = false;
    predictions_.invalidate();
    generators_.clear();
    generators_snapshot_ = {};
    nbr_valid_ = false;
    nbr_entries_.clear();
    nbr_packed_.reset();
    nbr_packed_ids_.clear();
  }
  if (!data.empty() &&
      (moments_.absorbed_rows() != snap.rows || !distance_valid_)) {
    moments_.absorb(data);
    distance_ = MixedDistance::from_moments(data.schema(), moments_);
    distance_valid_ = true;
  }
  bound_ = snap;
}

KnnIndex& SessionWorkspace::index() {
  FROTE_CHECK_MSG(data_ != nullptr && distance_valid_,
                  "workspace index requested before bind");
  if (index_ != nullptr) {
    if (index_snapshot_ == bound_) return *index_;
    if (index_snapshot_.uid == bound_.uid &&
        index_snapshot_.append_epoch == bound_.append_epoch &&
        index_snapshot_.rows <= bound_.rows &&
        index_->try_append(*data_, distance_)) {
      index_snapshot_ = bound_;
      return *index_;
    }
  }
  KnnIndexConfig config = index_config_;
  config.threads = threads_;
  index_ = make_knn_index(*data_, distance_, {}, config);
  index_snapshot_ = bound_;
  return *index_;
}

void SessionWorkspace::set_model_stamp(std::uint64_t stamp) {
  model_stamp_ = stamp;
}

const std::vector<double>* SessionWorkspace::cached_weights(
    const std::vector<std::size_t>& rows) const {
  if (!weights_valid_ || weights_snapshot_ != bound_ ||
      weights_model_stamp_ != model_stamp_ || weight_rows_ != rows) {
    return nullptr;
  }
  return &weights_;
}

void SessionWorkspace::store_weights(const std::vector<std::size_t>& rows,
                                     std::vector<double> weights) {
  weights_ = std::move(weights);
  weight_rows_ = rows;
  weights_snapshot_ = bound_;
  weights_model_stamp_ = model_stamp_;
  weights_valid_ = true;
}

std::vector<const RowNeighborhood*> SessionWorkspace::neighborhoods(
    const std::vector<std::size_t>& rows, std::size_t k) {
  FROTE_CHECK_MSG(data_ != nullptr && distance_valid_,
                  "workspace neighborhoods requested before bind");
  FROTE_CHECK(k > 0 && bound_.rows > 0);
  const std::size_t n = bound_.rows;
  const std::size_t cap = std::min(k + 1, n);  // exact prefix, self included
  const std::size_t stored = std::min(cap + kNbrPad, n);  // kept candidates

  const bool same_snapshot =
      nbr_valid_ && nbr_k_ == k && nbr_snapshot_ == bound_;
  const bool extends = nbr_valid_ && nbr_k_ == k && !same_snapshot &&
                       nbr_snapshot_.uid == bound_.uid &&
                       nbr_snapshot_.append_epoch == bound_.append_epoch &&
                       nbr_snapshot_.rows <= bound_.rows;
  if (!same_snapshot && !extends) nbr_entries_.clear();
  if (!same_snapshot) ++nbr_stamp_;
  const std::size_t old_rows = extends ? nbr_snapshot_.rows : n;
  const double min_r2 =
      extends ? min_scale_ratio_sq(nbr_distance_, distance_) : 1.0;

  // Keep the private packed mirror in sync with (bound_, distance_) —
  // same append-or-repack policy as the engines themselves.
  if (nbr_packed_ids_.size() < n) {
    const std::size_t have = nbr_packed_ids_.size();
    nbr_packed_ids_.resize(n);
    std::iota(nbr_packed_ids_.begin() + static_cast<std::ptrdiff_t>(have),
              nbr_packed_ids_.end(), have);
  }
  nbr_packed_ids_.resize(n);
  if (nbr_packed_ == nullptr) {
    nbr_packed_ = std::make_unique<detail::PackedRows>(*data_, distance_,
                                                       nbr_packed_ids_);
  } else if (!nbr_packed_->scales_match(distance_) ||
             nbr_packed_->rows() > n) {
    nbr_packed_->repack(*data_, distance_, nbr_packed_ids_);
  } else if (nbr_packed_->rows() < n) {
    nbr_packed_->append(*data_,
                        std::span<const std::size_t>(nbr_packed_ids_)
                            .subspan(nbr_packed_->rows()));
  }

  // Pass 1 (serial): create slots and classify each distinct row as
  // already-current, incrementally updatable, or needing a real query.
  std::vector<const RowNeighborhood*> out(rows.size());
  std::vector<std::pair<std::size_t, NbrSlot*>> incremental, fresh;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    FROTE_CHECK(rows[s] < n);
    auto [it, inserted] = nbr_entries_.try_emplace(rows[s]);
    out[s] = &it->second.hood;
    if (it->second.stamp == nbr_stamp_) continue;  // duplicate / current
    if (!inserted && extends) {
      incremental.emplace_back(rows[s], &it->second);
    } else {
      fresh.emplace_back(rows[s], &it->second);
    }
    it->second.stamp = nbr_stamp_;
  }

  // Pass 2: certified incremental updates — score only (kept list ∪
  // appended rows) with the packed mirror and keep the result only when the
  // rescaled bound proves no other row can reach the new top (cap). Rows
  // whose certificate fails degrade to a real query (exact either way).
  if (!incremental.empty()) {
    std::vector<std::uint8_t> failed(incremental.size(), 0);
    parallel_for(
        incremental.size(), 4, threads_,
        [&](std::size_t begin, std::size_t end) {
          std::vector<Neighbor> pool;
          for (std::size_t w = begin; w < end; ++w) {
            auto& [row, slot] = incremental[w];
            RowNeighborhood& hood = slot->hood;
            const double* q = nbr_packed_->row(row);
            pool.clear();
            for (const Neighbor& nb : hood.list) {
              pool.push_back(
                  {nb.index, nbr_packed_->squared(q, nbr_packed_->row(nb.index))});
            }
            for (std::size_t j = old_rows; j < n; ++j) {
              pool.push_back({j, nbr_packed_->squared(q, nbr_packed_->row(j))});
            }
            std::sort(pool.begin(), pool.end(), detail::NeighborCmp{});
            const bool covered_all =
                !(hood.outside_bound < std::numeric_limits<double>::infinity());
            if (covered_all) {
              // The old list held every old row, so the pool holds every
              // row: the new top (stored) is exact unconditionally.
              hood.outside_bound =
                  pool.size() > stored
                      ? pool[stored].distance
                      : std::numeric_limits<double>::infinity();
              hood.list.assign(
                  pool.begin(),
                  pool.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(stored, pool.size())));
              continue;
            }
            const double bound =
                min_r2 * hood.outside_bound * kBoundSafety;
            if (!(min_r2 > 0.0) || pool.size() < cap ||
                !(pool[cap - 1].distance < bound)) {
              failed[w] = 1;
              continue;
            }
            // Rows outside the new list are either outside the old
            // list ∪ appended (≥ bound) or dropped pool entries
            // (≥ pool[stored]); the min of the two keeps the invariant.
            hood.outside_bound =
                pool.size() > stored ? std::min(bound, pool[stored].distance)
                                     : bound;
            hood.list.assign(
                pool.begin(),
                pool.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(stored, pool.size())));
          }
        });
    for (std::size_t w = 0; w < incremental.size(); ++w) {
      if (failed[w]) fresh.push_back(incremental[w]);
    }
  }

  // Pass 3: real index queries for new and uncertified rows. stored+1
  // results: the first stored entries are the list, the next distance (if
  // any) is the exact outside bound the next accept certifies against.
  if (!fresh.empty()) {
    KnnIndex& knn = index();  // lazy build must happen outside parallel_for
    nbr_queries_ += fresh.size();
    parallel_for(fresh.size(), 1, threads_,
                 [&](std::size_t begin, std::size_t end) {
                   std::vector<Neighbor> scratch;
                   for (std::size_t w = begin; w < end; ++w) {
                     auto& [row, slot] = fresh[w];
                     knn.query_squared(data_->row(row), stored + 1, scratch);
                     RowNeighborhood& hood = slot->hood;
                     hood.list.clear();
                     const std::size_t keep = std::min(stored, scratch.size());
                     for (std::size_t e = 0; e < keep; ++e) {
                       hood.list.push_back({knn.dataset_index(scratch[e].index),
                                            scratch[e].distance});
                     }
                     hood.outside_bound =
                         scratch.size() > stored
                             ? scratch[stored].distance
                             : std::numeric_limits<double>::infinity();
                   }
                 });
  }

  // Entries that were not requested this refresh would silently go stale
  // (their distances reference the pre-refresh fit) — drop them.
  if (extends) {
    for (auto it = nbr_entries_.begin(); it != nbr_entries_.end();) {
      it = it->second.stamp != nbr_stamp_ ? nbr_entries_.erase(it)
                                          : std::next(it);
    }
  }

  nbr_snapshot_ = bound_;
  nbr_distance_ = distance_;
  nbr_k_ = k;
  nbr_valid_ = true;
  return out;
}

RuleConstrainedGenerator& SessionWorkspace::generator(
    std::size_t rule_index, const FeedbackRule& rule,
    const RuleBasePopulation& bp, const GenerateConfig& config) {
  FROTE_CHECK_MSG(data_ != nullptr && distance_valid_,
                  "workspace generator requested before bind");
  if (generators_snapshot_ != bound_) {
    generators_.clear();
    generators_snapshot_ = bound_;
  }
  if (rule_index >= generators_.size()) generators_.resize(rule_index + 1);
  auto& slot = generators_[rule_index];
  if (slot == nullptr) {
    slot = std::make_unique<RuleConstrainedGenerator>(*data_, rule, bp,
                                                      distance_, config);
  }
  return *slot;
}

}  // namespace frote
